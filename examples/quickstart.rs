//! Quickstart: nested transactions in five minutes.
//!
//! ```bash
//! cargo run --example quickstart
//! ```
//!
//! Demonstrates the engine's core semantics from Lynch/Moss:
//! subtransaction commit publishes *to the parent only*; subtransaction
//! abort is contained (resilience); top-level commit publishes globally.

use resilient_nt::core::{Db, TxnError};

fn main() -> Result<(), TxnError> {
    // An in-memory nested-transaction store. Keys and values are generic;
    // here: &str -> i64.
    let db: Db<&'static str, i64> = Db::new();
    db.insert("checking", 1_000);
    db.insert("savings", 5_000);

    // A top-level transaction with two subtransactions.
    let txn = db.begin();

    // Subtransaction 1: move 300 checking -> savings.
    let transfer = txn.child()?;
    transfer.rmw(&"checking", |v| v - 300)?;
    transfer.rmw(&"savings", |v| v + 300)?;
    transfer.commit()?; // visible to `txn`, NOT to the world

    println!("inside txn: checking = {}", txn.read(&"checking")?); // 700
    println!("outside txn: checking = {:?}", db.committed_value(&"checking")); // 1000

    // Subtransaction 2: a speculative operation that fails — aborting it
    // rolls back ONLY its own writes. This is the "resilient" part: the
    // parent tolerates the failure and carries on.
    let speculative = txn.child()?;
    speculative.rmw(&"checking", |v| v - 9_999)?;
    println!("speculative saw checking = {}", speculative.read(&"checking")?);
    speculative.abort(); // contained: transfer's effects survive

    assert_eq!(txn.read(&"checking")?, 700, "abort rolled back only the subtransaction");

    // Commit the top level: now the world sees it.
    txn.commit()?;
    assert_eq!(db.committed_value(&"checking"), Some(700));
    assert_eq!(db.committed_value(&"savings"), Some(5_300));
    println!("committed: checking = 700, savings = 5300");

    // Dropping an unfinished transaction aborts it.
    {
        let t = db.begin();
        t.write(&"checking", -1)?;
    } // dropped here -> aborted
    assert_eq!(db.committed_value(&"checking"), Some(700));
    println!("dropped transaction rolled back automatically");

    // Under contention, prefer `Db::run`: it retries the closure on
    // retryable conflicts (deadlock victim, wait-die death, timeout)
    // with capped seeded backoff, and commits on success. See
    // examples/banking.rs for it under real multi-threaded contention.
    let bonus = db.run(|txn| txn.rmw(&"savings", |v| v + 100))?;
    assert_eq!(bonus, 5_300);
    assert_eq!(db.committed_value(&"savings"), Some(5_400));
    println!("db.run committed the bonus: savings = 5400");

    // Snapshots walk the ordered keyspace lock-free, frozen at the
    // commit epoch they pinned — later commits never leak in.
    let before = db.snapshot();
    db.run(|txn| txn.rmw(&"savings", |v| v + 1))?;
    assert_eq!(before.range(..), vec![("checking", 700), ("savings", 5_400)]);
    println!("frozen ordered scan: {:?}", before.range(..));

    // Time travel: any epoch still retained can be reopened by number;
    // pruned or not-yet-published epochs give a typed error instead of
    // an inconsistent view.
    let reopened = db.snapshot_at(before.epoch()).expect("epoch still pinned");
    assert_eq!(reopened.range(.."s"), vec![("checking", 700)]);
    assert!(db.snapshot_at(db.epochs().watermark + 1).is_err(), "future epochs refuse");
    println!("time travel to epoch {} of {:?} worked", reopened.epoch(), db.epochs());

    Ok(())
}
