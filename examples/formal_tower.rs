//! The five-level proof tower, end to end on a concrete scenario.
//!
//! ```bash
//! cargo run --example formal_tower
//! ```
//!
//! Builds the paper's running structure: a tiny action universe, a scripted
//! *distributed* execution at level 5 (two nodes, gossip, an abort), and
//! then walks the full simulation chain h ∘ h' ∘ h'' ∘ h''' down to the
//! level-1 specification — Theorem 29, executed.

use resilient_nt::algebra::{
    check_local_mapping_on_run, check_simulation_on_run, replay, Composed,
};
use resilient_nt::distributed::{DistEvent, HDist, Level5, Topology};
use resilient_nt::locking::{HDoublePrime, HPrime, Level3, Level4};
use resilient_nt::model::{act, TxEvent, UniverseBuilder, UpdateFn};
use resilient_nt::spec::{HSpec, Level1, Level2};
use std::sync::Arc;

fn main() {
    // The a-priori universe: two top-level actions; act0 has a nested
    // subtransaction writing x0 and an access to x1; act1 increments x0.
    let universe = Arc::new(
        UniverseBuilder::new()
            .object(0, 10)
            .object(1, 0)
            .action(act![0])
            .action(act![0, 0])
            .access(act![0, 0, 0], 0, UpdateFn::Write(42))
            .access(act![0, 1], 1, UpdateFn::Add(5))
            .action(act![1])
            .access(act![1, 0], 0, UpdateFn::Add(1))
            .build()
            .expect("valid universe"),
    );
    let topology = Arc::new(Topology::round_robin(&universe, 2));
    let level5 = Level5::new(universe.clone(), topology.clone());
    println!(
        "universe: {} actions, {} objects, {} nodes",
        universe.action_count(),
        universe.object_count(),
        topology.node_count()
    );

    // Every event runs at the node the topology dictates (create at
    // origin, commit/abort/perform at home, lock events at the object's
    // home); after each transaction event the doer gossips its full
    // summary to the other node, so knowledge preconditions always hold.
    let x0 = resilient_nt::model::ObjectId(0);
    let x1 = resilient_nt::model::ObjectId(1);
    let script: Vec<TxEvent> = vec![
        TxEvent::Create(act![0]),
        TxEvent::Create(act![0, 0]),
        TxEvent::Create(act![0, 0, 0]),
        TxEvent::Perform(act![0, 0, 0], 10), // sees init(x0)
        TxEvent::ReleaseLock(act![0, 0, 0], x0),
        TxEvent::Commit(act![0, 0]),
        TxEvent::ReleaseLock(act![0, 0], x0),
        TxEvent::Create(act![0, 1]),
        TxEvent::Perform(act![0, 1], 0), // sees init(x1)
        TxEvent::ReleaseLock(act![0, 1], x1),
        TxEvent::Commit(act![0]),
        TxEvent::ReleaseLock(act![0], x0),
        TxEvent::ReleaseLock(act![0], x1),
        TxEvent::Create(act![1]),
        TxEvent::Create(act![1, 0]),
        TxEvent::Perform(act![1, 0], 42), // sees the committed write
        TxEvent::Abort(act![1]),
        TxEvent::LoseLock(act![1, 0], x0),
    ];
    let doer_of = |e: &TxEvent| -> usize {
        match e {
            TxEvent::Create(a) => topology.origin(a),
            TxEvent::Commit(a) | TxEvent::Abort(a) | TxEvent::Perform(a, _) => {
                topology.home_of_action(a)
            }
            TxEvent::ReleaseLock(_, x) | TxEvent::LoseLock(_, x) => topology.home_of_object(*x),
        }
    };
    // Assemble the level-5 run with eager full gossip after every event.
    let mut run: Vec<DistEvent> = Vec::new();
    {
        let mut state = level5.initial();
        use resilient_nt::algebra::Algebra;
        for e in script {
            let doer = doer_of(&e);
            let ev = DistEvent::Tx(doer, e);
            state = level5.apply(&state, &ev).unwrap_or_else(|| panic!("{ev:?} rejected"));
            run.push(ev);
            let summary = state.nodes[doer].summary.clone();
            for to in 0..topology.node_count() {
                if to == doer || summary.is_empty() {
                    continue;
                }
                let send = DistEvent::Send { from: doer, to, summary: summary.clone() };
                state = level5.apply(&state, &send).expect("send valid");
                run.push(send);
                let recv = DistEvent::Receive { to, summary: summary.clone() };
                state = level5.apply(&state, &recv).expect("receive valid");
                run.push(recv);
            }
        }
    }

    // Validate the run at level 5.
    let states = replay(&level5, run.clone()).expect("scripted run is valid at level 5");
    println!("level 5: {} events valid; final node summaries:", run.len());
    for (i, node) in states.last().unwrap().nodes.iter().enumerate() {
        println!("  node {i}: knows {} actions", node.summary.len());
    }

    // Walk the tower: 5 -> 4 (local mapping, Lemma 28)...
    let level4 = Level4::new(universe.clone());
    let h3 = HDist::new(universe.clone(), topology.clone());
    let rep = check_local_mapping_on_run(&level5, &level4, &h3, &run)
        .expect("Lemma 28: local mapping holds");
    println!("level 5 -> 4: {} events map to {} (gossip -> Λ)", rep.low_steps, rep.high_steps);

    // ... and the composed simulations down to level 1 (Theorem 29).
    let hdp = HDoublePrime::new(universe.clone());
    let h54: Composed<'_, _, _, Level4> = Composed::new(&h3, &hdp);
    let h53: Composed<'_, _, _, Level3> = Composed::new(&h54, &HPrime);
    let h52: Composed<'_, _, _, Level2> = Composed::new(&h53, &HSpec);
    let level3 = Level3::new(universe.clone());
    let level2 = Level2::new(universe.clone());
    let level1 = Level1::new(universe.clone());
    check_simulation_on_run(&level5, &level3, &h54, &run).expect("valid at level 3");
    check_simulation_on_run(&level5, &level2, &h53, &run).expect("valid at level 2");
    check_simulation_on_run(&level5, &level1, &h52, &run).expect("valid at level 1 (Theorem 29)");
    println!("simulation tower verified: level 5 -> 4 -> 3 -> 2 -> 1");
    let _ = level3;

    // Inspect the abstract result: replay at level 2 and look at perm(T).
    use resilient_nt::algebra::Interpretation;
    let mapped: Vec<TxEvent> = run.iter().filter_map(|e| h53.map_event(e)).collect();
    let aat = replay(&level2, mapped).expect("valid").pop().expect("nonempty");
    let perm = aat.perm();
    println!(
        "perm(T): {} of {} vertices permanent; data-serializable: {}",
        perm.tree.len(),
        aat.tree.len(),
        perm.is_data_serializable(&universe)
    );
    assert!(perm.is_data_serializable(&universe));
    assert!(perm.tree.contains(&act![0, 0, 0]), "committed write is permanent");
    assert!(!perm.tree.contains(&act![1, 0]), "aborted action's access is not");
    println!("the aborted subtree vanished from perm(T); the committed one survives — resilience, formally");
}
