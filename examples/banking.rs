//! Concurrent banking under failure injection — the workload the paper's
//! introduction motivates: many clients transferring between accounts,
//! subtransactions failing and being retried locally, with two global
//! invariants checked at the end:
//!
//! 1. conservation — the total balance never changes;
//! 2. serializability — the audited execution's `perm(T)` passes the
//!    Theorem 9 check against the formal model.
//!
//! ```bash
//! cargo run --example banking
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use resilient_nt::core::{Db, DbConfig, DeadlockPolicy, ReadView, Txn, TxnError};

const ACCOUNTS: u64 = 64;
const INITIAL: i64 = 1_000;
const CLIENTS: usize = 8;
const TRANSFERS_PER_CLIENT: u32 = 250;

fn main() {
    let db: Db<u64, i64> =
        Db::with_config(DbConfig::builder().policy(DeadlockPolicy::WaitDie).audit(true).build());
    for account in 0..ACCOUNTS {
        db.insert(account, INITIAL);
    }

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let db = db.clone();
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(client as u64);
                for _ in 0..TRANSFERS_PER_CLIENT {
                    let from = rng.gen_range(0..ACCOUNTS);
                    let to = (from + rng.gen_range(1..ACCOUNTS)) % ACCOUNTS;
                    let amount = rng.gen_range(1..50);
                    // `Db::run` owns the retry loop: wait-die victims and
                    // simulated mid-transfer crashes abort the whole
                    // subtree (undoing the committed debit!) and re-run.
                    db.run(|txn| {
                        let flaky = rng.gen_bool(0.15);
                        transfer(txn, from, to, amount, flaky)
                    })
                    .expect("transfer retried to completion");
                }
            });
        }
    });

    // Invariant 1: conservation — audited through the unified read API,
    // once per surface. The same generic auditor runs over a lock-free
    // snapshot range scan and a read-locked transactional scan; both
    // must see every account and the same total.
    let total = audit_total(&db.snapshot()).expect("snapshot scans never conflict");
    let locked_total = db.run(audit_total).expect("locked audit retried to done");
    assert_eq!(total, locked_total, "the two read surfaces disagree!");
    assert_eq!(total, ACCOUNTS as i64 * INITIAL, "money appeared or vanished!");
    println!(
        "{} transfers committed by {CLIENTS} clients; total balance conserved at {total}",
        db.stats().committed
    );

    // Invariant 2: the execution is serializable per the formal model.
    let (universe, aat) = db.audit_log().expect("audit on").reconstruct().expect("log ok");
    assert!(aat.perm().is_rw_data_serializable(&universe), "execution not serializable!");
    println!(
        "audited {} events; perm(T) passes the Theorem 9 serializability check",
        db.audit_log().unwrap().len()
    );
    let s = db.stats();
    println!(
        "stats: {} begun, {} committed, {} aborted, {} conflicts, {} wait-die deaths",
        s.begun, s.committed, s.aborted, s.conflicts, s.dies
    );
}

/// The conservation auditor, written once against [`ReadView`]: an
/// ordered walk of every account, summed. Instantiated above at both
/// read surfaces — a pinned snapshot and a live transaction.
fn audit_total<V: ReadView<u64, i64>>(view: &V) -> Result<i64, TxnError> {
    let accounts = view.range(..)?;
    assert_eq!(accounts.len(), ACCOUNTS as usize, "an account fell out of the scan");
    Ok(accounts.into_iter().map(|(_, v)| v).sum())
}

/// One transfer attempt inside a [`Db::run`] transaction: debit and
/// credit run as *separate subtransactions*; an injected fault after the
/// debit surfaces as a retryable error, so `Db::run` aborts the whole
/// subtree — undoing the already-committed debit — and re-runs, never
/// corrupting the store.
fn transfer(
    txn: &Txn<u64, i64>,
    from: u64,
    to: u64,
    amount: i64,
    flaky: bool,
) -> Result<(), TxnError> {
    let debit = txn.child()?;
    let balance = debit.read(&from)?;
    if balance < amount {
        // Business-level failure: give up cleanly, writing nothing.
        debit.abort();
        return Ok(());
    }
    debit.rmw(&from, |v| v - amount)?;
    debit.commit()?;

    if flaky {
        // Simulated crash in the middle of the transfer: reported as
        // retryable, so the engine rolls the debit back and retries.
        return Err(TxnError::Die { blocker: txn.id() });
    }

    let credit = txn.child()?;
    credit.rmw(&to, |v| v + amount)?;
    credit.commit()?;
    Ok(())
}
