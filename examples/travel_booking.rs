//! Recovery-block programming with nested transactions — the style the
//! paper generalizes from Randell's recovery blocks: try a primary
//! provider inside a subtransaction; if it fails, the failure is contained
//! and an alternative is tried, all inside one atomic trip booking.
//!
//! ```bash
//! cargo run --example travel_booking
//! ```

use resilient_nt::core::{Db, Txn, TxnError};

/// Inventory keys: `(provider, resource)` → seats/rooms left.
type Key = (&'static str, &'static str);

/// Why a booking attempt failed.
#[derive(Debug)]
enum BookErr {
    /// The provider has no inventory left (business-level failure).
    SoldOut,
    /// A transactional error (unknown provider, contention, orphaning).
    Txn(TxnError),
}

impl From<TxnError> for BookErr {
    fn from(e: TxnError) -> Self {
        BookErr::Txn(e)
    }
}

fn main() -> Result<(), BookErr> {
    let db: Db<Key, i64> = Db::new();
    // Seed inventory: the cheap airline is sold out, forcing the fallback.
    db.insert(("cheapo-air", "flight"), 0);
    db.insert(("lux-air", "flight"), 3);
    db.insert(("downtown", "hotel"), 1);
    db.insert(("airport", "hotel"), 10);
    db.insert(("hertz", "car"), 2);

    // Book a whole trip atomically: flight AND hotel AND car, each with a
    // primary and a fallback provider.
    let trip = db.begin();
    let flight = book_with_fallback(&trip, "flight", &["cheapo-air", "lux-air"])?;
    let hotel = book_with_fallback(&trip, "hotel", &["downtown", "airport"])?;
    let car = book_with_fallback(&trip, "car", &["hertz"])?;
    println!("itinerary: {flight} flight, {hotel} hotel, {car} car");
    trip.commit()?;

    assert_eq!(db.committed_value(&("cheapo-air", "flight")), Some(0), "sold out, untouched");
    assert_eq!(db.committed_value(&("lux-air", "flight")), Some(2), "fallback booked");
    assert_eq!(db.committed_value(&("downtown", "hotel")), Some(0));
    assert_eq!(db.committed_value(&("hertz", "car")), Some(1));
    println!("trip committed atomically");

    // A second trip cannot get the last downtown room — and when its car
    // leg fails entirely, the *whole* trip aborts, releasing the flight it
    // had reserved.
    let trip2 = db.begin();
    let f2 = book_with_fallback(&trip2, "flight", &["cheapo-air", "lux-air"])?;
    println!("trip 2 reserved {f2} flight");
    match book_with_fallback(&trip2, "car", &["no-such-rental"]) {
        Err(BookErr::SoldOut) | Err(BookErr::Txn(TxnError::UnknownKey)) => {
            println!("trip 2: no car available anywhere — aborting the whole trip");
            trip2.abort();
        }
        other => panic!("expected total failure, got {other:?}"),
    }
    assert_eq!(
        db.committed_value(&("lux-air", "flight")),
        Some(2),
        "trip 2's reservation rolled back with the trip"
    );
    println!("inventory restored after trip 2's abort — resilience in action");
    Ok(())
}

/// The recovery block: each provider attempt is its own subtransaction.
/// A failed attempt aborts *only itself*; the parent inspects the failure
/// and tries the next alternative — exactly the programming style the
/// paper's introduction describes.
fn book_with_fallback(
    trip: &Txn<Key, i64>,
    resource: &'static str,
    providers: &[&'static str],
) -> Result<&'static str, BookErr> {
    let mut last_err = BookErr::SoldOut;
    for &provider in providers {
        let attempt = trip.child().map_err(BookErr::Txn)?;
        match try_book(&attempt, (provider, resource)) {
            Ok(()) => {
                attempt.commit().map_err(BookErr::Txn)?;
                return Ok(provider);
            }
            Err(e) => {
                attempt.abort(); // contained failure; trip is still healthy
                last_err = e;
            }
        }
    }
    Err(last_err)
}

fn try_book(attempt: &Txn<Key, i64>, key: Key) -> Result<(), BookErr> {
    let available = attempt.read(&key)?;
    if available == 0 {
        return Err(BookErr::SoldOut);
    }
    attempt.rmw(&key, |v| v - 1)?;
    Ok(())
}
