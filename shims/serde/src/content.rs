//! The self-describing value tree both halves of the shim exchange.

/// A serialized value. Maps carry `String` keys (the JSON restriction);
/// non-string keys are stringified on the way in and parsed on the way out,
/// matching what `serde_json` does for integer-keyed maps.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// `null` / `None` / unit.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer that does not fit in `i64`.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence (also tuples and tuple variants).
    Seq(Vec<Content>),
    /// A map (also structs and struct variants), insertion-ordered.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// A short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}
