//! Deserialization half of the shim.

use crate::Content;
use std::fmt::Display;
use std::marker::PhantomData;

/// Error constraint for deserializers (mirrors `serde::de::Error`).
pub trait Error: Sized + std::error::Error {
    /// Build an error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data format that can hand out a [`Content`] tree.
///
/// The lifetime parameter exists for signature compatibility with serde's
/// `Deserializer<'de>`; the shim always produces owned content.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Surrender the content tree.
    fn take_content(self) -> Result<Content, Self::Error>;
}

/// A value constructible from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserialize a value.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A value deserializable without borrowing from the input (all shim
/// deserialization is owned, so this is every `Deserialize` type).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Deserializer over an in-memory content tree, generic in its error type
/// so derive-generated code can thread the outer `D::Error` through
/// field-by-field deserialization.
pub struct ContentDeserializer<E> {
    content: Content,
    marker: PhantomData<fn() -> E>,
}

impl<E> ContentDeserializer<E> {
    /// Wrap a content tree.
    pub fn new(content: Content) -> Self {
        ContentDeserializer { content, marker: PhantomData }
    }
}

impl<'de, E: Error> Deserializer<'de> for ContentDeserializer<E> {
    type Error = E;

    fn take_content(self) -> Result<Content, E> {
        Ok(self.content)
    }
}

/// Deserialize a `T` out of a content tree, with the caller's error type.
pub fn from_content<'de, T: Deserialize<'de>, E: Error>(content: Content) -> Result<T, E> {
    T::deserialize(ContentDeserializer::<E>::new(content))
}

/// Take a required field out of a struct's content map (derive helper).
pub fn take_field<E: Error>(
    map: &mut Vec<(String, Content)>,
    name: &'static str,
) -> Result<Content, E> {
    match map.iter().position(|(k, _)| k == name) {
        Some(i) => Ok(map.remove(i).1),
        None => Err(E::custom(format_args!("missing field `{name}`"))),
    }
}

/// Expect map-shaped content (derive helper).
pub fn expect_map<E: Error>(
    content: Content,
    ty: &'static str,
) -> Result<Vec<(String, Content)>, E> {
    match content {
        Content::Map(m) => Ok(m),
        other => Err(E::custom(format_args!("expected map for {ty}, got {}", other.kind()))),
    }
}

/// Expect sequence-shaped content of an exact length (derive helper).
pub fn expect_seq<E: Error>(
    content: Content,
    len: usize,
    ty: &'static str,
) -> Result<Vec<Content>, E> {
    match content {
        Content::Seq(s) if s.len() == len => Ok(s),
        Content::Seq(s) => {
            Err(E::custom(format_args!("expected {len} elements for {ty}, got {}", s.len())))
        }
        other => Err(E::custom(format_args!("expected sequence for {ty}, got {}", other.kind()))),
    }
}

/// Decompose enum content into `(variant-name, Option<payload>)`:
/// a bare string is a unit variant, a single-entry map is a data variant
/// (derive helper; serde's externally-tagged representation).
pub fn enum_parts<E: Error>(
    content: Content,
    ty: &'static str,
) -> Result<(String, Option<Content>), E> {
    match content {
        Content::Str(name) => Ok((name, None)),
        Content::Map(mut m) if m.len() == 1 => {
            let (name, payload) = m.remove(0);
            Ok((name, Some(payload)))
        }
        other => Err(E::custom(format_args!(
            "expected externally-tagged enum for {ty}, got {}",
            other.kind()
        ))),
    }
}
