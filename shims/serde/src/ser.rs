//! Serialization half of the shim.

use crate::Content;
use std::fmt::{self, Display};

/// Error constraint for serializers (mirrors `serde::ser::Error`).
pub trait Error: Sized + std::error::Error {
    /// Build an error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data format that can consume a [`Content`] tree.
pub trait Serializer: Sized {
    /// Output on success.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Consume a fully-built content tree.
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;

    /// Serialize the `Display` form of a value as a string (the hook the
    /// workspace's hand-written impls use).
    fn collect_str<T: Display + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Str(value.to_string()))
    }
}

/// A value serializable into any [`Serializer`].
pub trait Serialize {
    /// Serialize `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// The error of the in-memory content serializer. Building a content tree
/// cannot fail for any type in this workspace, but the type must be
/// inhabited because `Error::custom` constructs one.
#[derive(Debug)]
pub struct ContentError(pub String);

impl Display for ContentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ContentError {}

impl Error for ContentError {
    fn custom<T: Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

/// Serializer whose output *is* the content tree.
pub struct ContentSerializer;

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = ContentError;

    fn serialize_content(self, content: Content) -> Result<Content, ContentError> {
        Ok(content)
    }
}

/// Build the content tree of any serializable value.
pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Result<Content, ContentError> {
    value.serialize(ContentSerializer)
}

/// Build a map *key* from a serializable value: its content must be a
/// string or an integer (stringified), the JSON map-key rule.
pub fn to_key<T: Serialize + ?Sized>(value: &T) -> Result<String, ContentError> {
    match to_content(value)? {
        Content::Str(s) => Ok(s),
        Content::I64(n) => Ok(n.to_string()),
        Content::U64(n) => Ok(n.to_string()),
        Content::Bool(b) => Ok(b.to_string()),
        other => Err(ContentError(format!("map key must be string-like, got {}", other.kind()))),
    }
}
