//! `Serialize`/`Deserialize` impls for the std types the workspace's
//! derived types contain.

use crate::de::{self, Deserialize, Deserializer};
use crate::ser::{self, Serialize, Serializer};
use crate::Content;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::{BuildHasher, Hash};
use std::sync::Arc;

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                #[allow(unused_comparisons)]
                if (*self as i128) >= i64::MIN as i128 && (*self as i128) <= i64::MAX as i128 {
                    s.serialize_content(Content::I64(*self as i64))
                } else {
                    s.serialize_content(Content::U64(*self as u64))
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                use de::Error;
                match d.take_content()? {
                    Content::I64(n) => <$t>::try_from(n)
                        .map_err(|_| D::Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Content::U64(n) => <$t>::try_from(n)
                        .map_err(|_| D::Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    // Map keys round-trip through strings.
                    Content::Str(text) => text.parse::<$t>()
                        .map_err(|_| D::Error::custom(concat!("invalid stringified ", stringify!($t)))),
                    other => Err(D::Error::custom(format_args!(
                        concat!("expected ", stringify!($t), ", got {}"), other.kind()))),
                }
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use de::Error;
        match d.take_content()? {
            Content::Bool(b) => Ok(b),
            other => Err(D::Error::custom(format_args!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::F64(*self))
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use de::Error;
        match d.take_content()? {
            Content::F64(x) => Ok(x),
            Content::I64(n) => Ok(n as f64),
            Content::U64(n) => Ok(n as f64),
            other => Err(D::Error::custom(format_args!("expected float, got {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::F64(*self as f64))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Str(self.clone()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Str(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use de::Error;
        match d.take_content()? {
            Content::Str(text) => Ok(text),
            other => Err(D::Error::custom(format_args!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Str(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use de::Error;
        let text = String::deserialize(d)?;
        let mut chars = text.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(D::Error::custom("expected a single character")),
        }
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Null)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.take_content().map(|_| ())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Arc<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        use ser::Error;
        match self {
            None => s.serialize_content(Content::Null),
            Some(v) => {
                let c = ser::to_content(v).map_err(S::Error::custom)?;
                s.serialize_content(c)
            }
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Null => Ok(None),
            other => de::from_content::<T, D::Error>(other).map(Some),
        }
    }
}

fn seq_content<S: Serializer, T: Serialize>(
    items: impl Iterator<Item = T>,
) -> Result<Content, S::Error> {
    use ser::Error;
    let mut out = Vec::new();
    for item in items {
        out.push(ser::to_content(&item).map_err(S::Error::custom)?);
    }
    Ok(Content::Seq(out))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let c = seq_content::<S, _>(self.iter())?;
        s.serialize_content(c)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let c = seq_content::<S, _>(self.iter())?;
        s.serialize_content(c)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use de::Error;
        match d.take_content()? {
            Content::Seq(items) => items.into_iter().map(de::from_content::<T, D::Error>).collect(),
            other => Err(D::Error::custom(format_args!("expected sequence, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let c = seq_content::<S, _>(self.iter())?;
        s.serialize_content(c)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for VecDeque<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(d).map(VecDeque::from)
    }
}

macro_rules! set_impls {
    ($($name:ident<T $(: $bound1:ident $(+ $bound2:ident)*)?>),*) => {$(
        impl<T: Serialize $($(+ $bound1 + $bound2)*)?> Serialize for $name<T>
        where T: $($bound1 $(+ $bound2)*)? {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let c = seq_content::<S, _>(self.iter())?;
                s.serialize_content(c)
            }
        }
        impl<'de, T: Deserialize<'de> + $($bound1 $(+ $bound2)*)?> Deserialize<'de> for $name<T> {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                Vec::<T>::deserialize(d).map(|v| v.into_iter().collect())
            }
        }
    )*};
}

set_impls!(BTreeSet<T: Ord>, HashSet<T: Eq + Hash>);

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        use ser::Error;
        let mut out = Vec::with_capacity(self.len());
        for (k, v) in self {
            let key = ser::to_key(k).map_err(S::Error::custom)?;
            let value = ser::to_content(v).map_err(S::Error::custom)?;
            out.push((key, value));
        }
        s.serialize_content(Content::Map(out))
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use de::Error;
        match d.take_content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    let key = de::from_content::<K, D::Error>(Content::Str(k))?;
                    let value = de::from_content::<V, D::Error>(v)?;
                    Ok((key, value))
                })
                .collect(),
            other => Err(D::Error::custom(format_args!("expected map, got {}", other.kind()))),
        }
    }
}

impl<K: Serialize, V: Serialize, H: BuildHasher> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        use ser::Error;
        let mut out = Vec::with_capacity(self.len());
        for (k, v) in self {
            let key = ser::to_key(k).map_err(S::Error::custom)?;
            let value = ser::to_content(v).map_err(S::Error::custom)?;
            out.push((key, value));
        }
        // Deterministic order regardless of hasher state.
        out.sort_by(|a, b| a.0.cmp(&b.0));
        s.serialize_content(Content::Map(out))
    }
}

impl<'de, K: Deserialize<'de> + Eq + Hash, V: Deserialize<'de>, H: BuildHasher + Default>
    Deserialize<'de> for HashMap<K, V, H>
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use de::Error;
        match d.take_content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    let key = de::from_content::<K, D::Error>(Content::Str(k))?;
                    let value = de::from_content::<V, D::Error>(v)?;
                    Ok((key, value))
                })
                .collect(),
            other => Err(D::Error::custom(format_args!("expected map, got {}", other.kind()))),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+) => $len:expr;)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                use ser::Error;
                let items = vec![
                    $(ser::to_content(&self.$n).map_err(S::Error::custom)?,)+
                ];
                s.serialize_content(Content::Seq(items))
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let mut items = de::expect_seq::<D::Error>(d.take_content()?, $len, "tuple")?
                    .into_iter();
                Ok(($(
                    {
                        let _ = $n; // positional marker
                        de::from_content::<$t, D::Error>(items.next().expect("length checked"))?
                    },
                )+))
            }
        }
    )*};
}

tuple_impls! {
    (0 T0) => 1;
    (0 T0, 1 T1) => 2;
    (0 T0, 1 T1, 2 T2) => 3;
    (0 T0, 1 T1, 2 T2, 3 T3) => 4;
    (0 T0, 1 T1, 2 T2, 3 T3, 4 T4) => 5;
    (0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5) => 6;
}

impl Serialize for Content {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(self.clone())
    }
}

impl<'de> Deserialize<'de> for Content {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.take_content()
    }
}
