//! Offline stand-in for `serde`.
//!
//! The real serde visitor architecture is replaced by a small self-describing
//! content tree ([`Content`]): serializers receive a fully-built `Content`
//! and deserializers hand one out. This is dramatically simpler than serde's
//! zero-copy design but API-compatible with every use in this workspace:
//!
//! * `#[derive(Serialize, Deserialize)]` on plain structs and enums
//!   (externally tagged, like serde's default representation);
//! * hand-written impls of the shape
//!   `fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error>`
//!   using `collect_str`, and
//!   `fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error>`
//!   using `String::deserialize(d)` and `serde::de::Error::custom`;
//! * generic bounds `T: Serialize + serde::de::DeserializeOwned`.

pub use serde_derive::{Deserialize, Serialize};

mod content;
mod impls;

pub mod de;
pub mod ser;

pub use content::Content;
pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
