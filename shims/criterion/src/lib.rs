//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the API this workspace's benches use, backed by
//! a plain timing loop: warm-up, then `sample_size` timed batches, reporting
//! median time per iteration to stdout. No plotting, no statistics beyond
//! the median, no baseline storage — enough to keep `cargo bench` useful and
//! the bench sources compiling unmodified.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-exported like criterion's).
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Throughput annotation; recorded and echoed, not graphed.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Build from a function name and a parameter display.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        BenchmarkId { function: function.to_string(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Passed to the closure being benchmarked.
pub struct Bencher {
    samples: usize,
    iters_per_sample: u64,
    median_ns: f64,
}

impl Bencher {
    /// Time the routine and record the median sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch-size calibration: aim for ~1ms per sample.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).max(1);
        self.iters_per_sample = per_sample.min(100_000) as u64;

        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / self.iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median_ns = samples[samples.len() / 2];
    }
}

fn report(name: &str, throughput: Option<Throughput>, bencher: &Bencher) {
    let ns = bencher.median_ns;
    let time = if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            format!("  ({:.2} Melem/s)", n as f64 * 1_000.0 / ns)
        }
        Some(Throughput::Bytes(n)) if ns > 0.0 => {
            format!("  ({:.2} MiB/s)", n as f64 * 1e9 / ns / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("bench: {name:<60} {time:>12}/iter{rate}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<N: Display, R: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut routine: R,
    ) -> &mut Self {
        let mut bencher =
            Bencher { samples: self.sample_size, iters_per_sample: 1, median_ns: 0.0 };
        routine(&mut bencher);
        report(&format!("{}/{}", self.name, id), self.throughput, &bencher);
        self
    }

    /// Run one benchmark parameterized by an input.
    pub fn bench_with_input<N: Display, I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: N,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let mut bencher =
            Bencher { samples: self.sample_size, iters_per_sample: 1, median_ns: 0.0 };
        routine(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), self.throughput, &bencher);
        self
    }

    /// End the group (no-op beyond matching criterion's API).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the default number of timed samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Open a benchmark group.
    pub fn benchmark_group<N: Display>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { name: name.to_string(), _criterion: self, throughput: None, sample_size }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<N: Display, R: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut routine: R,
    ) -> &mut Self {
        let mut bencher =
            Bencher { samples: self.sample_size, iters_per_sample: 1, median_ns: 0.0 };
        routine(&mut bencher);
        report(&name.to_string(), None, &bencher);
        self
    }
}

/// Declare a benchmark group (criterion's configured form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
