//! Offline stand-in for `serde_derive`.
//!
//! The real crate parses with `syn` and emits with `quote`; neither is
//! available offline, so this derive hand-parses the raw [`TokenStream`]
//! (enough for non-generic structs and enums, which is everything this
//! workspace derives on) and emits the impl as a source string targeting the
//! sibling `serde` shim's content-tree API.
//!
//! Representation matches serde's defaults:
//! * named struct -> map of field name to value;
//! * newtype struct -> the inner value;
//! * tuple struct -> sequence;
//! * enum -> externally tagged (`"Variant"` / `{"Variant": payload}`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a derived type.
enum Body {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Skip any `#[...]` attributes (including doc comments) and a `pub` /
/// `pub(...)` visibility prefix starting at `*i`.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match (toks.get(*i), toks.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            (Some(TokenTree::Ident(id)), next) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = next {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => break,
        }
    }
}

fn ident_at(toks: &[TokenTree], i: &mut usize, what: &str) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive shim: expected {what}, found {other:?}"),
    }
}

/// Split a group's token stream on top-level commas. Commas inside nested
/// groups are invisible (groups are atomic trees), but commas inside
/// angle-bracketed generic arguments are not, so `<`/`>` depth is tracked.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle = 0usize;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle = angle.saturating_sub(1),
                ',' if angle == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().unwrap().push(tok);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Field names of a `{ ... }` body (struct or struct variant).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            ident_at(&chunk, &mut i, "field name")
        })
        .collect()
}

fn parse_input(input: TokenStream) -> (String, Body) {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = ident_at(&toks, &mut i, "`struct` or `enum`");
    let name = ident_at(&toks, &mut i, "type name");
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic types are not supported (`{name}`)");
        }
    }
    let body = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(split_top_level(g.stream()).len())
            }
            _ => Body::UnitStruct,
        },
        "enum" => {
            let group = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("serde_derive shim: expected enum body, found {other:?}"),
            };
            let variants = split_top_level(group.stream())
                .into_iter()
                .map(|chunk| {
                    let mut j = 0;
                    skip_attrs_and_vis(&chunk, &mut j);
                    let vname = ident_at(&chunk, &mut j, "variant name");
                    let kind = match chunk.get(j) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            VariantKind::Tuple(split_top_level(g.stream()).len())
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            VariantKind::Struct(parse_named_fields(g.stream()))
                        }
                        _ => VariantKind::Unit,
                    };
                    Variant { name: vname, kind }
                })
                .collect();
            Body::Enum(variants)
        }
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    };
    (name, body)
}

/// `to_content(expr)` with the error threaded into the serializer's error.
fn ser_field(expr: &str) -> String {
    format!(
        "serde::ser::to_content({expr}).map_err(|e| \
         <S::Error as serde::ser::Error>::custom(e))?"
    )
}

fn derive_serialize_impl(name: &str, body: &Body) -> String {
    let content_expr = match body {
        Body::UnitStruct => "serde::Content::Null".to_string(),
        Body::TupleStruct(1) => ser_field("&self.0"),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n).map(|k| ser_field(&format!("&self.{k}"))).collect();
            format!("serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Body::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), {})", ser_field(&format!("&self.{f}"))))
                .collect();
            format!("serde::Content::Map(vec![{}])", entries.join(", "))
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => serde::Content::Str(\"{vn}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => serde::Content::Map(vec![(\"{vn}\".to_string(), {})]),",
                            ser_field("f0")
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let items: Vec<String> =
                                (0..*n).map(|k| ser_field(&format!("f{k}"))).collect();
                            format!(
                                "{name}::{vn}({}) => serde::Content::Map(vec![(\"{vn}\".to_string(), \
                                 serde::Content::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("(\"{f}\".to_string(), {})", ser_field(f))
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::Content::Map(vec![(\"{vn}\".to_string(), \
                                 serde::Content::Map(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl serde::ser::Serialize for {name} {{\n\
             fn serialize<S: serde::ser::Serializer>(&self, serializer: S) \
                 -> Result<S::Ok, S::Error> {{\n\
                 let content = {content_expr};\n\
                 serializer.serialize_content(content)\n\
             }}\n\
         }}"
    )
}

/// `from_content` with inferred target type and the deserializer's error.
fn de_field(expr: &str) -> String {
    format!("serde::de::from_content::<_, D::Error>({expr})?")
}

fn derive_deserialize_impl(name: &str, body: &Body) -> String {
    let body_expr = match body {
        Body::UnitStruct => {
            format!("{{ deserializer.take_content()?; Ok({name}) }}")
        }
        Body::TupleStruct(1) => format!("Ok({name}({}))", de_field("deserializer.take_content()?")),
        Body::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|_| de_field("items.next().expect(\"length checked\")")).collect();
            format!(
                "{{ let mut items = serde::de::expect_seq::<D::Error>(\
                 deserializer.take_content()?, {n}, \"{name}\")?.into_iter();\n\
                 Ok({name}({})) }}",
                items.join(", ")
            )
        }
        Body::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: {}",
                        de_field(&format!("serde::de::take_field::<D::Error>(&mut map, \"{f}\")?"))
                    )
                })
                .collect();
            format!(
                "{{ let mut map = serde::de::expect_map::<D::Error>(\
                 deserializer.take_content()?, \"{name}\")?;\n\
                 Ok({name} {{ {} }}) }}",
                inits.join(", ")
            )
        }
        Body::Enum(variants) => {
            let need_payload = "payload.ok_or_else(|| <D::Error as serde::de::Error>::custom(\
                 \"missing data for enum variant\"))?"
                .to_string();
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!("\"{vn}\" => Ok({name}::{vn}),"),
                        VariantKind::Tuple(1) => {
                            format!("\"{vn}\" => Ok({name}::{vn}({})),", de_field(&need_payload))
                        }
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|_| de_field("items.next().expect(\"length checked\")"))
                                .collect();
                            format!(
                                "\"{vn}\" => {{ let mut items = serde::de::expect_seq::<D::Error>(\
                                 {need_payload}, {n}, \"{name}::{vn}\")?.into_iter();\n\
                                 Ok({name}::{vn}({})) }}",
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: {}",
                                        de_field(&format!(
                                            "serde::de::take_field::<D::Error>(&mut map, \"{f}\")?"
                                        ))
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => {{ let mut map = serde::de::expect_map::<D::Error>(\
                                 {need_payload}, \"{name}::{vn}\")?;\n\
                                 Ok({name}::{vn} {{ {} }}) }}",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "{{ let (variant, payload) = serde::de::enum_parts::<D::Error>(\
                 deserializer.take_content()?, \"{name}\")?;\n\
                 match variant.as_str() {{\n\
                 {}\n\
                 other => Err(<D::Error as serde::de::Error>::custom(\
                 format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                 }} }}",
                arms.join("\n")
            )
        }
    };
    format!(
        "impl<'de> serde::de::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: serde::de::Deserializer<'de>>(deserializer: D) \
                 -> Result<Self, D::Error> {{\n\
                 {body_expr}\n\
             }}\n\
         }}"
    )
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_input(input);
    derive_serialize_impl(&name, &body)
        .parse()
        .expect("serde_derive shim: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_input(input);
    derive_deserialize_impl(&name, &body)
        .parse()
        .expect("serde_derive shim: generated Deserialize impl failed to parse")
}
