//! Offline stand-in for `serde_json`: emits and parses JSON through the
//! serde shim's [`Content`] tree.

use serde::de::DeserializeOwned;
use serde::{Content, Serialize};
use std::fmt::{self, Display, Write as _};

/// Error for both serialization and deserialization.
#[derive(Debug)]
pub struct Error(String);

impl Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------- emitting

fn escape_into(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn emit(out: &mut String, content: &Content, indent: Option<usize>) {
    let (open_sep, close_sep, item_sep, kv_sep): (String, String, &str, &str) = match indent {
        None => (String::new(), String::new(), ",", ":"),
        Some(level) => (
            format!("\n{}", "  ".repeat(level + 1)),
            format!("\n{}", "  ".repeat(level)),
            ",",
            ": ",
        ),
    };
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Content::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Content::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Content::F64(x) => {
            if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                let _ = write!(out, "{x:.1}");
            } else {
                let _ = write!(out, "{x}");
            }
        }
        Content::Str(s) => escape_into(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(item_sep);
                }
                out.push_str(&open_sep);
                emit(out, item, indent.map(|l| l + 1));
            }
            out.push_str(&close_sep);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(item_sep);
                }
                out.push_str(&open_sep);
                escape_into(out, k);
                out.push_str(kv_sep);
                emit(out, v, indent.map(|l| l + 1));
            }
            out.push_str(&close_sep);
            out.push('}');
        }
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let content = serde::ser::to_content(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    emit(&mut out, &content, None);
    Ok(out)
}

/// Serialize a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let content = serde::ser::to_content(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    emit(&mut out, &content, Some(0));
    Ok(out)
}

// ----------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>().map(Content::F64).map_err(|_| self.err("invalid float"))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Content::I64(n))
        } else {
            text.parse::<u64>().map(Content::U64).map_err(|_| self.err("invalid integer"))
        }
    }

    fn value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') if self.literal("null") => Ok(Content::Null),
            Some(b't') if self.literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(other) => Err(self.err(&format!("unexpected byte `{}`", other as char))),
        }
    }
}

/// Parse JSON text into a content tree.
pub fn parse_content(text: &str) -> Result<Content> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    let content = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(content)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T> {
    serde::de::from_content(parse_content(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
    }

    #[test]
    fn collections_roundtrip() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(3i64, vec![1u64, 2]);
        m.insert(-1, vec![]);
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"-1\":[],\"3\":[1,2]}");
        let back: BTreeMap<i64, Vec<u64>> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn options_and_tuples_roundtrip() {
        let v: Vec<Option<(i32, String)>> = vec![None, Some((4, "x".into()))];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[null,[4,\"x\"]]");
        let back: Vec<Option<(i32, String)>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_emits_indentation() {
        let v = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>("\"\\u0041\\u00e9\"").unwrap(), "Aé");
    }
}
