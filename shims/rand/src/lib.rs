//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64`,
//! `rngs::StdRng` and `seq::SliceRandom::{shuffle, choose}` over a
//! deterministic xoshiro256++ core seeded through SplitMix64. Sequences
//! differ from upstream rand's, but every consumer in this workspace only
//! relies on seed-determinism (same seed ⇒ same sequence), which holds.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods (blanket-implemented for any core).
pub trait Rng: RngCore {
    /// Sample a value of `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;

    /// Construct from OS entropy. The shim has no entropy source; this is
    /// deterministic and only present for API compatibility.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9e3779b97f4a7c15)
    }
}

/// SplitMix64 step, used to expand seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64 expansion of `seed`.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot produce
        // four zeros from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 1;
        }
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// The shim's standard generator (xoshiro256++, not upstream's ChaCha12;
    /// deterministic per seed, which is all the workspace relies on).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::new(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Sample one value (panics on an empty range, matching rand).
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        // Silence the unused-alias lint while keeping the macro shape close
        // to rand's (signed types widen through $u for span arithmetic).
        const _: fn() = || { let _x: $u; };
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Distributions.
pub mod distributions {
    use super::RngCore;

    /// A distribution over `T`.
    pub trait Distribution<T> {
        /// Sample one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution (what `rng.gen()` samples from).
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<i64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// A deterministic convenience generator (upstream's is thread-local and
/// OS-seeded; the shim has no entropy, so this is fixed-seeded).
pub fn thread_rng() -> rngs::StdRng {
    SeedableRng::seed_from_u64(0x5eed_cafe_d00d)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..6);
            assert!((-5..6).contains(&w));
            let x = rng.gen_range(0usize..=4);
            assert!(x <= 4);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits: {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
        assert!(v.choose(&mut rng).is_some());
    }
}
