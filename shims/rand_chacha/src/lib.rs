//! Offline stand-in for `rand_chacha`: the `ChaCha{8,12,20}Rng` type names,
//! backed by the shim's deterministic xoshiro core (domain-separated per
//! variant). No workspace code samples from these today — the package
//! exists so manifests declaring the dependency resolve offline — but the
//! types are fully usable generators.

use rand::{RngCore, SeedableRng, Xoshiro256};

macro_rules! chacha {
    ($(#[$doc:meta] $name:ident = $salt:expr),* $(,)?) => {$(
        #[$doc]
        #[derive(Clone, Debug)]
        pub struct $name(Xoshiro256);

        impl SeedableRng for $name {
            fn seed_from_u64(seed: u64) -> Self {
                $name(Xoshiro256::new(seed ^ $salt))
            }
        }

        impl RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }
    )*};
}

chacha! {
    /// Stand-in for the 8-round ChaCha generator.
    ChaCha8Rng = 0x8_8_8_8,
    /// Stand-in for the 12-round ChaCha generator.
    ChaCha12Rng = 0x12_12_12,
    /// Stand-in for the 20-round ChaCha generator.
    ChaCha20Rng = 0x20_20_20,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn variants_are_deterministic_and_distinct() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha20Rng::seed_from_u64(1);
        let (x, y, z) = (a.gen::<u64>(), b.gen::<u64>(), c.gen::<u64>());
        assert_eq!(x, y);
        assert_ne!(x, z, "variants are domain-separated");
    }
}
