//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The container this workspace builds in has no access to crates.io, so
//! the handful of external dependencies are provided as local shims that
//! reproduce exactly the API subset the workspace uses: `Mutex`,
//! `RwLock`, `Condvar::wait_for` and their guards. Semantics follow
//! parking_lot: `lock()`/`read()`/`write()` do not return poison
//! `Result`s — a poisoned std lock is transparently recovered, which
//! matches parking_lot's "no poisoning" behavior.

use std::fmt;
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion primitive (no poisoning, like `parking_lot::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait_for` can temporarily take the std guard.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present")
    }
}

/// Result of a timed condition-variable wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True iff the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Block on the condvar for at most `timeout`, releasing the guard's
    /// mutex while asleep.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult { timed_out: result.timed_out() }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock (no poisoning, like `parking_lot::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut guard = m.lock();
        let mut spins = 0;
        while !*guard && spins < 1000 {
            cv.wait_for(&mut guard, Duration::from_millis(5));
            spins += 1;
        }
        assert!(*guard);
        drop(guard);
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(1));
        assert!(r.timed_out());
    }
}
