//! Offline stand-in for `proptest`.
//!
//! Generate-only property testing: each case draws values from a seeded
//! [`TestRng`], so every failure is reproducible from a single `u64` seed.
//! There is no integrated shrinker; instead the failing seed is appended to
//! the test's `.proptest-regressions` file (same convention as upstream) and
//! replayed before fresh cases on the next run. `PROPTEST_SEED` in the
//! environment overrides the deterministic base seed.

use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

// ------------------------------------------------------------------- rng

/// Seeded generator behind every strategy draw (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Construct from a seed; equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Derive the seed of case `index` from a run's base seed.
pub fn case_seed(base: u64, index: u64) -> u64 {
    let mut rng = TestRng::new(base ^ index.wrapping_mul(0xa076_1d64_78bd_642f));
    rng.next_u64()
}

// -------------------------------------------------------------- strategy

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                // span == 0 means the full u64 domain.
                let off = if span == 0 { rng.next_u64() } else { rng.below(span) };
                (lo + off as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident $n:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// A weighted `(weight, draw)` arm of a [`OneOf`].
pub type WeightedArm<V> = (u32, Box<dyn Fn(&mut TestRng) -> V>);

/// Weighted choice between boxed arms (output of [`prop_oneof!`]).
pub struct OneOf<V> {
    arms: Vec<WeightedArm<V>>,
    total: u64,
}

impl<V> OneOf<V> {
    /// Build from `(weight, draw)` arms.
    pub fn new(arms: Vec<WeightedArm<V>>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! requires positive total weight");
        OneOf { arms, total }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, draw) in &self.arms {
            if pick < *w as u64 {
                return draw(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum checked in OneOf::new")
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A number-of-elements specification: an exact count or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for `Vec<S::Value>`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `prop::collection::vec`: a vector of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span == 0 { 0 } else { rng.below(span) as usize };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>` with a `Some` probability.
    pub struct OptionStrategy<S> {
        inner: S,
        some_prob: f64,
    }

    /// `prop::option::of`: `Some` with probability one half.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        weighted(0.5, inner)
    }

    /// `prop::option::weighted`: `Some` with the given probability.
    pub fn weighted<S: Strategy>(some_prob: f64, inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner, some_prob }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_f64() < self.some_prob {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

// ------------------------------------------------------------ test runner

/// Runner configuration (`ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of novel cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` novel cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property: carries the formatted assertion message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

fn regressions_path(source_file: &str) -> Option<std::path::PathBuf> {
    // `file!()` is workspace-relative; at test runtime the reliable anchor is
    // the crate dir, so rebuild `<crate>/tests/<stem>.proptest-regressions`.
    let stem = std::path::Path::new(source_file).file_stem()?.to_str()?;
    if !source_file.contains("tests/") && !source_file.contains("tests\\") {
        return None;
    }
    let manifest = std::env::var("CARGO_MANIFEST_DIR").ok()?;
    Some(std::path::Path::new(&manifest).join("tests").join(format!("{stem}.proptest-regressions")))
}

/// Parse regression seeds: `cc <hex>` lines. Exactly 16 hex digits is a
/// shim-native `u64` seed; longer hashes (from upstream proptest) are folded
/// to a `u64` so checked-in files still contribute deterministic extra cases.
fn regression_seeds(path: &std::path::Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("cc ") else { continue };
        let hex: String = rest.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
        if hex.is_empty() {
            continue;
        }
        let mut folded = 0u64;
        for chunk in hex.as_bytes().chunks(16) {
            let part = std::str::from_utf8(chunk)
                .ok()
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .unwrap_or(0);
            folded ^= part;
        }
        seeds.push(folded);
    }
    seeds
}

fn persist_seed(path: &std::path::Path, seed: u64, detail: &str) {
    use std::io::Write;
    let header = !path.exists();
    let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) else {
        return;
    };
    if header {
        let _ = writeln!(
            file,
            "# Seeds for failure cases proptest has generated in the past. It is\n\
             # automatically read and these particular cases re-run before any\n\
             # novel cases are generated.\n\
             #\n\
             # It is recommended to check this file in to source control so that\n\
             # everyone who runs the test benefits from these saved cases."
        );
    }
    let detail = detail.replace('\n', " ");
    let _ = writeln!(file, "cc {seed:016x} # {detail}");
}

fn base_seed(test_name: &str) -> u64 {
    if let Ok(text) = std::env::var("PROPTEST_SEED") {
        let text = text.trim();
        let parsed = match text.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => text.parse::<u64>().ok(),
        };
        if let Some(seed) = parsed {
            return seed;
        }
    }
    // Deterministic per-test base: hash of the test name.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drive one property: replay persisted regressions, then run novel cases.
/// Panics (failing the surrounding `#[test]`) on the first failing case,
/// after persisting its seed.
pub fn run_cases(
    config: &ProptestConfig,
    test_name: &str,
    source_file: &str,
    run: &dyn Fn(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let regressions = regressions_path(source_file);

    let run_one = |seed: u64| -> Option<String> {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = TestRng::new(seed);
            run(&mut rng)
        }));
        match outcome {
            Ok(Ok(())) => None,
            Ok(Err(TestCaseError(msg))) => Some(msg),
            Err(payload) => Some(
                payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "panicked".to_string()),
            ),
        }
    };

    let mut failure: Option<(u64, String, bool)> = None;
    if let Some(path) = &regressions {
        for seed in regression_seeds(path) {
            if let Some(message) = run_one(seed) {
                failure = Some((seed, message, true));
                break;
            }
        }
    }
    if failure.is_none() {
        let base = base_seed(test_name);
        for index in 0..config.cases {
            let seed = case_seed(base, index as u64);
            if let Some(message) = run_one(seed) {
                failure = Some((seed, message, false));
                break;
            }
        }
    }

    if let Some((seed, message, replay)) = failure {
        if !replay {
            if let Some(path) = &regressions {
                persist_seed(path, seed, &format!("{test_name}: {message}"));
            }
        }
        panic!(
            "proptest case failed: {test_name} (seed {seed:#018x}{}): {message}\n\
             reproduce with PROPTEST_SEED={seed:#018x} and ProptestConfig::with_cases(1)",
            if replay { ", replayed regression" } else { "" }
        );
    }
}

// ----------------------------------------------------------------- macros

/// Define property tests (upstream-compatible subset: optional
/// `#![proptest_config(...)]` header, `pat in strategy` parameters).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::run_cases(&config, stringify!($name), file!(), &|__rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
    )*};
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(::std::vec![
            $(($weight as u32, {
                let __s = $strat;
                let __f: ::std::boxed::Box<dyn Fn(&mut $crate::TestRng) -> _> =
                    ::std::boxed::Box::new(move |__rng: &mut $crate::TestRng| {
                        $crate::Strategy::generate(&__s, __rng)
                    });
                __f
            })),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `left == right` ({})\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)*), __l, __r
        );
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `left != right`, both `{:?}`",
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `left != right` ({}), both `{:?}`",
            format!($($fmt)*), __l
        );
    }};
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };

    /// Namespace matching upstream's `prop::` paths.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn same_seed_same_draws() {
        let strat = prop::collection::vec((0u8..8, -4i64..5), 1..20);
        let a = Strategy::generate(&strat, &mut TestRng::new(7));
        let b = Strategy::generate(&strat, &mut TestRng::new(7));
        let c = Strategy::generate(&strat, &mut TestRng::new(8));
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(99);
        for _ in 0..2000 {
            let x = Strategy::generate(&(-9i64..10), &mut rng);
            assert!((-9..10).contains(&x));
            let y = Strategy::generate(&(0u32..=30), &mut rng);
            assert!(y <= 30);
        }
    }

    #[test]
    fn oneof_respects_zero_weight_absence() {
        let strat = prop_oneof![
            1 => Just(1u8),
            1 => Just(2u8),
        ];
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!(v == 1 || v == 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_form_runs(x in 0u64..100, pair in (0u8..4, prop::option::of(0i64..5))) {
            prop_assert!(x < 100);
            let (a, b) = pair;
            prop_assert!(a < 4);
            if let Some(b) = b {
                prop_assert!((0..5).contains(&b));
            }
        }
    }

    #[test]
    fn fold_256_bit_regression_lines() {
        let dir = std::env::temp_dir().join("proptest_shim_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("sample.proptest-regressions");
        std::fs::write(
            &path,
            "# comment\ncc ac5a1bfb2966018a1a6648f088b4952c42ec9cf6efb4ac57252b62bed19aa262 # shrinks to x\ncc 00000000000000ff\n",
        )
        .unwrap();
        let seeds = super::regression_seeds(&path);
        assert_eq!(seeds.len(), 2);
        assert_eq!(seeds[1], 0xff);
        let _ = std::fs::remove_file(&path);
    }
}
