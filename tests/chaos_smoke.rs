//! Chaos smoke: a small seeded fault-schedule sweep wired into the
//! workspace-level test run, so any engine change is exercised against
//! forced aborts, orphans, lose-locks and victim kills — with the
//! Theorem-9 oracle — on every `cargo test`. The full 5,000-schedule
//! sweep lives in `crates/chaos/tests/chaos_5k.rs`.

use rnt_chaos::{run, ChaosConfig};

#[test]
fn chaos_smoke_sweep_is_oracle_clean() {
    for seed in 0..50u64 {
        let report = run(&ChaosConfig::seeded(seed));
        assert!(
            report.verdict.is_ok(),
            "seed {seed} failed (reproduce: cargo test -p rnt-chaos --test repro -- --seed {seed}): {:?}",
            report.verdict
        );
    }
}

#[test]
fn chaos_smoke_fixed_seed_is_reproducible() {
    let a = run(&ChaosConfig::seeded(0xC0FFEE));
    let b = run(&ChaosConfig::seeded(0xC0FFEE));
    assert_eq!(a.fingerprint, b.fingerprint);
    assert_eq!(a.faults_applied, b.faults_applied);
    assert!(a.verdict.is_ok(), "{:?}", a.verdict);
}
