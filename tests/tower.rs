//! Cross-crate integration: the full five-level tower on randomized
//! universes, and the engine↔model loop (a live concurrent execution
//! checked against the formal correctness condition).

use resilient_nt::algebra::{
    check_local_mapping_on_run, check_possibilities_on_run, check_simulation_on_run, replay,
    Composed,
};
use resilient_nt::core::{Db, DbConfig, DeadlockPolicy};
use resilient_nt::distributed::{HDist, Level5, Topology};
use resilient_nt::locking::{HDoublePrime, HPrime, Level3, Level4};
use resilient_nt::model::serial::is_serializable_bruteforce;
use resilient_nt::sim::engine::{run_workload, seeded_db, KeyDist, TxnShape, Workload};
use resilient_nt::sim::gen::{random_run, random_universe, UniverseConfig};
use resilient_nt::spec::{HSpec, Level1, Level2};
use std::sync::Arc;

fn cfg() -> UniverseConfig {
    UniverseConfig { objects: 2, top_actions: 2, max_fanout: 2, max_depth: 3, inner_prob: 0.5 }
}

#[test]
fn full_tower_on_many_random_universes() {
    for seed in 0..25u64 {
        let u = Arc::new(random_universe(seed, &cfg()));
        let topo = Arc::new(Topology::round_robin(&u, 2));
        let l5 = Level5::new(u.clone(), topo.clone());
        let l4 = Level4::new(u.clone());
        let l1 = Level1::new(u.clone());
        let h = HDist::new(u.clone(), topo);
        let hdp = HDoublePrime::new(u.clone());
        let h54: Composed<'_, _, _, Level4> = Composed::new(&h, &hdp);
        let h53: Composed<'_, _, _, Level3> = Composed::new(&h54, &HPrime);
        let h52: Composed<'_, _, _, Level2> = Composed::new(&h53, &HSpec);
        let run = random_run(&l5, seed ^ 0xabcd, 45);
        check_local_mapping_on_run(&l5, &l4, &h, &run)
            .unwrap_or_else(|e| panic!("seed {seed}: lemma 28 failed: {e}"));
        check_simulation_on_run(&l5, &l1, &h52, &run)
            .unwrap_or_else(|e| panic!("seed {seed}: theorem 29 failed: {e}"));
    }
}

#[test]
fn intermediate_possibilities_mappings_hold() {
    for seed in 0..25u64 {
        let u = Arc::new(random_universe(seed, &cfg()));
        let l2 = Level2::new(u.clone());
        let l3 = Level3::new(u.clone());
        let l4 = Level4::new(u.clone());
        let l1 = Level1::new(u.clone());
        let run = random_run(&l4, seed, 45);
        let hdp = HDoublePrime::new(u.clone());
        check_possibilities_on_run(&l4, &l3, &hdp, &run)
            .unwrap_or_else(|e| panic!("seed {seed}: lemma 20 failed: {e}"));
        let run3 = random_run(&l3, seed, 45);
        check_possibilities_on_run(&l3, &l2, &HPrime, &run3)
            .unwrap_or_else(|e| panic!("seed {seed}: lemma 17 failed: {e}"));
        let run2 = random_run(&l2, seed, 30);
        check_possibilities_on_run(&l2, &l1, &HSpec, &run2)
            .unwrap_or_else(|e| panic!("seed {seed}: lemma 15 failed: {e}"));
    }
}

#[test]
fn level1_spec_accepts_only_serializable_perms() {
    // Replay random level-2 runs at level 1 and confirm the spec's global
    // constraint C holds at every state, using brute force as ground truth.
    for seed in 0..15u64 {
        let u = Arc::new(random_universe(seed, &cfg()));
        let l2 = Level2::new(u.clone());
        let run = random_run(&l2, seed, 30);
        let states = replay(&l2, run).expect("valid");
        for aat in states.iter().step_by(5) {
            assert!(
                is_serializable_bruteforce(&aat.perm().tree, &u),
                "seed {seed}: perm not serializable by definition"
            );
        }
    }
}

#[test]
fn engine_executions_satisfy_the_formal_condition() {
    // The headline integration: a concurrent run of the production engine,
    // reconstructed as an AAT, passes the model's serializability check.
    for policy in [DeadlockPolicy::Detect, DeadlockPolicy::WaitDie, DeadlockPolicy::NoWait] {
        let db = seeded_db(DbConfig::builder().audit(true).policy(policy).build(), 24);
        let w = Workload {
            threads: 6,
            txns_per_thread: 30,
            ops_per_txn: 3,
            read_ratio: 0.4,
            keys: 24,
            dist: KeyDist::Zipf(0.8),
            shape: TxnShape::Nested { children: 3, depth: 2 },
            abort_prob: 0.15,
            exclusive_reads: false,
            op_abort_prob: 0.0,
            sorted_ops: false,
            seed: 7,
        };
        run_workload(&db, &w);
        let (universe, aat) = db.audit_log().unwrap().reconstruct().expect("log well-formed");
        assert!(
            aat.perm().is_rw_data_serializable(&universe),
            "{policy:?}: engine execution not serializable"
        );
    }
}

#[test]
fn orphans_see_committed_consistent_values() {
    // An orphan (running under an aborted ancestor) keeps reading values
    // that existed consistently — the engine surfaces Orphaned rather than
    // exposing torn state.
    let db: Db<u64, i64> = Db::new();
    db.insert(0, 5);
    let top = db.begin();
    let child = top.child().unwrap();
    let grandchild = child.child().unwrap();
    assert_eq!(grandchild.read(&0).unwrap(), 5);
    child.abort();
    // The orphan cannot observe anything after the abort.
    assert!(grandchild.read(&0).is_err());
    // But the parent continues unharmed — resilience.
    assert_eq!(top.read(&0).unwrap(), 5);
    top.commit().unwrap();
}
