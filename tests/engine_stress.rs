//! Engine stress integration: invariants under heavy concurrency, deep
//! nesting, orphan storms, and all deadlock policies.

use resilient_nt::core::{Db, DbConfig, DeadlockPolicy, TxnError};
use resilient_nt::sim::engine::{run_workload, seeded_db, KeyDist, TxnShape, Workload};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bank-transfer conservation across every policy at high contention.
#[test]
fn transfers_conserve_total_under_all_policies() {
    for policy in [
        DeadlockPolicy::Detect,
        DeadlockPolicy::WaitDie,
        DeadlockPolicy::NoWait,
        DeadlockPolicy::Timeout,
    ] {
        let db: Db<u64, i64> = Db::with_config(DbConfig::builder().policy(policy).build());
        let n = 16u64;
        for k in 0..n {
            db.insert(k, 100);
        }
        let done = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for t in 0..6u64 {
                let db = db.clone();
                let done = done.clone();
                scope.spawn(move || {
                    // Each loop iteration is a *distinct* transfer; retries
                    // of an individual transfer live inside `Db::run`.
                    let mut committed = 0;
                    let mut tick = t;
                    while committed < 50 {
                        tick += 1;
                        let from = (t + tick) % n;
                        let to = (t + tick * 7 + 1) % n;
                        if from == to {
                            continue;
                        }
                        db.run(|txn| {
                            txn.rmw(&from, |v| v - 1)?;
                            txn.rmw(&to, |v| v + 1)?;
                            Ok(())
                        })
                        .expect("transfer retried to completion");
                        committed += 1;
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        let total: i64 = (0..n).map(|k| db.committed_value(&k).unwrap()).sum();
        assert_eq!(total, 1600, "{policy:?}: conservation violated");
        assert_eq!(done.load(Ordering::Relaxed), 300);
    }
}

/// Deep nesting with failures at every level still converges and keeps
/// parent state intact.
#[test]
fn deep_nesting_with_mid_level_aborts() {
    let db: Db<u64, i64> = Db::new();
    db.insert(0, 0);
    let top = db.begin();
    top.write(&0, 1).unwrap();

    // Build a 12-deep chain; each level increments; abort at depth 6.
    let mut chain = vec![top.child().unwrap()];
    for _ in 0..11 {
        let next = chain.last().unwrap().child().unwrap();
        next.rmw(&0, |v| v + 1).unwrap();
        chain.push(next);
    }
    assert_eq!(chain.last().unwrap().read(&0).unwrap(), 12);
    // Abort the 6th from the top: everything below dies with it.
    let victim = chain.remove(6);
    while chain.len() > 6 {
        let orphan = chain.pop().unwrap();
        drop(orphan); // drop-abort of orphans is a no-op beyond cleanup
    }
    victim.abort();
    // The surviving prefix still sees its own increments.
    assert_eq!(chain.last().unwrap().read(&0).unwrap(), 6);
    while let Some(t) = chain.pop() {
        t.commit().unwrap();
    }
    assert_eq!(top.read(&0).unwrap(), 6);
    top.commit().unwrap();
    assert_eq!(db.committed_value(&0), Some(6));
}

/// Many sibling subtransactions racing on the same keys inside ONE
/// top-level transaction, from multiple threads.
#[test]
fn intra_transaction_parallelism() {
    let db: Db<u64, i64> =
        Db::with_config(DbConfig::builder().policy(DeadlockPolicy::WaitDie).build());
    for k in 0..4u64 {
        db.insert(k, 0);
    }
    let top = Arc::new(db.begin());
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let top = top.clone();
            scope.spawn(move || {
                for committed in 0..25u64 {
                    top.run_child(u32::MAX, |child| {
                        child.rmw(&(committed % 4), |v| v + 1)?;
                        child.rmw(&((committed + 1) % 4), |v| v + 1)?;
                        Ok::<_, TxnError>(())
                    })
                    .expect("subtransaction retried to completion");
                }
            });
        }
    });
    let top = Arc::try_unwrap(top).expect("threads joined");
    let sum_inside: i64 = (0..4u64).map(|k| top.read(&k).unwrap()).sum();
    assert_eq!(sum_inside, 200, "4 threads x 25 subtxns x 2 increments");
    top.commit().unwrap();
    let total: i64 = (0..4u64).map(|k| db.committed_value(&k).unwrap()).sum();
    assert_eq!(total, 200);
}

/// Sustained mixed workload with injected failures across shapes: engine
/// finishes, conserves, and reports sane stats.
#[test]
fn sustained_mixed_workload() {
    for shape in [
        TxnShape::Flat,
        TxnShape::Nested { children: 4, depth: 1 },
        TxnShape::Nested { children: 2, depth: 3 },
    ] {
        let db = seeded_db(DbConfig::default(), 64);
        let w = Workload {
            threads: 4,
            txns_per_thread: 50,
            ops_per_txn: 4,
            read_ratio: 0.3,
            keys: 64,
            dist: KeyDist::Zipf(0.6),
            shape,
            abort_prob: 0.1,
            exclusive_reads: false,
            op_abort_prob: 0.0,
            sorted_ops: false,
            seed: 11,
        };
        let r = run_workload(&db, &w);
        assert_eq!(r.committed, 200, "{shape:?}");
        let s = db.stats();
        // Every begun (sub)transaction ends exactly once. Aborts may
        // outnumber commits on the hot nested shapes: each detected
        // deadlock aborts and retries a subtransaction, and the retry can
        // deadlock again before getting through.
        assert_eq!(s.begun, s.committed + s.aborted, "{shape:?}");
        assert!(s.begun >= s.committed);
    }
}

/// Timeout policy actually times out (rather than hanging) when a lock is
/// held indefinitely.
#[test]
fn timeout_policy_times_out() {
    let db: Db<u64, i64> = Db::with_config(
        DbConfig::builder()
            .policy(DeadlockPolicy::Timeout)
            .lock_timeout(std::time::Duration::from_millis(30))
            .build(),
    );
    db.insert(0, 0);
    let holder = db.begin();
    holder.write(&0, 1).unwrap();
    let blocked = db.begin();
    let start = std::time::Instant::now();
    match blocked.read(&0) {
        Err(TxnError::Timeout(_)) => {}
        other => panic!("expected timeout, got {other:?}"),
    }
    assert!(start.elapsed() >= std::time::Duration::from_millis(25));
    holder.abort();
    assert_eq!(blocked.read(&0).unwrap(), 0, "after the abort the value is visible again");
}
