//! Umbrella crate re-exporting the resilient-nt workspace.
pub use rnt_algebra as algebra;
pub use rnt_core as core;
pub use rnt_distributed as distributed;
pub use rnt_locking as locking;
pub use rnt_model as model;
pub use rnt_sim as sim;
pub use rnt_spec as spec;
pub use rnt_timestamp as timestamp;
