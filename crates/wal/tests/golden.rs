//! Golden-file format tests: the on-disk WAL byte format is a contract.
//!
//! Each fixture under `tests/golden/` is a committed byte-exact log. The
//! tests assert (a) encoding today's records reproduces the committed
//! bytes bit-for-bit, and (b) decoding the committed bytes reproduces the
//! records — so any accidental format change fails loudly. Regenerate
//! fixtures intentionally with `REGEN_GOLDEN=1 cargo test -p rnt-wal`.
//!
//! The committed fixtures are format **03** (`RNTWAL03`): format 02's
//! epoch-carrying `Commit`/`Checkpoint` records (top-level `Commit`s
//! carry their MVCC commit epoch behind a flag byte; `Checkpoint`
//! snapshot entries are `(key, epoch, value)` triples plus the
//! watermark) plus the `BatchCommit` frame — a group-committed batch of
//! top-level `(action, epoch)` pairs encoded as ONE record so the batch
//! is atomic-in-log-or-absent. Older-format logs are rejected by the
//! magic check — there is no cross-format migration path.

use rnt_wal::{decode_strict, faults, frame, scan, Record, Tail, WalError, INIT_ACTION, MAGIC};

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn encode_log(records: &[Record]) -> Vec<u8> {
    let mut bytes = MAGIC.to_vec();
    for r in records {
        bytes.extend_from_slice(&frame(r));
    }
    bytes
}

fn check_golden(name: &str, records: &[Record]) {
    let path = golden_dir().join(name);
    let bytes = encode_log(records);
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, &bytes).unwrap();
    }
    let committed = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("missing fixture {path:?} ({e}); run with REGEN_GOLDEN=1"));
    assert_eq!(
        committed, bytes,
        "{name}: committed fixture bytes differ from today's encoding — \
         the WAL format changed; bump the magic or fix the regression"
    );
    assert_eq!(decode_strict(&committed).unwrap(), records, "{name}: decode mismatch");
    let (scanned, tail) = scan(&committed).unwrap();
    assert_eq!(scanned, records);
    assert_eq!(tail, Tail::Clean);
}

/// An empty log: just the magic.
#[test]
fn golden_empty() {
    check_golden("empty.wal", &[]);
}

/// One top-level action writing one key and committing.
#[test]
fn golden_single_commit() {
    check_golden(
        "single_commit.wal",
        &[
            Record::Write {
                action: INIT_ACTION,
                key: b"k0".to_vec(),
                version: 0u64.to_le_bytes().to_vec(),
            },
            Record::Begin { action: 0, parent: None },
            Record::Write { action: 0, key: b"k0".to_vec(), version: 7u64.to_le_bytes().to_vec() },
            Record::Commit { action: 0, epoch: Some(1) },
        ],
    );
}

fn nested_records() -> Vec<Record> {
    vec![
        Record::Write { action: INIT_ACTION, key: b"x".to_vec(), version: vec![1] },
        Record::Write { action: INIT_ACTION, key: b"y".to_vec(), version: vec![2] },
        Record::Begin { action: 0, parent: None },
        Record::Begin { action: 1, parent: Some(0) },
        Record::Begin { action: 2, parent: Some(1) },
        Record::Write { action: 2, key: b"x".to_vec(), version: vec![10] },
        Record::Commit { action: 2, epoch: None },
        Record::Begin { action: 3, parent: Some(1) },
        Record::Write { action: 3, key: b"y".to_vec(), version: vec![20] },
        Record::Abort { action: 3 },
        Record::Commit { action: 1, epoch: None },
        Record::Commit { action: 0, epoch: Some(1) },
    ]
}

/// A 3-deep nested tree with an aborted sibling — exercises every record
/// kind except Checkpoint.
#[test]
fn golden_nested_tree() {
    check_golden("nested_tree.wal", &nested_records());
}

fn batch_records() -> Vec<Record> {
    vec![
        Record::Write { action: INIT_ACTION, key: b"a".to_vec(), version: vec![0] },
        Record::Write { action: INIT_ACTION, key: b"b".to_vec(), version: vec![0] },
        Record::Write { action: INIT_ACTION, key: b"c".to_vec(), version: vec![0] },
        Record::Begin { action: 0, parent: None },
        Record::Write { action: 0, key: b"a".to_vec(), version: vec![10] },
        Record::Begin { action: 1, parent: None },
        Record::Write { action: 1, key: b"b".to_vec(), version: vec![20] },
        Record::Begin { action: 2, parent: None },
        Record::Write { action: 2, key: b"c".to_vec(), version: vec![30] },
        // Three disjoint top-level commits group-committed as one frame:
        // a contiguous epoch run in staging order.
        Record::BatchCommit { commits: vec![(0, 1), (1, 2), (2, 3)] },
    ]
}

/// Three concurrent top-level commits retired as one group-commit batch —
/// the format-03 frame.
#[test]
fn golden_batch_commit() {
    check_golden("batch_commit.wal", &batch_records());
}

/// A checkpointed log: snapshot first, then post-checkpoint traffic.
#[test]
fn golden_checkpoint() {
    check_golden(
        "checkpoint.wal",
        &[
            Record::Checkpoint {
                epoch: 3,
                snapshot: vec![(b"a".to_vec(), 2, vec![1]), (b"b".to_vec(), 3, vec![2, 0, 2])],
            },
            Record::Begin { action: 5, parent: None },
            Record::Write { action: 5, key: b"a".to_vec(), version: vec![9] },
            Record::Commit { action: 5, epoch: Some(4) },
        ],
    );
}

// ---- corruption-class rejection over a committed fixture ----

fn nested_fixture() -> Vec<u8> {
    // Fall back to today's encoding so these tests don't depend on test
    // ordering during a REGEN_GOLDEN run; golden_nested_tree pins the
    // committed bytes to the same encoding.
    std::fs::read(golden_dir().join("nested_tree.wal"))
        .unwrap_or_else(|_| encode_log(&nested_records()))
}

#[test]
fn rejects_bad_crc() {
    let bytes = nested_fixture();
    // Flip a payload bit of the first record (not the last frame, so the
    // tail rule cannot excuse it).
    let corrupt = faults::flip_bit(&bytes, (MAGIC.len() + 8) * 8);
    assert!(matches!(decode_strict(&corrupt), Err(WalError::BadCrc { .. })));
    assert!(matches!(scan(&corrupt), Err(WalError::BadCrc { .. })));
}

#[test]
fn rejects_truncated_length_prefix() {
    let bytes = nested_fixture();
    let offsets = faults::record_offsets(&bytes);
    // Cut 3 bytes into the final frame header: strict rejects, scan
    // treats it as a torn tail.
    let cut = faults::truncate_to(&bytes, offsets[offsets.len() - 2] + 3);
    assert!(matches!(decode_strict(&cut), Err(WalError::TruncatedLength { .. })));
    let (records, tail) = scan(&cut).unwrap();
    assert_eq!(records.len(), faults::record_count(&bytes) - 1);
    assert!(matches!(tail, Tail::Torn(WalError::TruncatedLength { .. })));
}

#[test]
fn rejects_torn_tail_payload() {
    let bytes = nested_fixture();
    let cut = faults::truncate_to(&bytes, bytes.len() - 2);
    assert!(matches!(decode_strict(&cut), Err(WalError::TornRecord { .. })));
    let (records, tail) = scan(&cut).unwrap();
    assert_eq!(records.len(), faults::record_count(&bytes) - 1);
    assert!(matches!(tail, Tail::Torn(WalError::TornRecord { .. })));
}

#[test]
fn rejects_bad_magic() {
    let mut bytes = nested_fixture();
    bytes[3] ^= 0xFF;
    assert_eq!(decode_strict(&bytes), Err(WalError::BadMagic));
}

// ---- batch atomicity at the torn tail (the format-03 guarantee) ----

/// Pin the single-commit tail behavior: an INTACT `Commit` frame at the
/// end of the log is trusted by recovery — its fsync may or may not have
/// completed before the crash, but Lemma 7 only forbids *acking* before
/// the force; replaying an unacked durable commit is always sound.
#[test]
fn intact_tail_commit_is_replayed() {
    let records = nested_records();
    let bytes = encode_log(&records);
    let (scanned, tail) = scan(&bytes).unwrap();
    assert_eq!(tail, Tail::Clean);
    assert_eq!(scanned.last(), Some(&Record::Commit { action: 0, epoch: Some(1) }));
}

/// The batch all-or-nothing invariant at the byte level: cutting the log
/// ANYWHERE inside the `BatchCommit` frame discards the whole batch — no
/// prefix of a batch ever scans as committed. (Contrast with what n
/// separate `Commit` records would give: a cut between them leaves an
/// arbitrary prefix of the batch durable without its shared fsync.)
#[test]
fn torn_batch_commit_is_all_or_nothing() {
    let records = batch_records();
    let bytes = encode_log(&records);
    let offsets = faults::record_offsets(&bytes);
    let batch_start = offsets[offsets.len() - 2];
    for cut in (batch_start + 1)..bytes.len() {
        let prefix = faults::truncate_to(&bytes, cut);
        let (scanned, tail) = scan(&prefix).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        assert!(matches!(tail, Tail::Torn(_)), "cut {cut} inside the batch frame must tear");
        assert!(
            !scanned.iter().any(|r| matches!(r, Record::BatchCommit { .. })),
            "cut {cut}: a torn batch must vanish wholly, never partially"
        );
        assert_eq!(scanned.len(), records.len() - 1, "cut {cut}");
    }
    // And the intact frame at the tail carries every participant.
    let (scanned, tail) = scan(&bytes).unwrap();
    assert_eq!(tail, Tail::Clean);
    match scanned.last() {
        Some(Record::BatchCommit { commits }) => assert_eq!(commits.len(), 3),
        other => panic!("expected the intact batch, got {other:?}"),
    }
}

/// A tail bitflip inside the batch frame also discards the whole batch
/// (CRC covers the full multi-commit payload).
#[test]
fn corrupt_tail_batch_commit_is_discarded_wholly() {
    let bytes = encode_log(&batch_records());
    for bit in [0, 37, 91] {
        let offsets = faults::record_offsets(&bytes);
        let payload_start = offsets[offsets.len() - 2] + 8;
        let corrupt = faults::flip_bit(&bytes, (payload_start + bit / 8) * 8 + bit % 8);
        let (scanned, tail) = scan(&corrupt).unwrap();
        assert!(matches!(tail, Tail::Torn(WalError::BadCrc { .. })), "bit {bit}");
        assert!(!scanned.iter().any(|r| matches!(r, Record::BatchCommit { .. })), "bit {bit}");
    }
}

#[test]
fn every_truncation_point_scans() {
    // The recovery guarantee at the byte level: EVERY prefix of a valid
    // log scans without a hard error, yielding only whole records.
    let bytes = nested_fixture();
    let total = faults::record_count(&bytes);
    for cut in 0..=bytes.len() {
        let prefix = faults::truncate_to(&bytes, cut);
        let (records, tail) = scan(&prefix).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        assert!(records.len() <= total);
        if cut == bytes.len() {
            assert_eq!(tail, Tail::Clean);
            assert_eq!(records.len(), total);
        }
    }
}
