//! The virtual filesystem the log talks through: a real-file impl and an
//! in-memory fault-injecting impl the chaos harness drives.

use crate::error::WalError;
use std::collections::HashMap;
use std::io::Write;
use std::sync::Mutex;

/// The I/O surface a write-ahead log needs. Deliberately tiny: append,
/// fsync, whole-file read, and an atomic replace for checkpoint rewrites.
pub trait Vfs: Send + Sync {
    /// Append `data` to the file at `path`, creating it if absent.
    fn append(&self, path: &str, data: &[u8]) -> Result<(), WalError>;
    /// Durably flush previous appends to `path`.
    fn fsync(&self, path: &str) -> Result<(), WalError>;
    /// Read the entire file.
    fn read(&self, path: &str) -> Result<Vec<u8>, WalError>;
    /// Atomically replace the file's contents (checkpoint rewrite): after
    /// a crash the file holds either the old bytes or the new, never a mix.
    fn replace(&self, path: &str, data: &[u8]) -> Result<(), WalError>;
    /// True iff the file exists.
    fn exists(&self, path: &str) -> bool;
}

fn io_err(op: &'static str) -> impl FnOnce(std::io::Error) -> WalError {
    move |e| WalError::Io { op, detail: e.to_string() }
}

/// The real-file [`Vfs`]: appends through a cached `File` handle, fsync is
/// `sync_data`, replace is write-temp + rename (atomic on POSIX).
#[derive(Default)]
pub struct StdVfs {
    handles: Mutex<HashMap<String, std::fs::File>>,
}

impl StdVfs {
    /// A fresh real-file Vfs.
    pub fn new() -> Self {
        StdVfs::default()
    }

    fn with_handle<R>(
        &self,
        path: &str,
        op: &'static str,
        f: impl FnOnce(&mut std::fs::File) -> std::io::Result<R>,
    ) -> Result<R, WalError> {
        let mut handles = self.handles.lock().expect("vfs lock");
        if !handles.contains_key(path) {
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(io_err(op))?;
            handles.insert(path.to_string(), file);
        }
        f(handles.get_mut(path).expect("just inserted")).map_err(io_err(op))
    }
}

impl Vfs for StdVfs {
    fn append(&self, path: &str, data: &[u8]) -> Result<(), WalError> {
        self.with_handle(path, "append", |f| f.write_all(data))
    }

    fn fsync(&self, path: &str) -> Result<(), WalError> {
        self.with_handle(path, "fsync", |f| f.sync_data())
    }

    fn read(&self, path: &str) -> Result<Vec<u8>, WalError> {
        std::fs::read(path).map_err(io_err("read"))
    }

    fn replace(&self, path: &str, data: &[u8]) -> Result<(), WalError> {
        let tmp = format!("{path}.tmp");
        {
            let mut f = std::fs::File::create(&tmp).map_err(io_err("replace-create"))?;
            f.write_all(data).map_err(io_err("replace-write"))?;
            f.sync_data().map_err(io_err("replace-sync"))?;
        }
        // Drop the stale append handle before the rename so later appends
        // reopen the new file rather than writing to the unlinked inode.
        self.handles.lock().expect("vfs lock").remove(path);
        std::fs::rename(&tmp, path).map_err(io_err("rename"))
    }

    fn exists(&self, path: &str) -> bool {
        std::path::Path::new(path).exists()
    }
}

/// The in-memory fault-injecting [`Vfs`].
///
/// Besides behaving as a plain RAM filesystem, it models the crash the
/// recovery path exists for: [`MemVfs::arm_crash`] makes the `n`-th
/// subsequent append *tear* — only a prefix of its bytes lands — and
/// silently swallows everything after it, exactly what a power cut during
/// a buffered write leaves behind. [`MemVfs::snapshot`] exposes the raw
/// bytes so harnesses can also cut, flip, or truncate them explicitly
/// (see [`crate::faults`]) and hand them to recovery.
#[derive(Default)]
pub struct MemVfs {
    files: Mutex<HashMap<String, Vec<u8>>>,
    /// `Some((appends_left, keep_bytes))`: after `appends_left` more whole
    /// appends, the next one keeps only `keep_bytes` bytes and the file
    /// stops accepting writes.
    crash: Mutex<Option<(u64, usize)>>,
    crashed: Mutex<bool>,
}

impl MemVfs {
    /// A fresh, empty, fault-free in-memory Vfs.
    pub fn new() -> Self {
        MemVfs::default()
    }

    /// Arm a torn-write crash: the next `whole_appends` appends land
    /// intact, the one after lands only its first `keep_bytes` bytes, and
    /// every append past that is silently dropped (the process is "dead").
    pub fn arm_crash(&self, whole_appends: u64, keep_bytes: usize) {
        *self.crash.lock().expect("vfs lock") = Some((whole_appends, keep_bytes));
    }

    /// True once an armed crash has fired.
    pub fn crashed(&self) -> bool {
        *self.crashed.lock().expect("vfs lock")
    }

    /// The file's current raw bytes (empty if absent).
    pub fn snapshot(&self, path: &str) -> Vec<u8> {
        self.files.lock().expect("vfs lock").get(path).cloned().unwrap_or_default()
    }

    /// Overwrite the file's raw bytes (installing a corrupted or cut log).
    pub fn install(&self, path: &str, bytes: Vec<u8>) {
        self.files.lock().expect("vfs lock").insert(path.to_string(), bytes);
    }
}

impl Vfs for MemVfs {
    fn append(&self, path: &str, data: &[u8]) -> Result<(), WalError> {
        if *self.crashed.lock().expect("vfs lock") {
            return Ok(()); // post-crash writes vanish
        }
        let mut keep = data.len();
        {
            let mut crash = self.crash.lock().expect("vfs lock");
            if let Some((left, keep_bytes)) = crash.as_mut() {
                if *left == 0 {
                    keep = (*keep_bytes).min(data.len());
                    *crash = None;
                    *self.crashed.lock().expect("vfs lock") = true;
                } else {
                    *left -= 1;
                }
            }
        }
        let mut files = self.files.lock().expect("vfs lock");
        files.entry(path.to_string()).or_default().extend_from_slice(&data[..keep]);
        Ok(())
    }

    fn fsync(&self, _path: &str) -> Result<(), WalError> {
        Ok(())
    }

    fn read(&self, path: &str) -> Result<Vec<u8>, WalError> {
        self.files
            .lock()
            .expect("vfs lock")
            .get(path)
            .cloned()
            .ok_or(WalError::Io { op: "read", detail: format!("{path}: not found") })
    }

    fn replace(&self, path: &str, data: &[u8]) -> Result<(), WalError> {
        if *self.crashed.lock().expect("vfs lock") {
            return Ok(());
        }
        self.files.lock().expect("vfs lock").insert(path.to_string(), data.to_vec());
        Ok(())
    }

    fn exists(&self, path: &str) -> bool {
        self.files.lock().expect("vfs lock").contains_key(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_vfs_appends_and_reads() {
        let vfs = MemVfs::new();
        vfs.append("a.wal", b"abc").unwrap();
        vfs.append("a.wal", b"def").unwrap();
        assert_eq!(vfs.read("a.wal").unwrap(), b"abcdef");
        assert!(vfs.exists("a.wal"));
        assert!(!vfs.exists("b.wal"));
    }

    #[test]
    fn mem_vfs_torn_crash() {
        let vfs = MemVfs::new();
        vfs.arm_crash(1, 2);
        vfs.append("a.wal", b"first").unwrap(); // intact
        vfs.append("a.wal", b"second").unwrap(); // torn: only "se"
        vfs.append("a.wal", b"third").unwrap(); // dropped
        assert!(vfs.crashed());
        assert_eq!(vfs.read("a.wal").unwrap(), b"firstse");
    }

    #[test]
    fn mem_vfs_replace_is_whole() {
        let vfs = MemVfs::new();
        vfs.append("a.wal", b"old").unwrap();
        vfs.replace("a.wal", b"new-contents").unwrap();
        assert_eq!(vfs.read("a.wal").unwrap(), b"new-contents");
    }

    #[test]
    fn std_vfs_roundtrip() {
        let dir = std::env::temp_dir().join(format!("rnt-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.wal");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);
        let vfs = StdVfs::new();
        vfs.append(path, b"abc").unwrap();
        vfs.fsync(path).unwrap();
        vfs.append(path, b"def").unwrap();
        assert_eq!(vfs.read(path).unwrap(), b"abcdef");
        vfs.replace(path, b"xyz").unwrap();
        assert_eq!(vfs.read(path).unwrap(), b"xyz");
        vfs.append(path, b"!").unwrap();
        assert_eq!(vfs.read(path).unwrap(), b"xyz!");
        let _ = std::fs::remove_file(path);
    }
}
