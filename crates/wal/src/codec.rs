//! Byte encoding for the engine's key/value type parameters.
//!
//! The log stores keys and versions as opaque byte strings; `WalCodec` is
//! the bridge from the store's `K`/`V` types. Implementations must be
//! injective (`decode(encode(x)) == Some(x)`) — recovery round-trips every
//! key through it.

/// A type the engine can persist in WAL records.
pub trait WalCodec: Sized {
    /// Append this value's byte encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Reconstruct a value from its exact encoding; `None` if the bytes
    /// are not a valid encoding of this type.
    fn decode(bytes: &[u8]) -> Option<Self>;
}

macro_rules! int_codec {
    ($($t:ty),*) => {$(
        impl WalCodec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(bytes: &[u8]) -> Option<Self> {
                Some(<$t>::from_le_bytes(bytes.try_into().ok()?))
            }
        }
    )*};
}

int_codec!(u32, u64, i32, i64);

impl WalCodec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        String::from_utf8(bytes.to_vec()).ok()
    }
}

impl WalCodec for Vec<u8> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(bytes.to_vec())
    }
}

/// Encode a value into a fresh buffer (convenience over [`WalCodec::encode`]).
pub fn encode_to_vec<T: WalCodec>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WalCodec + PartialEq + std::fmt::Debug>(v: T) {
        assert_eq!(T::decode(&encode_to_vec(&v)), Some(v));
    }

    #[test]
    fn integer_roundtrips() {
        roundtrip(0u32);
        roundtrip(u32::MAX);
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(-1i32);
        roundtrip(i64::MIN);
    }

    #[test]
    fn string_and_bytes_roundtrip() {
        roundtrip(String::new());
        roundtrip("nested transactions".to_string());
        roundtrip(vec![0u8, 255, 7]);
    }

    #[test]
    fn bad_lengths_rejected() {
        assert_eq!(u64::decode(&[1, 2, 3]), None);
        assert_eq!(u32::decode(&[0; 8]), None);
        assert_eq!(String::decode(&[0xFF, 0xFE]), None);
    }
}
