//! # rnt-wal
//!
//! The durable write-ahead log behind the resilient nested-transaction
//! engine: an append-only, CRC-checksummed, length-prefixed record log
//! plus the machinery to replay it after a crash.
//!
//! The paper's resilience model says a top-level action's effects are
//! permanent exactly when its commit event happens (`perm(T)`, Lemma 7);
//! everything below the top level is conditional and may be discarded.
//! The log records mirror that: every action-tree transition is appended
//! ([`Record::Begin`], [`Record::Write`], [`Record::Commit`],
//! [`Record::Abort`]), but only *top-level* commits are durability
//! points — they are the only records a caller may need fsynced before
//! acking, because a subtransaction's commit is revocable until its
//! ancestors all commit.
//!
//! Layout of a log file:
//!
//! ```text
//! [8-byte magic "RNTWAL03"]
//! [frame]*            frame = [len: u32 LE][crc32(payload): u32 LE][payload]
//! ```
//!
//! Format `02` added the MVCC **commit epoch**: top-level `Commit`
//! records stamp the epoch their versions publish at, and `Checkpoint`
//! records store the watermark plus each object's last commit epoch, so
//! recovery rebuilds version chains identical to the pre-crash store.
//! Format `03` adds the [`Record::BatchCommit`] frame: a group-committed
//! batch of top-level commits encoded as ONE record, so the whole batch
//! is atomic-in-log-or-absent — a crash tears the entire frame (dropped
//! by [`scan`]'s tail rule) or none of it, and no prefix of a batch can
//! ever be replayed as committed.
//!
//! Reading is two-mode:
//!
//! * [`decode_strict`] — every byte must parse; any anomaly is a typed
//!   [`WalError`] (format tests, fixtures);
//! * [`scan`] — crash-recovery semantics: a *torn tail* (truncated length
//!   prefix, incomplete payload, or a bad CRC on the final frame) ends the
//!   log cleanly at the last good record, while corruption *before* the
//!   tail is a hard error.
//!
//! I/O goes through the [`Vfs`] trait so the chaos harness can drive
//! crash points deterministically: [`StdVfs`] is the real-file impl,
//! [`MemVfs`] the in-memory fault-injecting one (armed torn appends,
//! byte-level snapshots for prefix-cut crash simulation).

#![warn(missing_docs)]

mod codec;
mod error;
mod log;
mod record;
mod vfs;

pub mod faults;

pub use codec::{encode_to_vec, WalCodec};
pub use error::WalError;
pub use log::{decode_strict, frame, scan, Tail, Wal, MAGIC};
pub use record::{Record, INIT_ACTION};
pub use vfs::{MemVfs, StdVfs, Vfs};

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the frame checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"resilient nested transactions".to_vec();
        let clean = crc32(&data);
        for bit in 0..data.len() * 8 {
            let mut flipped = data.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&flipped), clean, "bit {bit} undetected");
        }
    }
}
