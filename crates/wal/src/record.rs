//! The record vocabulary: one variant per action-tree status transition
//! the paper's resilience model makes durable, plus the checkpoint.

use crate::error::WalError;

/// The reserved action id tagging non-transactional initialization writes
/// (the paper's `init(x)`): a [`Record::Write`] with this action sets an
/// object's base value directly instead of pushing a version.
pub const INIT_ACTION: u64 = u64::MAX;

const TAG_BEGIN: u8 = 1;
const TAG_WRITE: u8 = 2;
const TAG_COMMIT: u8 = 3;
const TAG_ABORT: u8 = 4;
const TAG_CHECKPOINT: u8 = 5;
const TAG_BATCH_COMMIT: u8 = 6;

/// One durable event. Keys and versions are opaque byte strings — the
/// engine encodes its `K`/`V` types via [`crate::WalCodec`] before
/// appending, so the log format is independent of the store's type
/// parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// An action entered the tree (`create(T)`): top-level iff `parent`
    /// is `None`.
    Begin {
        /// The action's id (the engine's `TxnId`).
        action: u64,
        /// The parent action, if nested.
        parent: Option<u64>,
    },
    /// An action wrote a version of a key. With `action ==`
    /// [`INIT_ACTION`] this is a base-value seed, not a transactional
    /// version.
    Write {
        /// The writing action.
        action: u64,
        /// Encoded key.
        key: Vec<u8>,
        /// Encoded version (the value written).
        version: Vec<u8>,
    },
    /// The action committed to its parent (top-level: permanently — the
    /// only record class that is a durability point).
    Commit {
        /// The committing action.
        action: u64,
        /// The commit epoch, present iff this is a top-level commit: the
        /// monotonically increasing counter the MVCC store stamps on the
        /// versions this commit publishes. Nested commits carry `None` —
        /// they publish to their parent, not to the committed state.
        epoch: Option<u64>,
    },
    /// The action aborted; its subtree's versions are discarded.
    Abort {
        /// The aborting action.
        action: u64,
    },
    /// A group-committed batch of top-level commits, durable as one unit.
    ///
    /// Semantically equivalent to the listed `Commit { action, epoch:
    /// Some(epoch) }` records applied in order, but framed as a *single*
    /// record so the batch is atomic-in-log-or-absent: a crash can only
    /// tear the whole frame (discarded by [`crate::scan`]'s tail rule),
    /// never leave a prefix of the batch replayable as committed.
    BatchCommit {
        /// `(action, epoch)` pairs in epoch order — epochs are the
        /// contiguous run the sequencer allocated for the batch.
        commits: Vec<(u64, u64)>,
    },
    /// A full snapshot of the committed key space, written as the first
    /// record of a rewritten log so recovery cost stays bounded.
    Checkpoint {
        /// The MVCC watermark (highest published commit epoch) at the
        /// moment of the checkpoint; replay resumes epoch numbering here.
        epoch: u64,
        /// `(key, last_epoch, value)` triples of every committed object,
        /// where `last_epoch` is the commit epoch of the object's newest
        /// version — so recovery rebuilds chains identical to the
        /// pre-crash store, not merely value-equal.
        snapshot: Vec<(Vec<u8>, u64, Vec<u8>)>,
    },
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!("need {n} bytes, {} left", self.buf.len() - self.pos));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, String> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

impl Record {
    /// Serialize this record's payload (the bytes the frame CRC covers).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Record::Begin { action, parent } => {
                out.push(TAG_BEGIN);
                put_u64(&mut out, *action);
                match parent {
                    None => out.push(0),
                    Some(p) => {
                        out.push(1);
                        put_u64(&mut out, *p);
                    }
                }
            }
            Record::Write { action, key, version } => {
                out.push(TAG_WRITE);
                put_u64(&mut out, *action);
                put_bytes(&mut out, key);
                put_bytes(&mut out, version);
            }
            Record::Commit { action, epoch } => {
                out.push(TAG_COMMIT);
                put_u64(&mut out, *action);
                match epoch {
                    None => out.push(0),
                    Some(e) => {
                        out.push(1);
                        put_u64(&mut out, *e);
                    }
                }
            }
            Record::Abort { action } => {
                out.push(TAG_ABORT);
                put_u64(&mut out, *action);
            }
            Record::BatchCommit { commits } => {
                out.push(TAG_BATCH_COMMIT);
                out.extend_from_slice(&(commits.len() as u32).to_le_bytes());
                for (action, epoch) in commits {
                    put_u64(&mut out, *action);
                    put_u64(&mut out, *epoch);
                }
            }
            Record::Checkpoint { epoch, snapshot } => {
                out.push(TAG_CHECKPOINT);
                put_u64(&mut out, *epoch);
                out.extend_from_slice(&(snapshot.len() as u32).to_le_bytes());
                for (k, e, v) in snapshot {
                    put_bytes(&mut out, k);
                    put_u64(&mut out, *e);
                    put_bytes(&mut out, v);
                }
            }
        }
        out
    }

    /// Parse a payload back into a record. `offset` is the frame's byte
    /// offset in the file, used only to label errors.
    pub fn decode(payload: &[u8], offset: usize) -> Result<Record, WalError> {
        let bad = |detail: String| WalError::BadRecord { offset, detail };
        let mut c = Cursor { buf: payload, pos: 0 };
        let record = (|| -> Result<Record, String> {
            let tag = c.u8()?;
            let record = match tag {
                TAG_BEGIN => {
                    let action = c.u64()?;
                    let parent = match c.u8()? {
                        0 => None,
                        1 => Some(c.u64()?),
                        other => return Err(format!("bad parent flag {other}")),
                    };
                    Record::Begin { action, parent }
                }
                TAG_WRITE => {
                    let action = c.u64()?;
                    let key = c.bytes()?;
                    let version = c.bytes()?;
                    Record::Write { action, key, version }
                }
                TAG_COMMIT => {
                    let action = c.u64()?;
                    let epoch = match c.u8()? {
                        0 => None,
                        1 => Some(c.u64()?),
                        other => return Err(format!("bad epoch flag {other}")),
                    };
                    Record::Commit { action, epoch }
                }
                TAG_ABORT => Record::Abort { action: c.u64()? },
                TAG_BATCH_COMMIT => {
                    let n = c.u32()? as usize;
                    if n == 0 {
                        return Err("empty batch commit".to_string());
                    }
                    let mut commits = Vec::with_capacity(n.min(1 << 16));
                    for _ in 0..n {
                        let action = c.u64()?;
                        let epoch = c.u64()?;
                        commits.push((action, epoch));
                    }
                    Record::BatchCommit { commits }
                }
                TAG_CHECKPOINT => {
                    let epoch = c.u64()?;
                    let n = c.u32()? as usize;
                    let mut snapshot = Vec::with_capacity(n.min(1 << 16));
                    for _ in 0..n {
                        let k = c.bytes()?;
                        let e = c.u64()?;
                        let v = c.bytes()?;
                        snapshot.push((k, e, v));
                    }
                    Record::Checkpoint { epoch, snapshot }
                }
                other => return Err(format!("unknown record tag {other}")),
            };
            Ok(record)
        })()
        .map_err(&bad)?;
        if !c.done() {
            return Err(bad(format!("{} trailing bytes", payload.len() - c.pos)));
        }
        Ok(record)
    }

    /// The acting id, if this record names exactly one (`None` for
    /// checkpoints and batch commits, which name zero or many).
    pub fn action(&self) -> Option<u64> {
        match self {
            Record::Begin { action, .. }
            | Record::Write { action, .. }
            | Record::Commit { action, .. }
            | Record::Abort { action } => Some(*action),
            Record::Checkpoint { .. } | Record::BatchCommit { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(r: Record) {
        let payload = r.encode();
        assert_eq!(Record::decode(&payload, 0).unwrap(), r);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Record::Begin { action: 7, parent: None });
        roundtrip(Record::Begin { action: 8, parent: Some(7) });
        roundtrip(Record::Write { action: 8, key: vec![1, 2], version: vec![] });
        roundtrip(Record::Write { action: INIT_ACTION, key: vec![0; 300], version: vec![9] });
        roundtrip(Record::Commit { action: 8, epoch: None });
        roundtrip(Record::Commit { action: 8, epoch: Some(3) });
        roundtrip(Record::Abort { action: 7 });
        roundtrip(Record::BatchCommit { commits: vec![(3, 11)] });
        roundtrip(Record::BatchCommit { commits: vec![(3, 11), (9, 12), (1, 13)] });
        roundtrip(Record::Checkpoint { epoch: 0, snapshot: vec![] });
        roundtrip(Record::Checkpoint {
            epoch: 9,
            snapshot: vec![(vec![1], 4, vec![2, 3]), (vec![4, 5], 9, vec![])],
        });
    }

    #[test]
    fn unknown_tag_rejected() {
        let err = Record::decode(&[99], 16).unwrap_err();
        assert!(matches!(err, WalError::BadRecord { offset: 16, .. }), "{err:?}");
    }

    #[test]
    fn short_payload_rejected() {
        let mut payload = Record::Commit { action: 5, epoch: None }.encode();
        payload.truncate(4);
        assert!(matches!(Record::decode(&payload, 0), Err(WalError::BadRecord { .. })));
    }

    #[test]
    fn empty_batch_commit_rejected() {
        let err = Record::decode(&[TAG_BATCH_COMMIT, 0, 0, 0, 0], 0).unwrap_err();
        assert!(err.to_string().contains("empty batch"), "{err}");
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = Record::Abort { action: 5 }.encode();
        payload.push(0);
        let err = Record::decode(&payload, 0).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }
}
