//! Pure byte-level corruption helpers the test suites and chaos harness
//! apply to a snapshotted log before handing it to recovery: bit flips,
//! truncation at arbitrary offsets, and cuts at record boundaries.

use crate::log::MAGIC;

/// Flip one bit (`bit` counts from the file's first byte, LSB first).
pub fn flip_bit(bytes: &[u8], bit: usize) -> Vec<u8> {
    let mut out = bytes.to_vec();
    out[bit / 8] ^= 1 << (bit % 8);
    out
}

/// Keep only the first `len` bytes (a truncation crash).
pub fn truncate_to(bytes: &[u8], len: usize) -> Vec<u8> {
    bytes[..len.min(bytes.len())].to_vec()
}

/// Byte offsets where each frame starts, walking length prefixes without
/// validating CRCs or payloads. Stops at the first frame that does not
/// fit. The final entry is the offset just past the last whole frame, so
/// adjacent pairs delimit frames and the list has `record_count + 1`
/// entries for an intact log.
pub fn record_offsets(bytes: &[u8]) -> Vec<usize> {
    let mut offsets = Vec::new();
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return offsets;
    }
    let mut offset = MAGIC.len();
    offsets.push(offset);
    while bytes.len() - offset >= 8 {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4")) as usize;
        if bytes.len() - offset - 8 < len {
            break;
        }
        offset += 8 + len;
        offsets.push(offset);
    }
    offsets
}

/// Number of whole frames in the file.
pub fn record_count(bytes: &[u8]) -> usize {
    record_offsets(bytes).len().saturating_sub(1)
}

/// The log cut after its first `n` records (a crash at a record
/// boundary). `n` past the end returns the whole log.
pub fn cut_at_record(bytes: &[u8], n: usize) -> Vec<u8> {
    let offsets = record_offsets(bytes);
    if offsets.is_empty() {
        return bytes.to_vec();
    }
    let end = *offsets.get(n).unwrap_or(offsets.last().expect("non-empty"));
    bytes[..end].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::frame;
    use crate::record::Record;

    fn sample_log() -> Vec<u8> {
        let mut bytes = MAGIC.to_vec();
        for r in [
            Record::Begin { action: 0, parent: None },
            Record::Write { action: 0, key: vec![1, 2, 3], version: vec![9] },
            Record::Commit { action: 0, epoch: Some(1) },
        ] {
            bytes.extend_from_slice(&frame(&r));
        }
        bytes
    }

    #[test]
    fn offsets_and_count() {
        let log = sample_log();
        let offsets = record_offsets(&log);
        assert_eq!(offsets.len(), 4);
        assert_eq!(offsets[0], MAGIC.len());
        assert_eq!(*offsets.last().unwrap(), log.len());
        assert_eq!(record_count(&log), 3);
    }

    #[test]
    fn cuts_are_prefixes_at_boundaries() {
        let log = sample_log();
        assert_eq!(cut_at_record(&log, 0).len(), MAGIC.len());
        assert_eq!(cut_at_record(&log, 3), log);
        assert_eq!(cut_at_record(&log, 99), log);
        let two = cut_at_record(&log, 2);
        assert!(log.starts_with(&two));
        assert_eq!(record_count(&two), 2);
    }

    #[test]
    fn flip_and_truncate() {
        let log = sample_log();
        let flipped = flip_bit(&log, 8 * MAGIC.len());
        assert_eq!(flipped.len(), log.len());
        assert_ne!(flipped[MAGIC.len()], log[MAGIC.len()]);
        assert_eq!(truncate_to(&log, 5), &log[..5]);
        assert_eq!(truncate_to(&log, 10_000), log);
    }

    #[test]
    fn torn_log_offsets_stop_at_tear() {
        let log = sample_log();
        let torn = truncate_to(&log, log.len() - 3);
        let offsets = record_offsets(&torn);
        assert_eq!(offsets.len(), 3, "third frame incomplete");
        assert_eq!(record_count(&torn), 2);
    }
}
