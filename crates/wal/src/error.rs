//! Typed WAL failure modes, one per corruption class.

/// Everything that can go wrong encoding, decoding, or replaying a log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalError {
    /// An underlying I/O operation failed.
    Io {
        /// The Vfs operation that failed (e.g. "append", "rename").
        op: &'static str,
        /// Human-readable cause.
        detail: String,
    },
    /// The file does not start with the `RNTWAL01` magic.
    BadMagic,
    /// The file is shorter than the magic header.
    TruncatedMagic,
    /// Fewer than 8 bytes remain where a frame header was expected — a
    /// truncated length prefix.
    TruncatedLength {
        /// Byte offset of the incomplete header.
        offset: usize,
    },
    /// The length prefix promises more payload bytes than the file holds —
    /// a torn tail record.
    TornRecord {
        /// Byte offset of the frame header.
        offset: usize,
        /// Payload bytes the length prefix promised.
        promised: usize,
        /// Payload bytes actually present.
        present: usize,
    },
    /// The payload checksum does not match the frame's CRC field.
    BadCrc {
        /// Byte offset of the frame header.
        offset: usize,
        /// CRC stored in the frame.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// The payload parsed under a valid CRC but is not a well-formed
    /// record (unknown tag, short field, trailing garbage).
    BadRecord {
        /// Byte offset of the frame header.
        offset: usize,
        /// What was malformed.
        detail: String,
    },
    /// The record stream is well-formed but semantically unreplayable
    /// (unknown action id, write to an unseeded key, duplicate init, …).
    Replay {
        /// What the replay tripped over.
        detail: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io { op, detail } => write!(f, "wal i/o failure during {op}: {detail}"),
            WalError::BadMagic => write!(f, "not a wal file (bad magic)"),
            WalError::TruncatedMagic => write!(f, "file shorter than the wal magic header"),
            WalError::TruncatedLength { offset } => {
                write!(f, "truncated length prefix at byte {offset}")
            }
            WalError::TornRecord { offset, promised, present } => {
                write!(f, "torn record at byte {offset}: {present} of {promised} payload bytes")
            }
            WalError::BadCrc { offset, stored, computed } => {
                write!(f, "crc mismatch at byte {offset}: stored {stored:#010x}, computed {computed:#010x}")
            }
            WalError::BadRecord { offset, detail } => {
                write!(f, "malformed record at byte {offset}: {detail}")
            }
            WalError::Replay { detail } => write!(f, "unreplayable log: {detail}"),
        }
    }
}

impl std::error::Error for WalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert!(WalError::BadMagic.to_string().contains("magic"));
        let e = WalError::BadCrc { offset: 8, stored: 1, computed: 2 };
        assert!(e.to_string().contains("crc mismatch at byte 8"));
        let e = WalError::TornRecord { offset: 16, promised: 40, present: 3 };
        assert!(e.to_string().contains("3 of 40"));
    }
}
