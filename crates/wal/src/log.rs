//! Framing, the two readers (strict and crash-tolerant), and the
//! append/checkpoint writer.

use crate::crc32;
use crate::error::WalError;
use crate::record::Record;
use crate::vfs::Vfs;
use std::sync::Arc;

/// The 8-byte file header every log starts with. `03` added the
/// `BatchCommit` group-commit frame; `02` added the commit epoch to
/// `Commit`/`Checkpoint` records; older logs are not readable.
pub const MAGIC: &[u8; 8] = b"RNTWAL03";

/// Wrap a record payload in a `[len][crc][payload]` frame.
pub fn frame(record: &Record) -> Vec<u8> {
    let payload = record.encode();
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// How a [`scan`] ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tail {
    /// The last frame ended exactly at end-of-file.
    Clean,
    /// The file ends in a torn record — the crash artifact recovery
    /// discards. Carries the typed error describing the tear.
    Torn(WalError),
}

/// Parse one frame starting at `offset`. Returns the record and the next
/// offset. An error here is *positional*: the caller decides whether it is
/// a tolerable tail tear or mid-log corruption.
fn parse_frame(bytes: &[u8], offset: usize) -> Result<(Record, usize), WalError> {
    let remaining = bytes.len() - offset;
    if remaining < 8 {
        return Err(WalError::TruncatedLength { offset });
    }
    let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4")) as usize;
    let stored = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4"));
    if remaining - 8 < len {
        return Err(WalError::TornRecord { offset, promised: len, present: remaining - 8 });
    }
    let payload = &bytes[offset + 8..offset + 8 + len];
    let computed = crc32(payload);
    if computed != stored {
        return Err(WalError::BadCrc { offset, stored, computed });
    }
    let record = Record::decode(payload, offset)?;
    Ok((record, offset + 8 + len))
}

fn check_magic(bytes: &[u8]) -> Result<(), WalError> {
    if bytes.len() < MAGIC.len() {
        return Err(WalError::TruncatedMagic);
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(WalError::BadMagic);
    }
    Ok(())
}

/// Whether a positional frame error can be a crash artifact: every tear
/// class reaches end-of-file, and a CRC mismatch counts only when the
/// frame is the file's last (a torn buffered write), never mid-log.
fn is_tail_tear(e: &WalError, bytes: &[u8]) -> bool {
    match *e {
        WalError::TruncatedLength { .. } | WalError::TornRecord { .. } => true,
        WalError::BadCrc { offset, .. } => {
            let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4")) as usize;
            offset + 8 + len == bytes.len()
        }
        _ => false,
    }
}

/// Crash-recovery read: every intact record plus how the file ended.
///
/// A torn tail (see [`Tail::Torn`]) ends the log at the last good record;
/// corruption before the tail — a bad CRC or malformed record with valid
/// frames after it — is a hard error, as is a bad or truncated magic on a
/// non-empty file. An entirely empty byte string is a valid empty log.
pub fn scan(bytes: &[u8]) -> Result<(Vec<Record>, Tail), WalError> {
    if bytes.is_empty() {
        return Ok((Vec::new(), Tail::Clean));
    }
    if let Err(e) = check_magic(bytes) {
        // A file shorter than the magic is itself a torn creation.
        return match e {
            WalError::TruncatedMagic => Ok((Vec::new(), Tail::Torn(e))),
            other => Err(other),
        };
    }
    let mut records = Vec::new();
    let mut offset = MAGIC.len();
    while offset < bytes.len() {
        match parse_frame(bytes, offset) {
            Ok((record, next)) => {
                records.push(record);
                offset = next;
            }
            Err(e) if is_tail_tear(&e, bytes) => return Ok((records, Tail::Torn(e))),
            Err(e) => return Err(e),
        }
    }
    Ok((records, Tail::Clean))
}

/// Strict read: magic plus every frame must parse to end-of-file; any
/// anomaly — including a torn tail — is the typed [`WalError`] for its
/// corruption class. Format tests and fixtures use this mode.
pub fn decode_strict(bytes: &[u8]) -> Result<Vec<Record>, WalError> {
    check_magic(bytes)?;
    let mut records = Vec::new();
    let mut offset = MAGIC.len();
    while offset < bytes.len() {
        let (record, next) = parse_frame(bytes, offset)?;
        records.push(record);
        offset = next;
    }
    Ok(records)
}

/// The append handle on one log file: frames records onto the Vfs and
/// counts appends/fsyncs for the engine's stats.
pub struct Wal {
    vfs: Arc<dyn Vfs>,
    path: String,
    appends: u64,
    fsyncs: u64,
}

impl Wal {
    /// Open `path` for appending, writing the magic header if the file is
    /// new. Existing contents are *not* validated here — recovery does
    /// that with [`scan`] before constructing a `Wal`.
    pub fn open(vfs: Arc<dyn Vfs>, path: &str) -> Result<Wal, WalError> {
        if !vfs.exists(path) {
            vfs.append(path, MAGIC)?;
        }
        Ok(Wal { vfs, path: path.to_string(), appends: 0, fsyncs: 0 })
    }

    /// Append one framed record.
    pub fn append(&mut self, record: &Record) -> Result<(), WalError> {
        self.vfs.append(&self.path, &frame(record))?;
        self.appends += 1;
        Ok(())
    }

    /// Durably flush all prior appends.
    pub fn fsync(&mut self) -> Result<(), WalError> {
        self.vfs.fsync(&self.path)?;
        self.fsyncs += 1;
        Ok(())
    }

    /// Atomically rewrite the log as `records` (checkpoint truncation):
    /// the new contents are fsynced into place before this returns.
    pub fn rewrite(&mut self, records: &[Record]) -> Result<(), WalError> {
        let mut bytes = MAGIC.to_vec();
        for r in records {
            bytes.extend_from_slice(&frame(r));
        }
        self.vfs.replace(&self.path, &bytes)?;
        self.vfs.fsync(&self.path)?;
        self.appends += records.len() as u64;
        self.fsyncs += 1;
        Ok(())
    }

    /// Records appended through this handle (including rewrites).
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Fsyncs issued through this handle.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// The log's file path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The Vfs this log writes through.
    pub fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.vfs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    fn sample() -> Vec<Record> {
        vec![
            Record::Begin { action: 0, parent: None },
            Record::Write { action: 0, key: vec![1], version: vec![10] },
            Record::Begin { action: 1, parent: Some(0) },
            Record::Write { action: 1, key: vec![1], version: vec![20] },
            Record::Commit { action: 1, epoch: None },
            Record::Commit { action: 0, epoch: Some(1) },
        ]
    }

    fn bytes_of(records: &[Record]) -> Vec<u8> {
        let mut bytes = MAGIC.to_vec();
        for r in records {
            bytes.extend_from_slice(&frame(r));
        }
        bytes
    }

    #[test]
    fn append_scan_roundtrip() {
        let vfs = Arc::new(MemVfs::new());
        let mut wal = Wal::open(vfs.clone(), "t.wal").unwrap();
        for r in sample() {
            wal.append(&r).unwrap();
        }
        wal.fsync().unwrap();
        assert_eq!(wal.appends(), 6);
        assert_eq!(wal.fsyncs(), 1);
        let (records, tail) = scan(&vfs.snapshot("t.wal")).unwrap();
        assert_eq!(records, sample());
        assert_eq!(tail, Tail::Clean);
        assert_eq!(decode_strict(&vfs.snapshot("t.wal")).unwrap(), sample());
    }

    #[test]
    fn reopen_appends_after_existing() {
        let vfs = Arc::new(MemVfs::new());
        let mut wal = Wal::open(vfs.clone(), "t.wal").unwrap();
        wal.append(&Record::Begin { action: 0, parent: None }).unwrap();
        drop(wal);
        let mut wal = Wal::open(vfs.clone(), "t.wal").unwrap();
        wal.append(&Record::Abort { action: 0 }).unwrap();
        let (records, tail) = scan(&vfs.snapshot("t.wal")).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(tail, Tail::Clean);
    }

    #[test]
    fn torn_tail_is_tolerated_by_scan_only() {
        let full = bytes_of(&sample());
        // Every strict prefix that cuts into the last frame scans to the
        // first 5 records with a Torn tail.
        let last_frame = frame(&Record::Commit { action: 0, epoch: Some(1) });
        for cut in (full.len() - last_frame.len() + 1)..full.len() {
            let prefix = &full[..cut];
            let (records, tail) = scan(prefix).unwrap();
            assert_eq!(records.len(), 5, "cut {cut}");
            assert!(matches!(tail, Tail::Torn(_)), "cut {cut}");
            assert!(decode_strict(prefix).is_err(), "strict must reject cut {cut}");
        }
    }

    #[test]
    fn every_byte_prefix_scans_or_fails_typed() {
        let full = bytes_of(&sample());
        for cut in 0..=full.len() {
            let prefix = &full[..cut];
            match scan(prefix) {
                Ok((records, _)) => assert!(records.len() <= 6),
                Err(e) => panic!("prefix cut {cut} must scan (got {e})"),
            }
        }
    }

    #[test]
    fn mid_log_bitflip_is_a_hard_error() {
        let full = bytes_of(&sample());
        // Flip a payload byte of the FIRST record: scan must fail (valid
        // frames follow, so this cannot be a torn tail).
        let mut corrupt = full.clone();
        corrupt[MAGIC.len() + 8] ^= 0x40;
        match scan(&corrupt) {
            Err(WalError::BadCrc { offset, .. }) => assert_eq!(offset, MAGIC.len()),
            other => panic!("expected mid-log BadCrc, got {other:?}"),
        }
    }

    #[test]
    fn tail_bitflip_is_a_torn_tail() {
        let full = bytes_of(&sample());
        let mut corrupt = full.clone();
        let last = full.len() - 1;
        corrupt[last] ^= 0x01;
        let (records, tail) = scan(&corrupt).unwrap();
        assert_eq!(records.len(), 5, "last record discarded");
        assert!(matches!(tail, Tail::Torn(WalError::BadCrc { .. })));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = bytes_of(&sample());
        bytes[0] = b'X';
        assert_eq!(scan(&bytes), Err(WalError::BadMagic));
        assert_eq!(decode_strict(&bytes), Err(WalError::BadMagic));
    }

    #[test]
    fn truncated_magic_is_torn_for_scan() {
        let (records, tail) = scan(b"RNTW").unwrap();
        assert!(records.is_empty());
        assert_eq!(tail, Tail::Torn(WalError::TruncatedMagic));
        assert_eq!(decode_strict(b"RNTW"), Err(WalError::TruncatedMagic));
    }

    #[test]
    fn empty_bytes_are_an_empty_log() {
        assert_eq!(scan(b"").unwrap(), (Vec::new(), Tail::Clean));
    }

    #[test]
    fn rewrite_truncates() {
        let vfs = Arc::new(MemVfs::new());
        let mut wal = Wal::open(vfs.clone(), "t.wal").unwrap();
        for r in sample() {
            wal.append(&r).unwrap();
        }
        let checkpoint = Record::Checkpoint { epoch: 1, snapshot: vec![(vec![1], 1, vec![20])] };
        wal.rewrite(std::slice::from_ref(&checkpoint)).unwrap();
        let (records, tail) = scan(&vfs.snapshot("t.wal")).unwrap();
        assert_eq!(records, vec![checkpoint]);
        assert_eq!(tail, Tail::Clean);
        // Appends continue after the rewritten contents.
        wal.append(&Record::Begin { action: 9, parent: None }).unwrap();
        let (records, _) = scan(&vfs.snapshot("t.wal")).unwrap();
        assert_eq!(records.len(), 2);
    }
}
