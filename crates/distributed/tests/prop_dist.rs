//! Randomized checking of the distributed level: Lemma 28's local mapping
//! discipline, Theorem 29's composed simulation, the Local Domain / Local
//! Changes properties, and gossip monotonicity, along random valid runs.

use proptest::prelude::*;
use rnt_algebra::{
    check_local_changes, check_local_domain, check_local_mapping_on_run, check_simulation_on_run,
    replay, Algebra, Composed, Interpretation,
};
use rnt_distributed::{summary_le_tree, DistEvent, HDist, Level5, Topology};
use rnt_locking::{HDoublePrime, HPrime, Level3, Level4};
use rnt_sim::gen::{random_run, random_universe, UniverseConfig};
use rnt_spec::{HSpec, Level1, Level2};
use std::sync::Arc;

fn config() -> UniverseConfig {
    UniverseConfig { objects: 2, top_actions: 2, max_fanout: 2, max_depth: 2, inner_prob: 0.5 }
}

fn setup(useed: u64, nodes: usize) -> (Arc<rnt_model::Universe>, Arc<Topology>, Level5) {
    let u = Arc::new(random_universe(useed, &config()));
    let t = Arc::new(Topology::round_robin(&u, nodes));
    let alg = Level5::new(u.clone(), t.clone());
    (u, t, alg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn lemma28_on_random_runs(useed in 0u64..3000, rseed in 0u64..3000, nodes in 1usize..4) {
        let (u, t, low) = setup(useed, nodes);
        let high = Level4::new(u.clone());
        let h = HDist::new(u, t);
        let run = random_run(&low, rseed, 50);
        check_local_mapping_on_run(&low, &high, &h, &run)
            .unwrap_or_else(|e| panic!("Lemma 28 failed: {e}"));
    }

    #[test]
    fn theorem29_on_random_runs(useed in 0u64..2000, rseed in 0u64..2000, nodes in 1usize..4) {
        let (u, t, l5) = setup(useed, nodes);
        let h = HDist::new(u.clone(), t);
        let hdp = HDoublePrime::new(u.clone());
        let h54: Composed<'_, _, _, Level4> = Composed::new(&h, &hdp);
        let h53: Composed<'_, _, _, Level3> = Composed::new(&h54, &HPrime);
        let h52: Composed<'_, _, _, Level2> = Composed::new(&h53, &HSpec);
        let l1 = Level1::new(u.clone());
        let run = random_run(&l5, rseed, 35);
        check_simulation_on_run(&l5, &l1, &h52, &run)
            .unwrap_or_else(|e| panic!("Theorem 29 failed: {e}"));
    }

    #[test]
    fn locality_on_random_samples(useed in 0u64..1000, rseed in 0u64..1000, nodes in 2usize..4) {
        // Lemma 22's content: B is distributed — the Local Domain and Local
        // Changes properties hold on sampled reachable states and events.
        let (_, _, alg) = setup(useed, nodes);
        let run = random_run(&alg, rseed, 30);
        let states = replay(&alg, run).expect("valid");
        let sample: Vec<_> = states.iter().step_by(3).cloned().collect();
        let mut events = Vec::new();
        for s in sample.iter().take(6) {
            events.extend(alg.enabled(s));
        }
        events.sort_by_key(|e| format!("{e:?}"));
        events.dedup();
        check_local_domain(&alg, &sample, &events)
            .unwrap_or_else(|e| panic!("local domain violated: {e}"));
        check_local_changes(&alg, &sample, &events)
            .unwrap_or_else(|e| panic!("local changes violated: {e}"));
    }

    #[test]
    fn node_knowledge_is_sound(useed in 0u64..3000, rseed in 0u64..3000, nodes in 1usize..4) {
        // Every node's summary, and every inbox, stays ≤ the true global
        // tree obtained by replaying the mapped run at level 4.
        let (u, t, low) = setup(useed, nodes);
        let high = Level4::new(u.clone());
        let h = HDist::new(u, t);
        let run = random_run(&low, rseed, 50);
        let low_states = replay(&low, run.clone()).expect("valid");
        let mapped: Vec<_> = run.iter().filter_map(|e| h.map_event(e)).collect();
        let high_states = replay(&high, mapped).expect("simulation holds");
        // Align: walk the low run, advancing the high index on non-Λ events.
        let mut hi = 0;
        for (i, ls) in low_states.iter().enumerate() {
            let tree = &high_states[hi].aat.tree;
            for node in &ls.nodes {
                for (a, _) in node.summary.entries() {
                    prop_assert!(tree.contains(a), "node knows unknown action {a}");
                }
            }
            for inbox in &ls.inboxes {
                prop_assert!(summary_le_tree(inbox, tree), "inbox ahead of reality");
            }
            if i < run.len()
                && !matches!(run[i], DistEvent::Send { .. } | DistEvent::Receive { .. })
            {
                hi += 1;
            }
        }
    }

    #[test]
    fn enabled_matches_apply_level5(useed in 0u64..1500, rseed in 0u64..1500, nodes in 1usize..4) {
        let (_, _, alg) = setup(useed, nodes);
        let run = random_run(&alg, rseed, 20);
        let states = replay(&alg, run).expect("valid");
        for s in states.iter().step_by(4) {
            for e in alg.enabled(s) {
                prop_assert!(alg.apply(s, &e).is_some(), "enabled {e:?} rejected");
            }
        }
    }
}
