//! When and how nodes exchange action summaries.
//!
//! The policy vocabulary is shared by every consumer of the level-5
//! gossip rules: the `rnt-sim` gossip runner (experiment E8), and the
//! `rnt-cluster` runtime router, which carries real cross-node
//! commit/abort status under the same three strategies. One definition
//! keeps the formal sweeps and the running system comparable cell by
//! cell.

use serde::{Deserialize, Serialize};

/// When and how nodes exchange action summaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GossipPolicy {
    /// After every transaction event, the doer broadcasts its *full*
    /// summary to every other node.
    EagerFull,
    /// After every status-changing event, the doer broadcasts only the
    /// changed entry.
    DeltaOnChange,
    /// Nodes run silently; every `n` transaction events, a full all-to-all
    /// sync round runs (also forced when progress stalls).
    Periodic(u32),
}

impl GossipPolicy {
    /// Short human-readable label for tables and reports.
    pub fn label(&self) -> String {
        match self {
            GossipPolicy::EagerFull => "eager".to_string(),
            GossipPolicy::DeltaOnChange => "delta".to_string(),
            GossipPolicy::Periodic(n) => format!("periodic({n})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(GossipPolicy::EagerFull.label(), "eager");
        assert_eq!(GossipPolicy::DeltaOnChange.label(), "delta");
        assert_eq!(GossipPolicy::Periodic(8).label(), "periodic(8)");
    }
}
