//! The local mapping `h''', h_i` from `B` to `A'''` (paper Section 9.3,
//! Lemmas 23–28) and the composed main theorem (Theorem 29).
//!
//! Each node's possibilities are the level-4 states consistent with its
//! partial knowledge: actions originated here are all known here, known
//! statuses are true statuses (with `active` as partial knowledge of a
//! possibly-done action), and the node's value map is exactly the global
//! map restricted to its homed objects. The buffer's possibilities are the
//! states whose tree dominates every inbox.

use crate::level5::{Component, DistEvent, DistState, Level5};
use crate::topology::Topology;
use rnt_algebra::{Interpretation, LocalMapping};
use rnt_locking::{L4State, Level4};
use rnt_model::{ActionId, ActionSummary, ActionTree, Status, TxEvent, Universe};
use std::sync::Arc;

/// `T' ≤ T` where the left side is an action summary and the right an
/// action tree (Section 9.1's ordering, mixed-type form).
pub fn summary_le_tree(summary: &ActionSummary, tree: &ActionTree) -> bool {
    summary.entries().all(|(a, s)| match (s, tree.status(a)) {
        (_, None) => false,
        (Status::Active, Some(_)) => true,
        (Status::Committed, Some(ts)) => ts == Status::Committed,
        (Status::Aborted, Some(ts)) => ts == Status::Aborted,
    })
}

/// The interpretation + local mapping `h'''` of Section 9.3.
pub struct HDist {
    universe: Arc<Universe>,
    topology: Arc<Topology>,
}

impl HDist {
    /// Build the mapping for a given universe and topology.
    pub fn new(universe: Arc<Universe>, topology: Arc<Topology>) -> Self {
        HDist { universe, topology }
    }

    fn node_consistent(&self, low: &DistState, i: usize, high: &L4State) -> bool {
        let node = &low.nodes[i];
        let tree = &high.aat.tree;
        // vertices_T ∩ {A : origin(A) = i} ⊆ i.vertices ⊆ vertices_T.
        for a in tree.vertices() {
            if !a.is_root() && self.topology.origin(a) == i && !node.summary.contains(a) {
                return false;
            }
        }
        for (a, s) in node.summary.entries() {
            match tree.status(a) {
                None => return false,
                Some(ts) => {
                    // committed_T ∩ home=i ⊆ i.committed ⊆ committed_T and
                    // likewise for aborted: a node's done knowledge is true,
                    // and done status of *homed* actions is always known.
                    match s {
                        Status::Active => {}
                        Status::Committed if ts != Status::Committed => return false,
                        Status::Aborted if ts != Status::Aborted => return false,
                        _ => {}
                    }
                }
            }
        }
        for a in tree.vertices() {
            if a.is_root() || !self.universe.contains(a) {
                continue;
            }
            if self.topology.home_of_action(a) != i {
                continue;
            }
            match tree.status(a) {
                Some(Status::Committed) if !node.summary.is_committed(a) => return false,
                Some(Status::Aborted) if !node.summary.is_aborted(a) => return false,
                _ => {}
            }
        }
        // i.V is the restriction of V to objects homed at i.
        let node_entries: Vec<(_, &ActionId, _)> = node.vmap.entries().collect();
        let global_restricted: Vec<(_, &ActionId, _)> =
            high.vmap.entries().filter(|(x, _, _)| self.topology.home_of_object(*x) == i).collect();
        node_entries == global_restricted
    }
}

impl Interpretation<Level5, Level4> for HDist {
    fn map_event(&self, event: &DistEvent) -> Option<TxEvent> {
        match event {
            DistEvent::Tx(_, tx) => Some(tx.clone()),
            DistEvent::Send { .. } | DistEvent::Receive { .. } => None,
        }
    }
}

impl LocalMapping<Level5, Level4> for HDist {
    fn is_locally_consistent(&self, low: &DistState, comp: Component, high: &L4State) -> bool {
        match comp {
            Component::Node(i) => self.node_consistent(low, i, high),
            Component::Buffer => low.inboxes.iter().all(|m| summary_le_tree(m, &high.aat.tree)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnt_algebra::{
        check_local_mapping_on_run, check_simulation_on_run, Algebra, Composed, SimulationError,
    };
    use rnt_locking::{HDoublePrime, HPrime, Level3};
    use rnt_model::{act, ObjectId, UniverseBuilder, UpdateFn};
    use rnt_spec::{HSpec, Level1, Level2};

    fn universe() -> Arc<Universe> {
        Arc::new(
            UniverseBuilder::new()
                .object(0, 1)
                .object(1, 10)
                .action(act![0])
                .access(act![0, 0], 0, UpdateFn::Add(1))
                .access(act![0, 1], 1, UpdateFn::Add(2))
                .action(act![1])
                .access(act![1, 0], 0, UpdateFn::Mul(2))
                .build()
                .unwrap(),
        )
    }

    fn setup() -> (Arc<Universe>, Arc<Topology>, Level5, Level4, HDist) {
        let u = universe();
        let t = Arc::new(Topology::round_robin(&u, 2));
        let l5 = Level5::new(u.clone(), t.clone());
        let l4 = Level4::new(u.clone());
        let h = HDist::new(u.clone(), t.clone());
        (u, t, l5, l4, h)
    }

    /// A distributed run exercising gossip, cross-node perform, commit,
    /// abort and lock loss.
    fn rich_run(t: &Topology) -> Vec<DistEvent> {
        let n0 = t.home_of_action(&act![0]);
        let n1 = t.home_of_object(ObjectId(1));
        let full = |entries: &[(&ActionId, Status)]| {
            ActionSummary::from_entries(entries.iter().map(|(a, s)| ((*a).clone(), *s)))
        };
        vec![
            DistEvent::Tx(n0, TxEvent::Create(act![0])),
            DistEvent::Tx(n0, TxEvent::Create(act![0, 0])),
            DistEvent::Tx(n0, TxEvent::Perform(act![0, 0], 1)),
            DistEvent::Tx(n0, TxEvent::Create(act![0, 1])),
            DistEvent::Send {
                from: n0,
                to: n1,
                summary: full(&[(&act![0], Status::Active), (&act![0, 1], Status::Active)]),
            },
            DistEvent::Receive {
                to: n1,
                summary: full(&[(&act![0], Status::Active), (&act![0, 1], Status::Active)]),
            },
            DistEvent::Tx(n1, TxEvent::Perform(act![0, 1], 10)),
            DistEvent::Tx(n0, TxEvent::ReleaseLock(act![0, 0], ObjectId(0))),
            // Node 0 must learn the child datastep is done before (b12)
            // lets it commit act![0].
            DistEvent::Send {
                from: n1,
                to: n0,
                summary: full(&[(&act![0, 1], Status::Committed)]),
            },
            DistEvent::Receive { to: n0, summary: full(&[(&act![0, 1], Status::Committed)]) },
            DistEvent::Tx(n0, TxEvent::Commit(act![0])),
            DistEvent::Send { from: n0, to: n1, summary: full(&[(&act![0], Status::Committed)]) },
            DistEvent::Receive { to: n1, summary: full(&[(&act![0], Status::Committed)]) },
            DistEvent::Tx(n1, TxEvent::ReleaseLock(act![0, 1], ObjectId(1))),
            // A second top-level action that aborts. Its home (and so its
            // children's origin) is wherever the topology put act![1].
            DistEvent::Tx(t.home_of_action(&act![1]), TxEvent::Create(act![1])),
            DistEvent::Tx(t.home_of_action(&act![1]), TxEvent::Create(act![1, 0])),
            // x0's home must learn of the new access before performing it.
            DistEvent::Send {
                from: t.home_of_action(&act![1]),
                to: n0,
                summary: full(&[(&act![1], Status::Active), (&act![1, 0], Status::Active)]),
            },
            DistEvent::Receive {
                to: n0,
                summary: full(&[(&act![1], Status::Active), (&act![1, 0], Status::Active)]),
            },
            DistEvent::Tx(n0, TxEvent::ReleaseLock(act![0], ObjectId(0))),
            DistEvent::Tx(n0, TxEvent::Perform(act![1, 0], 2)),
            DistEvent::Tx(t.home_of_action(&act![1]), TxEvent::Abort(act![1])),
            // The abort travels to x0's home, which then loses the lock.
            DistEvent::Send {
                from: t.home_of_action(&act![1]),
                to: n0,
                summary: full(&[(&act![1], Status::Aborted)]),
            },
            DistEvent::Receive { to: n0, summary: full(&[(&act![1], Status::Aborted)]) },
            DistEvent::Tx(n0, TxEvent::LoseLock(act![1, 0], ObjectId(0))),
        ]
    }

    #[test]
    fn lemma28_local_mapping_on_run() {
        let (_, t, l5, l4, h) = setup();
        let run = rich_run(&t);
        let rep = check_local_mapping_on_run(&l5, &l4, &h, &run).unwrap();
        assert!(rep.high_steps < rep.low_steps, "gossip maps to Λ");
    }

    #[test]
    fn theorem29_composed_simulation() {
        // h ∘ h' ∘ h'' ∘ h''' : B simulates A.
        let (u, t, l5, _, h) = setup();
        let run = rich_run(&t);
        let hdp = HDoublePrime::new(u.clone());
        let h54: Composed<'_, _, _, Level4> = Composed::new(&h, &hdp);
        let h53: Composed<'_, _, _, Level3> = Composed::new(&h54, &HPrime);
        let h52: Composed<'_, _, _, Level2> = Composed::new(&h53, &HSpec);
        let l1 = Level1::new(u.clone());
        check_simulation_on_run(&l5, &l1, &h52, &run).unwrap();
    }

    #[test]
    fn wrong_interleaving_detected() {
        // Performing before gossip is invalid at level 5 (low invalid),
        // which the checker reports rather than silently passing.
        let (_, t, l5, l4, h) = setup();
        let n1 = t.home_of_object(ObjectId(1));
        let run = vec![DistEvent::Tx(n1, TxEvent::Perform(act![0, 1], 10))];
        let err = check_local_mapping_on_run(&l5, &l4, &h, &run).unwrap_err();
        assert!(matches!(err, SimulationError::LowInvalid(_)));
    }

    #[test]
    fn summary_le_tree_cases() {
        let mut tree = ActionTree::trivial();
        tree.create(act![0]);
        tree.set_committed(&act![0]);
        assert!(summary_le_tree(&ActionSummary::singleton(act![0], Status::Active), &tree));
        assert!(summary_le_tree(&ActionSummary::singleton(act![0], Status::Committed), &tree));
        assert!(!summary_le_tree(&ActionSummary::singleton(act![0], Status::Aborted), &tree));
        assert!(!summary_le_tree(&ActionSummary::singleton(act![1], Status::Active), &tree));
        assert!(summary_le_tree(&ActionSummary::trivial(), &tree));
    }

    #[test]
    fn initial_states_locally_consistent() {
        let (_, _, l5, l4, h) = setup();
        let low = l5.initial();
        let high = l4.initial();
        for comp in rnt_algebra::DistributedAlgebra::component_ids(&l5) {
            assert!(h.is_locally_consistent(&low, comp, &high), "{comp:?} inconsistent at σ");
        }
    }

    #[test]
    fn global_possibility_is_intersection() {
        let (_, t, l5, l4, h) = setup();
        let run = rich_run(&t);
        let low = rnt_algebra::replay(&l5, run.clone()).unwrap().pop().unwrap();
        let mapped: Vec<_> = run.iter().filter_map(|e| h.map_event(e)).collect();
        let high = rnt_algebra::replay(&l4, mapped).unwrap().pop().unwrap();
        assert!(rnt_algebra::is_global_possibility(&l5, &h, &low, &high));
        // A corrupted high state is rejected by some component.
        let mut bad = high.clone();
        bad.aat.tree.set_aborted(&act![0]);
        assert!(!rnt_algebra::is_global_possibility(&l5, &h, &low, &bad));
    }
}
