//! Level 5: the distributed algebra `B` (paper Section 9.2) — `k` nodes,
//! each holding an action summary and the value map of its homed objects,
//! plus a message buffer recording everything ever sent to each node.

use crate::topology::{NodeId, Topology};
use rnt_algebra::{Algebra, DistributedAlgebra};
use rnt_locking::ValueMap;
use rnt_model::{ActionSummary, Status, TxEvent, Universe};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The local state of one node: `i.T` and `i.V`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct NodeState {
    /// `i.T`: the node's knowledge of action statuses.
    pub summary: ActionSummary,
    /// `i.V`: the value map over objects homed at this node.
    pub vmap: ValueMap,
}

/// A global state of `B`: node states plus the buffer's per-recipient
/// accumulated summaries `M_j`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct DistState {
    /// Node-local states, indexed by [`NodeId`].
    pub nodes: Vec<NodeState>,
    /// `M_j`: everything ever sent to node `j`.
    pub inboxes: Vec<ActionSummary>,
}

/// An event of `B`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum DistEvent {
    /// `create/commit/abort/perform/release-lock/lose-lock` at a node.
    Tx(NodeId, TxEvent),
    /// `send_{i,j,T'}`: node `i` sends summary `T'` to node `j`.
    Send {
        /// The sending node `i`.
        from: NodeId,
        /// The recipient node `j`.
        to: NodeId,
        /// The action summary `T' ≤ i.T`.
        summary: ActionSummary,
    },
    /// `receive_{j,T'}`: the buffer delivers `T' ≤ M_j` into `j.T`.
    Receive {
        /// The recipient node `j`.
        to: NodeId,
        /// The delivered summary.
        summary: ActionSummary,
    },
}

/// The component index set `I = [k] ∪ {buffer}`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Component {
    /// A node in `[k]`.
    Node(NodeId),
    /// The message system.
    Buffer,
}

/// The projection of a global state onto one component.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ComponentState {
    /// A node's local state.
    Node(NodeState),
    /// The buffer's inboxes.
    Buffer(Vec<ActionSummary>),
}

/// The level-5 distributed Moss locking algebra.
pub struct Level5 {
    universe: Arc<Universe>,
    topology: Arc<Topology>,
}

impl Level5 {
    /// Build the algebra over a universe and a topology.
    pub fn new(universe: Arc<Universe>, topology: Arc<Topology>) -> Self {
        Level5 { universe, topology }
    }

    /// The universe this algebra draws actions from.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The node topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    fn apply_tx(&self, s: &DistState, i: NodeId, event: &TxEvent) -> Option<DistState> {
        let u = &self.universe;
        let t = &self.topology;
        if i >= t.node_count() {
            return None;
        }
        let node = &s.nodes[i];
        match event {
            TxEvent::Create(a) => {
                // (a): origin(A) = i; A ∉ i.vertices; a non-U parent must be
                // in i.vertices − i.committed.
                if a.is_root() || !u.contains(a) || t.origin(a) != i {
                    return None;
                }
                if node.summary.contains(a) {
                    return None;
                }
                let parent = a.parent().expect("non-root");
                if !parent.is_root()
                    && (!node.summary.contains(&parent) || node.summary.is_committed(&parent))
                {
                    return None;
                }
                let mut next = s.clone();
                next.nodes[i].summary.set(a.clone(), Status::Active);
                Some(next)
            }
            TxEvent::Commit(a) => {
                // (b): A ∉ accesses, home(A) = i, A ∈ i.active, known
                // children all done in i.T.
                if a.is_root() || !u.contains(a) || u.is_access(a) || t.home_of_action(a) != i {
                    return None;
                }
                if !node.summary.is_active(a) {
                    return None;
                }
                let all_done = u
                    .children_of(a)
                    .iter()
                    .filter(|c| node.summary.contains(c))
                    .all(|c| node.summary.is_done(c));
                if !all_done {
                    return None;
                }
                let mut next = s.clone();
                next.nodes[i].summary.set(a.clone(), Status::Committed);
                Some(next)
            }
            TxEvent::Abort(a) => {
                // (c): A ∉ accesses, home(A) = i, A ∈ i.active.
                if a.is_root() || !u.contains(a) || u.is_access(a) || t.home_of_action(a) != i {
                    return None;
                }
                if !node.summary.is_active(a) {
                    return None;
                }
                let mut next = s.clone();
                next.nodes[i].summary.set(a.clone(), Status::Aborted);
                Some(next)
            }
            TxEvent::Perform(a, value) => {
                // (d): home(A) = home(x) = i; A ∈ i.active; i.V's holders
                // are proper ancestors; u the principal value of i.V.
                if !u.is_access(a) || t.home_of_action(a) != i {
                    return None;
                }
                if !node.summary.is_active(a) {
                    return None;
                }
                let x = u.object_of(a).expect("access has object");
                if t.home_of_object(x) != i {
                    return None;
                }
                if !node.vmap.holders(x).all(|h| h.is_proper_ancestor_of(a)) {
                    return None;
                }
                if Some(*value) != node.vmap.principal_value(x) {
                    return None;
                }
                let update = u.update_of(a).expect("access has update");
                let mut next = s.clone();
                next.nodes[i].summary.set(a.clone(), Status::Committed);
                next.nodes[i].vmap.acquire(x, a.clone(), update.apply(*value));
                Some(next)
            }
            TxEvent::ReleaseLock(a, x) => {
                // (e): home(x) = i; i.V(x, A) defined; A ∈ i.committed.
                if a.is_root() || t.home_of_object(*x) != i {
                    return None;
                }
                if !node.vmap.is_defined(*x, a) || !node.summary.is_committed(a) {
                    return None;
                }
                let mut next = s.clone();
                next.nodes[i].vmap.release_to_parent(*x, a);
                Some(next)
            }
            TxEvent::LoseLock(a, x) => {
                // (f): home(x) = i; i.V(x, A) defined; some ancestor of A in
                // i.aborted.
                if a.is_root() || t.home_of_object(*x) != i {
                    return None;
                }
                if !node.vmap.is_defined(*x, a) || !node.summary.knows_dead(a) {
                    return None;
                }
                let mut next = s.clone();
                next.nodes[i].vmap.discard(*x, a);
                Some(next)
            }
        }
    }
}

/// Chaos-harness hooks (compiled only with `chaos-hooks`): enumeration of
/// the enabled *failure-path* events, and the node-local invariants a
/// fault-biased random walk must preserve at every step.
#[cfg(feature = "chaos-hooks")]
impl Level5 {
    /// The enabled events that drive the system down failure paths: aborts
    /// and `lose-lock`s (the paper's level-4 event made distributed). A
    /// chaos driver biases its walk toward these to exercise orphan
    /// creation and lock loss under gossip.
    pub fn chaos_enabled_faults(&self, s: &DistState) -> Vec<DistEvent> {
        self.enabled(s)
            .into_iter()
            .filter(|e| {
                matches!(
                    e,
                    DistEvent::Tx(_, TxEvent::Abort(_)) | DistEvent::Tx(_, TxEvent::LoseLock(..))
                )
            })
            .collect()
    }

    /// Node-local invariants of a reachable state: every node knows only
    /// declared actions, holds locks only on objects homed at it, knows
    /// every non-root lock holder locally, and every inbox carries only
    /// declared actions. Returns human-readable violations (empty = all
    /// invariants hold).
    pub fn chaos_node_violations(&self, s: &DistState) -> Vec<String> {
        let u = &self.universe;
        let t = &self.topology;
        let mut out = Vec::new();
        for (i, node) in s.nodes.iter().enumerate() {
            for (a, _) in node.summary.entries() {
                if !u.contains(a) {
                    out.push(format!("node {i} knows undeclared action {a}"));
                }
            }
            for (x, h, _) in node.vmap.entries() {
                if t.home_of_object(x) != i {
                    out.push(format!("node {i} holds foreign object {x}"));
                }
                if !h.is_root() && !node.summary.contains(h) {
                    out.push(format!("node {i} lock holder {h} unknown locally"));
                }
            }
        }
        for (j, inbox) in s.inboxes.iter().enumerate() {
            for (a, _) in inbox.entries() {
                if !u.contains(a) {
                    out.push(format!("inbox {j} carries undeclared action {a}"));
                }
            }
        }
        out
    }
}

impl Algebra for Level5 {
    type State = DistState;
    type Event = DistEvent;

    fn initial(&self) -> DistState {
        let k = self.topology.node_count();
        let nodes = (0..k)
            .map(|i| NodeState {
                summary: ActionSummary::trivial(),
                vmap: ValueMap::initial_filtered(&self.universe, |x| {
                    self.topology.home_of_object(x) == i
                }),
            })
            .collect();
        DistState { nodes, inboxes: vec![ActionSummary::trivial(); k] }
    }

    fn apply(&self, s: &DistState, event: &DistEvent) -> Option<DistState> {
        match event {
            DistEvent::Tx(i, tx) => self.apply_tx(s, *i, tx),
            DistEvent::Send { from, to, summary } => {
                // (g): T' ≤ i.T.
                if *from >= s.nodes.len() || *to >= s.nodes.len() {
                    return None;
                }
                if !summary.le(&s.nodes[*from].summary) {
                    return None;
                }
                let mut next = s.clone();
                next.inboxes[*to].union_in_place(summary);
                Some(next)
            }
            DistEvent::Receive { to, summary } => {
                // (h): T' ≤ M_j.
                if *to >= s.nodes.len() {
                    return None;
                }
                if !summary.le(&s.inboxes[*to]) {
                    return None;
                }
                let mut next = s.clone();
                next.nodes[*to].summary.union_in_place(summary);
                Some(next)
            }
        }
    }

    /// Event enumeration. Communication events are restricted to *maximal*
    /// summaries (full gossip: `T' = i.T` for send, `T' = M_j` for
    /// receive); `apply` accepts any valid sub-summary, and the simulation
    /// proof covers them all, but enumerating the power set of summaries is
    /// exponential and adds no new reachable knowledge states beyond
    /// staging, which the union-closed buffer already exercises.
    fn enabled(&self, s: &DistState) -> Vec<DistEvent> {
        let u = &self.universe;
        let t = &self.topology;
        let mut out = Vec::new();
        for i in 0..t.node_count() {
            let node = &s.nodes[i];
            for a in u.actions() {
                for tx in [
                    TxEvent::Create(a.clone()),
                    TxEvent::Commit(a.clone()),
                    TxEvent::Abort(a.clone()),
                ] {
                    if self.apply_tx(s, i, &tx).is_some() {
                        out.push(DistEvent::Tx(i, tx));
                    }
                }
                if u.is_access(a) && node.summary.is_active(a) && t.home_of_action(a) == i {
                    let x = u.object_of(a).expect("access has object");
                    if let Some(value) = node.vmap.principal_value(x) {
                        let tx = TxEvent::Perform(a.clone(), value);
                        if self.apply_tx(s, i, &tx).is_some() {
                            out.push(DistEvent::Tx(i, tx));
                        }
                    }
                }
            }
            let lock_events: Vec<TxEvent> = node
                .vmap
                .entries()
                .filter(|(_, h, _)| !h.is_root())
                .flat_map(|(x, h, _)| {
                    [TxEvent::ReleaseLock(h.clone(), x), TxEvent::LoseLock(h.clone(), x)]
                })
                .collect();
            for tx in lock_events {
                if self.apply_tx(s, i, &tx).is_some() {
                    out.push(DistEvent::Tx(i, tx));
                }
            }
            // Full gossip to every other node (skip no-op empty sends).
            if !node.summary.is_empty() {
                for j in 0..t.node_count() {
                    if j != i {
                        let ev = DistEvent::Send { from: i, to: j, summary: node.summary.clone() };
                        out.push(ev);
                    }
                }
            }
        }
        for j in 0..t.node_count() {
            if !s.inboxes[j].is_empty() {
                out.push(DistEvent::Receive { to: j, summary: s.inboxes[j].clone() });
            }
        }
        out
    }
}

impl DistributedAlgebra for Level5 {
    type ComponentId = Component;
    type ComponentState = ComponentState;

    fn component_ids(&self) -> Vec<Component> {
        (0..self.topology.node_count())
            .map(Component::Node)
            .chain(std::iter::once(Component::Buffer))
            .collect()
    }

    fn doer(&self, event: &DistEvent) -> Component {
        match event {
            DistEvent::Tx(i, _) => Component::Node(*i),
            DistEvent::Send { from, .. } => Component::Node(*from),
            DistEvent::Receive { .. } => Component::Buffer,
        }
    }

    fn component_state(&self, state: &DistState, comp: Component) -> ComponentState {
        match comp {
            Component::Node(i) => ComponentState::Node(state.nodes[i].clone()),
            Component::Buffer => ComponentState::Buffer(state.inboxes.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnt_algebra::{
        check_local_changes, check_local_domain, explore, is_valid, replay, ExploreConfig,
    };
    use rnt_model::{act, ObjectId, UniverseBuilder, UpdateFn};

    fn universe() -> Arc<Universe> {
        Arc::new(
            UniverseBuilder::new()
                .object(0, 1)
                .object(1, 10)
                .action(act![0])
                .access(act![0, 0], 0, UpdateFn::Add(1))
                .access(act![0, 1], 1, UpdateFn::Add(2))
                .action(act![1])
                .access(act![1, 0], 0, UpdateFn::Mul(2))
                .build()
                .unwrap(),
        )
    }

    fn two_nodes() -> (Arc<Universe>, Arc<Topology>) {
        let u = universe();
        let t = Arc::new(Topology::round_robin(&u, 2));
        (u, t)
    }

    /// A cross-node run: act![0] is created at node0 (home of x0), its
    /// access to x1 runs at node 1, which must learn of the creation by
    /// gossip first.
    fn cross_node_run(alg: &Level5) -> Vec<DistEvent> {
        let t = alg.topology();
        let n0 = t.home_of_action(&act![0]);
        let n1 = t.home_of_object(ObjectId(1));
        assert_ne!(n0, n1);
        vec![
            DistEvent::Tx(n0, TxEvent::Create(act![0])),
            // act![0,1] must be created at origin = home(parent) = n0.
            DistEvent::Tx(n0, TxEvent::Create(act![0, 1])),
            // Gossip the creation to node n1 so perform's i.active holds.
            DistEvent::Send {
                from: n0,
                to: n1,
                summary: ActionSummary::from_entries([
                    (act![0], Status::Active),
                    (act![0, 1], Status::Active),
                ]),
            },
            DistEvent::Receive {
                to: n1,
                summary: ActionSummary::from_entries([
                    (act![0], Status::Active),
                    (act![0, 1], Status::Active),
                ]),
            },
            DistEvent::Tx(n1, TxEvent::Perform(act![0, 1], 10)),
        ]
    }

    #[test]
    fn cross_node_run_is_valid() {
        let (u, t) = two_nodes();
        let alg = Level5::new(u, t);
        let run = cross_node_run(&alg);
        assert!(is_valid(&alg, run));
    }

    #[test]
    fn perform_requires_local_knowledge() {
        let (u, t) = two_nodes();
        let alg = Level5::new(u, t);
        let run = cross_node_run(&alg);
        // Without the gossip steps the perform is rejected.
        let short: Vec<_> = run
            .iter()
            .filter(|e| !matches!(e, DistEvent::Send { .. } | DistEvent::Receive { .. }))
            .cloned()
            .collect();
        assert!(!is_valid(&alg, short));
    }

    #[test]
    fn create_requires_origin() {
        let (u, t) = two_nodes();
        let n0 = t.home_of_action(&act![0]);
        let alg = Level5::new(u, t);
        let s = alg.initial();
        let wrong = (n0 + 1) % 2;
        assert!(alg.apply(&s, &DistEvent::Tx(wrong, TxEvent::Create(act![0]))).is_none());
        assert!(alg.apply(&s, &DistEvent::Tx(n0, TxEvent::Create(act![0]))).is_some());
    }

    #[test]
    fn send_requires_sub_summary() {
        let (u, t) = two_nodes();
        let alg = Level5::new(u, t);
        let s = alg.initial();
        let bogus = ActionSummary::singleton(act![0], Status::Committed);
        assert!(alg
            .apply(&s, &DistEvent::Send { from: 0, to: 1, summary: bogus.clone() })
            .is_none());
        // Receive of an unsent summary also rejected.
        assert!(alg.apply(&s, &DistEvent::Receive { to: 1, summary: bogus }).is_none());
    }

    #[test]
    fn stale_gossip_is_harmless() {
        // Receiving an *old* summary after newer knowledge must not regress
        // status (union prefers done).
        let (u, t) = two_nodes();
        let n0 = t.home_of_action(&act![0]);
        let n1 = (n0 + 1) % 2;
        let alg = Level5::new(u, t);
        let active = ActionSummary::singleton(act![0], Status::Active);
        let run = vec![
            DistEvent::Tx(n0, TxEvent::Create(act![0])),
            DistEvent::Send { from: n0, to: n1, summary: active.clone() },
            DistEvent::Tx(n0, TxEvent::Commit(act![0])),
            DistEvent::Send {
                from: n0,
                to: n1,
                summary: ActionSummary::singleton(act![0], Status::Committed),
            },
            DistEvent::Receive {
                to: n1,
                summary: ActionSummary::singleton(act![0], Status::Committed),
            },
            // Stale delivery after the fact.
            DistEvent::Receive { to: n1, summary: active },
        ];
        let states = replay(&alg, run).unwrap();
        let last = states.last().unwrap();
        assert!(last.nodes[n1].summary.is_committed(&act![0]));
    }

    #[test]
    fn locality_properties_on_reachable_sample() {
        let (u, t) = two_nodes();
        let alg = Level5::new(u, t);
        // Collect a bounded sample of reachable states.
        let mut states = Vec::new();
        let _ = explore(&alg, &ExploreConfig { max_states: 300, max_depth: 0 }, |s| {
            states.push(s.clone());
            Ok(())
        })
        .unwrap();
        // Events to test: everything enabled anywhere in the sample.
        let mut events = Vec::new();
        for s in states.iter().take(40) {
            events.extend(alg.enabled(s));
        }
        events.sort_by_key(|e| format!("{e:?}"));
        events.dedup();
        let sample: Vec<_> = states.iter().take(60).cloned().collect();
        check_local_domain(&alg, &sample, &events).unwrap();
        check_local_changes(&alg, &sample, &events).unwrap();
    }

    #[test]
    fn enabled_matches_apply() {
        let (u, t) = two_nodes();
        let alg = Level5::new(u, t);
        let mut state = alg.initial();
        for _ in 0..12 {
            let evs = alg.enabled(&state);
            for e in &evs {
                assert!(alg.apply(&state, e).is_some(), "enabled {e:?} rejected");
            }
            let Some(e) = evs.into_iter().next() else { break };
            state = alg.apply(&state, &e).unwrap();
        }
    }

    #[test]
    fn exhaustive_exploration_with_node_invariants() {
        // Every reachable level-5 state keeps each node's lock chain
        // well-formed over its homed objects and its summary within the
        // declared universe.
        let u = universe();
        let t = Arc::new(Topology::round_robin(&u, 2));
        let alg = Level5::new(u.clone(), t.clone());
        let report =
            explore(&alg, &ExploreConfig { max_states: 150_000, max_depth: 0 }, |s: &DistState| {
                for (i, node) in s.nodes.iter().enumerate() {
                    for (a, _) in node.summary.entries() {
                        if !u.contains(a) {
                            return Err(format!("node {i} knows undeclared {a}"));
                        }
                    }
                    for (x, h, _) in node.vmap.entries().collect::<Vec<_>>().iter() {
                        if t.home_of_object(*x) != i {
                            return Err(format!("node {i} holds foreign object {x}"));
                        }
                        if !h.is_root() && !node.summary.contains(h) {
                            return Err(format!("node {i} lock holder {h} unknown locally"));
                        }
                    }
                }
                for inbox in &s.inboxes {
                    for (a, _) in inbox.entries() {
                        if !u.contains(a) {
                            return Err(format!("inbox carries undeclared {a}"));
                        }
                    }
                }
                Ok(())
            })
            .unwrap_or_else(|ce| panic!("{ce}"));
        assert!(report.states > 1_000, "{report:?}");
    }

    #[test]
    fn single_node_behaves_like_level4_locking() {
        let u = universe();
        let t = Arc::new(Topology::single_node(&u));
        let alg = Level5::new(u, t);
        let run = vec![
            DistEvent::Tx(0, TxEvent::Create(act![0])),
            DistEvent::Tx(0, TxEvent::Create(act![0, 0])),
            DistEvent::Tx(0, TxEvent::Perform(act![0, 0], 1)),
            DistEvent::Tx(0, TxEvent::ReleaseLock(act![0, 0], ObjectId(0))),
            DistEvent::Tx(0, TxEvent::Commit(act![0])),
            DistEvent::Tx(0, TxEvent::ReleaseLock(act![0], ObjectId(0))),
            DistEvent::Tx(0, TxEvent::Create(act![1])),
            DistEvent::Tx(0, TxEvent::Create(act![1, 0])),
            DistEvent::Tx(0, TxEvent::Perform(act![1, 0], 2)),
        ];
        assert!(is_valid(&alg, run));
    }
}
