//! # rnt-distributed
//!
//! Level 5 of the paper's algebra tower: the distributed Moss locking
//! algorithm `B` (Section 9), with
//!
//! * [`Topology`] — the `home`/`origin` partition of actions and objects
//!   over `k` nodes;
//! * [`Level5`] — nodes holding action summaries + homed value maps, a
//!   message buffer, and the eight event kinds including `send`/`receive`
//!   gossip;
//! * [`HDist`] — the local mapping `h''', h_i` of Section 9.3
//!   (Lemmas 23–28); composing with the higher mappings yields the main
//!   correctness theorem, Theorem 29, checked on runs in the tests and
//!   experiments;
//! * [`GossipPolicy`] — the shared vocabulary of summary-propagation
//!   strategies (eager / delta / periodic), used both by the `rnt-sim`
//!   gossip sweeps and the `rnt-cluster` runtime router;
//! * [`validate_level5_run`] — the trace oracle: replays an event trace
//!   recorded by a *running* engine through the algebra and the mapping
//!   tower, so real executions are judged by the formal model.
//!
//! ```
//! use rnt_algebra::{is_valid, Algebra};
//! use rnt_distributed::{DistEvent, Level5, Topology};
//! use rnt_model::{act, TxEvent, UniverseBuilder, UpdateFn};
//! use std::sync::Arc;
//!
//! let universe = Arc::new(
//!     UniverseBuilder::new()
//!         .object(0, 0)
//!         .action(act![0])
//!         .access(act![0, 0], 0, UpdateFn::Add(1))
//!         .build()
//!         .unwrap(),
//! );
//! let topology = Arc::new(Topology::single_node(&universe));
//! let level5 = Level5::new(universe, topology);
//! assert!(is_valid(&level5, vec![
//!     DistEvent::Tx(0, TxEvent::Create(act![0])),
//!     DistEvent::Tx(0, TxEvent::Create(act![0, 0])),
//!     DistEvent::Tx(0, TxEvent::Perform(act![0, 0], 0)),
//! ]));
//! ```

#![warn(missing_docs)]

mod level5;
mod local_mapping;
mod policy;
mod topology;
mod trace;

pub use level5::{Component, ComponentState, DistEvent, DistState, Level5, NodeState};
pub use local_mapping::{summary_le_tree, HDist};
pub use policy::GossipPolicy;
pub use topology::{NodeId, Topology, TopologyError};
pub use trace::{validate_level5_run, TraceReport};
