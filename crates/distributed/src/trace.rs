//! Validation of recorded level-5 event traces.
//!
//! A *running* distributed engine (the `rnt-cluster` runtime) can emit
//! the sequence of level-5 events its execution corresponds to. This
//! module is the correctness oracle for such traces: it replays them
//! through [`Level5`] (every event must be enabled where it fires),
//! checks the local mapping `h'''` against level 4 step by step
//! (Lemmas 23–28 — in particular every inbox stays `≤` the mapped action
//! tree, the [`summary_le_tree`](crate::summary_le_tree) condition), and
//! optionally drives the full composed simulation down to level 1
//! (Theorem 29).
//!
//! Keeping the checker here, next to the algebra it checks, means the
//! runtime crate only needs to *record*; the judgment of what a valid
//! distributed execution is stays with the formal tower.

use crate::level5::{DistEvent, Level5};
use crate::local_mapping::HDist;
use crate::topology::Topology;
use rnt_algebra::{check_local_mapping_on_run, check_simulation_on_run, Composed};
use rnt_locking::{HDoublePrime, HPrime, Level3, Level4};
use rnt_model::Universe;
use rnt_spec::{HSpec, Level1, Level2};
use std::sync::Arc;

/// What a successful trace validation measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceReport {
    /// Total level-5 events in the trace.
    pub events: usize,
    /// Transaction (non-communication) events.
    pub tx_events: usize,
    /// `send` events.
    pub sends: usize,
    /// `receive` events.
    pub receives: usize,
    /// Steps the mapped level-4 run took (communication maps to Λ).
    pub high_steps: usize,
}

/// Validate a recorded level-5 run against the formal tower.
///
/// Checks, in order:
///
/// 1. the trace is a valid [`Level5`] run (every event enabled where it
///    fires — the eight preconditions (a)–(h) of Section 9.2);
/// 2. the local mapping `h'''` holds at every step (Lemmas 23–28): each
///    node's knowledge stays consistent with the mapped level-4 state
///    and every inbox satisfies `T' ≤ T` against the mapped action tree;
/// 3. with `deep`, the composed simulation `h ∘ h' ∘ h'' ∘ h'''` down to
///    level 1 (Theorem 29) — costlier, so drivers typically sample it.
///
/// Returns a [`TraceReport`] on success and the first violation,
/// rendered, on failure.
pub fn validate_level5_run(
    universe: &Arc<Universe>,
    topology: &Arc<Topology>,
    events: &[DistEvent],
    deep: bool,
) -> Result<TraceReport, String> {
    let l5 = Level5::new(universe.clone(), topology.clone());
    let l4 = Level4::new(universe.clone());
    let h = HDist::new(universe.clone(), topology.clone());
    let run: Vec<DistEvent> = events.to_vec();
    let rep = check_local_mapping_on_run(&l5, &l4, &h, &run)
        .map_err(|e| format!("local mapping (Lemmas 23-28) failed: {e:?}"))?;
    if deep {
        let hdp = HDoublePrime::new(universe.clone());
        let h54: Composed<'_, _, _, Level4> = Composed::new(&h, &hdp);
        let h53: Composed<'_, _, _, Level3> = Composed::new(&h54, &HPrime);
        let h52: Composed<'_, _, _, Level2> = Composed::new(&h53, &HSpec);
        let l1 = Level1::new(universe.clone());
        check_simulation_on_run(&l5, &l1, &h52, &run)
            .map_err(|e| format!("Theorem 29 composed simulation failed: {e:?}"))?;
    }
    let (mut tx, mut sends, mut receives) = (0usize, 0usize, 0usize);
    for e in &run {
        match e {
            DistEvent::Tx(..) => tx += 1,
            DistEvent::Send { .. } => sends += 1,
            DistEvent::Receive { .. } => receives += 1,
        }
    }
    Ok(TraceReport {
        events: run.len(),
        tx_events: tx,
        sends,
        receives,
        high_steps: rep.high_steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnt_model::{act, ActionSummary, Status, TxEvent, UniverseBuilder, UpdateFn};

    fn setup() -> (Arc<Universe>, Arc<Topology>) {
        let u = Arc::new(
            UniverseBuilder::new()
                .object(0, 1)
                .object(1, 10)
                .action(act![0])
                .access(act![0, 0], 0, UpdateFn::Add(1))
                .access(act![0, 1], 1, UpdateFn::Add(2))
                .build()
                .unwrap(),
        );
        let t = Arc::new(Topology::round_robin(&u, 2));
        (u, t)
    }

    fn cross_node_run(t: &Topology) -> Vec<DistEvent> {
        let n0 = t.home_of_action(&act![0]);
        let n1 = 1 - n0;
        let active =
            ActionSummary::from_entries([(act![0], Status::Active), (act![0, 1], Status::Active)]);
        vec![
            DistEvent::Tx(n0, TxEvent::Create(act![0])),
            DistEvent::Tx(n0, TxEvent::Create(act![0, 1])),
            DistEvent::Send { from: n0, to: n1, summary: active.clone() },
            DistEvent::Receive { to: n1, summary: active },
            DistEvent::Tx(n1, TxEvent::Perform(act![0, 1], 10)),
        ]
    }

    #[test]
    fn valid_trace_passes_shallow_and_deep() {
        let (u, t) = setup();
        let run = cross_node_run(&t);
        let rep = validate_level5_run(&u, &t, &run, false).unwrap();
        assert_eq!(rep.events, 5);
        assert_eq!(rep.sends, 1);
        assert_eq!(rep.receives, 1);
        assert_eq!(rep.tx_events, 3);
        let deep = validate_level5_run(&u, &t, &run, true).unwrap();
        assert_eq!(deep, rep);
    }

    #[test]
    fn invalid_trace_is_rejected() {
        let (u, t) = setup();
        // Perform without the gossip: not enabled at level 5.
        let run = vec![DistEvent::Tx(
            t.home_of_object(rnt_model::ObjectId(1)),
            TxEvent::Perform(act![0, 1], 10),
        )];
        let err = validate_level5_run(&u, &t, &run, false).unwrap_err();
        assert!(err.contains("Lemmas 23-28"), "{err}");
    }

    #[test]
    fn unsent_receive_is_rejected() {
        let (u, t) = setup();
        let run = vec![DistEvent::Receive {
            to: 0,
            summary: ActionSummary::singleton(act![0], Status::Committed),
        }];
        assert!(validate_level5_run(&u, &t, &run, false).is_err());
    }
}
