//! Node topology for the distributed algebra (paper Section 9.1): the
//! `home` partition of actions and objects among `k` nodes, and the
//! derived `origin` function.

use rnt_model::{ActionId, ObjectId, Universe};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a node in `[k]`.
pub type NodeId = usize;

/// Errors from topology validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// A declared object has no home.
    UnhomedObject(ObjectId),
    /// A declared action has no home.
    UnhomedAction(ActionId),
    /// An access's home differs from its object's home (`home(A)` must be
    /// `home(object(A))`).
    AccessHomeMismatch(ActionId),
    /// A home index is out of range.
    NodeOutOfRange(NodeId),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::UnhomedObject(x) => write!(f, "object {x} has no home"),
            TopologyError::UnhomedAction(a) => write!(f, "action {a} has no home"),
            TopologyError::AccessHomeMismatch(a) => {
                write!(f, "access {a} homed away from its object")
            }
            TopologyError::NodeOutOfRange(n) => write!(f, "node {n} out of range"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// The `home` assignment over a universe.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Topology {
    nodes: usize,
    home_obj: BTreeMap<ObjectId, NodeId>,
    home_act: BTreeMap<ActionId, NodeId>,
}

impl Topology {
    /// Validate and build a topology.
    pub fn new(
        universe: &Universe,
        nodes: usize,
        home_obj: BTreeMap<ObjectId, NodeId>,
        home_act: BTreeMap<ActionId, NodeId>,
    ) -> Result<Self, TopologyError> {
        for obj in universe.objects() {
            match home_obj.get(&obj.id) {
                None => return Err(TopologyError::UnhomedObject(obj.id)),
                Some(&n) if n >= nodes => return Err(TopologyError::NodeOutOfRange(n)),
                Some(_) => {}
            }
        }
        for a in universe.actions() {
            match home_act.get(a) {
                None => return Err(TopologyError::UnhomedAction(a.clone())),
                Some(&n) if n >= nodes => return Err(TopologyError::NodeOutOfRange(n)),
                Some(&n) => {
                    if let Some(x) = universe.object_of(a) {
                        if home_obj.get(&x) != Some(&n) {
                            return Err(TopologyError::AccessHomeMismatch(a.clone()));
                        }
                    }
                }
            }
        }
        Ok(Topology { nodes, home_obj, home_act })
    }

    /// Deterministic assignment: objects round-robin by id; non-access
    /// actions round-robin by declaration order; accesses follow their
    /// objects.
    pub fn round_robin(universe: &Universe, nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        let mut home_obj = BTreeMap::new();
        for (i, obj) in universe.objects().enumerate() {
            home_obj.insert(obj.id, i % nodes);
        }
        let mut home_act = BTreeMap::new();
        let mut counter = 0usize;
        for a in universe.actions() {
            let home = match universe.object_of(a) {
                Some(x) => home_obj[&x],
                None => {
                    counter += 1;
                    (counter - 1) % nodes
                }
            };
            home_act.insert(a.clone(), home);
        }
        Topology { nodes, home_obj, home_act }
    }

    /// Everything on a single node — the degenerate topology under which
    /// level 5 collapses to level 4 plus gossip.
    pub fn single_node(universe: &Universe) -> Self {
        Self::round_robin(universe, 1)
    }

    /// Number of nodes `k`.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// `home(x)` for a declared object.
    pub fn home_of_object(&self, x: ObjectId) -> NodeId {
        self.home_obj[&x]
    }

    /// `home(A)` for a declared non-root action.
    pub fn home_of_action(&self, a: &ActionId) -> NodeId {
        self.home_act[a]
    }

    /// `origin(A)`: `home(A)` for top-level actions, else
    /// `home(parent(A))`.
    pub fn origin(&self, a: &ActionId) -> NodeId {
        let parent = a.parent().expect("origin of root");
        if parent.is_root() {
            self.home_of_action(a)
        } else {
            self.home_of_action(&parent)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnt_model::{act, UniverseBuilder, UpdateFn};

    fn universe() -> Universe {
        UniverseBuilder::new()
            .object(0, 0)
            .object(1, 0)
            .action(act![0])
            .access(act![0, 0], 0, UpdateFn::Read)
            .access(act![0, 1], 1, UpdateFn::Read)
            .action(act![1])
            .access(act![1, 0], 1, UpdateFn::Read)
            .build()
            .unwrap()
    }

    #[test]
    fn round_robin_homes_accesses_with_objects() {
        let u = universe();
        let t = Topology::round_robin(&u, 2);
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.home_of_object(ObjectId(0)), 0);
        assert_eq!(t.home_of_object(ObjectId(1)), 1);
        assert_eq!(t.home_of_action(&act![0, 0]), 0);
        assert_eq!(t.home_of_action(&act![0, 1]), 1);
        assert_eq!(t.home_of_action(&act![1, 0]), 1);
    }

    #[test]
    fn origin_rules() {
        let u = universe();
        let t = Topology::round_robin(&u, 2);
        // Top-level: origin = own home.
        assert_eq!(t.origin(&act![0]), t.home_of_action(&act![0]));
        // Nested: origin = parent's home.
        assert_eq!(t.origin(&act![0, 1]), t.home_of_action(&act![0]));
    }

    #[test]
    fn validation_catches_mismatched_access() {
        let u = universe();
        let mut home_obj = BTreeMap::new();
        home_obj.insert(ObjectId(0), 0);
        home_obj.insert(ObjectId(1), 0);
        let mut home_act = BTreeMap::new();
        for a in u.actions() {
            home_act.insert(a.clone(), 1); // every action on node 1
        }
        let err = Topology::new(&u, 2, home_obj, home_act).unwrap_err();
        assert!(matches!(err, TopologyError::AccessHomeMismatch(_)));
    }

    #[test]
    fn validation_catches_missing_homes() {
        let u = universe();
        let err = Topology::new(&u, 1, BTreeMap::new(), BTreeMap::new()).unwrap_err();
        assert!(matches!(err, TopologyError::UnhomedObject(_)));
    }

    #[test]
    fn single_node_is_round_robin_1() {
        let u = universe();
        let t = Topology::single_node(&u);
        assert_eq!(t.node_count(), 1);
        for a in u.actions() {
            assert_eq!(t.home_of_action(a), 0);
        }
    }
}
