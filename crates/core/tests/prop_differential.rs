//! Differential fuzzing: random single-threaded nested-transaction
//! scripts must behave identically on the engine and on the naive
//! reference interpreter (copy-on-begin / merge-on-commit semantics).

use proptest::prelude::*;
use rnt_sim::reference::{run_differential, ScriptOp};

fn op_strategy(keys: u64) -> impl Strategy<Value = ScriptOp> {
    prop_oneof![
        2 => Just(ScriptOp::Begin),
        3 => (0..keys + 1).prop_map(ScriptOp::Read),
        3 => (0..keys + 1, -9i64..10).prop_map(|(k, d)| ScriptOp::Add(k, d)),
        2 => (0..keys + 1, -99i64..100).prop_map(|(k, v)| ScriptOp::Write(k, v)),
        2 => Just(ScriptOp::Commit),
        1 => Just(ScriptOp::Abort),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn engine_matches_reference_interpreter(
        keys in 1u64..5,
        script in prop::collection::vec(op_strategy(4), 0..60),
    ) {
        if let Err(divergence) = run_differential(keys, &script) {
            prop_assert!(false, "{divergence}");
        }
    }

    #[test]
    fn deep_nesting_scripts(
        depth in 1usize..10,
        edits in prop::collection::vec((0u64..3, -5i64..6), 1..20),
        abort_at in prop::option::of(0usize..10),
    ) {
        // Open `depth` transactions, sprinkle edits, then close them all,
        // aborting one chosen level.
        let mut script = vec![ScriptOp::Begin; depth];
        for (i, (k, d)) in edits.iter().enumerate() {
            script.insert(1 + (i % depth), ScriptOp::Add(*k, *d));
        }
        for level in (0..depth).rev() {
            if abort_at == Some(level) {
                script.push(ScriptOp::Abort);
            } else {
                script.push(ScriptOp::Commit);
            }
        }
        if let Err(divergence) = run_differential(3, &script) {
            prop_assert!(false, "{divergence}");
        }
    }
}

// Deep sweep: the same properties at 16× the case count. Ignored by
// default so `cargo test` stays fast; run with
// `cargo test -p rnt-core --test prop_differential -- --ignored`.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    #[ignore = "slow: 2048-case differential sweep; run with -- --ignored"]
    fn engine_matches_reference_interpreter_slow(
        keys in 1u64..5,
        script in prop::collection::vec(op_strategy(4), 0..60),
    ) {
        if let Err(divergence) = run_differential(keys, &script) {
            prop_assert!(false, "{divergence}");
        }
    }

    #[test]
    #[ignore = "slow: 2048-case deep-nesting sweep; run with -- --ignored"]
    fn deep_nesting_scripts_slow(
        depth in 1usize..10,
        edits in prop::collection::vec((0u64..3, -5i64..6), 1..20),
        abort_at in prop::option::of(0usize..10),
    ) {
        let mut script = vec![ScriptOp::Begin; depth];
        for (i, (k, d)) in edits.iter().enumerate() {
            script.insert(1 + (i % depth), ScriptOp::Add(*k, *d));
        }
        for level in (0..depth).rev() {
            if abort_at == Some(level) {
                script.push(ScriptOp::Abort);
            } else {
                script.push(ScriptOp::Commit);
            }
        }
        if let Err(divergence) = run_differential(3, &script) {
            prop_assert!(false, "{divergence}");
        }
    }
}
