//! Durability and crash-recovery integration tests for the WAL-backed
//! engine: committed top-level effects survive a crash, uncommitted and
//! in-flight effects do not, and recovery is idempotent.

use rnt_core::{Db, DbConfig, Durability};
use rnt_wal::faults::record_count;
use rnt_wal::{frame, MemVfs, Record, Vfs, MAGIC};
use std::sync::Arc;
use std::time::Duration;

const LOG: &str = "db.wal";

fn wal_config() -> DbConfig {
    DbConfig::builder().durability(Durability::Wal).build()
}

fn fsync_config() -> DbConfig {
    DbConfig::builder().durability(Durability::WalFsync).build()
}

/// Open a WAL-backed db on a fresh in-memory filesystem.
fn open_mem(config: DbConfig) -> (Arc<MemVfs>, Db<String, i64>) {
    let vfs = Arc::new(MemVfs::new());
    let db = Db::open_with_vfs(vfs.clone(), LOG, config).expect("open");
    (vfs, db)
}

/// Simulate a crash: recover a new db from the current bytes of `vfs`.
fn crash_recover(vfs: &Arc<MemVfs>, config: DbConfig) -> Db<String, i64> {
    // Snapshot-and-install models the kernel's view surviving the process:
    // the recovered db sees exactly what reached the (mem) filesystem.
    let bytes = vfs.snapshot(LOG);
    let fresh = Arc::new(MemVfs::new());
    fresh.install(LOG, bytes);
    Db::recover_with_vfs(fresh.clone(), LOG, config).expect("recover")
}

#[test]
fn committed_top_level_writes_survive_recovery() {
    let (vfs, db) = open_mem(wal_config());
    db.insert("a".to_string(), 1);
    db.insert("b".to_string(), 2);

    let t = db.begin();
    t.rmw(&"a".to_string(), |v| v + 10).unwrap();
    t.commit().unwrap();

    let r = crash_recover(&vfs, wal_config());
    assert_eq!(r.committed_value(&"a".to_string()), Some(11));
    assert_eq!(r.committed_value(&"b".to_string()), Some(2));
}

#[test]
fn uncommitted_writes_are_absent_after_recovery() {
    let (vfs, db) = open_mem(wal_config());
    db.insert("a".to_string(), 1);

    let t = db.begin();
    t.rmw(&"a".to_string(), |v| v + 100).unwrap();
    // No commit: t is in flight at the "crash".
    let r = crash_recover(&vfs, wal_config());
    assert_eq!(r.committed_value(&"a".to_string()), Some(1));
    drop(t);
}

#[test]
fn child_commit_without_top_level_commit_is_not_durable() {
    let (vfs, db) = open_mem(wal_config());
    db.insert("a".to_string(), 1);

    let t = db.begin();
    let c = t.child().unwrap();
    c.rmw(&"a".to_string(), |v| v + 5).unwrap();
    c.commit().unwrap(); // visible to the parent only (Lemma 7)
    assert_eq!(t.read(&"a".to_string()).unwrap(), 6);

    let r = crash_recover(&vfs, wal_config());
    assert_eq!(r.committed_value(&"a".to_string()), Some(1));
    drop(t);
}

#[test]
fn aborted_subtree_stays_aborted_after_recovery() {
    let (vfs, db) = open_mem(wal_config());
    db.insert("a".to_string(), 1);
    db.insert("b".to_string(), 2);

    let t = db.begin();
    let keep = t.child().unwrap();
    keep.rmw(&"a".to_string(), |v| v + 10).unwrap();
    keep.commit().unwrap();
    let lose = t.child().unwrap();
    lose.rmw(&"b".to_string(), |v| v + 10).unwrap();
    lose.abort();
    t.commit().unwrap();

    let r = crash_recover(&vfs, wal_config());
    assert_eq!(r.committed_value(&"a".to_string()), Some(11));
    assert_eq!(r.committed_value(&"b".to_string()), Some(2));
}

#[test]
fn deep_nesting_recovers_exact_values() {
    let (vfs, db) = open_mem(wal_config());
    db.insert("x".to_string(), 0);

    let t = db.begin();
    let c1 = t.child().unwrap();
    let c2 = c1.child().unwrap();
    c2.rmw(&"x".to_string(), |v| v + 1).unwrap();
    c2.commit().unwrap();
    c1.rmw(&"x".to_string(), |v| v * 10).unwrap();
    c1.commit().unwrap();
    t.rmw(&"x".to_string(), |v| v + 7).unwrap();
    t.commit().unwrap();
    assert_eq!(db.committed_value(&"x".to_string()), Some(17));

    let r = crash_recover(&vfs, wal_config());
    assert_eq!(r.committed_value(&"x".to_string()), Some(17));
    assert!(r.stats().recovered_actions >= 3);
}

#[test]
fn fsync_mode_syncs_once_per_top_level_commit() {
    let (_vfs, db) = open_mem(fsync_config());
    db.insert("a".to_string(), 0);

    for _ in 0..3 {
        let t = db.begin();
        let c = t.child().unwrap();
        c.rmw(&"a".to_string(), |v| v + 1).unwrap();
        c.commit().unwrap(); // subtxn commit: revocable, must not fsync
        t.commit().unwrap();
    }
    assert_eq!(db.stats().wal_fsyncs, 3);

    let (_vfs2, db2) = open_mem(wal_config());
    db2.insert("a".to_string(), 0);
    let t = db2.begin();
    t.rmw(&"a".to_string(), |v| v + 1).unwrap();
    t.commit().unwrap();
    assert_eq!(db2.stats().wal_fsyncs, 0, "Durability::Wal never fsyncs");
}

#[test]
fn wal_append_conservation_holds() {
    let (_vfs, db) = open_mem(wal_config());
    db.insert("a".to_string(), 0);
    db.insert("b".to_string(), 0);

    let t = db.begin();
    t.rmw(&"a".to_string(), |v| v + 1).unwrap();
    let c = t.child().unwrap();
    c.rmw(&"b".to_string(), |v| v + 1).unwrap();
    c.commit().unwrap();
    let dead = t.child().unwrap();
    dead.abort();
    t.commit().unwrap();

    let s = db.stats();
    assert_eq!(s.wal_appends, s.wal_appends_expected(2));
}

#[test]
fn recover_of_recover_is_identity() {
    let (vfs, db) = open_mem(wal_config());
    db.insert("a".to_string(), 1);
    db.insert("b".to_string(), 2);
    let t = db.begin();
    t.rmw(&"a".to_string(), |v| v * 3).unwrap();
    t.commit().unwrap();
    let hang = db.begin();
    hang.rmw(&"b".to_string(), |v| v * 3).unwrap(); // in flight at crash

    let bytes = vfs.snapshot(LOG);
    let v1 = Arc::new(MemVfs::new());
    v1.install(LOG, bytes);
    let r1 = Db::<String, i64>::recover_with_vfs(v1.clone(), LOG, wal_config()).unwrap();
    let after_first = v1.snapshot(LOG);

    let v2 = Arc::new(MemVfs::new());
    v2.install(LOG, after_first.clone());
    let r2 = Db::<String, i64>::recover_with_vfs(v2.clone(), LOG, wal_config()).unwrap();

    for k in ["a", "b"] {
        assert_eq!(r1.committed_value(&k.to_string()), r2.committed_value(&k.to_string()));
    }
    assert_eq!(r1.committed_value(&"a".to_string()), Some(3));
    assert_eq!(r1.committed_value(&"b".to_string()), Some(2));
    // The second recovery replays a checkpoint-only log and rewrites an
    // equivalent one: byte-identical modulo nothing (same snapshot order).
    assert_eq!(after_first, v2.snapshot(LOG));
    drop(hang);
}

#[test]
fn checkpoint_truncates_the_log() {
    let (vfs, db) = open_mem(wal_config());
    for i in 0..8 {
        db.insert(format!("k{i}"), i);
    }
    for _ in 0..5 {
        let t = db.begin();
        t.rmw(&"k0".to_string(), |v| v + 1).unwrap();
        t.commit().unwrap();
    }
    let before = record_count(&vfs.snapshot(LOG));
    db.checkpoint().unwrap();
    let after = record_count(&vfs.snapshot(LOG));
    assert!(after < before, "checkpoint must shrink the log ({before} -> {after})");
    assert_eq!(after, 1, "idle checkpoint is a single snapshot record");

    let r = crash_recover(&vfs, wal_config());
    assert_eq!(r.committed_value(&"k0".to_string()), Some(5));
    assert_eq!(r.committed_value(&"k7".to_string()), Some(7));
}

#[test]
fn auto_checkpoint_triggers_on_commit_cadence() {
    let config = DbConfig::builder().durability(Durability::Wal).checkpoint_every(2).build();
    let (vfs, db) = open_mem(config);
    db.insert("a".to_string(), 0);
    for _ in 0..4 {
        let t = db.begin();
        t.rmw(&"a".to_string(), |v| v + 1).unwrap();
        t.commit().unwrap();
    }
    // Two auto-checkpoints fired; the log holds one snapshot record.
    assert_eq!(record_count(&vfs.snapshot(LOG)), 1);
    let r = crash_recover(&vfs, wal_config());
    assert_eq!(r.committed_value(&"a".to_string()), Some(4));
}

#[test]
fn checkpoint_preserves_live_transactions() {
    let (vfs, db) = open_mem(wal_config());
    db.insert("a".to_string(), 1);
    db.insert("b".to_string(), 2);

    let t = db.begin();
    t.rmw(&"a".to_string(), |v| v + 100).unwrap();
    db.checkpoint().unwrap(); // t is live: its Begin+Write must be re-logged
    t.rmw(&"b".to_string(), |v| v + 100).unwrap();
    t.commit().unwrap();

    let r = crash_recover(&vfs, wal_config());
    assert_eq!(r.committed_value(&"a".to_string()), Some(101));
    assert_eq!(r.committed_value(&"b".to_string()), Some(102));
}

#[test]
fn torn_tail_recovers_to_last_intact_record() {
    let (vfs, db) = open_mem(wal_config());
    db.insert("a".to_string(), 1);
    let t = db.begin();
    t.rmw(&"a".to_string(), |v| v + 1).unwrap();
    t.commit().unwrap();

    // Tear the tail mid-record: everything after the last intact frame is
    // a crash artifact and must be discarded, not rejected.
    let bytes = vfs.snapshot(LOG);
    let torn = bytes[..bytes.len() - 3].to_vec();
    let fresh = Arc::new(MemVfs::new());
    fresh.install(LOG, torn);
    let r = Db::<String, i64>::recover_with_vfs(fresh, LOG, wal_config()).unwrap();
    // The final Commit record was torn: the transaction is in flight and
    // rolls back; the seed survives.
    assert_eq!(r.committed_value(&"a".to_string()), Some(1));
}

#[test]
fn armed_crash_during_commit_append_loses_only_that_commit() {
    let (vfs, db) = open_mem(wal_config());
    db.insert("a".to_string(), 1);

    let t0 = db.begin();
    t0.rmw(&"a".to_string(), |v| v + 1).unwrap();
    t0.commit().unwrap(); // durable: appended before the crash arms

    // Crash mid-append of the *next* transaction's commit record.
    let t1 = db.begin();
    t1.rmw(&"a".to_string(), |v| v + 1).unwrap();
    vfs.arm_crash(0, 5); // next append: keep 5 bytes, then drop everything
    let _ = t1.commit();
    assert!(vfs.crashed());

    let r = crash_recover(&vfs, wal_config());
    assert_eq!(r.committed_value(&"a".to_string()), Some(2), "t0 durable, t1 rolled back");
}

#[test]
fn open_truncates_an_existing_log() {
    let (vfs, db) = open_mem(wal_config());
    db.insert("a".to_string(), 7);
    let t = db.begin();
    t.rmw(&"a".to_string(), |v| v + 1).unwrap();
    t.commit().unwrap();
    drop(db);

    // open() = fresh database: the old log must not leak into it.
    let db2: Db<String, i64> = Db::open_with_vfs(vfs.clone(), LOG, wal_config()).unwrap();
    assert_eq!(db2.committed_value(&"a".to_string()), None);
    assert_eq!(record_count(&vfs.snapshot(LOG)), 0);
}

#[test]
fn durability_none_writes_no_log() {
    let vfs = Arc::new(MemVfs::new());
    let db: Db<String, i64> = Db::open_with_vfs(vfs.clone(), LOG, DbConfig::default()).unwrap();
    db.insert("a".to_string(), 1);
    let t = db.begin();
    t.rmw(&"a".to_string(), |v| v + 1).unwrap();
    t.commit().unwrap();
    assert!(!vfs.exists(LOG));
    assert_eq!(db.stats().wal_appends, 0);
}

// ---- group commit and the format-03 batch frame ----

fn install_log(records: &[Record]) -> Arc<MemVfs> {
    let mut bytes = MAGIC.to_vec();
    for r in records {
        bytes.extend_from_slice(&frame(r));
    }
    let vfs = Arc::new(MemVfs::new());
    vfs.install(LOG, bytes);
    vfs
}

fn enc(s: &str) -> Vec<u8> {
    rnt_wal::encode_to_vec(&s.to_string())
}

fn enc_v(v: i64) -> Vec<u8> {
    rnt_wal::encode_to_vec(&v)
}

#[test]
fn batch_commit_replays_every_participant() {
    let vfs = install_log(&[
        Record::Write { action: rnt_wal::INIT_ACTION, key: enc("a"), version: enc_v(1) },
        Record::Write { action: rnt_wal::INIT_ACTION, key: enc("b"), version: enc_v(2) },
        Record::Begin { action: 0, parent: None },
        Record::Write { action: 0, key: enc("a"), version: enc_v(10) },
        Record::Begin { action: 1, parent: None },
        Record::Write { action: 1, key: enc("b"), version: enc_v(20) },
        Record::BatchCommit { commits: vec![(0, 1), (1, 2)] },
    ]);
    let r = Db::<String, i64>::recover_with_vfs(vfs, LOG, wal_config()).unwrap();
    assert_eq!(r.committed_value(&"a".to_string()), Some(10));
    assert_eq!(r.committed_value(&"b".to_string()), Some(20));
    assert_eq!(r.epochs().watermark, 2, "replay advances the watermark over the batch's run");
    assert_eq!(r.history(&"a".to_string()), vec![(1, 10)]);
    assert_eq!(r.history(&"b".to_string()), vec![(2, 20)]);
}

/// The latent gap this PR closes: a `Commit` record at the log tail whose
/// epoch was never durably allocated (it is not above the replayed
/// watermark) must be *rejected*, not silently replayed at a fabricated
/// position in the serial order.
#[test]
fn replay_rejects_a_commit_epoch_at_or_below_the_watermark() {
    // Epoch 0 is the genesis watermark: nothing can commit "at" it.
    let vfs = install_log(&[
        Record::Write { action: rnt_wal::INIT_ACTION, key: enc("a"), version: enc_v(1) },
        Record::Begin { action: 0, parent: None },
        Record::Write { action: 0, key: enc("a"), version: enc_v(5) },
        Record::Commit { action: 0, epoch: Some(0) },
    ]);
    let err = Db::<String, i64>::recover_with_vfs(vfs, LOG, wal_config())
        .expect_err("a never-allocated epoch must fail replay");
    assert!(err.to_string().contains("never durably allocated"), "unexpected error: {err}");

    // Same gap behind a checkpoint: the checkpoint proves the watermark
    // reached 5, so a later commit claiming epoch 3 is corrupt.
    let vfs = install_log(&[
        Record::Checkpoint { epoch: 5, snapshot: vec![(enc("a"), 2, enc_v(1))] },
        Record::Begin { action: 7, parent: None },
        Record::Write { action: 7, key: enc("a"), version: enc_v(9) },
        Record::Commit { action: 7, epoch: Some(3) },
    ]);
    let err = Db::<String, i64>::recover_with_vfs(vfs, LOG, wal_config())
        .expect_err("an epoch below the checkpoint watermark must fail replay");
    assert!(err.to_string().contains("never durably allocated"), "unexpected error: {err}");
}

/// The same obligation at a format-03 batch boundary: a batch whose epoch
/// run dips to or below the replayed watermark is rejected wholesale.
#[test]
fn replay_rejects_a_batch_epoch_at_or_below_the_watermark() {
    let vfs = install_log(&[
        Record::Checkpoint { epoch: 4, snapshot: vec![(enc("a"), 2, enc_v(1))] },
        Record::Begin { action: 0, parent: None },
        Record::Write { action: 0, key: enc("a"), version: enc_v(10) },
        Record::Begin { action: 1, parent: None },
        Record::BatchCommit { commits: vec![(0, 5), (1, 4)] },
    ]);
    let err = Db::<String, i64>::recover_with_vfs(vfs, LOG, wal_config())
        .expect_err("a batch epoch at the watermark must fail replay");
    assert!(err.to_string().contains("never durably allocated"), "unexpected error: {err}");
}

#[test]
fn group_commit_log_recovers_identically_to_plain_commit_log() {
    // The same single-threaded workload, pipeline off and on: singleton
    // batches log plain Commit records, so the logs are byte-identical
    // and so are the recoveries.
    let run = |group: bool| {
        let config = DbConfig::builder()
            .durability(Durability::Wal)
            .group_commit(group)
            .max_batch_wait(Duration::ZERO)
            .build();
        let (vfs, db) = open_mem(config);
        db.insert("a".to_string(), 0);
        db.insert("b".to_string(), 0);
        for i in 0..4 {
            let t = db.begin();
            let c = t.child().unwrap();
            c.rmw(&if i % 2 == 0 { "a".to_string() } else { "b".to_string() }, |v| v + 1).unwrap();
            c.commit().unwrap();
            t.commit().unwrap();
        }
        vfs.snapshot(LOG)
    };
    let (off, on) = (run(false), run(true));
    assert_eq!(off, on, "singleton batches must keep the log byte-identical");

    let fresh = Arc::new(MemVfs::new());
    fresh.install(LOG, on);
    let r = Db::<String, i64>::recover_with_vfs(fresh, LOG, wal_config()).unwrap();
    assert_eq!(r.committed_value(&"a".to_string()), Some(2));
    assert_eq!(r.committed_value(&"b".to_string()), Some(2));
}

#[test]
fn group_commit_fsync_acks_are_durable() {
    // WalFsync + group commit: every acked commit must survive a crash cut
    // at exactly the bytes on disk at ack time.
    let config = DbConfig::builder()
        .durability(Durability::WalFsync)
        .group_commit(true)
        .max_batch(8)
        .build();
    let (vfs, db) = open_mem(config);
    db.insert("a".to_string(), 0);
    for _ in 0..3 {
        let t = db.begin();
        t.rmw(&"a".to_string(), |v| v + 1).unwrap();
        t.commit().unwrap();
        // The ack has been returned: the state on disk RIGHT NOW must
        // already contain this commit.
        let r = crash_recover(&vfs, wal_config());
        assert_eq!(r.committed_value(&"a".to_string()), db.committed_value(&"a".to_string()));
    }
    let s = db.stats();
    assert_eq!(s.commits_staged, 3);
    assert_eq!(s.commits_batched, 3);
    assert_eq!(s.wal_fsyncs, s.commit_batches, "one force per batch");
}

#[test]
fn recovered_db_accepts_new_transactions_and_stays_durable() {
    let (vfs, db) = open_mem(wal_config());
    db.insert("a".to_string(), 1);
    let t = db.begin();
    t.rmw(&"a".to_string(), |v| v + 1).unwrap();
    t.commit().unwrap();

    let bytes = vfs.snapshot(LOG);
    let v1 = Arc::new(MemVfs::new());
    v1.install(LOG, bytes);
    let r = Db::<String, i64>::recover_with_vfs(v1.clone(), LOG, wal_config()).unwrap();

    // Life goes on: new work on the recovered db is durable in turn.
    let t = r.begin();
    let c = t.child().unwrap();
    c.rmw(&"a".to_string(), |v| v * 10).unwrap();
    c.commit().unwrap();
    t.commit().unwrap();

    let bytes = v1.snapshot(LOG);
    let v2 = Arc::new(MemVfs::new());
    v2.install(LOG, bytes);
    let r2 = Db::<String, i64>::recover_with_vfs(v2, LOG, wal_config()).unwrap();
    assert_eq!(r2.committed_value(&"a".to_string()), Some(20));
}
