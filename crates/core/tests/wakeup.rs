//! Targeted-wakeup protocol integration tests: notify-driven progress
//! (no reliance on `wait_slice` polling), exact spurious/productive
//! wakeup accounting, orphaned-waiter wakeups, and `Db::run` forward
//! progress under wait-die.
//!
//! The tests configure a *huge* `wait_slice` so that any progress they
//! observe must come from a targeted notification — if a wakeup were
//! lost, the test would stall for seconds and the elapsed-time asserts
//! would fail.

use rnt_core::{Db, DbConfig, DeadlockPolicy, TxnError, WakeupMode};
use std::time::{Duration, Instant};

/// A config where polling cannot masquerade as progress: a waiter that
/// misses its notification sleeps ~10 s.
fn notify_only(policy: DeadlockPolicy) -> DbConfig {
    DbConfig::builder()
        .policy(policy)
        .lock_timeout(Duration::from_secs(30))
        .wait_slice(Duration::from_secs(10))
        .build()
}

/// Lost-wakeup regression: many waiters pile up on ONE key while a chain
/// of writers churns it. Every waiter that records a conflict and parks
/// must observe the release — with the poll loop disabled, a single lost
/// wakeup costs 10 s and trips the deadline assert.
#[test]
fn release_wakes_all_waiters_on_the_key() {
    let db: Db<u64, i64> = Db::with_config(notify_only(DeadlockPolicy::Timeout));
    db.insert(0, 0);
    let holder = db.begin();
    holder.write(&0, 1).unwrap();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let db = db.clone();
            scope.spawn(move || {
                // Blocks on the held key; woken only by a notification.
                let t = db.begin();
                assert_eq!(t.read(&0).unwrap(), 1);
                t.commit().unwrap();
            });
        }
        // Give the waiters time to conflict and park, then release.
        std::thread::sleep(Duration::from_millis(100));
        holder.commit().unwrap();
    });
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "waiters were not woken by the release (took {:?})",
        start.elapsed()
    );
    let s = db.stats();
    assert!(s.waits > 0, "waiters must actually have parked");
    assert!(s.wakeups_productive > 0, "release must register as productive wakeups");
}

/// Writer churn on one key: a queue of writers each holding briefly, with
/// waiters re-parking between grants. No schedule may lose a wakeup.
#[test]
fn writer_churn_single_key_converges() {
    let db: Db<u64, i64> = Db::with_config(notify_only(DeadlockPolicy::Timeout));
    db.insert(0, 0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..6 {
            let db = db.clone();
            scope.spawn(move || {
                for _ in 0..20 {
                    db.run(|t| t.rmw(&0, |v| v + 1)).unwrap();
                }
            });
        }
    });
    assert_eq!(db.committed_value(&0), Some(120));
    assert!(
        start.elapsed() < Duration::from_secs(8),
        "churn stalled — lost wakeup in the release path (took {:?})",
        start.elapsed()
    );
}

/// Spurious-wakeup accounting: two keys forced into the SAME shard
/// (shards = 1), each contended by its own pair of threads. Targeted
/// wakeups never wake the other key's waiters, so with polling disabled
/// every recorded wakeup is productive and the spurious counter stays at
/// exactly zero. (Under Broadcast the same schedule wakes the whole
/// shard per release — that contrast is the benchmark's job to measure.)
#[test]
fn disjoint_keys_produce_no_spurious_wakeups() {
    let config = DbConfig::builder()
        .shards(1)
        .policy(DeadlockPolicy::Timeout)
        .lock_timeout(Duration::from_secs(30))
        .wait_slice(Duration::from_secs(10))
        .wakeups(WakeupMode::Targeted)
        .build();
    let db: Db<u64, i64> = Db::with_config(config);
    db.insert(0, 0);
    db.insert(1, 0);
    std::thread::scope(|scope| {
        for key in [0u64, 1] {
            for _ in 0..2 {
                let db = db.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        db.run(|t| t.rmw(&key, |v| v + 1)).unwrap();
                    }
                });
            }
        }
    });
    assert_eq!(db.committed_value(&0), Some(100));
    assert_eq!(db.committed_value(&1), Some(100));
    let s = db.stats();
    assert_eq!(
        s.wakeups_spurious, 0,
        "targeted wakeups must not wake waiters of unrelated keys \
         (productive: {}, waits: {})",
        s.wakeups_productive, s.waits
    );
}

/// An orphaned waiter is woken by its ancestor's abort: the awaited key's
/// lock state never changes, so only the abort-side wakeup can save the
/// waiter from sleeping out the full 10 s slice.
#[test]
fn ancestor_abort_wakes_parked_descendant() {
    let db: Db<u64, i64> = Db::with_config(notify_only(DeadlockPolicy::Timeout));
    db.insert(0, 0);
    let holder = db.begin();
    holder.write(&0, 1).unwrap();

    let parent = db.begin();
    let child = parent.child().unwrap();
    let start = Instant::now();
    let aborter = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        parent.abort();
    });
    // Parks on the held key; the only scheduled wakeup within 10 s is the
    // parent's abort making us an orphan.
    let err = child.read(&0).unwrap_err();
    assert_eq!(err, TxnError::Orphaned);
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "orphaned waiter slept through its ancestor's abort (took {:?})",
        start.elapsed()
    );
    aborter.join().unwrap();
    holder.commit().unwrap();
}

/// `Db::run` under wait-die: the younger transaction keeps dying while
/// the older holder works, then makes forward progress once the holder
/// commits — the retry loop plus targeted wakeups guarantee completion.
#[test]
fn db_run_wait_die_younger_makes_progress() {
    let db: Db<u64, i64> =
        Db::with_config(DbConfig::builder().policy(DeadlockPolicy::WaitDie).build());
    db.insert(0, 7);
    let holder = db.begin(); // older: smaller root id
    holder.write(&0, 42).unwrap();

    let worker = {
        let db = db.clone();
        std::thread::spawn(move || {
            // Every attempt begins a fresh (younger) transaction that dies
            // against the older holder; Db::run keeps retrying.
            db.run(|t| t.rmw(&0, |v| v + 1)).unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    holder.commit().unwrap();
    let seen = worker.join().unwrap();
    assert_eq!(seen, 42, "younger txn ran after the older holder committed");
    assert_eq!(db.committed_value(&0), Some(43));
    let s = db.stats();
    assert!(s.dies > 0, "younger transaction must have died at least once");
}
