//! One integration test per [`DeadlockPolicy`] variant: each policy's
//! characteristic verdict fires on a real contended schedule, and no
//! scenario hangs.

use rnt_core::{Db, DbConfig, DeadlockPolicy, TxnError};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn db_with(policy: DeadlockPolicy, lock_timeout: Duration) -> Db<u64, i64> {
    let db = Db::with_config(DbConfig::builder().policy(policy).lock_timeout(lock_timeout).build());
    db.insert(0, 0);
    db.insert(1, 0);
    db
}

#[test]
fn no_wait_dies_immediately_naming_the_blocker() {
    let db = db_with(DeadlockPolicy::NoWait, Duration::from_millis(100));
    let holder = db.begin();
    holder.write(&0, 1).unwrap();
    let t = db.begin();
    match t.write(&0, 2) {
        Err(TxnError::Die { blocker }) => assert_eq!(blocker, holder.id()),
        other => panic!("expected Die, got {other:?}"),
    }
    t.abort();
    holder.commit().unwrap();
    assert_eq!(db.committed_value(&0), Some(1));
}

#[test]
fn timeout_expires_against_a_held_lock() {
    let db = db_with(DeadlockPolicy::Timeout, Duration::from_millis(20));
    let holder = db.begin();
    holder.write(&0, 1).unwrap();
    let t = db.begin();
    let start = std::time::Instant::now();
    match t.write(&0, 2) {
        Err(TxnError::Timeout(bound)) => assert_eq!(bound, Duration::from_millis(20)),
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert!(start.elapsed() >= Duration::from_millis(20), "timed out early");
    t.abort();
    // After the holder finishes, a fresh transaction acquires immediately.
    holder.commit().unwrap();
    let t2 = db.begin();
    assert_eq!(t2.read(&0).unwrap(), 1);
    t2.commit().unwrap();
}

#[test]
fn wait_die_kills_the_younger_and_lets_the_older_wait() {
    let db = db_with(DeadlockPolicy::WaitDie, Duration::from_millis(100));
    // Older holds: the younger requester must die, not wait.
    let older = db.begin();
    older.write(&0, 1).unwrap();
    let younger = db.begin();
    match younger.write(&0, 2) {
        Err(TxnError::Die { blocker }) => assert_eq!(blocker, older.id()),
        other => panic!("expected Die for the younger requester, got {other:?}"),
    }
    younger.abort();
    older.commit().unwrap();

    // Younger holds: the older requester waits until the lock frees.
    let first = db.begin(); // older
    let second = db.begin(); // younger
    second.write(&1, 5).unwrap();
    let handle = {
        let db = db.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            second.commit().unwrap();
            db.committed_value(&1)
        })
    };
    // Blocks (waits) until the younger holder commits, then acquires.
    assert_eq!(first.read(&1).unwrap(), 5);
    first.commit().unwrap();
    assert_eq!(handle.join().unwrap(), Some(5));
}

#[test]
fn detect_finds_the_cycle_and_picks_one_victim() {
    let db = db_with(DeadlockPolicy::Detect, Duration::from_millis(100));
    let barrier = Arc::new(Barrier::new(2));
    let side = |first: u64, second: u64, db: Db<u64, i64>, barrier: Arc<Barrier>| {
        std::thread::spawn(move || {
            let t = db.begin();
            t.write(&first, 1).unwrap();
            barrier.wait(); // both sides hold one lock before crossing
            match t.write(&second, 1) {
                Ok(_) => {
                    t.commit().unwrap();
                    None
                }
                Err(TxnError::Deadlock { cycle }) => {
                    let id = t.id();
                    t.abort();
                    Some((id, cycle))
                }
                Err(other) => panic!("expected Deadlock or success, got {other}"),
            }
        })
    };
    let a = side(0, 1, db.clone(), barrier.clone());
    let b = side(1, 0, db.clone(), barrier);
    let results = [a.join().unwrap(), b.join().unwrap()];
    let victims: Vec<_> = results.iter().flatten().collect();
    assert_eq!(victims.len(), 1, "exactly one side closes the cycle: {victims:?}");
    let (victim, cycle) = victims[0];
    assert!(cycle.contains(victim), "the victim appears in its own cycle: {cycle:?}");
    // The survivor committed both writes; the victim's were discarded.
    assert_eq!(
        db.committed_value(&0).unwrap() + db.committed_value(&1).unwrap(),
        2,
        "exactly one transaction's writes survived"
    );
}
