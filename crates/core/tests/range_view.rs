//! The unified read API: range scans, time travel, the `ReadView` trait,
//! and the chain budget.

use rnt_core::{Db, DbConfig, ReadView, Snapshot, SnapshotError, TxnError};

fn db() -> Db<u64, i64> {
    let db = Db::new();
    for k in 0..10 {
        db.insert(k, k as i64 * 10);
    }
    db
}

/// Written once against the trait; exercised below through both surfaces.
fn sum_range<V: ReadView<u64, i64>>(view: &V, lo: u64, hi: u64) -> Result<i64, TxnError> {
    Ok(view.range(lo..hi)?.into_iter().map(|(_, v)| v).sum())
}

#[test]
fn snapshot_range_walks_keys_in_order() {
    let db = db();
    let snap = db.snapshot();
    let all = snap.range(..);
    assert_eq!(all.len(), 10);
    assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "ascending key order");
    assert_eq!(snap.range(3..6), vec![(3, 30), (4, 40), (5, 50)]);
    assert_eq!(snap.range(3..=6), vec![(3, 30), (4, 40), (5, 50), (6, 60)]);
    assert_eq!(snap.range(42..), vec![]);
}

#[test]
fn snapshot_range_is_frozen_against_later_commits() {
    let db = db();
    let snap = db.snapshot();
    for i in 0..5 {
        db.run(|t| t.write(&i, -1).map(|_| ())).unwrap();
    }
    assert_eq!(snap.range(0..5), vec![(0, 0), (1, 10), (2, 20), (3, 30), (4, 40)]);
    let fresh = db.snapshot();
    assert!(fresh.range(0..5).iter().all(|&(_, v)| v == -1));
}

#[test]
fn snapshot_at_time_travels_to_retained_epochs() {
    let db = db();
    let hold = db.snapshot(); // pin genesis so no epoch gets reclaimed
    for round in 1..=3i64 {
        db.run(|t| t.write(&0, round * 100).map(|_| ())).unwrap();
    }
    let bounds = db.epochs();
    assert_eq!(bounds.watermark, 3);
    for epoch in 1..=3u64 {
        assert!(bounds.contains(epoch));
        let past = db.snapshot_at(epoch).unwrap();
        assert_eq!(past.epoch(), epoch);
        assert_eq!(past.read(&0), Some(epoch as i64 * 100));
        // Keys not rewritten still read their seeds at every epoch.
        assert_eq!(past.read(&5), Some(50));
    }
    drop(hold);
}

#[test]
fn snapshot_at_rejects_future_epochs() {
    let db = db();
    db.run(|t| t.write(&0, 1).map(|_| ())).unwrap();
    match db.snapshot_at(99) {
        Err(SnapshotError::Future { requested: 99, watermark }) => assert_eq!(watermark, 1),
        other => panic!("expected Future, got {other:?}"),
    }
    // Transient: once the epoch is published the same call succeeds.
    db.run(|t| t.write(&0, 2).map(|_| ())).unwrap();
    assert!(db.snapshot_at(2).is_ok());
}

#[test]
fn snapshot_at_rejects_pruned_epochs() {
    let db = db();
    for round in 1..=4i64 {
        db.run(|t| t.write(&0, round).map(|_| ())).unwrap();
    }
    // No snapshot was live, so superseded versions are gone; opening and
    // dropping a snapshot concedes the floor up to the watermark.
    drop(db.snapshot());
    match db.snapshot_at(1) {
        Err(SnapshotError::Pruned { requested: 1, oldest_retained }) => {
            assert!(oldest_retained > 1)
        }
        other => panic!("expected Pruned, got {other:?}"),
    }
    // The watermark itself is always servable.
    assert!(db.snapshot_at(db.epochs().watermark).is_ok());
}

#[test]
fn retained_floor_follows_the_oldest_live_pin() {
    let db = db();
    db.run(|t| t.write(&0, 1).map(|_| ())).unwrap();
    let old = db.snapshot(); // pins epoch 1
    for round in 2..=5i64 {
        db.run(|t| t.write(&0, round).map(|_| ())).unwrap();
    }
    // Open/drop a newer snapshot: the sweep may only concede up to the
    // oldest live pin, so every epoch since `old` stays travelable.
    drop(db.snapshot());
    for epoch in 1..=5u64 {
        let past = db.snapshot_at(epoch).expect("held epoch must stay servable");
        assert_eq!(past.read(&0), Some(epoch as i64));
    }
    drop(old);
}

#[test]
fn read_view_unifies_snapshot_and_txn() {
    let db = db();
    // Snapshot surface.
    let snap = db.snapshot();
    assert_eq!(sum_range(&snap, 2, 5).unwrap(), 20 + 30 + 40);
    assert_eq!(ReadView::get(&snap, &3).unwrap(), Some(30));
    assert_eq!(ReadView::get(&snap, &42).unwrap(), None, "unknown key is None, not an error");
    assert_eq!(ReadView::epoch(&snap), snap.epoch());
    assert_eq!(snap.scan_all().unwrap().len(), 10);

    // Transactional surface: same generic code, live semantics.
    let t = db.begin();
    t.write(&3, 999).unwrap();
    assert_eq!(sum_range(&t, 2, 5).unwrap(), 20 + 999 + 40, "txn range sees own writes");
    assert_eq!(ReadView::get(&t, &42).unwrap(), None);
    assert_eq!(ReadView::epoch(&t), db.epochs().watermark);
    t.abort();

    // The snapshot was isolated from the aborted write all along.
    assert_eq!(sum_range(&snap, 2, 5).unwrap(), 90);
}

#[test]
fn txn_range_conflicts_surface_as_errors() {
    let db: Db<u64, i64> =
        Db::with_config(DbConfig::builder().policy(rnt_core::DeadlockPolicy::NoWait).build());
    for k in 0..4 {
        db.insert(k, 0);
    }
    let writer = db.begin();
    writer.write(&2, 7).unwrap();
    // A locked scan crossing the held key dies under NoWait...
    let reader = db.begin();
    assert!(ReadView::range(&reader, 0..4).is_err());
    reader.abort();
    // ...while the lock-free snapshot scan sails through.
    assert_eq!(db.snapshot().range(0..4).len(), 4);
    writer.commit().unwrap();
}

#[test]
fn version_budget_bounds_history_under_a_stuck_snapshot() {
    let db: Db<u64, i64> = Db::with_config(DbConfig::builder().max_versions_per_key(3).build());
    db.insert(0, 0);
    let stuck = db.snapshot();
    for round in 1..=20i64 {
        db.run(|t| t.write(&0, round).map(|_| ())).unwrap();
    }
    assert!(db.history(&0).len() <= 3, "budget must bound the chain");
    assert_eq!(db.history(&0).last(), Some(&(20, 20)));
    // The stuck snapshot expired: detectable, and the key reads as absent.
    assert!(stuck.is_expired());
    assert_eq!(stuck.read(&0), None);
    assert!(db.epochs().oldest_retained > stuck.epoch());
    // A fresh snapshot is unaffected.
    let fresh = db.snapshot();
    assert!(!fresh.is_expired());
    assert_eq!(fresh.read(&0), Some(20));
}

#[test]
fn snapshot_clone_shares_the_pin() {
    let db = db();
    let snap = db.snapshot();
    let clone = snap.clone();
    assert_eq!(clone.epoch(), snap.epoch());
    assert_eq!(db.stats().snapshot_pins_live, 2);
    db.run(|t| t.write(&0, -5).map(|_| ())).unwrap();
    drop(snap);
    // The clone alone still protects the old version.
    assert_eq!(clone.read(&0), Some(0));
    assert_eq!(db.stats().snapshot_pins_live, 1);
    drop(clone);
    assert_eq!(db.stats().snapshot_pins_live, 0);
    assert_eq!(db.history(&0).len(), 1, "versions reclaimed once every clone dropped");
}

#[test]
fn debug_impls_are_present_and_informative() {
    let db = db();
    let s = format!("{db:?}");
    assert!(s.contains("watermark"));
    let snap: Snapshot<u64, i64> = db.snapshot();
    let s = format!("{snap:?}");
    assert!(s.contains("epoch"));
    let t = db.begin();
    let s = format!("{t:?}");
    assert!(s.contains("top_level"));
    t.abort();
    let s = format!("{:?}", db.epochs());
    assert!(s.contains("oldest_retained"));
    let s = format!("{:?}", SnapshotError::Pruned { requested: 1, oldest_retained: 2 });
    assert!(s.contains("Pruned"));
}

#[test]
fn range_scans_are_counted() {
    let db = db();
    let before = db.stats().range_scans;
    let _ = db.snapshot().range(..);
    let t = db.begin();
    let _ = ReadView::range(&t, 0..3).unwrap();
    t.abort();
    assert_eq!(db.stats().range_scans, before + 2);
}
