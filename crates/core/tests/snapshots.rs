//! Integration tests for lock-free snapshot reads (`Db::snapshot`) and
//! the MVCC version chains behind them: isolation semantics, the
//! zero-lock guarantee, counter conservation, GC liveness, and chain
//! equality across crash recovery.

use rnt_core::{Db, DbConfig, Durability};
use rnt_wal::MemVfs;
use std::sync::Arc;

const LOG: &str = "db.wal";

fn db() -> Db<u64, i64> {
    let db = Db::new();
    for k in 0..8 {
        db.insert(k, 100 + k as i64);
    }
    db
}

fn commit_write(db: &Db<u64, i64>, key: u64, delta: i64) {
    let t = db.begin();
    t.rmw(&key, |v| v + delta).unwrap();
    t.commit().unwrap();
}

#[test]
fn snapshot_is_frozen_at_its_epoch() {
    let db = db();
    commit_write(&db, 0, 1); // 101
    let snap = db.snapshot();
    let at_pin = snap.epoch();
    commit_write(&db, 0, 1); // 102
    commit_write(&db, 1, 5); // 106
    assert_eq!(snap.read(&0), Some(101), "snapshot must not see later commits");
    assert_eq!(snap.read(&1), Some(101));
    assert_eq!(snap.epoch(), at_pin);
    assert_eq!(db.committed_value(&0), Some(102), "writers unaffected");
    let later = db.snapshot();
    assert_eq!(later.read(&0), Some(102), "a fresh snapshot sees the present");
}

#[test]
fn snapshot_sees_seeds_inserted_after_pinning() {
    // Seeds are genesis-epoch versions: non-transactional initialization
    // is visible to every snapshot, whenever it happens.
    let db = db();
    let snap = db.snapshot();
    db.insert(99, 7);
    assert_eq!(snap.read(&99), Some(7));
    assert_eq!(snap.read(&98), None);
}

#[test]
fn snapshot_reads_acquire_zero_locks() {
    let db = db();
    commit_write(&db, 0, 1);
    commit_write(&db, 1, 1);
    let before = db.stats();
    let snap = db.snapshot();
    for k in 0..8 {
        snap.read(&k);
    }
    let after = db.stats();
    // The acceptance criterion: no lock-manager activity is attributable
    // to snapshot reads — only the snapshot_reads counter moves.
    assert_eq!(after.reads, before.reads, "snapshot reads must not take read locks");
    assert_eq!(after.writes, before.writes);
    assert_eq!(after.conflicts, before.conflicts);
    assert_eq!(after.waits, before.waits);
    assert_eq!(after.begun, before.begun, "snapshots are not transactions");
    assert_eq!(after.snapshot_reads, before.snapshot_reads + 8);
    assert_eq!(after.snapshot_pins_live, 1);
}

#[test]
fn snapshot_ignores_uncommitted_and_aborted_writes() {
    let db = db();
    let t = db.begin();
    t.rmw(&0, |v| v + 1000).unwrap();
    let snap = db.snapshot();
    assert_eq!(snap.read(&0), Some(100), "uncommitted write invisible");
    t.abort();
    assert_eq!(snap.read(&0), Some(100), "aborted write never published");
    drop(snap);
    assert_eq!(db.snapshot().read(&0), Some(100));
}

#[test]
fn nested_commits_publish_only_at_top_level() {
    let db = db();
    let snap0 = db.snapshot();
    let t = db.begin();
    let c = t.child().unwrap();
    c.rmw(&0, |v| v + 1).unwrap();
    c.commit().unwrap();
    // The child committed to its parent — not to the committed state.
    let mid = db.snapshot();
    assert_eq!(mid.read(&0), Some(100), "child commit is revocable, not visible");
    assert_eq!(mid.epoch(), snap0.epoch(), "no epoch consumed by nested commits");
    drop(mid);
    t.commit().unwrap();
    assert_eq!(db.snapshot().read(&0), Some(101));
    assert_eq!(snap0.read(&0), Some(100), "old pin still frozen");
}

#[test]
fn counter_conservation_and_gc_liveness() {
    let db = db();
    let snap = db.snapshot();
    for i in 0..20 {
        commit_write(&db, i % 4, 1);
    }
    let stats = db.stats();
    let held: u64 = (0..8).map(|k| db.history(&k).len() as u64).sum();
    assert_eq!(
        stats.versions_created - stats.versions_reclaimed,
        held,
        "created - reclaimed must equal the versions currently held"
    );
    assert!(held > 8, "the live pin must be holding superseded versions");
    assert_eq!(stats.snapshot_pins_live, 1);
    drop(snap);
    // Liveness: with no pins, every chain collapses back to length 1.
    for k in 0..8 {
        assert_eq!(db.history(&k).len(), 1, "key {k} chain not reclaimed");
    }
    let stats = db.stats();
    assert_eq!(stats.versions_created - stats.versions_reclaimed, 8);
    assert_eq!(stats.snapshot_pins_live, 0);
}

#[test]
fn concurrent_snapshots_pin_independent_epochs() {
    let db = db();
    let s1 = db.snapshot();
    commit_write(&db, 0, 1);
    let s2 = db.snapshot();
    commit_write(&db, 0, 1);
    let s3 = db.snapshot();
    assert_eq!(s1.read(&0), Some(100));
    assert_eq!(s2.read(&0), Some(101));
    assert_eq!(s3.read(&0), Some(102));
    drop(s2);
    assert_eq!(s1.read(&0), Some(100), "dropping a middle pin must not free s1's version");
    assert_eq!(s3.read(&0), Some(102));
}

#[test]
fn snapshot_readers_race_writers() {
    // 4 writer threads committing rmws vs 2 snapshot readers asserting
    // each snapshot is internally frozen (two reads of the same key agree
    // even while writers land between them).
    let db: Db<u64, i64> = Db::new();
    for k in 0..4 {
        db.insert(k, 0);
    }
    let mut handles = Vec::new();
    for w in 0..4u64 {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..200 {
                let key = (w + i) % 4;
                db.run(|t| t.rmw(&key, |v| v + 1)).unwrap();
            }
        }));
    }
    for _ in 0..2 {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..300 {
                let snap = db.snapshot();
                for k in 0..4 {
                    let a = snap.read(&k);
                    let b = snap.read(&k);
                    assert_eq!(a, b, "a pinned snapshot must be frozen");
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let total: i64 = (0..4).map(|k| db.committed_value(&k).unwrap()).sum();
    assert_eq!(total, 4 * 200);
    for k in 0..4 {
        assert_eq!(db.history(&k).len(), 1, "all chains reclaimed after readers exit");
    }
}

#[test]
fn recovery_rebuilds_identical_version_chains() {
    let vfs = Arc::new(MemVfs::new());
    let config = DbConfig::builder().durability(Durability::Wal).build();
    let db: Db<String, i64> = Db::open_with_vfs(vfs.clone(), LOG, config.clone()).unwrap();
    db.insert("a".into(), 1);
    db.insert("b".into(), 2);
    for i in 0..3 {
        let t = db.begin();
        t.rmw(&"a".to_string(), |v| v + 1).unwrap();
        if i == 1 {
            t.rmw(&"b".to_string(), |v| v * 10).unwrap();
        }
        t.commit().unwrap();
    }
    let forward_a = db.history(&"a".to_string());
    let forward_b = db.history(&"b".to_string());
    let forward_epoch = db.epochs().watermark;

    let v1 = Arc::new(MemVfs::new());
    v1.install(LOG, vfs.snapshot(LOG));
    let r1 = Db::<String, i64>::recover_with_vfs(v1.clone(), LOG, config.clone()).unwrap();
    assert_eq!(r1.history(&"a".to_string()), forward_a);
    assert_eq!(r1.history(&"b".to_string()), forward_b);
    assert_eq!(r1.epochs().watermark, forward_epoch);

    // recover ∘ recover ≡ recover, extended to chains: recovering the
    // recovered (checkpointed) log reproduces the same chains and epoch.
    let v2 = Arc::new(MemVfs::new());
    v2.install(LOG, v1.snapshot(LOG));
    let r2 = Db::<String, i64>::recover_with_vfs(v2, LOG, config.clone()).unwrap();
    assert_eq!(r2.history(&"a".to_string()), forward_a);
    assert_eq!(r2.history(&"b".to_string()), forward_b);
    assert_eq!(r2.epochs().watermark, forward_epoch);

    // …and to the ordered index: a full range scan over each recovered
    // database walks the same keys to the same values, in the same order.
    let forward_scan = db.snapshot().range(..);
    assert_eq!(r1.snapshot().range(..), forward_scan);
    assert_eq!(r2.snapshot().range(..), forward_scan);
}

#[test]
fn recovery_compacts_history_and_reports_the_floor_honestly() {
    let vfs = Arc::new(MemVfs::new());
    let config = DbConfig::builder().durability(Durability::Wal).build();
    let db: Db<String, i64> = Db::open_with_vfs(vfs.clone(), LOG, config.clone()).unwrap();
    db.insert("a".into(), 0);
    for i in 1..=3i64 {
        let t = db.begin();
        t.write(&"a".to_string(), i * 10).unwrap();
        t.commit().unwrap();
    }
    // Replay runs with no live pins, so recovery compacts every chain to
    // its newest version: time travel does not survive a restart, and the
    // retained floor must SAY so — a pre-crash epoch is a typed `Pruned`
    // rejection, never a silently inconsistent view.
    let fresh = Arc::new(MemVfs::new());
    fresh.install(LOG, vfs.snapshot(LOG));
    let r = Db::<String, i64>::recover_with_vfs(fresh, LOG, config.clone()).unwrap();
    let bounds = r.epochs();
    assert_eq!(bounds.watermark, 3);
    assert_eq!(bounds.oldest_retained, 3, "floor rose to the newest surviving versions");
    for epoch in 1..=2u64 {
        assert!(
            matches!(r.snapshot_at(epoch), Err(rnt_core::SnapshotError::Pruned { .. })),
            "compacted epoch {epoch} must be rejected, not served inconsistently"
        );
    }
    let now = r.snapshot_at(3).unwrap();
    assert_eq!(now.range(..), vec![("a".to_string(), 30)]);

    // Same story behind a checkpoint: chains restart at their per-key
    // checkpoint epochs, so the concession covers the compacted span and
    // only the post-recovery present is travelable.
    db.checkpoint().unwrap();
    let t = db.begin();
    t.write(&"a".to_string(), 40).unwrap();
    t.commit().unwrap(); // epoch 4, above the checkpoint
    let fresh = Arc::new(MemVfs::new());
    fresh.install(LOG, vfs.snapshot(LOG));
    let r = Db::<String, i64>::recover_with_vfs(fresh, LOG, config).unwrap();
    assert!(matches!(r.snapshot_at(1), Err(rnt_core::SnapshotError::Pruned { .. })));
    let past = r.snapshot_at(r.epochs().watermark).unwrap();
    assert_eq!(past.read(&"a".to_string()), Some(40));

    // Time travel re-arms going forward: pin the recovered present, then
    // commit on top — the held epoch stays travelable.
    let hold = r.snapshot();
    let t = r.begin();
    t.write(&"a".to_string(), 50).unwrap();
    t.commit().unwrap();
    let back = r.snapshot_at(hold.epoch()).unwrap();
    assert_eq!(back.read(&"a".to_string()), Some(40));
    drop((hold, back));
}

#[test]
fn recovered_checkpoint_preserves_per_key_epochs() {
    let vfs = Arc::new(MemVfs::new());
    let config = DbConfig::builder().durability(Durability::Wal).build();
    let db: Db<String, i64> = Db::open_with_vfs(vfs.clone(), LOG, config.clone()).unwrap();
    db.insert("a".into(), 1);
    db.insert("b".into(), 2);
    let t = db.begin();
    t.rmw(&"a".to_string(), |v| v + 1).unwrap();
    t.commit().unwrap(); // epoch 1 touches only "a"
    db.checkpoint().unwrap();
    let t = db.begin();
    t.rmw(&"b".to_string(), |v| v + 1).unwrap();
    t.commit().unwrap(); // epoch 2 touches only "b"

    let fresh = Arc::new(MemVfs::new());
    fresh.install(LOG, vfs.snapshot(LOG));
    let r = Db::<String, i64>::recover_with_vfs(fresh, LOG, config).unwrap();
    assert_eq!(r.history(&"a".to_string()), db.history(&"a".to_string()));
    assert_eq!(r.history(&"b".to_string()), db.history(&"b".to_string()));
    assert_eq!(r.epochs().watermark, db.epochs().watermark);
    // New commits on the recovered db continue the epoch sequence.
    let t = r.begin();
    t.rmw(&"a".to_string(), |v| v + 1).unwrap();
    t.commit().unwrap();
    assert_eq!(r.epochs().watermark, db.epochs().watermark + 1);
}
