//! Property-based engine checks: serializability of audited concurrent
//! runs, conservation (no lost updates), resilience of abort, and lock
//! state invariants under random operation sequences.

use proptest::prelude::*;
use rnt_core::{Conflict, DbConfig, DeadlockPolicy, LockEnv, LockState, TxnId};
use rnt_sim::engine::{run_workload, seeded_db, KeyDist, TxnShape, Workload};
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn audited_random_workloads_are_serializable(
        seed in 0u64..10_000,
        threads in 2usize..5,
        children in 1u32..4,
        depth in 1u32..3,
        read_pct in 0u32..=100,
        abort_pct in 0u32..=30,
        keys in 4u64..24,
        policy_pick in 0u8..3,
    ) {
        let policy = match policy_pick {
            0 => DeadlockPolicy::Detect,
            1 => DeadlockPolicy::WaitDie,
            _ => DeadlockPolicy::NoWait,
        };
        let db = seeded_db(DbConfig::builder().audit(true).policy(policy).build(), keys);
        let w = Workload {
            threads,
            txns_per_thread: 8,
            ops_per_txn: 3,
            read_ratio: read_pct as f64 / 100.0,
            keys,
            dist: KeyDist::Uniform,
            shape: TxnShape::Nested { children, depth },
            abort_prob: abort_pct as f64 / 100.0,
            exclusive_reads: false,
            op_abort_prob: 0.0,
            sorted_ops: false,
            seed,
        };
        run_workload(&db, &w);
        let (universe, aat) = db.audit_log().unwrap().reconstruct().expect("log well-formed");
        prop_assert!(
            aat.perm().is_rw_data_serializable(&universe),
            "serializability violated (seed {seed})"
        );
    }

    #[test]
    fn increment_conservation(
        seed in 0u64..10_000,
        threads in 2usize..5,
        keys in 2u64..10,
        policy_pick in 0u8..3,
    ) {
        let policy = match policy_pick {
            0 => DeadlockPolicy::Detect,
            1 => DeadlockPolicy::WaitDie,
            _ => DeadlockPolicy::NoWait,
        };
        let db = seeded_db(DbConfig::builder().policy(policy).build(), keys);
        let w = Workload {
            threads,
            txns_per_thread: 10,
            ops_per_txn: 2,
            read_ratio: 0.0,
            keys,
            dist: KeyDist::Uniform,
            shape: TxnShape::Nested { children: 2, depth: 1 },
            abort_prob: 0.1,
            exclusive_reads: false,
            op_abort_prob: 0.0,
            sorted_ops: false,
            seed,
        };
        let r = run_workload(&db, &w);
        let total: i64 = (0..keys).map(|k| db.committed_value(&k).unwrap()).sum();
        prop_assert_eq!(total, 4 * r.committed as i64, "lost or phantom update");
    }
}

/// A scriptable lock environment over an explicit forest.
#[derive(Default, Clone)]
struct ScriptEnv {
    parent: HashMap<TxnId, TxnId>,
    aborted: Vec<TxnId>,
}

impl LockEnv for ScriptEnv {
    fn is_ancestor(&self, a: TxnId, b: TxnId) -> bool {
        let mut cur = Some(b);
        while let Some(c) = cur {
            if c == a {
                return true;
            }
            cur = self.parent.get(&c).copied();
        }
        false
    }
    fn is_dead(&self, t: TxnId) -> bool {
        let mut cur = Some(t);
        while let Some(c) = cur {
            if self.aborted.contains(&c) {
                return true;
            }
            cur = self.parent.get(&c).copied();
        }
        false
    }
}

/// Random op against a LockState.
#[derive(Clone, Debug)]
enum LockOp {
    Read(u8),
    Write(u8, i64),
    Commit(u8),
    Abort(u8),
}

fn op_strategy() -> impl Strategy<Value = LockOp> {
    prop_oneof![
        (0u8..8).prop_map(LockOp::Read),
        (0u8..8, -4i64..5).prop_map(|(t, v)| LockOp::Write(t, v)),
        (0u8..8).prop_map(LockOp::Commit),
        (0u8..8).prop_map(LockOp::Abort),
    ]
}

proptest! {
    #[test]
    fn lock_state_invariants_under_random_ops(ops in prop::collection::vec(op_strategy(), 0..40)) {
        // Transactions 0..8 form a fixed forest: 0 and 1 top-level;
        // 2,3 children of 0; 4,5 children of 1; 6 child of 2; 7 child of 4.
        let mut env = ScriptEnv::default();
        let edges = [(2u64, 0u64), (3, 0), (4, 1), (5, 1), (6, 2), (7, 4)];
        for (c, p) in edges {
            env.parent.insert(TxnId(c), TxnId(p));
        }
        let mut lock: LockState<i64> = LockState::new(0);
        let mut done: Vec<TxnId> = Vec::new();
        for op in ops {
            match op {
                LockOp::Read(t) => {
                    let t = TxnId(t as u64);
                    if done.contains(&t) || env.is_dead(t) { continue; }
                    let _ = lock.try_read(t, &env);
                }
                LockOp::Write(t, v) => {
                    let t = TxnId(t as u64);
                    if done.contains(&t) || env.is_dead(t) { continue; }
                    let _ = lock.try_write(t, &env, |_| v);
                }
                LockOp::Commit(t) => {
                    let t = TxnId(t as u64);
                    if done.contains(&t) || env.is_dead(t) { continue; }
                    // Engine contract (enforced by the registry): commit
                    // only when every child is done.
                    let children_done = edges
                        .iter()
                        .filter(|&&(_, p)| TxnId(p) == t)
                        .all(|&(c, _)| done.contains(&TxnId(c)) || env.is_dead(TxnId(c)));
                    if !children_done { continue; }
                    lock.commit_to_parent(t, env.parent.get(&t).copied(), &env);
                    done.push(t);
                }
                LockOp::Abort(t) => {
                    let t = TxnId(t as u64);
                    if done.contains(&t) { continue; }
                    lock.abort_discard(t);
                    env.aborted.push(t);
                    done.push(t);
                }
            }
            lock.reap(&env);
            // Invariant 1: write holders form an ancestor chain.
            let holders: Vec<TxnId> = lock.write_holders().collect();
            for w in holders.windows(2) {
                prop_assert!(
                    env.is_ancestor(w[0], w[1]) && w[0] != w[1],
                    "write chain broken: {:?}", holders
                );
            }
            // Invariant 2: every reader is *comparable* with every write
            // holder (same ancestor chain). A write is granted only when
            // all readers are its ancestors; a read only when all writers
            // are its ancestors — either way the pair is related, and
            // commits/aborts preserve relatedness (locks move upward).
            for &r in lock.read_holders() {
                for &h in &holders {
                    prop_assert!(
                        env.is_ancestor(h, r) || env.is_ancestor(r, h),
                        "reader {:?} unrelated to writer {:?}", r, h
                    );
                }
            }
            // Invariant 3: no duplicate holders.
            let mut hs = holders.clone();
            hs.dedup();
            prop_assert_eq!(hs.len(), lock.write_holders().count());
        }
    }

    #[test]
    fn nested_write_stack_restores_on_abort(vals in prop::collection::vec(-100i64..100, 1..6)) {
        // A chain T0 → T1 → ... writes successive values; aborting from the
        // deepest up restores each enclosing version in reverse order.
        let mut env = ScriptEnv::default();
        for i in 1..vals.len() {
            env.parent.insert(TxnId(i as u64), TxnId(i as u64 - 1));
        }
        let mut lock: LockState<i64> = LockState::new(-1);
        for (i, &v) in vals.iter().enumerate() {
            lock.try_write(TxnId(i as u64), &env, |_| v).expect("chain writes are compatible");
        }
        for i in (0..vals.len()).rev() {
            prop_assert_eq!(*lock.current_value(), vals[i]);
            lock.abort_discard(TxnId(i as u64));
        }
        prop_assert_eq!(*lock.current_value(), -1, "base restored");
    }

    #[test]
    fn conflict_blockers_are_live_non_ancestors(
        t1 in 0u64..3, t2 in 3u64..6,
    ) {
        let env = ScriptEnv::default(); // all top-level, unrelated
        let mut lock: LockState<i64> = LockState::new(0);
        lock.try_write(TxnId(t1), &env, |_| 1).unwrap();
        match lock.try_write(TxnId(t2), &env, |_| 2) {
            Err(Conflict { blockers }) => {
                prop_assert_eq!(blockers, vec![TxnId(t1)]);
            }
            Ok(_) => prop_assert!(false, "unrelated write must conflict"),
        }
    }
}
