//! Abort-path resilience: the scenarios the chaos harness generates at
//! random, pinned down as directed tests. A parent abort must orphan its
//! live children, orphans must be refused service, and version stacks
//! must unwind level by level on cascading aborts.

use rnt_core::{Db, TxnError};

fn seeded_db() -> Db<u64, i64> {
    let db = Db::new();
    db.insert(0, 10);
    db.insert(1, 20);
    db
}

#[test]
fn parent_abort_orphans_live_children_and_restores_versions() {
    let db = seeded_db();
    let parent = db.begin();
    parent.write(&0, 100).unwrap();
    let child = parent.child().unwrap();
    child.write(&0, 200).unwrap();
    child.write(&1, 300).unwrap();

    // Abort the parent while the child is still live: the child becomes an
    // orphan and every version written in the subtree is discarded.
    parent.abort();
    assert!(matches!(child.read(&0), Err(TxnError::Orphaned)));
    assert!(matches!(child.write(&1, 999), Err(TxnError::Orphaned)));
    drop(child);

    // A stranger sees the pre-transaction committed state, not leftovers.
    let stranger = db.begin();
    assert_eq!(stranger.read(&0).unwrap(), 10);
    assert_eq!(stranger.read(&1).unwrap(), 20);
    stranger.commit().unwrap();
}

#[test]
fn rmw_through_an_aborted_ancestor_chain_is_refused() {
    let db = seeded_db();
    let top = db.begin();
    let mid = top.child().unwrap();
    let leaf = mid.child().unwrap();
    leaf.rmw(&0, |v| v + 1).unwrap();

    // Aborting the *grandparent* orphans the whole chain: both descendants
    // must refuse further data access. Orphan detection is lazy (at access
    // time), so opening a child under an orphan succeeds — but that child
    // is itself an orphan and is refused on first touch.
    top.abort();
    assert!(matches!(leaf.rmw(&0, |v| v + 1), Err(TxnError::Orphaned)));
    assert!(matches!(mid.read(&0), Err(TxnError::Orphaned)));
    if let Ok(late) = mid.child() {
        assert!(matches!(late.read(&0), Err(TxnError::Orphaned)));
        drop(late);
    }
    drop(leaf);
    drop(mid);

    let after = db.begin();
    assert_eq!(after.read(&0).unwrap(), 10);
    after.commit().unwrap();
}

#[test]
fn cascading_aborts_restore_versions_level_by_level() {
    let db = seeded_db();
    let top = db.begin();
    top.write(&0, 1).unwrap();
    let child = top.child().unwrap();
    child.write(&0, 2).unwrap();
    let grand = child.child().unwrap();
    grand.write(&0, 3).unwrap();

    // Peel the version stack one abort at a time: each level's abort
    // exposes the next-outer uncommitted version to the surviving holder.
    assert_eq!(grand.read(&0).unwrap(), 3);
    grand.abort();
    assert_eq!(child.read(&0).unwrap(), 2);
    child.abort();
    assert_eq!(top.read(&0).unwrap(), 1);
    top.abort();

    // With the whole tree gone, only the base committed value remains.
    assert_eq!(db.committed_value(&0), Some(10));
    let fresh = db.begin();
    assert_eq!(fresh.read(&0).unwrap(), 10);
    fresh.commit().unwrap();
}

#[test]
fn child_commit_then_parent_abort_discards_the_inherited_version() {
    let db = seeded_db();
    let top = db.begin();
    let child = top.child().unwrap();
    child.write(&0, 42).unwrap();
    // Commit-to-parent: the parent inherits the lock and the version...
    child.commit().unwrap();
    assert_eq!(top.read(&0).unwrap(), 42);
    // ...but the parent's abort must still discard it.
    top.abort();
    assert_eq!(db.committed_value(&0), Some(10));
}
