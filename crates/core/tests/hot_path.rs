//! Both `HotPath` arms through the public `Db` surface.
//!
//! `HotPath::Legacy` is the compiled-in benchmark baseline (single-map
//! registry, unstriped stats, fully locked pins); `HotPath::Scaled` is
//! the default. These tests run the same workloads through both and
//! assert the toggle is unobservable: identical committed state on
//! deterministic histories, the same stats conservation identities, and
//! the same snapshot pin/unpin behavior under concurrency.

use rnt_core::{Db, DbConfig, DeadlockPolicy, HotPath};
use std::sync::Arc;

fn db_with(hot_path: HotPath) -> Db<u64, i64> {
    let config =
        DbConfig::builder().policy(DeadlockPolicy::NoWait).shards(4).hot_path(hot_path).build();
    Db::with_config(config)
}

const ARMS: [HotPath; 2] = [HotPath::Legacy, HotPath::Scaled];

/// A deterministic single-threaded history commits to identical state
/// under both arms, and the stats ledger balances identically.
#[test]
fn arms_agree_on_deterministic_history() {
    let mut finals = Vec::new();
    for arm in ARMS {
        let db = db_with(arm);
        for k in 0..64u64 {
            db.insert(k, 0);
        }
        for round in 0..10i64 {
            for k in 0..64u64 {
                if (k + round as u64).is_multiple_of(7) {
                    // Aborted work must restore the pre-image.
                    let t = db.begin();
                    t.rmw(&k, |v| v + 1000).unwrap();
                    t.abort();
                } else {
                    db.run(|t| {
                        let v = t.read(&k)?;
                        let c = t.child().unwrap();
                        c.rmw(&k, move |_| v + round)?;
                        c.commit()?;
                        Ok(())
                    })
                    .unwrap();
                }
            }
        }
        let s = db.stats();
        assert_eq!(s.begun, s.committed + s.aborted, "{arm:?} ledger");
        assert!(s.reads > 0 && s.writes > 0, "{arm:?} op counters");
        finals.push((
            (0..64u64).map(|k| db.committed_value(&k).unwrap()).collect::<Vec<_>>(),
            (s.begun, s.committed, s.aborted, s.reads, s.writes),
        ));
    }
    assert_eq!(finals[0], finals[1], "arms diverged");
}

/// Concurrent commits from many threads conserve the stats ledger in
/// both arms — the striped fold must lose nothing the single block
/// would have counted.
#[test]
fn stats_conservation_under_concurrency_both_arms() {
    for arm in ARMS {
        let db = Arc::new(db_with(arm));
        for k in 0..32u64 {
            db.insert(k, 0);
        }
        std::thread::scope(|s| {
            for w in 0..8u64 {
                let db = db.clone();
                s.spawn(move || {
                    for i in 0..200u64 {
                        let k = (w * 31 + i) % 32;
                        db.run(|t| t.rmw(&k, |v| v + 1)).unwrap();
                    }
                });
            }
        });
        let s = db.stats();
        assert_eq!(s.begun, s.committed + s.aborted, "{arm:?} ledger");
        assert_eq!(s.committed, 8 * 200, "{arm:?} every quota commit counted");
        let total: i64 = (0..32u64).map(|k| db.committed_value(&k).unwrap()).sum();
        assert_eq!(total, 8 * 200, "{arm:?} committed effects");
    }
}

/// Snapshots opened under write churn stay consistent and release their
/// pins in both arms — the lock-free pin ring and the legacy mutexed
/// table must be interchangeable through the public API.
#[test]
fn snapshot_pins_release_under_churn_both_arms() {
    for arm in ARMS {
        let db = Arc::new(db_with(arm));
        for k in 0..16u64 {
            db.insert(k, 0);
        }
        std::thread::scope(|s| {
            let writer = db.clone();
            s.spawn(move || {
                for i in 0..500i64 {
                    writer.run(|t| t.rmw(&(i as u64 % 16), |v| v + 1)).unwrap();
                }
            });
            for _ in 0..4 {
                let reader = db.clone();
                s.spawn(move || {
                    for _ in 0..200 {
                        let snap = reader.snapshot();
                        // A snapshot is a frozen epoch: re-reading a key
                        // must be stable no matter what the writer does.
                        let before = snap.read(&3);
                        let after = snap.read(&3);
                        assert_eq!(before, after, "{arm:?} snapshot drifted");
                    }
                });
            }
        });
        // All pins released: a fresh snapshot sees the final state and
        // the epoch floor is free to advance past the churn.
        let snap = db.snapshot();
        let total: i64 = (0..16u64).map(|k| snap.read(&k).unwrap()).sum();
        assert_eq!(total, 500, "{arm:?} final state");
    }
}
