//! Fault-injection hooks for the chaos harness (`chaos-hooks` feature).
//!
//! The engine exposes a tiny, deterministic decision surface that a test
//! harness (the `rnt-chaos` crate) can implement to perturb executions at
//! the exact points the paper's adversary controls:
//!
//! * [`Injector::before_access`] runs on every lock-acquiring operation —
//!   returning [`AccessFault::Die`] simulates a deadlock-policy victim
//!   kill, [`AccessFault::Timeout`] a lock-wait expiry;
//! * [`Injector::fail_begin_child`] makes subtransaction creation fail,
//!   exercising the caller's recovery path.
//!
//! The hooks are pull-based and synchronous: the engine consults the
//! installed injector from the requesting thread, so a single-threaded
//! driver that controls its scheduler and its injector observes a fully
//! deterministic execution. With no injector installed the hooks are
//! no-ops, so enabling the feature does not change engine behavior.

use crate::registry::TxnId;

/// The decision an [`Injector`] makes before a lock-acquiring operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AccessFault {
    /// No fault: run the operation normally.
    #[default]
    Proceed,
    /// Fail the operation with [`crate::TxnError::Die`] (a synthetic
    /// deadlock-policy victim kill; retryable).
    Die,
    /// Fail the operation with [`crate::TxnError::Timeout`] (a synthetic
    /// lock-wait expiry; retryable).
    Timeout,
}

/// A fault source the engine consults at its injection points.
///
/// Implementations must be cheap and deterministic given their own state:
/// the engine calls them while holding a shard lock.
pub trait Injector: Send + Sync {
    /// Consulted before every read/write/rmw lock acquisition by
    /// transaction `t` on the given lock-table shard.
    fn before_access(&self, t: TxnId, shard: usize) -> AccessFault {
        let _ = (t, shard);
        AccessFault::Proceed
    }

    /// Consulted when `parent` begins a subtransaction; returning `true`
    /// fails the begin with a retryable [`crate::TxnError::Die`].
    fn fail_begin_child(&self, parent: TxnId) -> bool {
        let _ = parent;
        false
    }
}
