//! Engine error types.

use crate::registry::TxnId;
use std::time::Duration;

/// Errors returned by transactional operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxnError {
    /// The key is not in the store (objects must be seeded before use,
    /// mirroring the paper's fixed object universe).
    UnknownKey,
    /// The transaction (or an ancestor) has aborted; the caller is an
    /// orphan and should unwind.
    Orphaned,
    /// Lock wait exceeded the configured timeout.
    Timeout(Duration),
    /// Wait-die policy: the requester is younger than a lock holder and
    /// must abort (and may retry as a new transaction).
    Die {
        /// The older transaction that held the contended lock.
        blocker: TxnId,
    },
    /// Deadlock detected in the wait-for graph; the requester is the victim.
    Deadlock {
        /// The cycle found, starting and ending at the requester.
        cycle: Vec<TxnId>,
    },
    /// Commit attempted while children are still active.
    ChildrenActive(u32),
    /// Optimistic (first-committer-wins) validation failed: a key in the
    /// transaction's read or write set gained a committed version after
    /// the transaction pinned its begin snapshot. The transaction is
    /// aborted; the caller should retry from a fresh snapshot.
    Conflict {
        /// The snapshot epoch the transaction pinned at begin.
        begin_epoch: u64,
        /// The newer committed epoch that invalidated the footprint.
        committed_epoch: u64,
    },
    /// The transaction already committed or aborted.
    NotActive,
    /// The write-ahead log failed; the commit's durability cannot be
    /// guaranteed. In-memory state is still consistent (locks were
    /// released normally) but the caller must not treat the transaction
    /// as durably committed.
    Wal {
        /// The underlying log failure.
        detail: String,
    },
    /// A multi-node router directed an operation at a node that does not
    /// home the key (the paper's `home(x)` side condition, violated):
    /// the partition map and the executing node disagree. Always a
    /// routing bug, never a transient condition.
    WrongNode {
        /// The node that received the operation.
        node: usize,
        /// The node the key is actually homed at.
        home: usize,
    },
    /// The node homing the key is down (crashed and not yet recovered,
    /// or unreachable). The transaction should abort; the caller may try
    /// again once the node rejoins — unlike the contention errors this
    /// is not resolved by an immediate retry, so it is not
    /// [retryable](TxnError::is_retryable).
    Unavailable {
        /// The unreachable node.
        node: usize,
    },
}

impl std::fmt::Display for TxnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxnError::UnknownKey => write!(f, "unknown key"),
            TxnError::Orphaned => write!(f, "transaction orphaned by an ancestor abort"),
            TxnError::Timeout(d) => write!(f, "lock wait timed out after {d:?}"),
            TxnError::Die { blocker } => write!(f, "wait-die: must die (blocked by {blocker:?})"),
            TxnError::Deadlock { cycle } => write!(f, "deadlock detected: {cycle:?}"),
            TxnError::Conflict { begin_epoch, committed_epoch } => write!(
                f,
                "first-committer-wins conflict: footprint key committed at epoch \
                 {committed_epoch} after begin snapshot {begin_epoch}"
            ),
            TxnError::ChildrenActive(n) => write!(f, "{n} children still active"),
            TxnError::NotActive => write!(f, "transaction not active"),
            TxnError::Wal { detail } => write!(f, "write-ahead log failure: {detail}"),
            TxnError::WrongNode { node, home } => {
                write!(f, "operation routed to node {node} but the key is homed at node {home}")
            }
            TxnError::Unavailable { node } => write!(f, "node {node} is unavailable"),
        }
    }
}

impl std::error::Error for TxnError {}

impl TxnError {
    /// True for errors a caller is expected to handle by aborting the
    /// transaction and retrying it afresh (contention outcomes).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            TxnError::Timeout(_)
                | TxnError::Die { .. }
                | TxnError::Deadlock { .. }
                | TxnError::Conflict { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability() {
        assert!(TxnError::Timeout(Duration::from_millis(1)).is_retryable());
        assert!(TxnError::Die { blocker: TxnId(0) }.is_retryable());
        assert!(TxnError::Deadlock { cycle: vec![] }.is_retryable());
        assert!(TxnError::Conflict { begin_epoch: 3, committed_epoch: 5 }.is_retryable());
        assert!(!TxnError::Orphaned.is_retryable());
        assert!(!TxnError::UnknownKey.is_retryable());
        assert!(!TxnError::NotActive.is_retryable());
        assert!(!TxnError::Wal { detail: "disk full".into() }.is_retryable());
        assert!(!TxnError::WrongNode { node: 1, home: 0 }.is_retryable());
        assert!(!TxnError::Unavailable { node: 2 }.is_retryable());
    }

    #[test]
    fn display_forms() {
        assert_eq!(TxnError::UnknownKey.to_string(), "unknown key");
        assert!(TxnError::Die { blocker: TxnId(3) }.to_string().contains("TxnId(3)"));
        let c = TxnError::Conflict { begin_epoch: 3, committed_epoch: 5 }.to_string();
        assert!(c.contains("epoch 5") && c.contains("snapshot 3"), "{c}");
        let w = TxnError::WrongNode { node: 1, home: 0 }.to_string();
        assert!(w.contains("node 1") && w.contains("node 0"), "{w}");
        assert_eq!(TxnError::Unavailable { node: 2 }.to_string(), "node 2 is unavailable");
    }
}
