//! The nested-transaction database: public API.
//!
//! [`Db`] is a sharded in-memory store whose concurrency control is Moss's
//! nested-transaction locking (read/write variant) — the algorithm the
//! paper proves correct, made concurrent. [`Txn`] handles form the action
//! tree: [`Db::begin`] starts a top-level transaction, [`Txn::child`] a
//! subtransaction; a subtransaction's failure aborts only its own subtree
//! (resilience), while its commit publishes its work *to its parent* via
//! lock inheritance.
//!
//! Configuration is built fluently ([`DbConfig::builder`]) and whole
//! transactions run with automatic retry ([`Db::run`]), mirroring
//! [`Txn::run_child`] one level up.
//!
//! # Wakeup protocol
//!
//! The paper's `release-lock`/`lose-lock` events are the engine's hot
//! path. A transaction blocked on a lock parks on a **per-key gate**
//! (condvar + generation counter, created on demand under the shard
//! lock); every state change to a key — commit inheritance, abort
//! restore, top-level publish — bumps that key's generation and notifies
//! only the transactions blocked on *that key*. The generation counter
//! doubles as the spurious/productive wakeup classifier feeding
//! [`Stats`]. [`WakeupMode::Broadcast`] keeps the old shard-wide
//! `notify_all` + poll-slice behavior as a measurable baseline.

use crate::audit::{hash_value, AuditLog, AuditRecord};
#[cfg(feature = "chaos-hooks")]
use crate::chaos;
use crate::commit_pipeline::{CommitPipeline, StagedCommit};
use crate::deadlock::WaitForGraph;
use crate::error::TxnError;
use crate::lock::{Conflict, LockEnv, LockState};
use crate::registry::{Registry, RegistryError, RegistryView, TxnId, TxnStatus};
use crate::stats::{Stats, StatsSnapshot};
use crate::view::{EpochBounds, ReadView, SnapshotError};
use parking_lot::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard};
use rnt_model::UpdateFn;
use rnt_mvcc::{MvccStore, GENESIS_EPOCH};
use rnt_wal::{Record, Wal, WalError, INIT_ACTION};
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::ops::RangeBounds;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How lock conflicts that could deadlock are resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeadlockPolicy {
    /// Wait with a bound; give up with [`TxnError::Timeout`].
    Timeout,
    /// Wait-die: older (smaller root id) requesters wait, younger ones get
    /// [`TxnError::Die`] and should abort-and-retry.
    WaitDie,
    /// Maintain a wait-for graph; the requester closing a cycle gets
    /// [`TxnError::Deadlock`].
    Detect,
    /// Never wait: any conflict is returned as [`TxnError::Die`]
    /// immediately (optimistic-style callers that retry).
    NoWait,
}

/// When and how transaction events reach stable storage.
///
/// The paper's resilience model (`perm(T)`, Lemma 7) makes *top-level*
/// commits the only durability points: a subtransaction's commit is
/// revocable until every ancestor commits, so subtransaction events never
/// need to be forced to disk — they only need to be *ordered* in the log
/// so recovery can reconstruct the action tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Durability {
    /// In-memory only: no write-ahead log, nothing survives a crash.
    #[default]
    None,
    /// Append every event to the write-ahead log but let the OS schedule
    /// flushes: recovery sees every record the kernel retired, but a
    /// crash may lose a suffix of acked commits.
    Wal,
    /// Like [`Durability::Wal`], plus an fsync before acking each
    /// top-level commit: an acked commit survives any crash.
    WalFsync,
}

/// How blocked lock waiters are woken when a lock is released.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WakeupMode {
    /// Per-key wait gates: a `release-lock`/`lose-lock` wakes only the
    /// transactions blocked on keys whose lock state actually changed.
    #[default]
    Targeted,
    /// Per-shard `notify_all` plus short poll slices — the pre-rewrite
    /// engine, kept as a benchmark baseline.
    Broadcast,
}

/// Which concurrency-control subsystem runs transactions.
///
/// Both modes share the action tree, the audit oracle, the MVCC version
/// chains, the WAL format, and recovery; they differ in *when* conflicts
/// are decided. Locking decides at access time (Moss's discipline: wait,
/// die, or deadlock-detect on the spot); optimistic decides at commit
/// time (run free against a pinned snapshot, validate under the publish
/// gate, first committer wins).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CcMode {
    /// Moss nested-transaction read/write locking — the paper's
    /// algorithm, pessimistic. The default.
    #[default]
    Locking,
    /// Optimistic first-committer-wins (backward validation over the MVCC
    /// chain heads): a top-level transaction pins a snapshot epoch at
    /// begin, buffers writes privately, reads lock-free at the pinned
    /// epoch, and validates its whole footprint (read set ∪ write set) at
    /// commit under the publish gate. Any footprint key with a committed
    /// version newer than the begin epoch aborts the transaction with the
    /// retryable [`TxnError::Conflict`]. Commit order = serialization
    /// order, so histories stay data-serializable (Theorem 9) without a
    /// single lock-manager acquisition.
    Optimistic,
}

/// Which generation of hot-path internals the engine runs on.
///
/// Both generations implement identical semantics — the toggle exists so
/// the hot-path benchmark can run paired same-seed arms against the same
/// binary and attribute speedups to the internals alone. Nothing else
/// should select [`HotPath::Legacy`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum HotPath {
    /// The scaled internals: sharded transaction registry, striped
    /// statistics counters, and lock-free snapshot pins. The default.
    #[default]
    Scaled,
    /// The pre-scaling internals: one registry map under one lock, one
    /// shared stats block, a fully locked pin table.
    Legacy,
}

/// Engine configuration. Construct via [`DbConfig::builder`] (or start
/// from [`DbConfig::default`] and adjust fields); the struct is
/// `#[non_exhaustive]` so new knobs can be added without breaking callers.
#[non_exhaustive]
#[derive(Clone, Debug)]
pub struct DbConfig {
    /// Number of lock-table shards (power of two recommended).
    pub shards: usize,
    /// Deadlock handling policy.
    pub policy: DeadlockPolicy,
    /// Overall lock-wait bound for [`DeadlockPolicy::Timeout`].
    pub lock_timeout: Duration,
    /// Fallback re-check bound for a single condvar wait. With
    /// [`WakeupMode::Targeted`] notifications drive progress and this only
    /// bounds pathological cases; with [`WakeupMode::Broadcast`] it is the
    /// poll period.
    pub wait_slice: Duration,
    /// Record an audit log for serializability checking.
    pub audit: bool,
    /// Wakeup protocol for blocked lock waiters.
    pub wakeups: WakeupMode,
    /// Write-ahead logging mode. Takes effect only when the database is
    /// created with [`Db::open`] or [`Db::recover`] (which supply the log
    /// file); [`Db::new`]/[`Db::with_config`] are always in-memory.
    pub durability: Durability,
    /// Automatically checkpoint (rewrite the log as a snapshot) after
    /// every this many top-level commits; 0 disables auto-checkpointing.
    /// [`Db::checkpoint`] can always be called explicitly.
    pub checkpoint_every: u64,
    /// Route top-level commits through the group-commit sequencer: staged
    /// commits share one WAL append + fsync and one publish-mutex
    /// acquisition per batch (Lemma 7 requires a force *before* a commit
    /// is visible, not one force *per* commit). Durability and recovery
    /// semantics are identical either way; batches are atomic-in-log.
    pub group_commit: bool,
    /// Most commits retired in one batch (≥ 1; meaningful with
    /// [`DbConfig::group_commit`]).
    pub max_batch: usize,
    /// How long a batch leader waits for more commits to arrive before
    /// retiring a partial batch. Zero (the default) retires whatever is
    /// staged immediately — batching then comes purely from commits that
    /// accumulate while the previous batch is fsyncing, which never
    /// delays a solo committer.
    pub max_batch_wait: Duration,
    /// Per-key bound on committed version-chain length; 0 (the default)
    /// means unbounded. With a budget set, a commit that grows a chain
    /// past it force-prunes the oldest versions *even if a live snapshot
    /// pin holds them* — the escape hatch for a stuck (leaked or wedged)
    /// snapshot that would otherwise make chains grow without bound.
    /// Force-pruning expires such a snapshot: the affected keys read as
    /// absent through it, and the retained-epoch floor reported by
    /// [`Db::epochs`] rises past its pin. Snapshots at or above the floor
    /// are never affected.
    pub max_versions_per_key: usize,
    /// Which concurrency-control subsystem runs transactions (see
    /// [`CcMode`]). Mode is a per-database decision: every transaction of
    /// one [`Db`] runs under the same discipline.
    pub cc_mode: CcMode,
    /// Which generation of hot-path internals to run on (see [`HotPath`]).
    /// Benchmark plumbing; leave at the default.
    pub hot_path: HotPath,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            shards: 16,
            policy: DeadlockPolicy::Detect,
            lock_timeout: Duration::from_millis(100),
            wait_slice: Duration::from_millis(2),
            audit: false,
            wakeups: WakeupMode::Targeted,
            durability: Durability::None,
            checkpoint_every: 0,
            group_commit: false,
            max_batch: 32,
            max_batch_wait: Duration::ZERO,
            max_versions_per_key: 0,
            cc_mode: CcMode::Locking,
            hot_path: HotPath::Scaled,
        }
    }
}

impl DbConfig {
    /// Start building a configuration from the defaults.
    ///
    /// ```
    /// use rnt_core::{DbConfig, DeadlockPolicy};
    /// let config = DbConfig::builder()
    ///     .shards(64)
    ///     .policy(DeadlockPolicy::Detect)
    ///     .lock_timeout(std::time::Duration::from_millis(50))
    ///     .audit(true)
    ///     .build();
    /// assert_eq!(config.shards, 64);
    /// ```
    pub fn builder() -> DbConfigBuilder {
        DbConfigBuilder { config: DbConfig::default() }
    }
}

/// Fluent builder for [`DbConfig`], returned by [`DbConfig::builder`].
#[derive(Clone, Debug)]
pub struct DbConfigBuilder {
    config: DbConfig,
}

impl DbConfigBuilder {
    /// Number of lock-table shards.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Deadlock handling policy.
    pub fn policy(mut self, policy: DeadlockPolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Overall lock-wait bound for [`DeadlockPolicy::Timeout`].
    pub fn lock_timeout(mut self, timeout: Duration) -> Self {
        self.config.lock_timeout = timeout;
        self
    }

    /// Fallback re-check bound for a single condvar wait.
    pub fn wait_slice(mut self, slice: Duration) -> Self {
        self.config.wait_slice = slice;
        self
    }

    /// Record an audit log for serializability checking.
    pub fn audit(mut self, audit: bool) -> Self {
        self.config.audit = audit;
        self
    }

    /// Wakeup protocol for blocked lock waiters.
    pub fn wakeups(mut self, mode: WakeupMode) -> Self {
        self.config.wakeups = mode;
        self
    }

    /// Write-ahead logging mode (effective with [`Db::open`]/[`Db::recover`]).
    pub fn durability(mut self, durability: Durability) -> Self {
        self.config.durability = durability;
        self
    }

    /// Auto-checkpoint after every `n` top-level commits (0 = never).
    pub fn checkpoint_every(mut self, n: u64) -> Self {
        self.config.checkpoint_every = n;
        self
    }

    /// Route top-level commits through the group-commit sequencer.
    pub fn group_commit(mut self, on: bool) -> Self {
        self.config.group_commit = on;
        self
    }

    /// Most commits retired in one group-commit batch.
    pub fn max_batch(mut self, n: usize) -> Self {
        self.config.max_batch = n.max(1);
        self
    }

    /// How long a batch leader waits for more arrivals before retiring a
    /// partial batch (zero = retire immediately).
    pub fn max_batch_wait(mut self, wait: Duration) -> Self {
        self.config.max_batch_wait = wait;
        self
    }

    /// Per-key bound on committed version-chain length (0 = unbounded).
    /// See [`DbConfig::max_versions_per_key`] for the stuck-snapshot
    /// trade-off this knob buys.
    pub fn max_versions_per_key(mut self, n: usize) -> Self {
        self.config.max_versions_per_key = n;
        self
    }

    /// Which concurrency-control subsystem runs transactions.
    pub fn cc_mode(mut self, mode: CcMode) -> Self {
        self.config.cc_mode = mode;
        self
    }

    /// Which generation of hot-path internals to run on (benchmark
    /// plumbing; see [`HotPath`]).
    pub fn hot_path(mut self, hot_path: HotPath) -> Self {
        self.config.hot_path = hot_path;
        self
    }

    /// Finish, yielding the configuration.
    pub fn build(self) -> DbConfig {
        self.config
    }
}

/// A per-key wait gate: the condvar transactions blocked on this key park
/// on, plus a generation counter bumped (under the shard lock) whenever
/// the key's lock state changes. Comparing generations across a sleep
/// classifies the wakeup as productive (state changed) or spurious.
///
/// All fields are mutated only under the owning shard's lock; the atomics
/// exist so the gate can be shared (`Arc`) across that boundary.
#[derive(Default)]
struct KeyGate {
    cv: Condvar,
    generation: AtomicU64,
    waiters: AtomicUsize,
}

/// Everything a shard's mutex protects: the lock table itself plus the
/// wait gates of keys someone is currently blocked on.
struct ShardState<K, V> {
    objects: HashMap<K, LockState<V>>,
    gates: HashMap<K, Arc<KeyGate>>,
}

struct Shard<K, V> {
    state: Mutex<ShardState<K, V>>,
    /// Shard-wide condvar used by [`WakeupMode::Broadcast`] only.
    cv: Condvar,
}

/// A parked lock waiter, registered so aborts can wake transactions that
/// just became orphans (their awaited key's state never changes, so the
/// per-key gate alone would leave them sleeping a full wait slice).
struct WaitEntry {
    txn: TxnId,
    shard: usize,
    gate: Arc<KeyGate>,
}

struct AuditState<K> {
    log: AuditLog,
    keymap: Mutex<HashMap<K, u32>>,
}

/// Per-transaction optimistic-mode context: the begin snapshot plus the
/// private buffers that replace lock-table state ([`CcMode::Optimistic`]).
///
/// Children get their own context linked to the parent's: reads overlay
/// the nearest ancestor's buffered write over the pinned snapshot, a
/// child commit merges its buffers into the parent (savepoint release),
/// and a child abort discards them — the resilient-nesting semantics of
/// lock inheritance, re-expressed over buffers. First-committer-wins
/// validation runs once, at the top of the tree, over the merged
/// footprint. (Live *sibling* subtransactions are not isolated from the
/// committed state of each other's merges, exactly as with inherited
/// locks; serializability is enforced between top-level trees.)
struct OptCtx<K, V> {
    /// Snapshot epoch pinned by the top-level transaction at begin (the
    /// top owns the pin; children copy the value).
    begin_epoch: u64,
    /// The parent's context (`None` on the top-level transaction).
    parent: Option<Arc<OptCtx<K, V>>>,
    /// Private write buffer, newest value per key. A `BTreeMap` so the
    /// commit publishes (and WAL-logs) in deterministic key order.
    writes: Mutex<std::collections::BTreeMap<K, V>>,
    /// Keys read from the snapshot — the rw-antidependency half of the
    /// validation footprint. Buffered-write hits don't enter: they
    /// depend on this tree, not on the snapshot.
    reads: Mutex<std::collections::HashSet<K>>,
    /// Access records buffered until top-level commit. Flushing them to
    /// the audit log under the publish gate makes audit data order equal
    /// commit (= epoch) order — the invariant the Theorem-9 oracle's
    /// reconstruction relies on, which op-time logging would break for
    /// transactions that overlap in wall-clock but not in serial order.
    audit_buf: Mutex<Vec<AuditRecord>>,
}

impl<K: Eq + Hash + Ord + Clone, V: Clone> OptCtx<K, V> {
    /// The nearest buffered value for `key`: own buffer first, then the
    /// ancestor chain outward.
    fn buffered(&self, key: &K) -> Option<V> {
        if let Some(v) = self.writes.lock().get(key) {
            return Some(v.clone());
        }
        self.parent.as_ref().and_then(|p| p.buffered(key))
    }

    /// Enter `key` into the read set, cloning only on first contact.
    fn track_read(&self, key: &K) {
        let mut reads = self.reads.lock();
        if !reads.contains(key) {
            reads.insert(key.clone());
        }
    }

    /// Buffer a written value, cloning the key only on first write.
    fn track_write(&self, key: &K, value: V) {
        let mut writes = self.writes.lock();
        match writes.get_mut(key) {
            Some(slot) => *slot = value,
            None => {
                writes.insert(key.clone(), value);
            }
        }
    }
}

/// What one top-level commit stages into the group-commit sequencer —
/// the mode-specific half of [`StagedCommit`].
enum CommitPayload<K, V> {
    /// Locking mode: the keys whose locks the commit holds.
    Locking(std::collections::HashSet<K>),
    /// Optimistic mode: the whole validation footprint, so the batch
    /// leader can validate, publish, or abort each participant under one
    /// publish-gate acquisition.
    Optimistic {
        /// The participant's pinned begin snapshot.
        begin_epoch: u64,
        /// Its buffered write set (key order, for deterministic logs).
        writes: std::collections::BTreeMap<K, V>,
        /// Its snapshot read set.
        reads: std::collections::HashSet<K>,
        /// Its buffered audit Access records.
        audit: Vec<AuditRecord>,
    },
}

/// The attached write-ahead log plus everything needed to feed it.
///
/// The key/value encoders are monomorphic `fn` pointers captured where the
/// `WalCodec` bounds exist ([`Db::open`]/[`Db::recover`]), so the base
/// `Db` impl — and every existing caller — keeps compiling without those
/// bounds.
struct WalState<K, V> {
    log: Mutex<Wal>,
    /// Fsync before acking top-level commits ([`Durability::WalFsync`]).
    fsync_commits: bool,
    /// Auto-checkpoint cadence in top-level commits (0 = never).
    checkpoint_every: u64,
    commits_since_ckpt: AtomicU64,
    /// First append/fsync failure, if any: once set, top-level commits
    /// report [`TxnError::Wal`] instead of acking unlogged durability.
    broken: Mutex<Option<String>>,
    enc_key: fn(&K, &mut Vec<u8>),
    enc_val: fn(&V, &mut Vec<u8>),
}

impl<K, V> WalState<K, V> {
    fn mark_broken(&self, e: &WalError) {
        let mut broken = self.broken.lock();
        if broken.is_none() {
            *broken = Some(e.to_string());
        }
    }
}

struct DbInner<K, V> {
    registry: Registry,
    shards: Box<[Shard<K, V>]>,
    hasher: RandomState,
    stats: Stats,
    wfg: WaitForGraph,
    config: DbConfig,
    audit: Option<AuditState<K>>,
    /// Currently parked lock waiters (see [`WaitEntry`]).
    waiting: Mutex<Vec<WaitEntry>>,
    /// Sequence for [`Db::run`]'s seeded backoff jitter.
    run_seq: AtomicU64,
    /// The attached write-ahead log (set once by [`Db::open`]/[`Db::recover`];
    /// never set for purely in-memory databases).
    wal: std::sync::OnceLock<WalState<K, V>>,
    /// Checkpoint latch: transaction lifecycle transitions (begin, commit,
    /// abort) hold it shared so a checkpoint (exclusive) can never observe —
    /// or worse, rewrite away — a half-logged transition. Lock order:
    /// latch → shard → { registry-read, wal }.
    ckpt: RwLock<()>,
    /// Committed version chains for lock-free snapshot reads. Top-level
    /// commits publish here (under the publish lock, then per-key under
    /// the owning shard guard — so chain order = grant order = log order);
    /// [`Db::snapshot`] pins an epoch and reads without ever touching the
    /// lock tables. Lock order: publish → shard → mvcc-shard.
    mvcc: MvccStore<K, V>,
    /// The group-commit sequencer (used iff [`DbConfig::group_commit`]).
    pipeline: CommitPipeline<CommitPayload<K, V>, Result<(), TxnError>>,
    /// The installed fault injector, if any (chaos harness only).
    #[cfg(feature = "chaos-hooks")]
    injector: parking_lot::RwLock<Option<Arc<dyn chaos::Injector>>>,
}

impl LockEnv for Registry {
    fn is_ancestor(&self, a: TxnId, b: TxnId) -> bool {
        Registry::is_ancestor(self, a, b)
    }
    fn is_dead(&self, t: TxnId) -> bool {
        Registry::is_dead(self, t)
    }
}

/// A nested-transaction in-memory database.
pub struct Db<K, V> {
    inner: Arc<DbInner<K, V>>,
}

impl<K, V> Clone for Db<K, V> {
    fn clone(&self) -> Self {
        Db { inner: self.inner.clone() }
    }
}

impl<K, V> std::fmt::Debug for Db<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Db")
            .field("config", &self.inner.config)
            .field("watermark", &self.inner.mvcc.watermark())
            .field("oldest_retained", &self.inner.mvcc.oldest_retained())
            .finish_non_exhaustive()
    }
}

impl<K, V> Db<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    /// Create a database with default configuration.
    pub fn new() -> Self {
        Self::with_config(DbConfig::default())
    }

    /// Create a database with the given configuration.
    pub fn with_config(config: DbConfig) -> Self {
        let config_shards = config.shards.max(1);
        let max_versions = config.max_versions_per_key;
        let shards = (0..config_shards)
            .map(|_| Shard {
                state: Mutex::new(ShardState { objects: HashMap::new(), gates: HashMap::new() }),
                cv: Condvar::new(),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let audit = config
            .audit
            .then(|| AuditState { log: AuditLog::new(), keymap: Mutex::new(HashMap::new()) });
        let scaled = config.hot_path == HotPath::Scaled;
        Db {
            inner: Arc::new(DbInner {
                registry: if scaled { Registry::new() } else { Registry::legacy() },
                shards,
                hasher: RandomState::new(),
                stats: if scaled { Stats::default() } else { Stats::striped(1) },
                wfg: WaitForGraph::new(),
                config,
                audit,
                waiting: Mutex::new(Vec::new()),
                run_seq: AtomicU64::new(0),
                wal: std::sync::OnceLock::new(),
                ckpt: RwLock::new(()),
                mvcc: MvccStore::with_opts(config_shards, max_versions, scaled),
                pipeline: CommitPipeline::new(),
                #[cfg(feature = "chaos-hooks")]
                injector: parking_lot::RwLock::new(None),
            }),
        }
    }

    /// Seed an object with its initial value (non-transactional; mirrors
    /// the paper's `init(x)`). Returns false if the key already exists.
    pub fn insert(&self, key: K, value: V) -> bool {
        let inner = &self.inner;
        let shard = inner.shard_of(&key);
        let mut guard = inner.shards[shard].state.lock();
        if guard.objects.contains_key(&key) {
            return false;
        }
        if let Some(audit) = &inner.audit {
            let mut keymap = audit.keymap.lock();
            if !keymap.contains_key(&key) {
                let id = keymap.len() as u32;
                keymap.insert(key.clone(), id);
                audit.log.register_object(id, hash_value(&value));
            }
        }
        // Logged under the shard guard, like transactional writes, so the
        // per-key log order is the true lock-table mutation order.
        inner.wal_log_init(&key, &value);
        // Seeds enter the version chain at the genesis epoch: seeding is
        // not a transaction, so the value is visible to every snapshot
        // regardless of when the key was inserted.
        inner.mvcc.append(&key, GENESIS_EPOCH, value.clone());
        guard.objects.insert(key, LockState::new(value));
        true
    }

    /// The committed (top-level) value of a key, outside any transaction.
    pub fn committed_value(&self, key: &K) -> Option<V> {
        let inner = &self.inner;
        let shard = inner.shard_of(key);
        let guard = inner.shards[shard].state.lock();
        guard.objects.get(key).map(|s| s.base_value().clone())
    }

    /// Open a lock-free read-only snapshot of the committed state.
    ///
    /// The snapshot pins the current commit epoch; every
    /// [`Snapshot::read`] returns the committed value as of that epoch, no
    /// matter what writers commit afterwards. Reads never touch the lock
    /// manager — no lock acquisitions, no conflicts, no waits — because
    /// only top-level commits create versions: everything a snapshot can
    /// see is in `perm(T)` (Lemma 7), a prefix-closed data-serializable
    /// view (Theorem 9). The pinned versions are protected from
    /// reclamation until the snapshot drops.
    pub fn snapshot(&self) -> Snapshot<K, V> {
        Snapshot { epoch: self.inner.mvcc.pin(), inner: self.inner.clone() }
    }

    /// Open a snapshot pinned to a *specific* past epoch (time travel).
    ///
    /// Succeeds for any epoch the store still retains —
    /// [`Db::epochs`]`().contains(epoch)` — and fails with a typed
    /// [`SnapshotError`] otherwise: [`SnapshotError::Pruned`] below the
    /// retained floor (permanent: history only shrinks),
    /// [`SnapshotError::Future`] above the watermark (transient: more
    /// commits may land). The returned snapshot behaves exactly like
    /// [`Db::snapshot`] — lock-free reads and range scans, GC protection
    /// until dropped.
    ///
    /// How far back travel reaches is workload-dependent: versions are
    /// retained as long as some live pin needs them, so the floor is the
    /// oldest live pin (or the watermark when idle). To hold a restore
    /// point open, keep a snapshot alive — retention never reclaims at or
    /// above the oldest live pin unless
    /// [`DbConfig::max_versions_per_key`] forces it to.
    pub fn snapshot_at(&self, epoch: u64) -> Result<Snapshot<K, V>, SnapshotError> {
        let epoch = self.inner.mvcc.pin_at(epoch)?;
        Ok(Snapshot { epoch, inner: self.inner.clone() })
    }

    /// The window of epochs [`Db::snapshot_at`] can currently serve:
    /// oldest retained through the publish watermark.
    pub fn epochs(&self) -> EpochBounds {
        // Read the floor first: it only rises, and it trails the
        // watermark, so a torn read can only understate the window.
        let oldest_retained = self.inner.mvcc.oldest_retained();
        let watermark = self.inner.mvcc.watermark();
        EpochBounds { oldest_retained, watermark: watermark.max(oldest_retained) }
    }

    /// The committed version history of a key, oldest first, as
    /// `(commit_epoch, value)` pairs. Introspection for tests and the
    /// chaos oracle; with no snapshots open every history has length 1.
    pub fn history(&self, key: &K) -> Vec<(u64, V)> {
        self.inner.mvcc.chain(key)
    }

    /// Begin a top-level transaction.
    ///
    /// In [`CcMode::Optimistic`] this also pins the current commit epoch:
    /// the transaction's begin snapshot, released when the transaction
    /// finishes (either way).
    pub fn begin(&self) -> Txn<K, V> {
        let _latch = self.inner.wal_latch();
        let id = self.inner.registry.begin_top();
        self.inner.stats.bump(|b| &b.begun);
        self.inner.audit_record(|reg| AuditRecord::Begin { path: reg.path(id).expect("fresh") });
        self.inner.wal_append(&Record::Begin { action: id.0, parent: None });
        let opt = (self.inner.config.cc_mode == CcMode::Optimistic).then(|| {
            Arc::new(OptCtx {
                begin_epoch: self.inner.mvcc.pin(),
                parent: None,
                writes: Mutex::new(std::collections::BTreeMap::new()),
                reads: Mutex::new(std::collections::HashSet::new()),
                audit_buf: Mutex::new(Vec::new()),
            })
        });
        Txn {
            inner: self.inner.clone(),
            id,
            done: false,
            touched: Arc::new(Mutex::new(std::collections::HashSet::new())),
            parent_touched: None,
            opt,
        }
    }

    /// Run `body` in a top-level transaction with automatic retry:
    /// commits on success; on a retryable error the transaction is
    /// aborted and re-run after a short, seeded, capped backoff — the
    /// top-level mirror of [`Txn::run_child`].
    ///
    /// Retryable errors are exactly those where aborting and re-running
    /// can succeed (see [`TxnError::is_retryable`]): [`TxnError::Die`]
    /// (wait-die / no-wait victims), [`TxnError::Deadlock`] (detection
    /// victims), and [`TxnError::Timeout`] (the conflict may clear).
    /// Anything else aborts the transaction and propagates.
    pub fn run<R>(
        &self,
        body: impl FnMut(&Txn<K, V>) -> Result<R, TxnError>,
    ) -> Result<R, TxnError> {
        self.run_with_retries(u32::MAX, body)
    }

    /// [`Db::run`] with an explicit bound on re-runs (0 = try once).
    pub fn run_with_retries<R>(
        &self,
        max_retries: u32,
        mut body: impl FnMut(&Txn<K, V>) -> Result<R, TxnError>,
    ) -> Result<R, TxnError> {
        let mut attempts: u32 = 0;
        loop {
            let txn = self.begin();
            match body(&txn) {
                Ok(out) => match txn.commit() {
                    Ok(()) => return Ok(out),
                    Err(e) if e.is_retryable() && attempts < max_retries => {
                        attempts += 1;
                        self.backoff(attempts);
                    }
                    Err(e) => return Err(e),
                },
                Err(e) if e.is_retryable() && attempts < max_retries => {
                    txn.abort();
                    attempts += 1;
                    self.backoff(attempts);
                }
                Err(e) => {
                    txn.abort();
                    return Err(e);
                }
            }
        }
    }

    /// Capped, seeded backoff between [`Db::run`] attempts: yield for the
    /// first couple of retries, then sleep a jittered duration growing to
    /// at most ~128µs — enough to break retry lockstep without parking
    /// anyone for a meaningful time.
    fn backoff(&self, attempt: u32) {
        if attempt <= 2 {
            std::thread::yield_now();
            return;
        }
        let seq = self.inner.run_seq.fetch_add(1, Ordering::Relaxed);
        // xorshift over a golden-ratio-scrambled sequence: deterministic
        // given arrival order, decorrelated across racing threads.
        let mut x = seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let cap = 1u64 << attempt.min(7); // 8..=128 µs
        std::thread::sleep(Duration::from_micros(x % cap));
    }

    /// Engine counters (the atomics in [`Stats`] merged with the MVCC
    /// store's version/pin counters).
    pub fn stats(&self) -> StatsSnapshot {
        let mut snap = self.inner.stats.snapshot();
        let mvcc = self.inner.mvcc.counters();
        snap.versions_created = mvcc.created;
        snap.versions_reclaimed = mvcc.reclaimed;
        snap.snapshot_pins_live = mvcc.pins_live;
        snap
    }

    /// Current status of every transaction this database has seen, in id
    /// order — the raw material of the paper's action summaries.
    pub fn status_summary(&self) -> Vec<(TxnId, TxnStatus)> {
        self.inner.registry.snapshot().into_iter().map(|(id, _, status, _)| (id, status)).collect()
    }

    /// The database's transaction-status knowledge rendered in the
    /// paper's action-summary vocabulary (Section 9.1's `i.T` for the
    /// node this engine embodies): every transaction the registry has
    /// seen, mapped to an [`rnt_model::ActionId`] by `name` (which sees
    /// the id and the registry path and may decline with `None`), with
    /// its current status. This is the summary-extraction hook a
    /// distribution layer gossips and traces with.
    pub fn action_summary(
        &self,
        name: impl Fn(TxnId, &[u32]) -> Option<rnt_model::ActionId>,
    ) -> rnt_model::ActionSummary {
        rnt_model::ActionSummary::from_entries(
            self.inner.registry.snapshot().into_iter().filter_map(|(id, _, status, path)| {
                let action = name(id, &path)?;
                let status = match status {
                    TxnStatus::Active => rnt_model::Status::Active,
                    TxnStatus::Committed => rnt_model::Status::Committed,
                    TxnStatus::Aborted => rnt_model::Status::Aborted,
                };
                Some((action, status))
            }),
        )
    }

    /// The audit log, if auditing is enabled.
    pub fn audit_log(&self) -> Option<&AuditLog> {
        self.inner.audit.as_ref().map(|a| &a.log)
    }

    /// Checkpoint the write-ahead log now: rewrite it as a snapshot of the
    /// committed key space plus re-logged records for in-flight
    /// transactions, truncating all earlier history. A no-op without an
    /// attached log.
    pub fn checkpoint(&self) -> Result<(), TxnError> {
        self.inner.do_checkpoint().map_err(|e| TxnError::Wal { detail: e.to_string() })
    }

    /// Seed a key during replay: no audit registration, no WAL append.
    /// `epoch` is the version-chain epoch of the seeded value — genesis
    /// for init writes, the checkpointed last-commit epoch for
    /// checkpoint-snapshot entries.
    pub(crate) fn raw_insert(&self, key: K, value: V, epoch: u64) -> bool {
        let inner = &self.inner;
        let shard = inner.shard_of(&key);
        let mut guard = inner.shards[shard].state.lock();
        if guard.objects.contains_key(&key) {
            return false;
        }
        inner.mvcc.append(&key, epoch, value.clone());
        guard.objects.insert(key, LockState::new(value));
        true
    }

    /// Replay-only MVCC hooks: append a recovered committed version /
    /// advance the epoch watermark to what the log proves was published.
    pub(crate) fn raw_mvcc_append(&self, key: &K, epoch: u64, value: V) {
        self.inner.mvcc.append(key, epoch, value);
    }

    pub(crate) fn raw_mvcc_advance(&self, epoch: u64) {
        self.inner.mvcc.advance_watermark(epoch);
    }

    /// Replay-only: concede that epochs below `epoch` are unresolvable. A
    /// checkpoint compacts history beneath its watermark (chains restart
    /// at their per-key last-commit epochs), so post-recovery time travel
    /// must not reach under it.
    pub(crate) fn raw_mvcc_concede(&self, epoch: u64) {
        self.inner.mvcc.concede_retained(epoch);
    }

    pub(crate) fn raw_mvcc_watermark(&self) -> u64 {
        self.inner.mvcc.watermark()
    }

    /// Run `f` on a key's lock state with a registry view (replay only).
    pub(crate) fn raw_with_state<R>(
        &self,
        key: &K,
        f: impl FnOnce(&mut LockState<V>, &RegistryView<'_>) -> R,
    ) -> Option<R> {
        let inner = &self.inner;
        let shard = inner.shard_of(key);
        let mut guard = inner.shards[shard].state.lock();
        let state = guard.objects.get_mut(key)?;
        let view = inner.registry.read_view();
        Some(f(state, &view))
    }

    pub(crate) fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    pub(crate) fn stats_raw(&self) -> &Stats {
        &self.inner.stats
    }

    /// Register every seeded key with the audit log at its *current* base
    /// value. Recovery calls this after replay (not during) so the audit's
    /// initial object values are the recovered bases, matching what
    /// post-recovery transactions will actually observe.
    pub(crate) fn audit_register_all(&self) {
        let Some(audit) = &self.inner.audit else { return };
        let mut keymap = audit.keymap.lock();
        for shard in self.inner.shards.iter() {
            let guard = shard.state.lock();
            for (key, state) in guard.objects.iter() {
                // Contains-first keeps registration idempotent (a key
                // already mapped keeps its id and is not re-registered)
                // and clones the key only when it actually enters.
                if !keymap.contains_key(key) {
                    let id = keymap.len() as u32;
                    keymap.insert(key.clone(), id);
                    audit.log.register_object(id, hash_value(state.base_value()));
                }
            }
        }
    }

    /// Attach a write-ahead log (at most once, by [`Db::open`]/[`Db::recover`]).
    pub(crate) fn install_wal(
        &self,
        log: Wal,
        enc_key: fn(&K, &mut Vec<u8>),
        enc_val: fn(&V, &mut Vec<u8>),
    ) -> Result<(), WalError> {
        let config = &self.inner.config;
        let state = WalState {
            log: Mutex::new(log),
            fsync_commits: config.durability == Durability::WalFsync,
            checkpoint_every: config.checkpoint_every,
            commits_since_ckpt: AtomicU64::new(0),
            broken: Mutex::new(None),
            enc_key,
            enc_val,
        };
        self.inner.wal.set(state).map_err(|_| WalError::Io {
            op: "install",
            detail: "write-ahead log already attached".to_string(),
        })
    }

    /// Rewrite the attached log now, if any (recovery's post-replay
    /// truncation).
    pub(crate) fn checkpoint_wal(&self) -> Result<(), WalError> {
        self.inner.do_checkpoint()
    }
}

/// Chaos-harness entry points (compiled only with `chaos-hooks`). All of
/// them are additive observers/perturbers: none is needed for, or changes,
/// normal operation.
#[cfg(feature = "chaos-hooks")]
impl<K, V> Db<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + std::fmt::Debug + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    /// Install (or with `None`, remove) the fault injector consulted on
    /// every lock acquisition and child begin.
    pub fn chaos_set_injector(&self, injector: Option<Arc<dyn chaos::Injector>>) {
        *self.inner.injector.write() = injector;
    }

    /// Eagerly perform every pending `lose-lock`: reap locks held by dead
    /// transactions in all shards (normally done lazily at conflict-check
    /// time). Semantically a no-op — it only advances work the engine is
    /// allowed to defer — so the harness may call it at any point.
    pub fn chaos_reap_all(&self) {
        for shard in self.inner.shards.iter() {
            let mut guard = shard.state.lock();
            let view = self.inner.registry.read_view();
            for state in guard.objects.values_mut() {
                state.reap(&view);
            }
            drop(view);
            // Every key's state may have changed: wake all gates.
            for gate in guard.gates.values() {
                gate.generation.fetch_add(1, Ordering::Relaxed);
                gate.cv.notify_all();
            }
            shard.cv.notify_all();
        }
    }

    /// Check every per-object lock state against the engine invariants
    /// (see [`LockState::chaos_check`]); additionally, when no transaction
    /// is active, every lock table must be empty (all versions either
    /// published to base or restored). Returns human-readable violations,
    /// sorted; empty means all invariants hold. Call [`Db::chaos_reap_all`]
    /// first so lazily-reapable dead holders are not reported.
    pub fn chaos_lock_violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        let quiescent = self.inner.registry.chaos_active().is_empty();
        for shard in self.inner.shards.iter() {
            let guard = shard.state.lock();
            let view = self.inner.registry.read_view();
            for (key, state) in guard.objects.iter() {
                if let Err(violation) = state.chaos_check(&view) {
                    out.push(format!("{key:?}: {violation}"));
                }
                if quiescent
                    && (state.write_holders().next().is_some() || !state.read_holders().is_empty())
                {
                    out.push(format!("{key:?}: locks held at quiescence"));
                }
            }
        }
        out.sort();
        out
    }

    /// Snapshot the transaction registry: `(id, parent, status, path)` per
    /// known transaction, ordered by id.
    pub fn chaos_txn_snapshot(&self) -> Vec<(TxnId, Option<TxnId>, TxnStatus, Vec<u32>)> {
        self.inner.registry.snapshot()
    }
}

impl<K, V> Default for Db<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> DbInner<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    fn shard_of(&self, key: &K) -> usize {
        (self.hasher.hash_one(key) as usize) % self.shards.len()
    }

    fn audit_record(&self, f: impl FnOnce(&Registry) -> AuditRecord) {
        if let Some(audit) = &self.audit {
            audit.log.push(f(&self.registry));
        }
    }

    /// The audited object id of a key (auditing enabled and key seeded).
    fn audit_object(&self, key: &K) -> Option<u32> {
        self.audit.as_ref().and_then(|a| a.keymap.lock().get(key).copied())
    }

    /// Hold the checkpoint latch shared for one lifecycle transition
    /// (no-op `None` when no log is attached).
    fn wal_latch(&self) -> Option<RwLockReadGuard<'_, ()>> {
        self.wal.get().is_some().then(|| self.ckpt.read())
    }

    /// Append one record to the attached log, if any. Failures don't
    /// interrupt the in-memory operation; they poison the log so the next
    /// top-level commit reports [`TxnError::Wal`] instead of falsely
    /// acking durability.
    fn wal_append(&self, record: &Record) {
        if let Some(w) = self.wal.get() {
            match w.log.lock().append(record) {
                Ok(()) => self.stats.bump(|b| &b.wal_appends),
                Err(e) => w.mark_broken(&e),
            }
        }
    }

    /// Log a non-transactional base-value seed (the paper's `init(x)`).
    fn wal_log_init(&self, key: &K, value: &V) {
        if let Some(w) = self.wal.get() {
            // Sized for the common fixed-width integer encodings, so the
            // two buffers are one allocation each, no regrow.
            let mut kb = Vec::with_capacity(16);
            (w.enc_key)(key, &mut kb);
            let mut vb = Vec::with_capacity(16);
            (w.enc_val)(value, &mut vb);
            self.wal_append(&Record::Write { action: INIT_ACTION, key: kb, version: vb });
        }
    }

    /// Log a granted transactional write. Called under the owning shard's
    /// guard, so per-key log order equals lock-grant order — the property
    /// that makes replay conflict-free.
    fn wal_log_write(&self, t: TxnId, key: &K, value: &V) {
        if let Some(w) = self.wal.get() {
            let mut kb = Vec::with_capacity(16);
            (w.enc_key)(key, &mut kb);
            let mut vb = Vec::with_capacity(16);
            (w.enc_val)(value, &mut vb);
            self.wal_append(&Record::Write { action: t.0, key: kb, version: vb });
        }
    }

    /// Log a commit; for a top-level commit under [`Durability::WalFsync`],
    /// force it to disk before the caller acks. `epoch` is the commit
    /// epoch for top-level commits (`None` for nested ones); the caller
    /// holds the MVCC publish lock while logging it, so commit-record log
    /// order equals epoch order. Returns the durability verdict the
    /// commit must report.
    fn wal_log_commit(
        &self,
        t: TxnId,
        top_level: bool,
        epoch: Option<u64>,
    ) -> Result<(), TxnError> {
        let Some(w) = self.wal.get() else { return Ok(()) };
        self.wal_append(&Record::Commit { action: t.0, epoch });
        if top_level && w.fsync_commits {
            match w.log.lock().fsync() {
                Ok(()) => self.stats.bump(|b| &b.wal_fsyncs),
                Err(e) => w.mark_broken(&e),
            }
        }
        match top_level.then(|| w.broken.lock().clone()).flatten() {
            Some(detail) => Err(TxnError::Wal { detail }),
            None => Ok(()),
        }
    }

    /// Retire one group-commit batch under the mode the database runs in.
    fn process_commit_batch(
        &self,
        batch: Vec<StagedCommit<CommitPayload<K, V>>>,
    ) -> Vec<(u64, Result<(), TxnError>)> {
        match self.config.cc_mode {
            CcMode::Locking => self.process_locking_batch(batch),
            CcMode::Optimistic => self.process_optimistic_batch(batch),
        }
    }

    /// Retire one locking-mode batch: append the batch's commit record,
    /// force it with a single fsync, then publish every participant's
    /// version chains under one publish-mutex acquisition (a contiguous
    /// epoch run, assigned in staging order). Returns each participant's
    /// durability verdict, keyed by staging ticket.
    ///
    /// A single-participant batch appends a plain `Commit` record — byte-
    /// identical to the non-batched path — so logs only diverge when
    /// batching actually coalesced commits, and even then only in framing:
    /// a `BatchCommit` of `n` commits replays exactly like the `n` plain
    /// records, except atomically (the frame is torn wholly or not at all).
    ///
    /// Participants' write sets are necessarily disjoint (each still holds
    /// its write locks, and none is an ancestor of another), so chain
    /// appends across the batch never race on a key and per-key epoch
    /// order stays ascending.
    fn process_locking_batch(
        &self,
        batch: Vec<StagedCommit<CommitPayload<K, V>>>,
    ) -> Vec<(u64, Result<(), TxnError>)> {
        let publish = self.mvcc.begin_publish_batch(batch.len());
        let record = if batch.len() == 1 {
            Record::Commit { action: batch[0].txn.0, epoch: Some(publish.epoch_of(0)) }
        } else {
            Record::BatchCommit {
                commits: batch
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (s.txn.0, publish.epoch_of(i)))
                    .collect(),
            }
        };
        if let Some(w) = self.wal.get() {
            self.wal_append(&record);
            if w.fsync_commits {
                match w.log.lock().fsync() {
                    Ok(()) => self.stats.bump(|b| &b.wal_fsyncs),
                    Err(e) => w.mark_broken(&e),
                }
            }
        }
        for (i, staged) in batch.iter().enumerate() {
            let CommitPayload::Locking(keys) = &staged.payload else {
                unreachable!("optimistic payload staged in a locking database")
            };
            self.finish_locks(staged.txn, keys, true, Some(publish.epoch_of(i)));
        }
        drop(publish);
        self.stats.bump(|b| &b.commit_batches);
        self.stats.add(|b| &b.commits_batched, batch.len() as u64);
        let verdict = match self.wal.get().and_then(|w| w.broken.lock().clone()) {
            Some(detail) => Err(TxnError::Wal { detail }),
            None => Ok(()),
        };
        batch.iter().map(|s| (s.seq, verdict.clone())).collect()
    }

    /// Retire one optimistic batch: validate every participant in staging
    /// order under a single publish-gate acquisition, then log and publish
    /// the survivors as a contiguous epoch run and abort the losers.
    ///
    /// First committer wins *within* the batch too: a participant's
    /// footprint is checked against both the committed chain heads and the
    /// write sets of earlier in-batch survivors — exactly what it would
    /// have observed had the batch committed one by one. The leader flips
    /// the registry state of every participant (commit or abort) while its
    /// staging thread is parked, so by the time a verdict is returned the
    /// transaction is finished either way.
    fn process_optimistic_batch(
        &self,
        batch: Vec<StagedCommit<CommitPayload<K, V>>>,
    ) -> Vec<(u64, Result<(), TxnError>)> {
        let gate = self.mvcc.begin_publish_gate();
        let base = gate.next_epoch();
        // Validation pass. A survivor's provisional epoch is `base` plus
        // the number of earlier survivors; its write set joins the
        // in-batch overlay later participants must also validate against.
        let mut batch_writes: HashMap<K, u64> = HashMap::new();
        let mut epochs: Vec<Option<u64>> = Vec::with_capacity(batch.len());
        let mut failures: Vec<Option<TxnError>> = Vec::with_capacity(batch.len());
        let mut survivor_count: u64 = 0;
        for staged in batch.iter() {
            let CommitPayload::Optimistic { begin_epoch, writes, reads, .. } = &staged.payload
            else {
                unreachable!("locking payload staged in an optimistic database")
            };
            let newest = self.opt_conflict(writes.keys().chain(reads.iter()), *begin_epoch).max(
                writes
                    .keys()
                    .chain(reads.iter())
                    .filter_map(|k| batch_writes.get(k).copied())
                    .max(),
            );
            if let Some(committed_epoch) = newest {
                epochs.push(None);
                failures
                    .push(Some(TxnError::Conflict { begin_epoch: *begin_epoch, committed_epoch }));
                continue;
            }
            // Passing validation makes the commit final: flip the registry
            // state while still under the gate, so no later observation can
            // see a validated participant still active.
            if let Err(e) = self.registry.commit(staged.txn) {
                epochs.push(None);
                failures.push(Some(map_reg_err(e)));
                continue;
            }
            let epoch = base + survivor_count;
            survivor_count += 1;
            for key in writes.keys() {
                match batch_writes.get_mut(key) {
                    Some(slot) => *slot = epoch,
                    None => {
                        batch_writes.insert(key.clone(), epoch);
                    }
                }
            }
            epochs.push(Some(epoch));
            failures.push(None);
        }
        // Losers: audited and logged as aborts by the leader (their
        // staging threads are parked — someone must finish them).
        for (staged, failure) in batch.iter().zip(failures.iter()) {
            let Some(failure) = failure else { continue };
            let id = staged.txn;
            self.audit_record(|reg| AuditRecord::Abort { path: reg.path(id).expect("known") });
            self.wal_append(&Record::Abort { action: id.0 });
            let _ = self.registry.abort(id);
            if matches!(failure, TxnError::Conflict { .. }) {
                self.stats.bump(|b| &b.occ_conflicts);
            }
            self.stats.bump(|b| &b.aborted);
        }
        // Survivors: flush buffered Access records in epoch order (audit
        // data order = commit order, the Theorem-9 invariant), then write
        // records + one commit frame, then publish — all under the gate.
        let survivors: Vec<(usize, u64)> =
            epochs.iter().enumerate().filter_map(|(i, e)| e.map(|e| (i, e))).collect();
        for &(i, _) in survivors.iter() {
            let CommitPayload::Optimistic { audit, .. } = &batch[i].payload else {
                unreachable!("validated above")
            };
            if let Some(state) = &self.audit {
                for record in audit.iter() {
                    state.log.push(record.clone());
                }
            }
            let id = batch[i].txn;
            self.audit_record(|reg| AuditRecord::Commit { path: reg.path(id).expect("known") });
        }
        if survivors.is_empty() {
            drop(gate);
        } else {
            for &(i, _) in survivors.iter() {
                let CommitPayload::Optimistic { writes, .. } = &batch[i].payload else {
                    unreachable!("validated above")
                };
                for (key, value) in writes.iter() {
                    self.wal_log_write(batch[i].txn, key, value);
                }
            }
            let record = if survivors.len() == 1 {
                Record::Commit { action: batch[survivors[0].0].txn.0, epoch: Some(survivors[0].1) }
            } else {
                Record::BatchCommit {
                    commits: survivors.iter().map(|&(i, e)| (batch[i].txn.0, e)).collect(),
                }
            };
            if let Some(w) = self.wal.get() {
                self.wal_append(&record);
                if w.fsync_commits {
                    match w.log.lock().fsync() {
                        Ok(()) => self.stats.bump(|b| &b.wal_fsyncs),
                        Err(e) => w.mark_broken(&e),
                    }
                }
            }
            let publish = gate.into_batch(survivors.len());
            for (n, &(i, epoch)) in survivors.iter().enumerate() {
                debug_assert_eq!(publish.epoch_of(n), epoch);
                let CommitPayload::Optimistic { writes, .. } = &batch[i].payload else {
                    unreachable!("validated above")
                };
                self.publish_optimistic_writes(writes, epoch);
            }
            drop(publish);
        }
        self.stats.bump(|b| &b.commit_batches);
        self.stats.add(|b| &b.commits_batched, survivor_count);
        let broken = self.wal.get().and_then(|w| w.broken.lock().clone());
        batch
            .into_iter()
            .zip(failures)
            .map(|(s, failure)| {
                let verdict = match failure {
                    Some(e) => Err(e),
                    None => match &broken {
                        Some(detail) => Err(TxnError::Wal { detail: detail.clone() }),
                        None => Ok(()),
                    },
                };
                (s.seq, verdict)
            })
            .collect()
    }

    /// Checkpoint after a top-level commit if the configured cadence says
    /// so. Must be called *after* the commit's latch guard is dropped (the
    /// latch is not reentrant).
    fn maybe_auto_checkpoint(&self, top_level: bool) {
        let Some(w) = self.wal.get() else { return };
        if !top_level || w.checkpoint_every == 0 {
            return;
        }
        let n = w.commits_since_ckpt.fetch_add(1, Ordering::Relaxed) + 1;
        if n % w.checkpoint_every == 0 {
            let _ = self.do_checkpoint(); // failure poisons the log
        }
    }

    /// Rewrite the log as `Checkpoint{bases}` followed by re-logged
    /// `Begin`/`Write` records for every still-live active transaction, so
    /// recovery cost is bounded by the snapshot plus post-checkpoint
    /// traffic instead of the whole history.
    ///
    /// Holding the latch exclusively plus every shard guard freezes the
    /// engine in a transition-free state: no half-appended commit can be
    /// rewritten away, and no begin can land twice (once re-logged, once
    /// self-appended). Dead (orphaned) subtrees are reaped, not re-logged —
    /// their versions are doomed and `perm` never sees them; their stray
    /// post-checkpoint `Commit`/`Abort` records are tolerated by replay.
    fn do_checkpoint(&self) -> Result<(), WalError> {
        let Some(w) = self.wal.get() else { return Ok(()) };
        let _latch = self.ckpt.write();
        let mut guards: Vec<MutexGuard<'_, ShardState<K, V>>> =
            self.shards.iter().map(|s| s.state.lock()).collect();
        {
            let view = self.registry.read_view();
            for guard in guards.iter_mut() {
                for state in guard.objects.values_mut() {
                    state.reap(&view);
                }
            }
        }
        let mut snapshot = Vec::new();
        for guard in guards.iter() {
            for (key, state) in guard.objects.iter() {
                let mut kb = Vec::new();
                (w.enc_key)(key, &mut kb);
                let mut vb = Vec::new();
                (w.enc_val)(state.base_value(), &mut vb);
                // Each entry carries the epoch of the key's newest
                // committed version so recovery rebuilds chains identical
                // to the pre-crash store (not merely value-equal).
                snapshot.push((kb, self.mvcc.last_epoch(key).unwrap_or(GENESIS_EPOCH), vb));
            }
        }
        snapshot.sort();
        let mut records = vec![Record::Checkpoint { epoch: self.mvcc.watermark(), snapshot }];
        // Live active transactions, ascending id: every parent precedes
        // its children (child ids are allocated after the parent exists),
        // and the live-active set is ancestor-closed (an active child
        // keeps its ancestors active; an aborted ancestor makes it dead).
        let reg = self.registry.snapshot();
        let by_id: HashMap<TxnId, (Option<TxnId>, TxnStatus)> =
            reg.iter().map(|&(id, parent, status, _)| (id, (parent, status))).collect();
        let is_dead = |mut id: TxnId| loop {
            match by_id.get(&id) {
                None => return true,
                Some((_, TxnStatus::Aborted)) => return true,
                Some((None, _)) => return false,
                Some((Some(parent), _)) => id = *parent,
            }
        };
        for &(id, parent, status, _) in reg.iter() {
            if status == TxnStatus::Active && !is_dead(id) {
                records.push(Record::Begin { action: id.0, parent: parent.map(|p| p.0) });
            }
        }
        for guard in guards.iter() {
            for (key, state) in guard.objects.iter() {
                for (holder, value) in state.write_entries() {
                    let mut kb = Vec::new();
                    (w.enc_key)(key, &mut kb);
                    let mut vb = Vec::new();
                    (w.enc_val)(value, &mut vb);
                    records.push(Record::Write { action: holder.0, key: kb, version: vb });
                }
            }
        }
        w.log.lock().rewrite(&records).inspect_err(|e| w.mark_broken(e))
    }

    /// Run one lock-acquiring operation with conflict resolution.
    ///
    /// Lock order is always shard → registry-read (→ waiting); the
    /// registry view is dropped before any condvar wait so registry
    /// writers (transaction begins) are never blocked by a sleeping
    /// waiter. The shard guard itself is held from the conflict check
    /// through the wait — the condvar releases it atomically — which is
    /// what makes the release path's bump-then-notify under the same
    /// lock free of lost-wakeup windows.
    fn with_locked_state<R>(
        &self,
        t: TxnId,
        top_level: bool,
        key: &K,
        mut op: impl FnMut(
            &mut LockState<V>,
            &RegistryView<'_>,
        ) -> Result<(R, Option<AuditRecord>), Conflict>,
    ) -> Result<R, TxnError> {
        let start = Instant::now();
        let shard_idx = self.shard_of(key);
        let shard = &self.shards[shard_idx];
        let mut guard = shard.state.lock();
        loop {
            let view = self.registry.read_view();
            // The liveness preamble runs only for nested transactions,
            // by [`DbInner::opt_preamble`]'s argument: orphanhood means
            // an ancestor died, which a top-level transaction has none
            // of, and `commit`/`abort` consume the handle, so a
            // top-level id observed here is always Active. The verdict
            // is identical either way (the check is vacuous at top
            // level); skipping it keeps two registry lookups off every
            // locked access of the dominant transaction shape.
            if !top_level {
                match view.status(t) {
                    Some(TxnStatus::Active) => {}
                    _ => return Err(TxnError::NotActive),
                }
                if view.is_dead(t) {
                    return Err(TxnError::Orphaned);
                }
            }
            #[cfg(feature = "chaos-hooks")]
            match self.injector_decision(t, shard_idx) {
                chaos::AccessFault::Proceed => {}
                chaos::AccessFault::Die => {
                    self.stats.bump(|b| &b.dies);
                    return Err(TxnError::Die { blocker: t });
                }
                chaos::AccessFault::Timeout => {
                    self.stats.bump(|b| &b.timeouts);
                    return Err(TxnError::Timeout(self.config.lock_timeout));
                }
            }
            let Some(state) = guard.objects.get_mut(key) else {
                return Err(TxnError::UnknownKey);
            };
            let conflict = match op(state, &view) {
                Ok((out, record)) => {
                    if let (Some(audit), Some(record)) = (&self.audit, record) {
                        // Appended under the shard lock so the log order is
                        // the true per-object acquisition order.
                        audit.log.push(record);
                    }
                    return Ok(out);
                }
                Err(c) => c,
            };
            self.stats.bump(|b| &b.conflicts);
            match self.config.policy {
                DeadlockPolicy::NoWait => {
                    self.stats.bump(|b| &b.dies);
                    return Err(TxnError::Die { blocker: conflict.blockers[0] });
                }
                DeadlockPolicy::Timeout => {
                    drop(view);
                    let elapsed = start.elapsed();
                    if elapsed >= self.config.lock_timeout {
                        self.stats.bump(|b| &b.timeouts);
                        return Err(TxnError::Timeout(self.config.lock_timeout));
                    }
                    let bound = (self.config.lock_timeout - elapsed).min(self.config.wait_slice);
                    self.wait_for_key_change(&mut guard, shard, shard_idx, key, t, bound)?;
                }
                DeadlockPolicy::WaitDie => {
                    // Wait-die on (root, id): older requesters wait, younger
                    // die. The id tie-break covers sibling subtransactions
                    // of one top-level transaction (equal roots), which
                    // could otherwise deadlock against each other.
                    let my_root = view.root(t).ok_or(TxnError::NotActive)?;
                    let older_blocker = conflict
                        .blockers
                        .iter()
                        .find(|&&b| view.root(b).is_some_and(|r| (r, b) < (my_root, t)));
                    if let Some(&b) = older_blocker {
                        self.stats.bump(|b| &b.dies);
                        return Err(TxnError::Die { blocker: b });
                    }
                    drop(view);
                    let bound = self.config.wait_slice;
                    self.wait_for_key_change(&mut guard, shard, shard_idx, key, t, bound)?;
                }
                DeadlockPolicy::Detect => {
                    // Waiting on a holder means waiting on its whole active
                    // subtree: a parent's lock releases only after its
                    // children's threads finish. The graph stores the direct
                    // blockers and expands them against the *current*
                    // registry at every cycle check — a blocker's subtree
                    // keeps growing while waiters are parked, and cycles
                    // closed by later-begun children must still be found.
                    if let Some(cycle) =
                        self.wfg.block(t, &conflict.blockers, |b| view.active_subtree(b))
                    {
                        self.stats.bump(|b| &b.deadlocks);
                        return Err(TxnError::Deadlock { cycle });
                    }
                    drop(view);
                    let bound = self.config.wait_slice;
                    let woke =
                        self.wait_for_key_change(&mut guard, shard, shard_idx, key, t, bound);
                    self.wfg.unblock(t);
                    woke?;
                }
            }
        }
    }

    /// Park `t` until `key`'s lock state may have changed, for at most
    /// `bound`. The caller holds the shard guard; this registers the wait,
    /// re-checks liveness, sleeps on the key's gate (or the shard condvar
    /// in broadcast mode), classifies the wakeup, and deregisters.
    ///
    /// Returns `Err(Orphaned)` if `t` died before sleeping. The liveness
    /// re-check happens *after* registration: an abort first marks the
    /// registry, then scans the wait registry — so either the abort
    /// precedes our check (we see it and bail) or our registration
    /// precedes the scan (the aborter locks this shard, which we hold
    /// until parked, and its notify reaches us). No interleaving leaves
    /// an orphan sleeping un-notified.
    fn wait_for_key_change(
        &self,
        guard: &mut MutexGuard<'_, ShardState<K, V>>,
        shard: &Shard<K, V>,
        shard_idx: usize,
        key: &K,
        t: TxnId,
        bound: Duration,
    ) -> Result<(), TxnError> {
        // Clone the key only when this is the key's first-ever waiter:
        // the gate map is insert-only, so the common conflict re-waits
        // on an existing gate.
        let gate = match guard.gates.get(key) {
            Some(gate) => gate.clone(),
            None => guard.gates.entry(key.clone()).or_default().clone(),
        };
        let gen_before = gate.generation.load(Ordering::Relaxed);
        gate.waiters.fetch_add(1, Ordering::Relaxed);
        self.waiting.lock().push(WaitEntry { txn: t, shard: shard_idx, gate: gate.clone() });
        let died = self.registry.read_view().is_dead(t);
        if !died {
            self.stats.bump(|b| &b.waits);
            let slept = Instant::now();
            match self.config.wakeups {
                WakeupMode::Targeted => gate.cv.wait_for(guard, bound),
                WakeupMode::Broadcast => shard.cv.wait_for(guard, bound),
            };
            self.stats.add(|b| &b.wait_nanos, slept.elapsed().as_nanos() as u64);
            if gate.generation.load(Ordering::Relaxed) != gen_before {
                self.stats.bump(|b| &b.wakeups_productive);
            } else {
                self.stats.bump(|b| &b.wakeups_spurious);
            }
        }
        {
            let mut waiting = self.waiting.lock();
            if let Some(pos) =
                waiting.iter().position(|e| e.txn == t && Arc::ptr_eq(&e.gate, &gate))
            {
                waiting.swap_remove(pos);
            }
        }
        if gate.waiters.fetch_sub(1, Ordering::Relaxed) == 1 {
            // Last waiter out: drop the gate so the map stays bounded by
            // the number of *currently contended* keys.
            if guard
                .gates
                .get(key)
                .is_some_and(|g| Arc::ptr_eq(g, &gate) && g.waiters.load(Ordering::Relaxed) == 0)
            {
                guard.gates.remove(key);
            }
        }
        if died {
            Err(TxnError::Orphaned)
        } else {
            Ok(())
        }
    }

    /// Wake the waiters of `key` after its lock state changed. Must be
    /// called under the shard lock (so the generation bump is ordered
    /// against every waiter's pre-sleep generation read).
    fn notify_released(&self, state: &ShardState<K, V>, shard: &Shard<K, V>, key: &K) {
        if let Some(gate) = state.gates.get(key) {
            gate.generation.fetch_add(1, Ordering::Relaxed);
            self.stats.bump(|b| &b.notifies);
            if self.config.wakeups == WakeupMode::Targeted {
                gate.cv.notify_all();
            }
        }
        if self.config.wakeups == WakeupMode::Broadcast {
            shard.cv.notify_all();
        }
    }

    /// Consult the installed injector before a lock acquisition.
    #[cfg(feature = "chaos-hooks")]
    fn injector_decision(&self, t: TxnId, shard: usize) -> chaos::AccessFault {
        match &*self.injector.read() {
            Some(injector) => injector.before_access(t, shard),
            None => chaos::AccessFault::Proceed,
        }
    }

    /// Consult the installed injector before a child begin.
    #[cfg(feature = "chaos-hooks")]
    fn injector_fails_child(&self, parent: TxnId) -> bool {
        match &*self.injector.read() {
            Some(injector) => injector.fail_begin_child(parent),
            None => false,
        }
    }

    /// Release/publish `t`'s locks on `keys`. For a committing top-level
    /// transaction, `publish_epoch` carries the commit epoch (the caller
    /// holds the MVCC publish lock): each key `t` wrote gains a version in
    /// its committed chain, appended under the same shard guard that
    /// publishes the base value — so per-key chain order equals lock-grant
    /// order. Nested commits and all aborts pass `None`.
    fn finish_locks(
        &self,
        t: TxnId,
        keys: &std::collections::HashSet<K>,
        commit: bool,
        publish_epoch: Option<u64>,
    ) {
        let parent = self.registry.parent(t);
        for key in keys {
            let shard = &self.shards[self.shard_of(key)];
            let mut guard = shard.state.lock();
            if let Some(state) = guard.objects.get_mut(key) {
                if commit {
                    // Shard → registry-read, the global lock order.
                    let view = self.registry.read_view();
                    // Only keys `t` actually wrote (own writes plus
                    // versions inherited from committed children) change
                    // the committed state; read-locked keys publish no
                    // version.
                    let wrote = publish_epoch.is_some() && state.write_holders().any(|h| h == t);
                    state.commit_to_parent(t, parent, &view);
                    drop(view);
                    if wrote {
                        let epoch = publish_epoch.expect("checked above");
                        self.mvcc.append(key, epoch, state.base_value().clone());
                    }
                } else {
                    state.abort_discard(t);
                }
            }
            self.notify_released(&guard, shard, key);
        }
    }

    /// Wake parked waiters that became orphans: their awaited key's state
    /// is never going to change on their account, so an abort must nudge
    /// them to re-check liveness. Snapshot under the wait-registry lock,
    /// then notify under each shard lock (never both at once — waiters
    /// acquire shard → waiting).
    fn wake_orphaned_waiters(&self) {
        let doomed: Vec<(usize, Arc<KeyGate>)> = {
            let waiting = self.waiting.lock();
            if waiting.is_empty() {
                return;
            }
            let view = self.registry.read_view();
            waiting
                .iter()
                .filter(|e| view.is_dead(e.txn))
                .map(|e| (e.shard, e.gate.clone()))
                .collect()
        };
        for (shard_idx, gate) in doomed {
            let shard = &self.shards[shard_idx];
            let _guard = shard.state.lock();
            gate.generation.fetch_add(1, Ordering::Relaxed);
            gate.cv.notify_all();
            shard.cv.notify_all();
        }
    }

    /// Liveness + fault-injection preamble for one optimistic operation —
    /// the lock-free mirror of [`DbInner::with_locked_state`]'s loop head,
    /// so chaos faults and orphan detection hit both modes identically.
    ///
    /// The registry liveness check runs only for *nested* transactions
    /// (`is_top == false`): orphanhood means an ancestor died, which a
    /// top-level transaction has none of, and `commit`/`abort` consume the
    /// handle so a top-level id observed here is always live. Skipping the
    /// check keeps the global registry lock off the optimistic read path —
    /// snapshot reads resolve against immutable versions and genuinely
    /// need no shared ancestry state, unlike a lock grant. The verdict for
    /// a top-level transaction is identical either way (the check is
    /// vacuous), so locking/optimistic control flow still agrees.
    fn opt_preamble(&self, t: TxnId, shard_idx: usize, is_top: bool) -> Result<(), TxnError> {
        if !is_top {
            let view = self.registry.read_view();
            match view.status(t) {
                Some(TxnStatus::Active) => {}
                _ => return Err(TxnError::NotActive),
            }
            if view.is_dead(t) {
                return Err(TxnError::Orphaned);
            }
        }
        #[cfg(not(feature = "chaos-hooks"))]
        let _ = shard_idx;
        #[cfg(feature = "chaos-hooks")]
        match self.injector_decision(t, shard_idx) {
            chaos::AccessFault::Proceed => {}
            chaos::AccessFault::Die => {
                self.stats.bump(|b| &b.dies);
                return Err(TxnError::Die { blocker: t });
            }
            chaos::AccessFault::Timeout => {
                self.stats.bump(|b| &b.timeouts);
                return Err(TxnError::Timeout(self.config.lock_timeout));
            }
        }
        Ok(())
    }

    /// Classify an absent key under an optimistic read: a racing ancestor
    /// abort may have unpinned our snapshot and let GC compact the chain
    /// mid-read, so a dead transaction reports orphanhood, not absence.
    fn opt_absent_error(&self, t: TxnId) -> TxnError {
        if self.registry.read_view().is_dead(t) {
            TxnError::Orphaned
        } else {
            TxnError::UnknownKey
        }
    }

    /// Buffer one optimistic Access record into the transaction's private
    /// audit buffer. The path is allocated *now* (so leaf indices reflect
    /// op order within the transaction); the record reaches the shared log
    /// only at top-level commit, under the publish gate.
    fn opt_buffer_access(
        &self,
        opt: &OptCtx<K, V>,
        t: TxnId,
        key: &K,
        update: UpdateFn,
        seen: rnt_model::Value,
    ) {
        if self.audit.is_none() {
            return;
        }
        let Some(object) = self.audit_object(key) else { return };
        let view = self.registry.read_view();
        opt.audit_buf.lock().push(AuditRecord::Access {
            path: access_path(&view, t),
            object,
            update,
            seen,
        });
    }

    /// First-committer-wins validation: the newest committed epoch that
    /// invalidates `footprint` against `begin_epoch`, or `None` if the
    /// footprint is clean. The caller holds the publish gate, so chain
    /// heads cannot move during the scan.
    fn opt_conflict<'k>(
        &self,
        footprint: impl Iterator<Item = &'k K>,
        begin_epoch: u64,
    ) -> Option<u64>
    where
        K: 'k,
    {
        let mut newest = None;
        for key in footprint {
            if let Some(e) = self.mvcc.last_epoch(key) {
                if e > begin_epoch && Some(e) > newest {
                    newest = Some(e);
                }
            }
        }
        newest
    }

    /// Publish a validated optimistic write set at `epoch`: per key,
    /// replace the lock-table base and append the chain version under the
    /// owning shard guard (the caller holds the publish lock — the same
    /// publish → shard → mvcc-shard order as the locking commit path).
    fn publish_optimistic_writes(&self, writes: &std::collections::BTreeMap<K, V>, epoch: u64) {
        for (key, value) in writes {
            let shard = &self.shards[self.shard_of(key)];
            let mut guard = shard.state.lock();
            if let Some(state) = guard.objects.get_mut(key) {
                state.publish_base(value.clone());
            }
            self.mvcc.append(key, epoch, value.clone());
            self.notify_released(&guard, shard, key);
        }
    }
}

/// A handle on one (sub)transaction. Dropping an unfinished handle aborts
/// it — the resilient default.
pub struct Txn<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    inner: Arc<DbInner<K, V>>,
    id: TxnId,
    done: bool,
    /// Keys this transaction holds locks on (own acquisitions plus those
    /// inherited from committed children). Unused in optimistic mode.
    touched: Arc<Mutex<std::collections::HashSet<K>>>,
    /// The parent's touched set, receiving our keys on commit.
    parent_touched: Option<Arc<Mutex<std::collections::HashSet<K>>>>,
    /// Optimistic-mode context ([`CcMode::Optimistic`] only).
    opt: Option<Arc<OptCtx<K, V>>>,
}

impl<K, V> Txn<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    /// This transaction's id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// True iff no ancestor has aborted.
    pub fn is_live(&self) -> bool {
        self.inner.registry.is_live(self.id)
    }

    /// Begin a subtransaction.
    pub fn child(&self) -> Result<Txn<K, V>, TxnError> {
        #[cfg(feature = "chaos-hooks")]
        if self.inner.injector_fails_child(self.id) {
            self.inner.stats.bump(|b| &b.dies);
            return Err(TxnError::Die { blocker: self.id });
        }
        let _latch = self.inner.wal_latch();
        let id = self.inner.registry.begin_child(self.id).map_err(map_reg_err)?;
        self.inner.stats.bump(|b| &b.begun);
        self.inner
            .audit_record(|reg| AuditRecord::Begin { path: reg.path(id).expect("fresh child") });
        self.inner.wal_append(&Record::Begin { action: id.0, parent: Some(self.id.0) });
        let opt = self.opt.as_ref().map(|parent| {
            Arc::new(OptCtx {
                begin_epoch: parent.begin_epoch,
                parent: Some(parent.clone()),
                writes: Mutex::new(std::collections::BTreeMap::new()),
                reads: Mutex::new(std::collections::HashSet::new()),
                audit_buf: Mutex::new(Vec::new()),
            })
        });
        Ok(Txn {
            inner: self.inner.clone(),
            id,
            done: false,
            touched: Arc::new(Mutex::new(std::collections::HashSet::new())),
            parent_touched: Some(self.touched.clone()),
            opt,
        })
    }

    /// Read a key. Locking mode acquires a read lock in Moss's
    /// discipline; optimistic mode reads lock-free — the nearest buffered
    /// write in this transaction tree, else the committed value at the
    /// pinned begin snapshot.
    pub fn read(&self, key: &K) -> Result<V, TxnError> {
        if let Some(opt) = self.opt.clone() {
            let out = self.opt_read(key, &opt)?;
            self.inner.stats.bump(|b| &b.reads);
            return Ok(out);
        }
        let inner = &self.inner;
        let top_level = self.parent_touched.is_none();
        let out = inner.with_locked_state(self.id, top_level, key, |state, reg| {
            state.try_read(self.id, reg).map(|v| {
                let value = v.clone();
                let record = inner.audit_object(key).map(|object| AuditRecord::Access {
                    path: access_path(reg, self.id),
                    object,
                    update: UpdateFn::Read,
                    seen: hash_value(&value),
                });
                (value, record)
            })
        })?;
        self.touch(key);
        inner.stats.bump(|b| &b.reads);
        Ok(out)
    }

    /// Record `key` in the touched set, cloning only on first touch.
    fn touch(&self, key: &K) {
        let mut touched = self.touched.lock();
        if !touched.contains(key) {
            touched.insert(key.clone());
        }
    }

    /// Overwrite a key (acquiring a write lock). Returns the value that was
    /// visible before the write.
    pub fn write(&self, key: &K, value: V) -> Result<V, TxnError> {
        self.rmw(key, move |_| value.clone())
    }

    /// Read-modify-write under a single write lock (locking mode) or
    /// into the private write buffer (optimistic mode). Returns the
    /// value seen.
    pub fn rmw(&self, key: &K, f: impl Fn(&V) -> V) -> Result<V, TxnError> {
        if let Some(opt) = self.opt.clone() {
            let out = self.opt_rmw(key, f, &opt)?;
            self.inner.stats.bump(|b| &b.writes);
            return Ok(out);
        }
        let inner = &self.inner;
        let top_level = self.parent_touched.is_none();
        let out = inner.with_locked_state(self.id, top_level, key, |state, reg| {
            let mut written: Option<V> = None;
            let seen = state.try_write(self.id, reg, |old| {
                let new = f(old);
                written = Some(new.clone());
                new
            })?;
            let record = inner.audit_object(key).map(|object| AuditRecord::Access {
                path: access_path(reg, self.id),
                object,
                update: UpdateFn::Write(hash_value(written.as_ref().expect("written set"))),
                seen: hash_value(&seen),
            });
            // Still under the shard guard: per-key log order = grant order.
            inner.wal_log_write(self.id, key, written.as_ref().expect("written set"));
            Ok((seen, record))
        })?;
        self.touch(key);
        inner.stats.bump(|b| &b.writes);
        Ok(out)
    }

    /// Optimistic read: buffered overlay first, else the pinned snapshot.
    fn opt_read(&self, key: &K, opt: &Arc<OptCtx<K, V>>) -> Result<V, TxnError> {
        let inner = &self.inner;
        inner.opt_preamble(self.id, inner.shard_of(key), opt.parent.is_none())?;
        if let Some(v) = opt.buffered(key) {
            // Reading a value this tree wrote: no snapshot dependency,
            // but still an audited access (mirroring a locked read of an
            // own-held write version).
            inner.opt_buffer_access(opt, self.id, key, UpdateFn::Read, hash_value(&v));
            return Ok(v);
        }
        match inner.mvcc.read_at(key, opt.begin_epoch) {
            Some(v) => {
                opt.track_read(key);
                inner.opt_buffer_access(opt, self.id, key, UpdateFn::Read, hash_value(&v));
                Ok(v)
            }
            None => Err(inner.opt_absent_error(self.id)),
        }
    }

    /// Optimistic read-modify-write: `f` over the overlaid view, result
    /// into the private write buffer.
    fn opt_rmw(
        &self,
        key: &K,
        f: impl Fn(&V) -> V,
        opt: &Arc<OptCtx<K, V>>,
    ) -> Result<V, TxnError> {
        let inner = &self.inner;
        inner.opt_preamble(self.id, inner.shard_of(key), opt.parent.is_none())?;
        let seen = match opt.buffered(key) {
            Some(v) => v,
            None => match inner.mvcc.read_at(key, opt.begin_epoch) {
                Some(v) => {
                    // The written value depends on the snapshot value:
                    // the key joins the read set for validation.
                    opt.track_read(key);
                    v
                }
                None => return Err(inner.opt_absent_error(self.id)),
            },
        };
        let new = f(&seen);
        inner.opt_buffer_access(
            opt,
            self.id,
            key,
            UpdateFn::Write(hash_value(&new)),
            hash_value(&seen),
        );
        opt.track_write(key, new);
        Ok(seen)
    }

    /// Run `body` in a subtransaction with automatic local retry: commits
    /// on success; on a retryable error (deadlock, wait-die, timeout) the
    /// subtransaction is aborted and re-run, leaving committed siblings
    /// untouched — the recovery-block idiom as a one-liner.
    ///
    /// `body` errors that are not retryable abort the subtransaction and
    /// propagate. `max_retries` bounds re-runs (0 = try once).
    pub fn run_child<R>(
        &self,
        max_retries: u32,
        mut body: impl FnMut(&Txn<K, V>) -> Result<R, TxnError>,
    ) -> Result<R, TxnError> {
        let mut attempts = 0;
        loop {
            let child = self.child()?;
            match body(&child) {
                Ok(out) => match child.commit() {
                    Ok(()) => return Ok(out),
                    Err(e) if e.is_retryable() && attempts < max_retries => attempts += 1,
                    Err(e) => return Err(e),
                },
                Err(e) if e.is_retryable() && attempts < max_retries => {
                    child.abort();
                    attempts += 1;
                }
                Err(e) => {
                    child.abort();
                    return Err(e);
                }
            }
        }
    }

    /// Commit this transaction to its parent (top-level: permanently).
    ///
    /// Fails with [`TxnError::ChildrenActive`] if subtransactions are still
    /// running; in that case the transaction stays active. In
    /// [`CcMode::Optimistic`], a top-level commit additionally runs
    /// first-committer-wins validation and can fail with the retryable
    /// [`TxnError::Conflict`] — the transaction is then already aborted.
    pub fn commit(mut self) -> Result<(), TxnError> {
        if self.opt.is_some() {
            return self.commit_optimistic();
        }
        let latch = self.inner.wal_latch();
        self.inner.registry.commit(self.id).map_err(map_reg_err)?;
        // The Commit record must land before the locks move: once
        // finish_locks runs, other threads can acquire them and log
        // accesses whose prefix-visibility depends on this commit. The
        // WAL Commit record follows the same rule, and a top-level fsync
        // happens here — before release, before the ack.
        let id = self.id;
        let top_level = self.parent_touched.is_none();
        self.inner.audit_record(|reg| AuditRecord::Commit { path: reg.path(id).expect("known") });
        if top_level && self.inner.config.group_commit {
            // Group-commit path: hand the finished commit to the
            // sequencer and block until a batch containing it has been
            // appended, forced, and published. Our locks stay held until
            // the leader runs finish_locks for us, so no conflicting
            // access can be logged ahead of our batch's commit record —
            // the same ordering invariant as the inline path below.
            let keys = std::mem::take(&mut *self.touched.lock());
            self.inner.stats.bump(|b| &b.commits_staged);
            let inner = &self.inner;
            let durable = inner.pipeline.stage(
                id,
                CommitPayload::Locking(keys),
                inner.config.max_batch,
                inner.config.max_batch_wait,
                |batch| inner.process_commit_batch(batch),
            );
            inner.stats.bump(|b| &b.committed);
            self.done = true;
            drop(latch);
            self.inner.maybe_auto_checkpoint(true);
            return durable;
        }
        // A top-level commit publishes to the committed version chains:
        // enter the MVCC publish critical section to get the next commit
        // epoch. Holding it across the WAL append makes commit-record log
        // order equal epoch order; holding it across finish_locks means no
        // snapshot can pin this epoch until every chain append landed (the
        // watermark advances when `publish` drops).
        let publish = top_level.then(|| self.inner.mvcc.begin_publish());
        let epoch = publish.as_ref().map(|p| p.epoch());
        let durable = self.inner.wal_log_commit(id, top_level, epoch);
        let keys = std::mem::take(&mut *self.touched.lock());
        self.inner.finish_locks(self.id, &keys, true, epoch);
        drop(publish);
        if let Some(parent) = &self.parent_touched {
            // Inherited locks become the parent's responsibility.
            parent.lock().extend(keys);
        }
        self.inner.stats.bump(|b| &b.committed);
        self.done = true;
        drop(latch);
        self.inner.maybe_auto_checkpoint(top_level);
        // A WAL failure surfaces only after the locks are cleanly
        // released: in-memory state stays consistent, durability doesn't.
        durable
    }

    /// The optimistic commit path ([`CcMode::Optimistic`]).
    ///
    /// Nested commits are savepoint releases: buffers merge into the
    /// parent, no validation. A top-level commit validates its merged
    /// footprint (read set ∪ write set) under the publish gate — first
    /// committer wins: any footprint key with a committed epoch newer
    /// than the begin snapshot aborts the transaction with
    /// [`TxnError::Conflict`]; a clean footprint publishes all buffered
    /// writes at one fresh epoch, WAL-logged before the watermark moves.
    fn commit_optimistic(&mut self) -> Result<(), TxnError> {
        let inner = self.inner.clone();
        let opt = self.opt.clone().expect("optimistic commit without context");
        let latch = inner.wal_latch();
        let id = self.id;
        if self.parent_touched.is_some() {
            // Nested: merge into the parent's buffers. Judged once, at
            // the top of the tree — resilient nesting over buffers.
            inner.registry.commit(id).map_err(map_reg_err)?;
            inner.audit_record(|reg| AuditRecord::Commit { path: reg.path(id).expect("known") });
            let durable = inner.wal_log_commit(id, false, None);
            let parent = opt.parent.as_ref().expect("nested optimistic has a parent ctx");
            parent.writes.lock().append(&mut opt.writes.lock());
            parent.reads.lock().extend(opt.reads.lock().drain());
            parent.audit_buf.lock().append(&mut opt.audit_buf.lock());
            inner.stats.bump(|b| &b.committed);
            self.done = true;
            return durable;
        }
        // Top-level: children must be finished before validation freezes
        // the footprint. Side-effect-free check — the transaction stays
        // active and its buffers intact, like the locking path's registry
        // refusal.
        let kids = inner.registry.active_children(id);
        if kids > 0 {
            return Err(TxnError::ChildrenActive(kids));
        }
        if inner.config.group_commit {
            // Hand the whole validation footprint to the sequencer; the
            // batch leader validates, publishes or aborts us under one
            // gate acquisition and returns the verdict.
            let payload = CommitPayload::Optimistic {
                begin_epoch: opt.begin_epoch,
                writes: std::mem::take(&mut *opt.writes.lock()),
                reads: std::mem::take(&mut *opt.reads.lock()),
                audit: std::mem::take(&mut *opt.audit_buf.lock()),
            };
            inner.stats.bump(|b| &b.commits_staged);
            let verdict = inner.pipeline.stage(
                id,
                payload,
                inner.config.max_batch,
                inner.config.max_batch_wait,
                |batch| inner.process_commit_batch(batch),
            );
            // A WAL failure means the commit happened in memory but
            // durability is broken; anything else failing means the
            // leader aborted us.
            let committed = matches!(&verdict, Ok(()) | Err(TxnError::Wal { .. }));
            if committed {
                inner.stats.bump(|b| &b.committed);
            }
            inner.mvcc.unpin(opt.begin_epoch);
            self.done = true;
            drop(latch);
            inner.maybe_auto_checkpoint(committed);
            return verdict;
        }
        // Inline path: two-phase (Kung-Robinson) validation. Phase 1 runs
        // *before* the gate against a pre-read watermark: every commit
        // fully published by then is visible to the scan, so the gate
        // only has to re-check the footprint when the watermark moved in
        // between — under low contention the expensive O(footprint) walk
        // happens outside the publish critical section and the gate hold
        // shrinks to the publish itself. A commit racing phase 1 either
        // finished first (watermark advanced past `pre_watermark` — phase
        // 2 catches it via the `> pre_watermark` floor) or is mid-publish
        // holding the gate (its appends may be visible early, but it can
        // no longer fail — aborting on it is ordinary first-committer
        // loss). Losers found in phase 1 never touch the gate at all.
        let writes = opt.writes.lock();
        let reads = opt.reads.lock();
        let pre_watermark = inner.mvcc.watermark();
        let mut conflict = inner.opt_conflict(writes.keys().chain(reads.iter()), opt.begin_epoch);
        let gate = if conflict.is_none() {
            let gate = inner.mvcc.begin_publish_gate();
            if inner.mvcc.watermark() != pre_watermark {
                // Someone published since phase 1; re-validate the span it
                // could not see. `pre_watermark ≥ begin_epoch` (the begin
                // pin is at or below any later watermark read), so the
                // tighter floor loses no conflicts.
                conflict = inner.opt_conflict(writes.keys().chain(reads.iter()), pre_watermark);
            }
            // A phase-2 conflict drops the gate right here — no epoch is
            // burned on a loser.
            conflict.is_none().then_some(gate)
        } else {
            None
        };
        if let Some(committed_epoch) = conflict {
            // First committer won already: abort.
            drop(reads);
            drop(writes);
            inner.audit_record(|reg| AuditRecord::Abort { path: reg.path(id).expect("known") });
            inner.wal_append(&Record::Abort { action: id.0 });
            let _ = inner.registry.abort(id);
            inner.stats.bump(|b| &b.occ_conflicts);
            inner.stats.bump(|b| &b.aborted);
            inner.mvcc.unpin(opt.begin_epoch);
            self.done = true;
            return Err(TxnError::Conflict { begin_epoch: opt.begin_epoch, committed_epoch });
        }
        let gate = gate.expect("a conflict-free commit holds the gate");
        inner.registry.commit(id).map_err(map_reg_err)?;
        // Flush buffered Access records under the gate: audit data order =
        // commit (= epoch) order, the Theorem-9 reconstruction invariant.
        if let Some(audit) = &inner.audit {
            for record in opt.audit_buf.lock().drain(..) {
                audit.log.push(record);
            }
        }
        inner.audit_record(|reg| AuditRecord::Commit { path: reg.path(id).expect("known") });
        let publish = gate.into_publish();
        let epoch = publish.epoch();
        for (key, value) in writes.iter() {
            inner.wal_log_write(id, key, value);
        }
        let durable = inner.wal_log_commit(id, true, Some(epoch));
        inner.publish_optimistic_writes(&writes, epoch);
        drop(publish);
        drop(writes);
        drop(reads);
        inner.stats.bump(|b| &b.committed);
        inner.mvcc.unpin(opt.begin_epoch);
        self.done = true;
        drop(latch);
        inner.maybe_auto_checkpoint(true);
        durable
    }

    /// Abort this transaction: every version it wrote is discarded and the
    /// enclosing versions are restored. Descendants become orphans.
    pub fn abort(mut self) {
        self.do_abort();
    }

    fn do_abort(&mut self) {
        if self.done {
            return;
        }
        // The Abort record must land before the registry transition: the
        // moment the registry marks us dead, any conflicting thread may
        // lazily reap our locks, read the restored value, and log its
        // access — which must sort *after* this abort in the log. The WAL
        // Abort record obeys the same ordering for the same reason.
        let _latch = self.inner.wal_latch();
        let id = self.id;
        self.inner.audit_record(|reg| AuditRecord::Abort { path: reg.path(id).expect("known") });
        self.inner.wal_append(&Record::Abort { action: id.0 });
        if self.inner.registry.abort(self.id).is_ok() {
            if let Some(opt) = &self.opt {
                // Optimistic: the buffers die with this context (nothing
                // ever reached shared state), and nobody is parked on a
                // lock gate. Only the top of the tree holds the pin.
                if opt.parent.is_none() {
                    self.inner.mvcc.unpin(opt.begin_epoch);
                }
            } else {
                let keys = std::mem::take(&mut *self.touched.lock());
                self.inner.finish_locks(self.id, &keys, false, None);
                // Descendants just became orphans; wake any that are parked
                // so they observe their death instead of sleeping out a
                // full wait slice.
                self.inner.wake_orphaned_waiters();
            }
            self.inner.stats.bump(|b| &b.aborted);
        }
        self.done = true;
    }
}

impl<K, V> std::fmt::Debug for Txn<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Txn")
            .field("id", &self.id)
            .field("top_level", &self.parent_touched.is_none())
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl<K, V> ReadView<K, V> for Txn<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    /// Locking mode: the publish watermark observed at call time — this
    /// transaction's reads are at least that fresh (and see its own
    /// writes on top). Optimistic mode: the pinned begin snapshot, which
    /// is exactly what every read resolves against.
    fn epoch(&self) -> u64 {
        match &self.opt {
            Some(opt) => opt.begin_epoch,
            None => self.inner.mvcc.watermark(),
        }
    }

    /// [`Txn::read`] as a total lookup: an unknown key is `Ok(None)`, not
    /// an error. Acquires a read lock like any transactional read, so it
    /// can fail with the usual conflict errors.
    fn get(&self, key: &K) -> Result<Option<V>, TxnError> {
        match self.read(key) {
            Ok(v) => Ok(Some(v)),
            Err(TxnError::UnknownKey) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// A *locked* range read: walks the ordered key index and acquires a
    /// read lock on every key in `bounds`, in key order. The pairs
    /// reflect this transaction's view — its own (and its ancestors')
    /// uncommitted writes included — and the locks held afterwards keep
    /// the scanned values stable until the transaction finishes, making
    /// this the serializable counterpart of the lock-free
    /// [`Snapshot::range`]. Any single lock acquisition failing (die,
    /// deadlock, timeout) fails the whole scan.
    ///
    /// A key seeded by a concurrent [`Db::insert`] mid-walk may or may
    /// not appear (seeding is non-transactional); keys born by replayed
    /// checkpoints are always indexed and always appear.
    fn range<R: RangeBounds<K>>(&self, bounds: R) -> Result<Vec<(K, V)>, TxnError> {
        self.inner.stats.bump(|b| &b.range_scans);
        let keys = self.inner.mvcc.keys_in(bounds);
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            match self.read(&key) {
                Ok(v) => out.push((key, v)),
                // Indexed but not yet in the lock table: an in-flight
                // seed. Skip it, matching a by-key read racing the same
                // insert.
                Err(TxnError::UnknownKey) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }
}

/// Allocate the action-tree path of a fresh access leaf under `t`.
fn access_path(reg: &RegistryView<'_>, t: TxnId) -> Vec<u32> {
    let mut path = reg.path(t).expect("txn registered");
    path.push(reg.alloc_child_index(t).expect("txn registered"));
    path
}

impl<K, V> Drop for Txn<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    fn drop(&mut self) {
        if !self.done {
            self.do_abort();
        }
    }
}

/// A lock-free read-only view of the committed state at one commit epoch,
/// opened by [`Db::snapshot`]. Reads are served from the MVCC version
/// chains and never touch the lock manager. Dropping the snapshot
/// releases its epoch pin, letting GC reclaim the versions it held.
pub struct Snapshot<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    inner: Arc<DbInner<K, V>>,
    epoch: u64,
}

impl<K, V> Snapshot<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    /// The commit epoch this snapshot is pinned to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The committed value of `key` as of the pinned epoch (`None` if the
    /// key did not exist yet). Lock-free: reads the version chain under a
    /// sharded read lock, never the lock manager.
    pub fn read(&self, key: &K) -> Option<V> {
        self.inner.stats.bump(|b| &b.snapshot_reads);
        self.inner.mvcc.read_at(key, self.epoch)
    }

    /// All committed `(key, value)` pairs with keys in `bounds` as of the
    /// pinned epoch, in ascending key order — a consistent scan: every
    /// pair is from the same committed state, no matter what writers
    /// commit while the walk runs. Lock-free like [`Snapshot::read`]:
    /// walks the ordered key index shard by shard under sharded read
    /// locks, never blocking (or blocked by) the lock manager or
    /// publication.
    pub fn range<R: RangeBounds<K>>(&self, bounds: R) -> Vec<(K, V)> {
        self.inner.stats.bump(|b| &b.range_scans);
        self.inner.mvcc.range_at(bounds, self.epoch)
    }

    /// True iff this snapshot's epoch fell below the retained floor — only
    /// possible when [`DbConfig::max_versions_per_key`] force-pruned
    /// versions this pin was holding. Reads from an expired snapshot may
    /// see force-pruned keys as absent.
    pub fn is_expired(&self) -> bool {
        self.epoch < self.inner.mvcc.oldest_retained()
    }
}

impl<K, V> std::fmt::Debug for Snapshot<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("epoch", &self.epoch)
            .field("expired", &self.is_expired())
            .finish_non_exhaustive()
    }
}

/// Cloning a snapshot adds a pin to the *same* epoch: the clone sees the
/// identical frozen state, and the versions stay protected until both
/// (all) clones drop. Sound because the original's pin already protects
/// the epoch — the clone can never observe a half-reclaimed state.
impl<K, V> Clone for Snapshot<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    fn clone(&self) -> Self {
        self.inner.mvcc.repin(self.epoch);
        Snapshot { inner: self.inner.clone(), epoch: self.epoch }
    }
}

impl<K, V> ReadView<K, V> for Snapshot<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Infallible on this surface: always `Ok`.
    fn get(&self, key: &K) -> Result<Option<V>, TxnError> {
        Ok(self.read(key))
    }

    /// Infallible on this surface: always `Ok`.
    fn range<R: RangeBounds<K>>(&self, bounds: R) -> Result<Vec<(K, V)>, TxnError> {
        Ok(Snapshot::range(self, bounds))
    }
}

impl<K, V> Drop for Snapshot<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    fn drop(&mut self) {
        self.inner.mvcc.unpin(self.epoch);
    }
}

fn map_reg_err(e: RegistryError) -> TxnError {
    match e {
        RegistryError::Unknown(_) | RegistryError::NotActive(_) | RegistryError::Duplicate(_) => {
            TxnError::NotActive
        }
        RegistryError::ChildrenActive(_, n) => TxnError::ChildrenActive(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Db<u64, i64> {
        let db = Db::new();
        for k in 0..8 {
            db.insert(k, 100 + k as i64);
        }
        db
    }

    #[test]
    fn action_summary_reflects_registry() {
        use rnt_model::{act, Status};
        let db = db();
        let t1 = db.begin();
        let c = t1.child().unwrap();
        c.commit().unwrap();
        t1.commit().unwrap();
        let t2 = db.begin();
        t2.abort();
        let t3 = db.begin();
        let statuses = db.status_summary();
        assert_eq!(statuses.len(), 4);
        // Name top-level txns by their id; skip subtransactions.
        let summary = db.action_summary(|id, path| (path.len() == 1).then(|| act![id.0 as u32]));
        assert_eq!(summary.len(), 3);
        assert_eq!(summary.status(&act![t3.id().0 as u32]), Some(Status::Active));
        let committed = summary.entries().filter(|(_, s)| *s == Status::Committed).count();
        let aborted = summary.entries().filter(|(_, s)| *s == Status::Aborted).count();
        assert_eq!((committed, aborted), (1, 1));
        t3.abort();
    }

    #[test]
    fn read_write_commit_roundtrip() {
        let db = db();
        let t = db.begin();
        assert_eq!(t.read(&0).unwrap(), 100);
        t.write(&0, 42).unwrap();
        assert_eq!(t.read(&0).unwrap(), 42);
        // Uncommitted: base unchanged.
        assert_eq!(db.committed_value(&0), Some(100));
        t.commit().unwrap();
        assert_eq!(db.committed_value(&0), Some(42));
    }

    #[test]
    fn abort_restores() {
        let db = db();
        let t = db.begin();
        t.write(&0, 42).unwrap();
        t.abort();
        assert_eq!(db.committed_value(&0), Some(100));
        let t2 = db.begin();
        assert_eq!(t2.read(&0).unwrap(), 100);
    }

    #[test]
    fn drop_aborts() {
        let db = db();
        {
            let t = db.begin();
            t.write(&0, 42).unwrap();
            // dropped without commit
        }
        assert_eq!(db.committed_value(&0), Some(100));
        assert_eq!(db.stats().aborted, 1);
    }

    #[test]
    fn child_commit_publishes_to_parent_only() {
        let db = db();
        let t = db.begin();
        let c = t.child().unwrap();
        c.write(&0, 7).unwrap();
        c.commit().unwrap();
        // Parent sees the child's write...
        assert_eq!(t.read(&0).unwrap(), 7);
        // ...but the world does not yet.
        assert_eq!(db.committed_value(&0), Some(100));
        t.commit().unwrap();
        assert_eq!(db.committed_value(&0), Some(7));
    }

    #[test]
    fn child_abort_is_contained() {
        let db = db();
        let t = db.begin();
        t.write(&0, 1).unwrap();
        let c = t.child().unwrap();
        c.write(&0, 2).unwrap();
        c.abort();
        // Parent's version restored — the whole point of resilient nesting.
        assert_eq!(t.read(&0).unwrap(), 1);
        t.commit().unwrap();
        assert_eq!(db.committed_value(&0), Some(1));
    }

    #[test]
    fn commit_with_active_children_fails() {
        let db = db();
        let t = db.begin();
        let c = t.child().unwrap();
        let err = t.commit().unwrap_err();
        assert_eq!(err, TxnError::ChildrenActive(1));
        drop(c);
    }

    #[test]
    fn orphan_operations_fail() {
        let db = db();
        let t = db.begin();
        let c = t.child().unwrap();
        let g = c.child().unwrap();
        c.abort();
        assert!(!g.is_live());
        assert_eq!(g.read(&0), Err(TxnError::Orphaned));
        assert_eq!(g.write(&0, 1), Err(TxnError::Orphaned));
    }

    #[test]
    fn unknown_key() {
        let db = db();
        let t = db.begin();
        assert_eq!(t.read(&99), Err(TxnError::UnknownKey));
        assert_eq!(t.write(&99, 0), Err(TxnError::UnknownKey));
    }

    #[test]
    fn builder_sets_all_knobs() {
        let config = DbConfig::builder()
            .shards(64)
            .policy(DeadlockPolicy::WaitDie)
            .lock_timeout(Duration::from_millis(7))
            .wait_slice(Duration::from_micros(300))
            .audit(true)
            .wakeups(WakeupMode::Broadcast)
            .build();
        assert_eq!(config.shards, 64);
        assert_eq!(config.policy, DeadlockPolicy::WaitDie);
        assert_eq!(config.lock_timeout, Duration::from_millis(7));
        assert_eq!(config.wait_slice, Duration::from_micros(300));
        assert!(config.audit);
        assert_eq!(config.wakeups, WakeupMode::Broadcast);
    }

    #[test]
    fn sibling_isolation_nowait() {
        let db: Db<u64, i64> =
            Db::with_config(DbConfig::builder().policy(DeadlockPolicy::NoWait).build());
        db.insert(0, 0);
        let t = db.begin();
        let a = t.child().unwrap();
        let b = t.child().unwrap();
        a.write(&0, 1).unwrap();
        // Sibling b conflicts with a's live write lock.
        assert!(matches!(b.read(&0), Err(TxnError::Die { .. })));
        a.commit().unwrap();
        // Lock now held by t (ancestor of b): b may read.
        assert_eq!(b.read(&0).unwrap(), 1);
        b.commit().unwrap();
        t.commit().unwrap();
        assert_eq!(db.committed_value(&0), Some(1));
    }

    #[test]
    fn rmw_composes() {
        let db = db();
        let t = db.begin();
        let seen = t.rmw(&1, |v| v * 2).unwrap();
        assert_eq!(seen, 101);
        assert_eq!(t.read(&1).unwrap(), 202);
        t.commit().unwrap();
        assert_eq!(db.committed_value(&1), Some(202));
    }

    #[test]
    fn concurrent_disjoint_commits() {
        let db = db();
        let mut handles = Vec::new();
        for k in 0..8u64 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let t = db.begin();
                    t.rmw(&k, |v| v + 1).unwrap();
                    t.commit().unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for k in 0..8u64 {
            assert_eq!(db.committed_value(&k), Some(100 + k as i64 + 50));
        }
    }

    #[test]
    fn concurrent_contended_counter() {
        let db: Db<u64, i64> =
            Db::with_config(DbConfig::builder().policy(DeadlockPolicy::Detect).build());
        db.insert(0, 0);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    db.run(|t| t.rmw(&0, |v| v + 1)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.committed_value(&0), Some(400));
    }

    #[test]
    fn deadlock_detected_and_resolved() {
        let db: Db<u64, i64> =
            Db::with_config(DbConfig::builder().policy(DeadlockPolicy::Detect).build());
        db.insert(0, 0);
        db.insert(1, 0);
        let barrier = Arc::new(std::sync::Barrier::new(2));
        // Not a plain retry loop: the barrier forces the lock acquisitions
        // to overlap so the wait-for cycle actually forms.
        let mk = |first: u64, second: u64, db: Db<u64, i64>, barrier: Arc<std::sync::Barrier>| {
            std::thread::spawn(move || loop {
                let t = db.begin();
                if t.write(&first, 1).is_err() {
                    t.abort();
                    continue;
                }
                barrier.wait();
                match t.write(&second, 1) {
                    Ok(_) => {
                        t.commit().unwrap();
                        return true; // this side won
                    }
                    Err(e) if e.is_retryable() => {
                        t.abort();
                        return false; // this side was the victim
                    }
                    Err(e) => panic!("unexpected {e}"),
                }
            })
        };
        let h1 = mk(0, 1, db.clone(), barrier.clone());
        let h2 = mk(1, 0, db.clone(), barrier.clone());
        let r1 = h1.join().unwrap();
        let r2 = h2.join().unwrap();
        // At least one side must have been the victim or both eventually
        // succeeded after a victim retried; either way, no hang, and the
        // detector fired unless timing avoided the overlap entirely.
        let _ = (r1, r2);
    }

    #[test]
    fn wait_die_never_hangs() {
        let db: Db<u64, i64> =
            Db::with_config(DbConfig::builder().policy(DeadlockPolicy::WaitDie).build());
        db.insert(0, 0);
        db.insert(1, 0);
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    let (a, b) = if i % 2 == 0 { (0, 1) } else { (1, 0) };
                    db.run(|t| {
                        t.rmw(&a, |v| v + 1)?;
                        t.rmw(&b, |v| v + 1)?;
                        Ok(())
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total = db.committed_value(&0).unwrap() + db.committed_value(&1).unwrap();
        assert_eq!(total, 200);
    }

    #[test]
    fn audited_run_is_data_serializable() {
        let db: Db<u64, i64> = Db::with_config(DbConfig::builder().audit(true).build());
        for k in 0..4 {
            db.insert(k, 0);
        }
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for j in 0..20u64 {
                    let t = db.begin();
                    let k1 = (i + j) % 4;
                    let k2 = (i + j + 1) % 4;
                    let ok = (|| {
                        let c = t.child()?;
                        c.rmw(&k1, |v| v + 1)?;
                        c.commit()?;
                        let c2 = t.child()?;
                        let v = c2.read(&k2)?;
                        c2.write(&k2, v + 10)?;
                        c2.commit()?;
                        Ok::<_, TxnError>(())
                    })();
                    match ok {
                        Ok(()) => {
                            let _ = t.commit();
                        }
                        Err(_) => t.abort(),
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let log = db.audit_log().expect("auditing on");
        let (universe, aat) = log.reconstruct().expect("well-formed log");
        assert!(
            aat.perm().is_rw_data_serializable(&universe),
            "engine execution violated the serializability guarantee"
        );
    }

    #[test]
    fn run_child_commits_on_success() {
        let db = db();
        let t = db.begin();
        let seen = t.run_child(3, |c| c.rmw(&0, |v| v + 1)).unwrap();
        assert_eq!(seen, 100);
        assert_eq!(t.read(&0).unwrap(), 101);
        t.commit().unwrap();
    }

    #[test]
    fn run_child_propagates_fatal_errors() {
        let db = db();
        let t = db.begin();
        let err = t.run_child(3, |c| c.read(&999)).unwrap_err();
        assert_eq!(err, TxnError::UnknownKey);
        // The failed child aborted; the parent is untouched and usable.
        assert_eq!(t.read(&0).unwrap(), 100);
        t.commit().unwrap();
    }

    #[test]
    fn run_child_retries_contention() {
        // A NoWait db: the first attempt conflicts with a holder thread,
        // later ones succeed after the holder finishes.
        let db: Db<u64, i64> =
            Db::with_config(DbConfig::builder().policy(DeadlockPolicy::NoWait).build());
        db.insert(0, 0);
        let holder = db.begin();
        holder.write(&0, 5).unwrap();
        let t = db.begin();
        // While the holder is alive, every attempt dies: max_retries = 2
        // means exactly 3 attempts, then the error surfaces.
        let mut attempts = 0;
        let err = t
            .run_child(2, |c| {
                attempts += 1;
                c.read(&0)
            })
            .unwrap_err();
        assert!(matches!(err, TxnError::Die { .. }));
        assert_eq!(attempts, 3);
        // After the holder commits, a retried child succeeds.
        holder.commit().unwrap();
        let v = t.run_child(10, |c| c.read(&0)).unwrap();
        assert_eq!(v, 5);
        t.commit().unwrap();
    }

    #[test]
    fn db_run_retries_to_success() {
        let db: Db<u64, i64> =
            Db::with_config(DbConfig::builder().policy(DeadlockPolicy::NoWait).build());
        db.insert(0, 0);
        let holder = db.begin();
        holder.write(&0, 5).unwrap();
        // Bounded attempts while the lock is held: the Die surfaces.
        let mut attempts = 0;
        let err = db
            .run_with_retries(2, |t| {
                attempts += 1;
                t.read(&0)
            })
            .unwrap_err();
        assert!(matches!(err, TxnError::Die { .. }));
        assert_eq!(attempts, 3);
        holder.commit().unwrap();
        // Unbounded run succeeds once the holder is gone.
        assert_eq!(db.run(|t| t.read(&0)).unwrap(), 5);
    }

    #[test]
    fn db_run_propagates_fatal_errors() {
        let db = db();
        let mut attempts = 0;
        let err = db
            .run(|t| {
                attempts += 1;
                t.read(&999)
            })
            .unwrap_err();
        assert_eq!(err, TxnError::UnknownKey);
        assert_eq!(attempts, 1, "fatal errors are not retried");
        assert_eq!(db.stats().aborted, 1, "failed attempt aborted");
    }

    #[test]
    fn orphan_view_anomalies_zero_on_clean_run() {
        let db: Db<u64, i64> = Db::with_config(DbConfig::builder().audit(true).build());
        db.insert(0, 1);
        let t = db.begin();
        t.run_child(0, |c| c.rmw(&0, |v| v * 10)).unwrap();
        t.commit().unwrap();
        let t2 = db.begin();
        t2.read(&0).unwrap();
        t2.abort();
        let (performs, orphans, anomalies, live) =
            db.audit_log().unwrap().orphan_view_anomalies().unwrap();
        assert_eq!(performs, 2);
        assert_eq!(orphans, 0);
        assert_eq!(anomalies, 0);
        assert_eq!(live, 0);
    }

    #[test]
    fn stats_track_operations() {
        let db = db();
        let t = db.begin();
        t.read(&0).unwrap();
        t.write(&1, 5).unwrap();
        t.commit().unwrap();
        let s = db.stats();
        assert_eq!(s.begun, 1);
        assert_eq!(s.committed, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
    }

    #[test]
    fn deep_nesting_chain() {
        let db = db();
        let t = db.begin();
        let mut stack = vec![t.child().unwrap()];
        for _ in 0..8 {
            let next = stack.last().unwrap().child().unwrap();
            stack.push(next);
        }
        // Deepest writes; commits cascade upward.
        stack.last().unwrap().write(&0, 999).unwrap();
        while let Some(txn) = stack.pop() {
            txn.commit().unwrap();
        }
        assert_eq!(t.read(&0).unwrap(), 999);
        t.commit().unwrap();
        assert_eq!(db.committed_value(&0), Some(999));
    }

    fn opt_db() -> Db<u64, i64> {
        let db = Db::with_config(DbConfig::builder().cc_mode(CcMode::Optimistic).build());
        for k in 0..8 {
            db.insert(k, 100 + k as i64);
        }
        db
    }

    #[test]
    fn optimistic_roundtrip_publishes_on_commit() {
        let db = opt_db();
        let t = db.begin();
        assert_eq!(t.read(&0).unwrap(), 100);
        t.write(&0, 42).unwrap();
        assert_eq!(t.read(&0).unwrap(), 42, "own buffered write visible");
        assert_eq!(db.committed_value(&0), Some(100), "buffer is private");
        t.commit().unwrap();
        assert_eq!(db.committed_value(&0), Some(42));
        // The chain head is the committed write at epoch 1 (the superseded
        // seed is reclaimable the moment no pin holds it).
        assert_eq!(db.history(&0).last().copied(), Some((1, 42)));
    }

    #[test]
    fn optimistic_first_committer_wins() {
        let db = opt_db();
        let a = db.begin();
        let b = db.begin();
        a.rmw(&0, |v| v + 1).unwrap();
        b.rmw(&0, |v| v + 10).unwrap();
        a.commit().unwrap();
        let err = b.commit().unwrap_err();
        assert!(matches!(err, TxnError::Conflict { .. }), "{err:?}");
        assert!(err.is_retryable());
        assert_eq!(db.committed_value(&0), Some(101), "loser published nothing");
        let s = db.stats();
        assert_eq!(s.occ_conflicts, 1);
        assert_eq!(s.conflicts, 0, "no lock-manager conflicts in optimistic mode");
        assert_eq!(s.aborted, 1);
        assert_eq!(s.snapshot_pins_live, 0, "both begin pins released");
    }

    #[test]
    fn optimistic_read_set_validated_for_serializability() {
        // b only READS key 0, which a overwrites: snapshot isolation alone
        // would let b commit, but first-committer-wins over the full
        // footprint (rw-antidependency) must abort it.
        let db = opt_db();
        let a = db.begin();
        let b = db.begin();
        a.write(&0, 7).unwrap();
        b.read(&0).unwrap();
        b.write(&1, 50).unwrap();
        a.commit().unwrap();
        let err = b.commit().unwrap_err();
        assert!(matches!(err, TxnError::Conflict { .. }), "{err:?}");
        assert_eq!(db.committed_value(&1), Some(101));
    }

    #[test]
    fn optimistic_disjoint_writers_both_commit() {
        let db = opt_db();
        let a = db.begin();
        let b = db.begin();
        a.write(&0, 1).unwrap();
        b.write(&1, 2).unwrap();
        a.commit().unwrap();
        b.commit().unwrap();
        assert_eq!(db.committed_value(&0), Some(1));
        assert_eq!(db.committed_value(&1), Some(2));
        assert_eq!(db.stats().occ_conflicts, 0);
    }

    #[test]
    fn optimistic_reads_stay_at_begin_snapshot() {
        let db = opt_db();
        let t = db.begin();
        assert_eq!(t.read(&0).unwrap(), 100);
        // A later committer moves the committed state...
        let w = db.begin();
        w.write(&0, 999).unwrap();
        w.commit().unwrap();
        // ...but t keeps reading its pinned snapshot.
        assert_eq!(t.read(&0).unwrap(), 100);
        assert_eq!(db.committed_value(&0), Some(999));
        t.abort();
    }

    #[test]
    fn optimistic_child_commit_merges_and_abort_discards() {
        let db = opt_db();
        let t = db.begin();
        let keep = t.child().unwrap();
        keep.write(&0, 11).unwrap();
        keep.commit().unwrap();
        let lose = t.child().unwrap();
        lose.write(&1, 22).unwrap();
        lose.abort();
        assert_eq!(t.read(&0).unwrap(), 11, "committed child's buffer merged");
        assert_eq!(t.read(&1).unwrap(), 101, "aborted child's buffer discarded");
        t.commit().unwrap();
        assert_eq!(db.committed_value(&0), Some(11));
        assert_eq!(db.committed_value(&1), Some(101));
    }

    #[test]
    fn optimistic_commit_with_active_children_refused() {
        let db = opt_db();
        let t = db.begin();
        let c = t.child().unwrap();
        c.write(&0, 5).unwrap();
        let t2 = db.begin();
        // Cannot consume t while c is live: clone semantics don't allow
        // it in this API, so exercise the registry refusal via run().
        drop(t2);
        let err = {
            let kids_err = match t.commit() {
                Err(e) => e,
                Ok(()) => panic!("commit with live child must fail"),
            };
            kids_err
        };
        assert_eq!(err, TxnError::ChildrenActive(1));
        // c is an orphan now (t's handle was consumed and the commit
        // failure aborted it on drop).
        drop(c);
    }

    #[test]
    fn optimistic_run_retries_conflicts_to_success() {
        let db = Arc::new(opt_db());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        db.run(|t| t.rmw(&0, |v| v + 1).map(|_| ())).unwrap();
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(db.committed_value(&0), Some(200), "all 100 increments retained");
        let s = db.stats();
        assert_eq!(s.committed, 100);
        assert_eq!(s.conflicts, 0, "never touched the lock manager");
    }

    #[test]
    fn optimistic_group_commit_batches_and_validates() {
        let db: Db<u64, i64> = Db::with_config(
            DbConfig::builder().cc_mode(CcMode::Optimistic).group_commit(true).max_batch(8).build(),
        );
        for k in 0..64 {
            db.insert(k, 0);
        }
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for j in 0..50u64 {
                        // Disjoint per-thread keys (0..56) plus a shared
                        // hot key so batches mix survivors and losers.
                        db.run(|t| {
                            t.rmw(&(i * 7 + j % 7), |v| v + 1)?;
                            t.rmw(&63, |v| v + 1).map(|_| ())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(db.committed_value(&63), Some(400), "hot-key increments all retained");
        let s = db.stats();
        assert_eq!(s.committed, 400);
        assert_eq!(s.commits_staged, s.committed + s.occ_conflicts, "every staging resolved");
        assert_eq!(s.commits_batched, s.committed, "survivors retired through batches");
        assert_eq!(s.snapshot_pins_live, 0);
    }

    #[test]
    fn optimistic_audit_log_is_serializable_under_contention() {
        let db: Db<u64, i64> =
            Db::with_config(DbConfig::builder().cc_mode(CcMode::Optimistic).audit(true).build());
        for k in 0..4 {
            db.insert(k, 0);
        }
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for _ in 0..20u64 {
                        db.run(|t| {
                            t.read(&(i % 4))?;
                            t.rmw(&((i + 1) % 4), |v| v + 1).map(|_| ())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let (universe, aat) = db.audit_log().unwrap().reconstruct().unwrap();
        assert!(aat.perm().is_data_serializable(&universe), "Theorem-9 check");
    }

    #[test]
    fn optimistic_conflict_error_carries_the_epochs() {
        let db = opt_db();
        let a = db.begin();
        let begin_watermark = db.epochs().watermark;
        let b = db.begin();
        a.write(&3, 1).unwrap();
        b.write(&3, 2).unwrap();
        a.commit().unwrap();
        match b.commit().unwrap_err() {
            TxnError::Conflict { begin_epoch, committed_epoch } => {
                assert_eq!(begin_epoch, begin_watermark);
                assert_eq!(committed_epoch, begin_watermark + 1);
            }
            other => panic!("expected Conflict, got {other:?}"),
        }
    }
}
