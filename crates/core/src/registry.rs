//! Transaction identities and the nesting registry.
//!
//! The engine's analogue of the paper's universal action tree: every
//! transaction gets a [`TxnId`] and a path of child indices from the
//! (virtual) root, so ancestor tests and audit reconstruction are pure
//! functions of registry state.
//!
//! Hot-path queries (status, liveness, ancestry) go through a
//! [`RegistryView`] — a single read guard over the id table with all
//! per-transaction state in atomics — so one lock acquisition covers an
//! entire lock-table operation instead of one per query.

use parking_lot::{RwLock, RwLockReadGuard};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// Identifier of a transaction. Monotonically increasing across the
/// database; usable as a wait-die timestamp.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TxnId(pub u64);

/// Lifecycle status of a transaction (the paper's `status_T`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxnStatus {
    /// Created and not yet completed.
    Active,
    /// Committed to its parent (or, for top-level, permanently).
    Committed,
    /// Aborted.
    Aborted,
}

const ST_ACTIVE: u8 = 0;
const ST_COMMITTED: u8 = 1;
const ST_ABORTED: u8 = 2;

fn decode(s: u8) -> TxnStatus {
    match s {
        ST_ACTIVE => TxnStatus::Active,
        ST_COMMITTED => TxnStatus::Committed,
        _ => TxnStatus::Aborted,
    }
}

#[derive(Debug)]
struct TxnMeta {
    parent: Option<TxnId>,
    /// Root (top-level ancestor) id, used as the wait-die timestamp.
    root: TxnId,
    /// Path of child indices from the root; the audit log uses it to name
    /// actions. Immutable after creation.
    path: Vec<u32>,
    status: AtomicU8,
    /// Child *index* counter (transactions and audit access leaves).
    children: AtomicU32,
    /// Number of children still active.
    active_children: AtomicU32,
    /// Child transaction ids (for wait-for expansion over subtrees);
    /// mutated only under the table's write lock.
    child_ids: RwLock<Vec<TxnId>>,
}

/// The registry of all transactions ever created in a database.
///
/// Completed subtrees are *not* garbage-collected: dead-ness of orphans is
/// decided by walking ancestors, so history must remain available while any
/// descendant can still act. (A production system would prune fully-done
/// subtrees; the registry keeps everything so the audit can reconstruct the
/// full action tree.)
#[derive(Debug, Default)]
pub struct Registry {
    next: AtomicU64,
    top_count: AtomicU64,
    map: RwLock<HashMap<TxnId, Arc<TxnMeta>>>,
}

/// A read view over the registry: one guard, arbitrarily many queries.
pub struct RegistryView<'a> {
    map: RwLockReadGuard<'a, HashMap<TxnId, Arc<TxnMeta>>>,
}

impl<'a> RegistryView<'a> {
    fn meta(&self, id: TxnId) -> Option<&Arc<TxnMeta>> {
        self.map.get(&id)
    }

    /// The status of `id`.
    pub fn status(&self, id: TxnId) -> Option<TxnStatus> {
        self.meta(id).map(|m| decode(m.status.load(Ordering::Acquire)))
    }

    /// The parent of `id`, if any.
    pub fn parent(&self, id: TxnId) -> Option<TxnId> {
        self.meta(id).and_then(|m| m.parent)
    }

    /// The root (top-level ancestor) of `id` — the wait-die timestamp.
    pub fn root(&self, id: TxnId) -> Option<TxnId> {
        self.meta(id).map(|m| m.root)
    }

    /// The action-tree path of `id`.
    pub fn path(&self, id: TxnId) -> Option<Vec<u32>> {
        self.meta(id).map(|m| m.path.clone())
    }

    /// Allocate the next child *index* under `id` (atomic; no write lock).
    pub fn alloc_child_index(&self, id: TxnId) -> Option<u32> {
        self.meta(id).map(|m| m.children.fetch_add(1, Ordering::Relaxed))
    }

    /// True iff `a` is an ancestor of `b` (reflexively).
    ///
    /// Paths are immutable child-index sequences from the action-tree root,
    /// so ancestry is a prefix test — one comparison instead of a parent
    /// walk, which matters because this runs inside every lock grant.
    pub fn is_ancestor(&self, a: TxnId, b: TxnId) -> bool {
        if a == b {
            return true;
        }
        match (self.meta(a), self.meta(b)) {
            (Some(ma), Some(mb)) => {
                ma.path.len() < mb.path.len() && mb.path[..ma.path.len()] == ma.path[..]
            }
            _ => false,
        }
    }

    /// True iff `id` or any ancestor has aborted (the paper's "dead").
    pub fn is_dead(&self, id: TxnId) -> bool {
        let mut cur = Some(id);
        while let Some(c) = cur {
            match self.meta(c) {
                None => return true, // unknown ⇒ treat as dead
                Some(m) if m.status.load(Ordering::Acquire) == ST_ABORTED => return true,
                Some(m) => cur = m.parent,
            }
        }
        false
    }

    /// The members of `id`'s subtree that are still *active* (including
    /// `id` itself if active). Waiting for a lock held by `id` really means
    /// waiting for all of these to complete — a parent's lock is released
    /// only when its own thread commits it, which in turn waits for the
    /// children — so deadlock detection must expand blockers to this set.
    pub fn active_subtree(&self, id: TxnId) -> Vec<TxnId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(t) = stack.pop() {
            if let Some(m) = self.meta(t) {
                if m.status.load(Ordering::Acquire) == ST_ACTIVE {
                    out.push(t);
                    stack.extend(m.child_ids.read().iter().copied());
                }
            }
        }
        out
    }
}

impl crate::lock::LockEnv for RegistryView<'_> {
    fn is_ancestor(&self, a: TxnId, b: TxnId) -> bool {
        RegistryView::is_ancestor(self, a, b)
    }
    fn is_dead(&self, t: TxnId) -> bool {
        RegistryView::is_dead(self, t)
    }
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a read view for a batch of queries.
    pub fn read_view(&self) -> RegistryView<'_> {
        RegistryView { map: self.map.read() }
    }

    /// Register a new top-level transaction.
    pub fn begin_top(&self) -> TxnId {
        let id = TxnId(self.next.fetch_add(1, Ordering::Relaxed));
        let top = self.top_count.fetch_add(1, Ordering::Relaxed) as u32;
        let meta = Arc::new(TxnMeta {
            parent: None,
            root: id,
            path: vec![top],
            status: AtomicU8::new(ST_ACTIVE),
            children: AtomicU32::new(0),
            active_children: AtomicU32::new(0),
            child_ids: RwLock::new(Vec::new()),
        });
        self.map.write().insert(id, meta);
        id
    }

    /// Register a child of `parent`.
    ///
    /// Fails if the parent is not active (committed parents cannot gain
    /// children; aborted parents *may* in the paper, but the engine rejects
    /// spawning under a known-aborted parent as a programming error).
    ///
    /// Safe-API note: a parent's `commit`/`abort` consume the handle, so
    /// they cannot race with `begin_child` through the public engine API;
    /// the atomic counter updates here rely on that.
    pub fn begin_child(&self, parent: TxnId) -> Result<TxnId, RegistryError> {
        let id = TxnId(self.next.fetch_add(1, Ordering::Relaxed));
        let map = self.map.read();
        let pm = map.get(&parent).ok_or(RegistryError::Unknown(parent))?;
        if pm.status.load(Ordering::Acquire) != ST_ACTIVE {
            return Err(RegistryError::NotActive(parent));
        }
        let idx = pm.children.fetch_add(1, Ordering::Relaxed);
        pm.active_children.fetch_add(1, Ordering::AcqRel);
        let mut path = pm.path.clone();
        path.push(idx);
        let root = pm.root;
        pm.child_ids.write().push(id);
        drop(map);
        let meta = Arc::new(TxnMeta {
            parent: Some(parent),
            root,
            path,
            status: AtomicU8::new(ST_ACTIVE),
            children: AtomicU32::new(0),
            active_children: AtomicU32::new(0),
            child_ids: RwLock::new(Vec::new()),
        });
        self.map.write().insert(id, meta);
        Ok(id)
    }

    /// Allocate the next child *index* under `id` without registering a
    /// transaction — used to name access leaves in the audit log (accesses
    /// are children of their transaction in the action tree).
    pub fn alloc_child_index(&self, id: TxnId) -> Option<u32> {
        self.read_view().alloc_child_index(id)
    }

    /// The parent of `id`, if any.
    pub fn parent(&self, id: TxnId) -> Option<TxnId> {
        self.read_view().parent(id)
    }

    /// The status of `id`.
    pub fn status(&self, id: TxnId) -> Option<TxnStatus> {
        self.read_view().status(id)
    }

    /// The root (top-level ancestor) of `id` — the wait-die timestamp.
    pub fn root(&self, id: TxnId) -> Option<TxnId> {
        self.read_view().root(id)
    }

    /// The action-tree path of `id` (for audit reconstruction).
    pub fn path(&self, id: TxnId) -> Option<Vec<u32>> {
        self.read_view().path(id)
    }

    /// Number of still-active children of `id`.
    pub fn active_children(&self, id: TxnId) -> u32 {
        self.read_view().meta(id).map_or(0, |m| m.active_children.load(Ordering::Acquire))
    }

    /// Convenience wrapper over [`RegistryView`]'s `active_subtree`.
    pub fn active_subtree(&self, id: TxnId) -> Vec<TxnId> {
        self.read_view().active_subtree(id)
    }

    /// True iff `a` is an ancestor of `b` (reflexively).
    pub fn is_ancestor(&self, a: TxnId, b: TxnId) -> bool {
        self.read_view().is_ancestor(a, b)
    }

    /// True iff `id` or any ancestor has aborted (the paper's "dead").
    pub fn is_dead(&self, id: TxnId) -> bool {
        self.read_view().is_dead(id)
    }

    /// True iff `id` is live (no aborted ancestor).
    pub fn is_live(&self, id: TxnId) -> bool {
        !self.is_dead(id)
    }

    fn finish(&self, id: TxnId, to: u8, require_no_children: bool) -> Result<(), RegistryError> {
        let map = self.map.read();
        let meta = map.get(&id).ok_or(RegistryError::Unknown(id))?;
        if require_no_children {
            let n = meta.active_children.load(Ordering::Acquire);
            if n > 0 {
                return Err(RegistryError::ChildrenActive(id, n));
            }
        }
        meta.status
            .compare_exchange(ST_ACTIVE, to, Ordering::AcqRel, Ordering::Acquire)
            .map_err(|_| RegistryError::NotActive(id))?;
        if let Some(p) = meta.parent {
            if let Some(pm) = map.get(&p) {
                pm.active_children.fetch_sub(1, Ordering::AcqRel);
            }
        }
        Ok(())
    }

    /// Mark `id` committed, decrementing the parent's active-children count.
    ///
    /// Fails unless `id` is active with no active children.
    pub fn commit(&self, id: TxnId) -> Result<(), RegistryError> {
        self.finish(id, ST_COMMITTED, true)
    }

    /// Mark `id` aborted (children may still be active — they become
    /// orphans), decrementing the parent's active-children count.
    pub fn abort(&self, id: TxnId) -> Result<(), RegistryError> {
        self.finish(id, ST_ABORTED, false)
    }

    /// Re-register a top-level transaction under its *logged* id (crash
    /// recovery only). Advances the id allocator past `id` so transactions
    /// begun after recovery can never collide with replayed ones.
    pub fn replay_top(&self, id: TxnId) -> Result<(), RegistryError> {
        self.next.fetch_max(id.0.saturating_add(1), Ordering::Relaxed);
        let mut map = self.map.write();
        if map.contains_key(&id) {
            return Err(RegistryError::Duplicate(id));
        }
        let top = self.top_count.fetch_add(1, Ordering::Relaxed) as u32;
        let meta = Arc::new(TxnMeta {
            parent: None,
            root: id,
            path: vec![top],
            status: AtomicU8::new(ST_ACTIVE),
            children: AtomicU32::new(0),
            active_children: AtomicU32::new(0),
            child_ids: RwLock::new(Vec::new()),
        });
        map.insert(id, meta);
        Ok(())
    }

    /// Re-register a child transaction under its logged id (crash recovery
    /// only); the parent must already be replayed and active.
    pub fn replay_child(&self, id: TxnId, parent: TxnId) -> Result<(), RegistryError> {
        self.next.fetch_max(id.0.saturating_add(1), Ordering::Relaxed);
        let map = self.map.read();
        if map.contains_key(&id) {
            return Err(RegistryError::Duplicate(id));
        }
        let pm = map.get(&parent).ok_or(RegistryError::Unknown(parent))?;
        if pm.status.load(Ordering::Acquire) != ST_ACTIVE {
            return Err(RegistryError::NotActive(parent));
        }
        let idx = pm.children.fetch_add(1, Ordering::Relaxed);
        pm.active_children.fetch_add(1, Ordering::AcqRel);
        let mut path = pm.path.clone();
        path.push(idx);
        let root = pm.root;
        pm.child_ids.write().push(id);
        drop(map);
        let meta = Arc::new(TxnMeta {
            parent: Some(parent),
            root,
            path,
            status: AtomicU8::new(ST_ACTIVE),
            children: AtomicU32::new(0),
            active_children: AtomicU32::new(0),
            child_ids: RwLock::new(Vec::new()),
        });
        self.map.write().insert(id, meta);
        Ok(())
    }

    /// Ids of transactions whose own status is still `Active`, in id order
    /// (chaos harness only). Orphans count as active: their status only
    /// changes when their handle aborts or drops.
    #[cfg(feature = "chaos-hooks")]
    pub fn chaos_active(&self) -> Vec<TxnId> {
        self.snapshot()
            .into_iter()
            .filter(|(_, _, status, _)| *status == TxnStatus::Active)
            .map(|(id, ..)| id)
            .collect()
    }

    /// Snapshot of all transactions: `(id, parent, status, path)`.
    pub fn snapshot(&self) -> Vec<(TxnId, Option<TxnId>, TxnStatus, Vec<u32>)> {
        let map = self.map.read();
        let mut out: Vec<_> = map
            .iter()
            .map(|(&id, m)| {
                (id, m.parent, decode(m.status.load(Ordering::Acquire)), m.path.clone())
            })
            .collect();
        out.sort_by_key(|(id, ..)| *id);
        out
    }
}

/// Registry operation errors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegistryError {
    /// The transaction id is not registered.
    Unknown(TxnId),
    /// The transaction is not active.
    NotActive(TxnId),
    /// Commit attempted with active children.
    ChildrenActive(TxnId, u32),
    /// A replay tried to register an id that is already registered.
    Duplicate(TxnId),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Unknown(id) => write!(f, "unknown transaction {id:?}"),
            RegistryError::NotActive(id) => write!(f, "transaction {id:?} not active"),
            RegistryError::ChildrenActive(id, n) => {
                write!(f, "transaction {id:?} has {n} active children")
            }
            RegistryError::Duplicate(id) => {
                write!(f, "transaction {id:?} already registered")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_and_status() {
        let r = Registry::new();
        let t = r.begin_top();
        assert_eq!(r.status(t), Some(TxnStatus::Active));
        assert_eq!(r.parent(t), None);
        assert_eq!(r.root(t), Some(t));
        assert!(r.is_live(t));
    }

    #[test]
    fn child_paths_extend_parent() {
        let r = Registry::new();
        let t = r.begin_top();
        let c1 = r.begin_child(t).unwrap();
        let c2 = r.begin_child(t).unwrap();
        let g = r.begin_child(c1).unwrap();
        let tp = r.path(t).unwrap();
        assert_eq!(r.path(c1).unwrap(), [tp.clone(), vec![0]].concat());
        assert_eq!(r.path(c2).unwrap(), [tp.clone(), vec![1]].concat());
        assert_eq!(r.path(g).unwrap(), [tp, vec![0, 0]].concat());
        assert_eq!(r.root(g), Some(t));
    }

    #[test]
    fn distinct_top_level_paths() {
        let r = Registry::new();
        let a = r.begin_top();
        let b = r.begin_top();
        assert_ne!(r.path(a), r.path(b));
    }

    #[test]
    fn ancestor_checks() {
        let r = Registry::new();
        let t = r.begin_top();
        let c = r.begin_child(t).unwrap();
        let g = r.begin_child(c).unwrap();
        let other = r.begin_top();
        assert!(r.is_ancestor(t, g));
        assert!(r.is_ancestor(c, g));
        assert!(r.is_ancestor(g, g));
        assert!(!r.is_ancestor(g, t));
        assert!(!r.is_ancestor(other, g));
    }

    #[test]
    fn commit_requires_children_done() {
        let r = Registry::new();
        let t = r.begin_top();
        let c = r.begin_child(t).unwrap();
        assert_eq!(r.commit(t), Err(RegistryError::ChildrenActive(t, 1)));
        r.commit(c).unwrap();
        r.commit(t).unwrap();
        assert_eq!(r.status(t), Some(TxnStatus::Committed));
        assert_eq!(r.commit(t), Err(RegistryError::NotActive(t)));
    }

    #[test]
    fn abort_orphans_descendants() {
        let r = Registry::new();
        let t = r.begin_top();
        let c = r.begin_child(t).unwrap();
        let g = r.begin_child(c).unwrap();
        r.abort(c).unwrap();
        assert!(r.is_dead(c));
        assert!(r.is_dead(g), "descendants of aborted are dead");
        assert!(r.is_live(t));
        assert_eq!(r.status(g), Some(TxnStatus::Active), "orphan is still 'active'");
    }

    #[test]
    fn abort_with_active_children_allowed() {
        let r = Registry::new();
        let t = r.begin_top();
        let _c = r.begin_child(t).unwrap();
        r.abort(t).unwrap();
        assert!(r.is_dead(t));
    }

    #[test]
    fn no_children_under_done_parent() {
        let r = Registry::new();
        let t = r.begin_top();
        r.commit(t).unwrap();
        assert_eq!(r.begin_child(t), Err(RegistryError::NotActive(t)));
    }

    #[test]
    fn wait_die_timestamps_monotone() {
        let r = Registry::new();
        let a = r.begin_top();
        let b = r.begin_top();
        assert!(a < b, "ids are monotone");
        let ac = r.begin_child(a).unwrap();
        assert_eq!(r.root(ac), Some(a), "children inherit root timestamp");
    }

    #[test]
    fn active_subtree_walks_children() {
        let r = Registry::new();
        let t = r.begin_top();
        let c = r.begin_child(t).unwrap();
        let g = r.begin_child(c).unwrap();
        let mut sub = r.active_subtree(t);
        sub.sort();
        assert_eq!(sub, vec![t, c, g]);
        r.commit(g).unwrap();
        let mut sub = r.active_subtree(t);
        sub.sort();
        assert_eq!(sub, vec![t, c]);
    }

    #[test]
    fn view_batches_queries() {
        let r = Registry::new();
        let t = r.begin_top();
        let c = r.begin_child(t).unwrap();
        let view = r.read_view();
        assert_eq!(view.status(t), Some(TxnStatus::Active));
        assert!(view.is_ancestor(t, c));
        assert!(!view.is_dead(c));
        assert_eq!(view.root(c), Some(t));
        assert_eq!(view.parent(c), Some(t));
    }

    #[test]
    fn replay_preserves_ids_and_advances_allocator() {
        let r = Registry::new();
        r.replay_top(TxnId(0)).unwrap();
        r.replay_child(TxnId(1), TxnId(0)).unwrap();
        r.replay_child(TxnId(5), TxnId(1)).unwrap();
        assert!(r.is_ancestor(TxnId(0), TxnId(5)));
        assert_eq!(r.root(TxnId(5)), Some(TxnId(0)));
        assert_eq!(r.active_children(TxnId(0)), 1);
        // Fresh ids allocated after replay never collide with logged ones.
        let fresh = r.begin_top();
        assert!(fresh > TxnId(5), "allocator past replayed ids, got {fresh:?}");
        // Duplicate and orphan replays are rejected.
        assert_eq!(r.replay_top(TxnId(0)), Err(RegistryError::Duplicate(TxnId(0))));
        assert_eq!(r.replay_child(TxnId(9), TxnId(99)), Err(RegistryError::Unknown(TxnId(99))));
        r.commit(TxnId(5)).unwrap();
        r.commit(TxnId(1)).unwrap();
        assert_eq!(r.replay_child(TxnId(9), TxnId(1)), Err(RegistryError::NotActive(TxnId(1))));
    }

    #[test]
    fn concurrent_begin_children() {
        use std::sync::Arc;
        let r = Arc::new(Registry::new());
        let t = r.begin_top();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                let mut ids = Vec::new();
                for _ in 0..50 {
                    ids.push(r.begin_child(t).unwrap());
                }
                ids
            }));
        }
        let mut all: Vec<TxnId> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        let mut paths: Vec<_> = all.iter().map(|&id| r.path(id).unwrap()).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 400, "ids unique");
        paths.sort();
        paths.dedup();
        assert_eq!(paths.len(), 400, "paths unique");
        assert_eq!(r.active_children(t), 400);
    }
}
