//! Transaction identities and the nesting registry.
//!
//! The engine's analogue of the paper's universal action tree: every
//! transaction gets a [`TxnId`] and a path of child indices from the
//! (virtual) root, so ancestor tests and audit reconstruction are pure
//! functions of registry state.
//!
//! Hot-path queries (status, liveness, ancestry) go through a
//! [`RegistryView`]. Two table layouts exist behind the same API:
//!
//! * **Sharded** (default): a fixed power-of-two array of shards, each an
//!   insert-only slot vector indexed by `TxnId`. Consecutive ids
//!   round-robin across shards, so concurrent begins and lookups touch
//!   different locks; a lookup is one short shard read-lock plus an
//!   `Arc` clone, with no hashing at all.
//! * **Legacy**: the pre-scaling single `RwLock<HashMap>`; a view holds
//!   one global read guard for its whole lifetime. Kept so the hot-path
//!   benchmark can run paired same-seed before/after arms in one binary.
//!
//! # Consistency semantics (sharded mode)
//!
//! The table is *insert-only*: a registered id is never removed, so a
//! `TxnMeta` can never be lost or resurrected. A sharded view no longer
//! freezes table membership across queries the way the legacy global
//! guard did, but no caller could observe that freeze: per-transaction
//! state (status, active-children) always lived in atomics that mutate
//! under a read guard, and an id becomes visible to other threads only
//! after its meta is published (begin returns after the insert). The one
//! pre-existing window — a child id appears in its parent's `child_ids`
//! just before its meta is inserted — resolves the same way in both
//! layouts: `active_subtree` skips ids it cannot resolve, exactly as the
//! legacy code skipped ids missing from the frozen map. Wait-for-graph
//! expansion only needs per-id atomicity plus "no id disappears", both
//! of which hold; the liveness storm test below exercises this.

use parking_lot::{RwLock, RwLockReadGuard};
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// Identifier of a transaction. Monotonically increasing across the
/// database; usable as a wait-die timestamp.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TxnId(pub u64);

/// Lifecycle status of a transaction (the paper's `status_T`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxnStatus {
    /// Created and not yet completed.
    Active,
    /// Committed to its parent (or, for top-level, permanently).
    Committed,
    /// Aborted.
    Aborted,
}

const ST_ACTIVE: u8 = 0;
const ST_COMMITTED: u8 = 1;
const ST_ABORTED: u8 = 2;

/// log2 of the shard count; shard = id & mask, slot = id >> bits.
const SHARD_BITS: u32 = 6;
const SHARD_COUNT: usize = 1 << SHARD_BITS;
const SHARD_MASK: u64 = (SHARD_COUNT as u64) - 1;

fn decode(s: u8) -> TxnStatus {
    match s {
        ST_ACTIVE => TxnStatus::Active,
        ST_COMMITTED => TxnStatus::Committed,
        _ => TxnStatus::Aborted,
    }
}

#[derive(Debug)]
struct TxnMeta {
    parent: Option<TxnId>,
    /// Root (top-level ancestor) id, used as the wait-die timestamp.
    root: TxnId,
    /// Path of child indices from the root; the audit log uses it to name
    /// actions. Immutable after creation.
    path: Vec<u32>,
    status: AtomicU8,
    /// Child *index* counter (transactions and audit access leaves).
    children: AtomicU32,
    /// Number of children still active.
    active_children: AtomicU32,
    /// Child transaction ids (for wait-for expansion over subtrees);
    /// guarded by its own lock, never by the table's.
    child_ids: RwLock<Vec<TxnId>>,
}

impl TxnMeta {
    fn new(parent: Option<TxnId>, root: TxnId, path: Vec<u32>) -> Arc<Self> {
        Arc::new(TxnMeta {
            parent,
            root,
            path,
            status: AtomicU8::new(ST_ACTIVE),
            children: AtomicU32::new(0),
            active_children: AtomicU32::new(0),
            child_ids: RwLock::new(Vec::new()),
        })
    }
}

/// One shard of the scaled layout: an insert-only slot vector.
type Shard = RwLock<Vec<Option<Arc<TxnMeta>>>>;

#[derive(Debug)]
enum Table {
    /// Pre-scaling layout: one map, one guard per view.
    Legacy(RwLock<HashMap<TxnId, Arc<TxnMeta>>>),
    /// Scaled layout: insert-only slot vectors, one per shard.
    Sharded(Box<[Shard]>),
}

/// The registry of all transactions ever created in a database.
///
/// Completed subtrees are *not* garbage-collected: dead-ness of orphans is
/// decided by walking ancestors, so history must remain available while any
/// descendant can still act. (A production system would prune fully-done
/// subtrees; the registry keeps everything so the audit can reconstruct the
/// full action tree.)
#[derive(Debug)]
pub struct Registry {
    next: AtomicU64,
    top_count: AtomicU64,
    table: Table,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// A resolved transaction meta: borrowed from a held legacy guard, or an
/// owned `Arc` cloned out of a shard.
enum MetaRef<'a> {
    Borrowed(&'a TxnMeta),
    Owned(Arc<TxnMeta>),
}

impl Deref for MetaRef<'_> {
    type Target = TxnMeta;
    fn deref(&self) -> &TxnMeta {
        match self {
            MetaRef::Borrowed(m) => m,
            MetaRef::Owned(m) => m,
        }
    }
}

/// A read view over the registry: arbitrarily many queries per view.
///
/// Over the legacy table this holds the global read guard for its whole
/// lifetime (the pre-scaling behaviour); over the sharded table it is a
/// free handle and each query briefly read-locks one shard.
pub struct RegistryView<'a> {
    inner: ViewInner<'a>,
}

enum ViewInner<'a> {
    Legacy(RwLockReadGuard<'a, HashMap<TxnId, Arc<TxnMeta>>>),
    Sharded(&'a [Shard]),
}

fn shard_slot(id: TxnId) -> (usize, usize) {
    ((id.0 & SHARD_MASK) as usize, (id.0 >> SHARD_BITS) as usize)
}

impl<'a> RegistryView<'a> {
    fn meta(&self, id: TxnId) -> Option<MetaRef<'_>> {
        match &self.inner {
            ViewInner::Legacy(map) => map.get(&id).map(|m| MetaRef::Borrowed(m)),
            ViewInner::Sharded(shards) => {
                let (s, slot) = shard_slot(id);
                shards[s].read().get(slot).and_then(|m| m.clone()).map(MetaRef::Owned)
            }
        }
    }

    /// The status of `id`.
    pub fn status(&self, id: TxnId) -> Option<TxnStatus> {
        self.meta(id).map(|m| decode(m.status.load(Ordering::Acquire)))
    }

    /// The parent of `id`, if any.
    pub fn parent(&self, id: TxnId) -> Option<TxnId> {
        self.meta(id).and_then(|m| m.parent)
    }

    /// The root (top-level ancestor) of `id` — the wait-die timestamp.
    pub fn root(&self, id: TxnId) -> Option<TxnId> {
        self.meta(id).map(|m| m.root)
    }

    /// The action-tree path of `id`.
    pub fn path(&self, id: TxnId) -> Option<Vec<u32>> {
        self.meta(id).map(|m| m.path.clone())
    }

    /// Allocate the next child *index* under `id` (atomic; no write lock).
    pub fn alloc_child_index(&self, id: TxnId) -> Option<u32> {
        self.meta(id).map(|m| m.children.fetch_add(1, Ordering::Relaxed))
    }

    /// True iff `a` is an ancestor of `b` (reflexively).
    ///
    /// Paths are immutable child-index sequences from the action-tree root,
    /// so ancestry is a prefix test — one comparison instead of a parent
    /// walk, which matters because this runs inside every lock grant.
    pub fn is_ancestor(&self, a: TxnId, b: TxnId) -> bool {
        if a == b {
            return true;
        }
        match (self.meta(a), self.meta(b)) {
            (Some(ma), Some(mb)) => {
                ma.path.len() < mb.path.len() && mb.path[..ma.path.len()] == ma.path[..]
            }
            _ => false,
        }
    }

    /// True iff `id` or any ancestor has aborted (the paper's "dead").
    pub fn is_dead(&self, id: TxnId) -> bool {
        let mut cur = Some(id);
        while let Some(c) = cur {
            match self.meta(c) {
                None => return true, // unknown ⇒ treat as dead
                Some(m) if m.status.load(Ordering::Acquire) == ST_ABORTED => return true,
                Some(m) => cur = m.parent,
            }
        }
        false
    }

    /// The members of `id`'s subtree that are still *active* (including
    /// `id` itself if active). Waiting for a lock held by `id` really means
    /// waiting for all of these to complete — a parent's lock is released
    /// only when its own thread commits it, which in turn waits for the
    /// children — so deadlock detection must expand blockers to this set.
    pub fn active_subtree(&self, id: TxnId) -> Vec<TxnId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(t) = stack.pop() {
            if let Some(m) = self.meta(t) {
                if m.status.load(Ordering::Acquire) == ST_ACTIVE {
                    out.push(t);
                    stack.extend(m.child_ids.read().iter().copied());
                }
            }
        }
        out
    }
}

impl crate::lock::LockEnv for RegistryView<'_> {
    fn is_ancestor(&self, a: TxnId, b: TxnId) -> bool {
        RegistryView::is_ancestor(self, a, b)
    }
    fn is_dead(&self, t: TxnId) -> bool {
        RegistryView::is_dead(self, t)
    }
}

impl Registry {
    /// Create an empty registry with the sharded (scaled) table.
    pub fn new() -> Self {
        let shards: Vec<_> = (0..SHARD_COUNT).map(|_| RwLock::new(Vec::new())).collect();
        Registry {
            next: AtomicU64::new(0),
            top_count: AtomicU64::new(0),
            table: Table::Sharded(shards.into_boxed_slice()),
        }
    }

    /// Create an empty registry with the pre-scaling single-map table.
    ///
    /// Only used by the legacy arm of the hot-path benchmark and by tests
    /// that check both layouts agree; semantics are identical.
    pub fn legacy() -> Self {
        Registry {
            next: AtomicU64::new(0),
            top_count: AtomicU64::new(0),
            table: Table::Legacy(RwLock::new(HashMap::new())),
        }
    }

    /// Take a read view for a batch of queries.
    pub fn read_view(&self) -> RegistryView<'_> {
        let inner = match &self.table {
            Table::Legacy(map) => ViewInner::Legacy(map.read()),
            Table::Sharded(shards) => ViewInner::Sharded(shards),
        };
        RegistryView { inner }
    }

    fn insert(&self, id: TxnId, meta: Arc<TxnMeta>) {
        match &self.table {
            Table::Legacy(map) => {
                map.write().insert(id, meta);
            }
            Table::Sharded(shards) => {
                let (s, slot) = shard_slot(id);
                let mut g = shards[s].write();
                if g.len() <= slot {
                    g.resize(slot + 1, None);
                }
                g[slot] = Some(meta);
            }
        }
    }

    fn contains(&self, id: TxnId) -> bool {
        match &self.table {
            Table::Legacy(map) => map.read().contains_key(&id),
            Table::Sharded(shards) => {
                let (s, slot) = shard_slot(id);
                shards[s].read().get(slot).is_some_and(|m| m.is_some())
            }
        }
    }

    /// Register a new top-level transaction.
    pub fn begin_top(&self) -> TxnId {
        let id = TxnId(self.next.fetch_add(1, Ordering::Relaxed));
        let top = self.top_count.fetch_add(1, Ordering::Relaxed) as u32;
        self.insert(id, TxnMeta::new(None, id, vec![top]));
        id
    }

    /// Register a child of `parent`.
    ///
    /// Fails if the parent is not active (committed parents cannot gain
    /// children; aborted parents *may* in the paper, but the engine rejects
    /// spawning under a known-aborted parent as a programming error).
    ///
    /// Safe-API note: a parent's `commit`/`abort` consume the handle, so
    /// they cannot race with `begin_child` through the public engine API;
    /// the atomic counter updates here rely on that.
    pub fn begin_child(&self, parent: TxnId) -> Result<TxnId, RegistryError> {
        let id = TxnId(self.next.fetch_add(1, Ordering::Relaxed));
        let view = self.read_view();
        let pm = view.meta(parent).ok_or(RegistryError::Unknown(parent))?;
        if pm.status.load(Ordering::Acquire) != ST_ACTIVE {
            return Err(RegistryError::NotActive(parent));
        }
        let idx = pm.children.fetch_add(1, Ordering::Relaxed);
        pm.active_children.fetch_add(1, Ordering::AcqRel);
        let mut path = pm.path.clone();
        path.push(idx);
        let root = pm.root;
        pm.child_ids.write().push(id);
        drop(pm);
        drop(view);
        self.insert(id, TxnMeta::new(Some(parent), root, path));
        Ok(id)
    }

    /// Allocate the next child *index* under `id` without registering a
    /// transaction — used to name access leaves in the audit log (accesses
    /// are children of their transaction in the action tree).
    pub fn alloc_child_index(&self, id: TxnId) -> Option<u32> {
        self.read_view().alloc_child_index(id)
    }

    /// The parent of `id`, if any.
    pub fn parent(&self, id: TxnId) -> Option<TxnId> {
        self.read_view().parent(id)
    }

    /// The status of `id`.
    pub fn status(&self, id: TxnId) -> Option<TxnStatus> {
        self.read_view().status(id)
    }

    /// The root (top-level ancestor) of `id` — the wait-die timestamp.
    pub fn root(&self, id: TxnId) -> Option<TxnId> {
        self.read_view().root(id)
    }

    /// The action-tree path of `id` (for audit reconstruction).
    pub fn path(&self, id: TxnId) -> Option<Vec<u32>> {
        self.read_view().path(id)
    }

    /// Number of still-active children of `id`.
    pub fn active_children(&self, id: TxnId) -> u32 {
        self.read_view().meta(id).map_or(0, |m| m.active_children.load(Ordering::Acquire))
    }

    /// Convenience wrapper over [`RegistryView`]'s `active_subtree`.
    pub fn active_subtree(&self, id: TxnId) -> Vec<TxnId> {
        self.read_view().active_subtree(id)
    }

    /// True iff `a` is an ancestor of `b` (reflexively).
    pub fn is_ancestor(&self, a: TxnId, b: TxnId) -> bool {
        self.read_view().is_ancestor(a, b)
    }

    /// True iff `id` or any ancestor has aborted (the paper's "dead").
    pub fn is_dead(&self, id: TxnId) -> bool {
        self.read_view().is_dead(id)
    }

    /// True iff `id` is live (no aborted ancestor).
    pub fn is_live(&self, id: TxnId) -> bool {
        !self.is_dead(id)
    }

    fn finish(&self, id: TxnId, to: u8, require_no_children: bool) -> Result<(), RegistryError> {
        let view = self.read_view();
        let meta = view.meta(id).ok_or(RegistryError::Unknown(id))?;
        if require_no_children {
            let n = meta.active_children.load(Ordering::Acquire);
            if n > 0 {
                return Err(RegistryError::ChildrenActive(id, n));
            }
        }
        meta.status
            .compare_exchange(ST_ACTIVE, to, Ordering::AcqRel, Ordering::Acquire)
            .map_err(|_| RegistryError::NotActive(id))?;
        if let Some(p) = meta.parent {
            if let Some(pm) = view.meta(p) {
                pm.active_children.fetch_sub(1, Ordering::AcqRel);
            }
        }
        Ok(())
    }

    /// Mark `id` committed, decrementing the parent's active-children count.
    ///
    /// Fails unless `id` is active with no active children.
    pub fn commit(&self, id: TxnId) -> Result<(), RegistryError> {
        self.finish(id, ST_COMMITTED, true)
    }

    /// Mark `id` aborted (children may still be active — they become
    /// orphans), decrementing the parent's active-children count.
    pub fn abort(&self, id: TxnId) -> Result<(), RegistryError> {
        self.finish(id, ST_ABORTED, false)
    }

    /// Re-register a top-level transaction under its *logged* id (crash
    /// recovery only). Advances the id allocator past `id` so transactions
    /// begun after recovery can never collide with replayed ones.
    pub fn replay_top(&self, id: TxnId) -> Result<(), RegistryError> {
        self.next.fetch_max(id.0.saturating_add(1), Ordering::Relaxed);
        if self.contains(id) {
            return Err(RegistryError::Duplicate(id));
        }
        let top = self.top_count.fetch_add(1, Ordering::Relaxed) as u32;
        self.insert(id, TxnMeta::new(None, id, vec![top]));
        Ok(())
    }

    /// Re-register a child transaction under its logged id (crash recovery
    /// only); the parent must already be replayed and active.
    pub fn replay_child(&self, id: TxnId, parent: TxnId) -> Result<(), RegistryError> {
        self.next.fetch_max(id.0.saturating_add(1), Ordering::Relaxed);
        if self.contains(id) {
            return Err(RegistryError::Duplicate(id));
        }
        let view = self.read_view();
        let pm = view.meta(parent).ok_or(RegistryError::Unknown(parent))?;
        if pm.status.load(Ordering::Acquire) != ST_ACTIVE {
            return Err(RegistryError::NotActive(parent));
        }
        let idx = pm.children.fetch_add(1, Ordering::Relaxed);
        pm.active_children.fetch_add(1, Ordering::AcqRel);
        let mut path = pm.path.clone();
        path.push(idx);
        let root = pm.root;
        pm.child_ids.write().push(id);
        drop(pm);
        drop(view);
        self.insert(id, TxnMeta::new(Some(parent), root, path));
        Ok(())
    }

    /// Ids of transactions whose own status is still `Active`, in id order
    /// (chaos harness only). Orphans count as active: their status only
    /// changes when their handle aborts or drops.
    #[cfg(feature = "chaos-hooks")]
    pub fn chaos_active(&self) -> Vec<TxnId> {
        self.snapshot()
            .into_iter()
            .filter(|(_, _, status, _)| *status == TxnStatus::Active)
            .map(|(id, ..)| id)
            .collect()
    }

    /// Snapshot of all transactions: `(id, parent, status, path)`.
    pub fn snapshot(&self) -> Vec<(TxnId, Option<TxnId>, TxnStatus, Vec<u32>)> {
        let mut out: Vec<_> = match &self.table {
            Table::Legacy(map) => map
                .read()
                .iter()
                .map(|(&id, m)| {
                    (id, m.parent, decode(m.status.load(Ordering::Acquire)), m.path.clone())
                })
                .collect(),
            Table::Sharded(shards) => shards
                .iter()
                .enumerate()
                .flat_map(|(s, shard)| {
                    shard
                        .read()
                        .iter()
                        .enumerate()
                        .filter_map(|(slot, m)| {
                            let m = m.as_ref()?;
                            let id = TxnId(((slot as u64) << SHARD_BITS) | s as u64);
                            Some((
                                id,
                                m.parent,
                                decode(m.status.load(Ordering::Acquire)),
                                m.path.clone(),
                            ))
                        })
                        .collect::<Vec<_>>()
                })
                .collect(),
        };
        out.sort_by_key(|(id, ..)| *id);
        out
    }
}

/// Registry operation errors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegistryError {
    /// The transaction id is not registered.
    Unknown(TxnId),
    /// The transaction is not active.
    NotActive(TxnId),
    /// Commit attempted with active children.
    ChildrenActive(TxnId, u32),
    /// A replay tried to register an id that is already registered.
    Duplicate(TxnId),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Unknown(id) => write!(f, "unknown transaction {id:?}"),
            RegistryError::NotActive(id) => write!(f, "transaction {id:?} not active"),
            RegistryError::ChildrenActive(id, n) => {
                write!(f, "transaction {id:?} has {n} active children")
            }
            RegistryError::Duplicate(id) => {
                write!(f, "transaction {id:?} already registered")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_layouts(test: impl Fn(Registry)) {
        test(Registry::new());
        test(Registry::legacy());
    }

    #[test]
    fn begin_and_status() {
        both_layouts(|r| {
            let t = r.begin_top();
            assert_eq!(r.status(t), Some(TxnStatus::Active));
            assert_eq!(r.parent(t), None);
            assert_eq!(r.root(t), Some(t));
            assert!(r.is_live(t));
        });
    }

    #[test]
    fn child_paths_extend_parent() {
        both_layouts(|r| {
            let t = r.begin_top();
            let c1 = r.begin_child(t).unwrap();
            let c2 = r.begin_child(t).unwrap();
            let g = r.begin_child(c1).unwrap();
            let tp = r.path(t).unwrap();
            assert_eq!(r.path(c1).unwrap(), [tp.clone(), vec![0]].concat());
            assert_eq!(r.path(c2).unwrap(), [tp.clone(), vec![1]].concat());
            assert_eq!(r.path(g).unwrap(), [tp, vec![0, 0]].concat());
            assert_eq!(r.root(g), Some(t));
        });
    }

    #[test]
    fn distinct_top_level_paths() {
        both_layouts(|r| {
            let a = r.begin_top();
            let b = r.begin_top();
            assert_ne!(r.path(a), r.path(b));
        });
    }

    #[test]
    fn ancestor_checks() {
        both_layouts(|r| {
            let t = r.begin_top();
            let c = r.begin_child(t).unwrap();
            let g = r.begin_child(c).unwrap();
            let other = r.begin_top();
            assert!(r.is_ancestor(t, g));
            assert!(r.is_ancestor(c, g));
            assert!(r.is_ancestor(g, g));
            assert!(!r.is_ancestor(g, t));
            assert!(!r.is_ancestor(other, g));
        });
    }

    #[test]
    fn commit_requires_children_done() {
        both_layouts(|r| {
            let t = r.begin_top();
            let c = r.begin_child(t).unwrap();
            assert_eq!(r.commit(t), Err(RegistryError::ChildrenActive(t, 1)));
            r.commit(c).unwrap();
            r.commit(t).unwrap();
            assert_eq!(r.status(t), Some(TxnStatus::Committed));
            assert_eq!(r.commit(t), Err(RegistryError::NotActive(t)));
        });
    }

    #[test]
    fn abort_orphans_descendants() {
        both_layouts(|r| {
            let t = r.begin_top();
            let c = r.begin_child(t).unwrap();
            let g = r.begin_child(c).unwrap();
            r.abort(c).unwrap();
            assert!(r.is_dead(c));
            assert!(r.is_dead(g), "descendants of aborted are dead");
            assert!(r.is_live(t));
            assert_eq!(r.status(g), Some(TxnStatus::Active), "orphan is still 'active'");
        });
    }

    #[test]
    fn abort_with_active_children_allowed() {
        both_layouts(|r| {
            let t = r.begin_top();
            let _c = r.begin_child(t).unwrap();
            r.abort(t).unwrap();
            assert!(r.is_dead(t));
        });
    }

    #[test]
    fn no_children_under_done_parent() {
        both_layouts(|r| {
            let t = r.begin_top();
            r.commit(t).unwrap();
            assert_eq!(r.begin_child(t), Err(RegistryError::NotActive(t)));
        });
    }

    #[test]
    fn wait_die_timestamps_monotone() {
        both_layouts(|r| {
            let a = r.begin_top();
            let b = r.begin_top();
            assert!(a < b, "ids are monotone");
            let ac = r.begin_child(a).unwrap();
            assert_eq!(r.root(ac), Some(a), "children inherit root timestamp");
        });
    }

    #[test]
    fn active_subtree_walks_children() {
        both_layouts(|r| {
            let t = r.begin_top();
            let c = r.begin_child(t).unwrap();
            let g = r.begin_child(c).unwrap();
            let mut sub = r.active_subtree(t);
            sub.sort();
            assert_eq!(sub, vec![t, c, g]);
            r.commit(g).unwrap();
            let mut sub = r.active_subtree(t);
            sub.sort();
            assert_eq!(sub, vec![t, c]);
        });
    }

    #[test]
    fn view_batches_queries() {
        both_layouts(|r| {
            let t = r.begin_top();
            let c = r.begin_child(t).unwrap();
            let view = r.read_view();
            assert_eq!(view.status(t), Some(TxnStatus::Active));
            assert!(view.is_ancestor(t, c));
            assert!(!view.is_dead(c));
            assert_eq!(view.root(c), Some(t));
            assert_eq!(view.parent(c), Some(t));
        });
    }

    #[test]
    fn replay_preserves_ids_and_advances_allocator() {
        both_layouts(|r| {
            r.replay_top(TxnId(0)).unwrap();
            r.replay_child(TxnId(1), TxnId(0)).unwrap();
            r.replay_child(TxnId(5), TxnId(1)).unwrap();
            assert!(r.is_ancestor(TxnId(0), TxnId(5)));
            assert_eq!(r.root(TxnId(5)), Some(TxnId(0)));
            assert_eq!(r.active_children(TxnId(0)), 1);
            // Fresh ids allocated after replay never collide with logged ones.
            let fresh = r.begin_top();
            assert!(fresh > TxnId(5), "allocator past replayed ids, got {fresh:?}");
            // Duplicate and orphan replays are rejected.
            assert_eq!(r.replay_top(TxnId(0)), Err(RegistryError::Duplicate(TxnId(0))));
            assert_eq!(r.replay_child(TxnId(9), TxnId(99)), Err(RegistryError::Unknown(TxnId(99))));
            r.commit(TxnId(5)).unwrap();
            r.commit(TxnId(1)).unwrap();
            assert_eq!(r.replay_child(TxnId(9), TxnId(1)), Err(RegistryError::NotActive(TxnId(1))));
        });
    }

    #[test]
    fn replay_sparse_ids_leave_gaps_unregistered() {
        both_layouts(|r| {
            r.replay_top(TxnId(1000)).unwrap();
            assert_eq!(r.status(TxnId(1000)), Some(TxnStatus::Active));
            assert_eq!(r.status(TxnId(999)), None, "gap slots resolve to nothing");
            assert!(r.is_dead(TxnId(999)), "unknown ids are dead");
            let fresh = r.begin_top();
            assert!(fresh > TxnId(1000));
        });
    }

    #[test]
    fn concurrent_begin_children() {
        use std::sync::Arc;
        let r = Arc::new(Registry::new());
        let t = r.begin_top();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                let mut ids = Vec::new();
                for _ in 0..50 {
                    ids.push(r.begin_child(t).unwrap());
                }
                ids
            }));
        }
        let mut all: Vec<TxnId> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        let mut paths: Vec<_> = all.iter().map(|&id| r.path(id).unwrap()).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 400, "ids unique");
        paths.sort();
        paths.dedup();
        assert_eq!(paths.len(), 400, "paths unique");
        assert_eq!(r.active_children(t), 400);
    }

    /// Satellite regression: concurrent begin/finish/lookup storm over the
    /// sharded table. Asserts no meta is ever lost (every id begun resolves
    /// forever after) and none resurrected (a finished id never reads
    /// `Active` again), while a reader thread hammers views.
    #[test]
    fn sharded_storm_no_lost_or_resurrected_metas() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let r = Arc::new(Registry::new());
        let stop = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::new();
        for w in 0..4 {
            let r = r.clone();
            workers.push(std::thread::spawn(move || {
                let mut done = Vec::new();
                for i in 0..500 {
                    let t = r.begin_top();
                    let c = r.begin_child(t).unwrap();
                    assert_eq!(r.status(c), Some(TxnStatus::Active), "fresh child resolves");
                    if (i + w) % 2 == 0 {
                        r.commit(c).unwrap();
                        r.commit(t).unwrap();
                        done.push((t, TxnStatus::Committed));
                    } else {
                        r.abort(t).unwrap();
                        assert!(r.is_dead(c), "orphan of aborted parent is dead");
                        r.abort(c).unwrap();
                        done.push((t, TxnStatus::Aborted));
                    }
                }
                done
            }));
        }
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let r = r.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut seen = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let view = r.read_view();
                        // Any id below the allocator either resolves or is a
                        // not-yet-published begin; it must never flap back to
                        // None once seen (checked via the final pass below).
                        seen = seen.max(view.active_subtree(TxnId(0)).len());
                    }
                    seen
                })
            })
            .collect();
        let mut finished = Vec::new();
        for w in workers {
            finished.extend(w.join().unwrap());
        }
        stop.store(true, Ordering::Relaxed);
        for rd in readers {
            rd.join().unwrap();
        }
        // No lost metas: every begun id still resolves, with its final status.
        for (t, want) in finished {
            assert_eq!(r.status(t), Some(want), "{t:?} kept its terminal status");
        }
        // No resurrected metas: snapshot ids are unique and statuses terminal
        // for every root the workers finished.
        let snap = r.snapshot();
        let mut ids: Vec<_> = snap.iter().map(|(id, ..)| *id).collect();
        ids.dedup();
        assert_eq!(ids.len(), snap.len(), "snapshot ids unique");
    }
}
