//! Per-object lock state: Moss's read/write locking rules with lock
//! inheritance (anti-inheritance on commit) and version restore on abort.
//!
//! This is the engine counterpart of the paper's *value map* (level 4),
//! extended from the paper's simplified exclusive-lock variant to the full
//! read/write algorithm the paper lists as follow-up work:
//!
//! * a transaction may **write** an object iff every holder of *any* lock
//!   on it is an ancestor;
//! * a transaction may **read** an object iff every holder of a *write*
//!   lock on it is an ancestor;
//! * on commit, locks pass to the parent; on abort, write versions are
//!   discarded, restoring the enclosing version — the paper's
//!   `release-lock` / `lose-lock` events;
//! * locks held by *dead* transactions (aborted ancestors — orphans'
//!   locks) are reaped lazily at conflict-check time, exactly the paper's
//!   lazily-performable `lose-lock`.

use crate::registry::TxnId;

/// Environment queries the lock logic needs (implemented by the registry).
pub trait LockEnv {
    /// True iff `a` is an ancestor of `b` (reflexively).
    fn is_ancestor(&self, a: TxnId, b: TxnId) -> bool;
    /// True iff the transaction or an ancestor has aborted.
    fn is_dead(&self, t: TxnId) -> bool;
}

/// Why a lock could not be granted: the live, non-ancestor holders.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Conflict {
    /// The transactions whose locks block the request.
    pub blockers: Vec<TxnId>,
}

/// The lock/version state of one object.
#[derive(Clone, Debug)]
pub struct LockState<V> {
    /// The permanently committed value (the paper's `V(x, U)`).
    base: V,
    /// Write-lock holders, outermost first — an ancestor chain; each holds
    /// the object's value as of that holder (the value-map stack).
    writes: Vec<(TxnId, V)>,
    /// Read-lock holders.
    readers: Vec<TxnId>,
}

impl<V: Clone> LockState<V> {
    /// A fresh object with its initial value.
    pub fn new(initial: V) -> Self {
        LockState { base: initial, writes: Vec::new(), readers: Vec::new() }
    }

    /// The value the deepest live holder sees (the principal value).
    pub fn current_value(&self) -> &V {
        self.writes.last().map_or(&self.base, |(_, v)| v)
    }

    /// The permanently committed value.
    pub fn base_value(&self) -> &V {
        &self.base
    }

    /// Publish a validated optimistic commit's value directly to base.
    ///
    /// Optimistic transactions never enter the lock table — their writes
    /// live in a private buffer until first-committer-wins validation
    /// passes under the publish gate — so at publication time the object
    /// has no holders to inherit through: the committed value simply
    /// replaces base, exactly as a top-level `commit_to_parent` would
    /// have done had the write gone through a lock.
    pub fn publish_base(&mut self, value: V) {
        debug_assert!(self.writes.is_empty(), "optimistic publication under live lock holders");
        self.base = value;
    }

    /// Current write-lock holders, outermost first.
    pub fn write_holders(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.writes.iter().map(|(t, _)| *t)
    }

    /// Current read-lock holders.
    pub fn read_holders(&self) -> &[TxnId] {
        &self.readers
    }

    /// Write-lock holders with their pending versions, outermost first
    /// (checkpointing re-logs these so a later crash can still resolve
    /// post-checkpoint commit/abort records).
    pub fn write_entries(&self) -> impl Iterator<Item = (TxnId, &V)> {
        self.writes.iter().map(|(t, v)| (*t, v))
    }

    /// Reap locks held by dead transactions (`lose-lock`): dead readers are
    /// dropped; the write stack is truncated at the first dead holder
    /// (everything above a dead holder is a descendant of it, hence dead).
    pub fn reap(&mut self, env: &impl LockEnv) {
        self.readers.retain(|&t| !env.is_dead(t));
        if let Some(first_dead) = self.writes.iter().position(|&(t, _)| env.is_dead(t)) {
            self.writes.truncate(first_dead);
        }
    }

    /// Try to acquire (or re-affirm) a read lock for `t` and return the
    /// visible value. Grants iff every *write* holder is an ancestor of `t`.
    ///
    /// Fast path: the write stack is an ancestor chain, so if the innermost
    /// holder is live and an ancestor of `t`, every holder is — the grant
    /// needs one ancestry test, no stack scan and no reap.
    pub fn try_read(&mut self, t: TxnId, env: &impl LockEnv) -> Result<&V, Conflict> {
        match self.writes.last() {
            Some(&(top, _)) => {
                if top == t {
                    // A write holder needs no separate read lock.
                    return Ok(self.current_value());
                }
                if env.is_ancestor(top, t) && !env.is_dead(top) {
                    if !self.readers.contains(&t) {
                        self.readers.push(t);
                    }
                    return Ok(self.current_value());
                }
            }
            None => {
                // No write holders at all: reads always share.
                if !self.readers.contains(&t) {
                    self.readers.push(t);
                }
                return Ok(self.current_value());
            }
        }
        // Slow path: reap dead holders, then scan for live blockers.
        self.reap(env);
        let blockers: Vec<TxnId> =
            self.writes.iter().map(|&(h, _)| h).filter(|&h| !env.is_ancestor(h, t)).collect();
        if !blockers.is_empty() {
            return Err(Conflict { blockers });
        }
        if self.writes.last().map(|&(h, _)| h) != Some(t) && !self.readers.contains(&t) {
            self.readers.push(t);
        }
        Ok(self.current_value())
    }

    /// Try to acquire (or re-affirm) a write lock for `t`, computing the new
    /// value from the currently visible one. Grants iff every holder of any
    /// lock is an ancestor of `t`. Returns the value that was *seen*.
    pub fn try_write(
        &mut self,
        t: TxnId,
        env: &impl LockEnv,
        new_value: impl FnOnce(&V) -> V,
    ) -> Result<V, Conflict> {
        // Fast path: `t` already holds the innermost write lock and no
        // reader exists that could block a re-write — update in place
        // without scanning or reaping. (Callers guarantee `t` is live,
        // which makes the ancestor chain below it live too.)
        if self.readers.is_empty() {
            if let Some((h, slot)) = self.writes.last_mut() {
                if *h == t {
                    let seen = slot.clone();
                    *slot = new_value(&seen);
                    return Ok(seen);
                }
            }
        }
        self.reap(env);
        let blockers: Vec<TxnId> = self
            .writes
            .iter()
            .map(|&(h, _)| h)
            .chain(self.readers.iter().copied())
            .filter(|&h| h != t && !env.is_ancestor(h, t))
            .collect();
        if !blockers.is_empty() {
            return Err(Conflict { blockers });
        }
        let seen = self.current_value().clone();
        let value = new_value(&seen);
        match self.writes.last_mut() {
            Some((h, slot)) if *h == t => *slot = value,
            _ => self.writes.push((t, value)),
        }
        // Upgrade: t's read lock is subsumed by its write lock.
        self.readers.retain(|&r| r != t);
        Ok(seen)
    }

    /// True iff `t` holds any lock here (used to build per-txn lock lists).
    pub fn holds(&self, t: TxnId) -> bool {
        self.readers.contains(&t) || self.writes.iter().any(|&(h, _)| h == t)
    }

    /// Lock inheritance on commit (`release-lock`): `t`'s locks pass to
    /// `parent`; for a top-level commit (`parent == None`) the write version
    /// becomes the new base and read locks evaporate.
    pub fn commit_to_parent(&mut self, t: TxnId, parent: Option<TxnId>, env: &impl LockEnv) {
        self.reap(env);
        if let Some(pos) = self.writes.iter().position(|&(h, _)| h == t) {
            match parent {
                None => {
                    let (_, v) = self.writes.remove(pos);
                    debug_assert!(self.writes.is_empty(), "top-level commit under other holders");
                    self.base = v;
                }
                Some(p) => {
                    if let Some(ppos) = self.writes.iter().position(|&(h, _)| h == p) {
                        // The parent already holds an (older) version:
                        // the child's version replaces it.
                        let (_, v) = self.writes.remove(pos);
                        self.writes[ppos].1 = v;
                    } else {
                        // Hand the version over in place: `p` lies strictly
                        // between the entry's ancestors and `t`, so retagging
                        // the holder keeps the chain ordered — no element
                        // shifting, no version move.
                        self.writes[pos].0 = p;
                    }
                    // The parent's write subsumes any read lock it held.
                    self.readers.retain(|&r| r != p);
                }
            }
        }
        if let Some(pos) = self.readers.iter().position(|&r| r == t) {
            self.readers.swap_remove(pos);
            if let Some(p) = parent {
                let p_writes = self.writes.iter().any(|&(h, _)| h == p);
                if !p_writes && !self.readers.contains(&p) {
                    self.readers.push(p);
                }
            }
        }
    }

    /// Abort (`lose-lock` for the aborter's own locks): discard `t`'s read
    /// lock and write version, restoring the enclosing version.
    pub fn abort_discard(&mut self, t: TxnId) {
        self.readers.retain(|&r| r != t);
        if let Some(pos) = self.writes.iter().position(|&(h, _)| h == t) {
            // Anything above t is a descendant of t — dead with it.
            self.writes.truncate(pos);
        }
    }

    /// Structural invariants of this lock state (chaos harness only):
    ///
    /// * the write stack is a duplicate-free ancestor chain, outermost
    ///   first (the paper's value-map well-formedness);
    /// * read holders are duplicate-free and disjoint from write holders
    ///   (a write lock subsumes the holder's read lock);
    /// * no holder is dead — valid after a [`LockState::reap`], since
    ///   `lose-lock` is otherwise lazily performable.
    #[cfg(feature = "chaos-hooks")]
    pub fn chaos_check(&self, env: &impl LockEnv) -> Result<(), String> {
        for pair in self.writes.windows(2) {
            let (outer, inner) = (pair[0].0, pair[1].0);
            if outer == inner {
                return Err(format!("duplicate write holder {outer:?}"));
            }
            if !env.is_ancestor(outer, inner) {
                return Err(format!(
                    "write stack is not an ancestor chain: {outer:?} is not an ancestor of {inner:?}"
                ));
            }
        }
        for (i, &r) in self.readers.iter().enumerate() {
            if self.readers[..i].contains(&r) {
                return Err(format!("duplicate read holder {r:?}"));
            }
            if self.writes.iter().any(|&(w, _)| w == r) {
                return Err(format!("{r:?} holds both a read and a write lock"));
            }
        }
        let dead = self
            .writes
            .iter()
            .map(|&(t, _)| t)
            .chain(self.readers.iter().copied())
            .find(|&t| env.is_dead(t));
        if let Some(t) = dead {
            return Err(format!(
                "dead transaction {t:?} still holds a lock after reap (lose-lock not performed)"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    /// A scriptable environment: explicit parent edges and dead set.
    #[derive(Default)]
    struct Env {
        parent: HashMap<TxnId, TxnId>,
        dead: HashSet<TxnId>,
    }

    impl LockEnv for Env {
        fn is_ancestor(&self, a: TxnId, b: TxnId) -> bool {
            let mut cur = Some(b);
            while let Some(c) = cur {
                if c == a {
                    return true;
                }
                cur = self.parent.get(&c).copied();
            }
            false
        }
        fn is_dead(&self, t: TxnId) -> bool {
            let mut cur = Some(t);
            while let Some(c) = cur {
                if self.dead.contains(&c) {
                    return true;
                }
                cur = self.parent.get(&c).copied();
            }
            false
        }
    }

    const T1: TxnId = TxnId(1);
    const T2: TxnId = TxnId(2);
    const C1: TxnId = TxnId(11); // child of T1

    fn env() -> Env {
        let mut e = Env::default();
        e.parent.insert(C1, T1);
        e
    }

    #[test]
    fn read_read_share() {
        let e = env();
        let mut l = LockState::new(7);
        assert_eq!(*l.try_read(T1, &e).unwrap(), 7);
        assert_eq!(*l.try_read(T2, &e).unwrap(), 7);
        assert_eq!(l.read_holders().len(), 2);
    }

    #[test]
    fn write_blocks_unrelated_read_and_write() {
        let e = env();
        let mut l = LockState::new(7);
        l.try_write(T1, &e, |_| 8).unwrap();
        assert_eq!(l.try_read(T2, &e), Err(Conflict { blockers: vec![T1] }));
        assert_eq!(l.try_write(T2, &e, |_| 9).unwrap_err().blockers, vec![T1]);
    }

    #[test]
    fn read_blocks_unrelated_write_but_not_read() {
        let e = env();
        let mut l = LockState::new(7);
        l.try_read(T1, &e).unwrap();
        assert!(l.try_read(T2, &e).is_ok());
        let err = l.try_write(T2, &e, |_| 9).unwrap_err();
        assert!(err.blockers.contains(&T1));
    }

    #[test]
    fn child_may_lock_under_ancestor_holder() {
        let e = env();
        let mut l = LockState::new(7);
        l.try_write(T1, &e, |v| v + 1).unwrap();
        // Child of the write holder may read and write.
        assert_eq!(*l.try_read(C1, &e).unwrap(), 8);
        let seen = l.try_write(C1, &e, |v| v * 10).unwrap();
        assert_eq!(seen, 8);
        assert_eq!(*l.current_value(), 80);
        // Holders are now [T1, C1].
        assert_eq!(l.write_holders().collect::<Vec<_>>(), vec![T1, C1]);
    }

    #[test]
    fn reacquire_by_same_holder_updates_in_place() {
        let e = env();
        let mut l = LockState::new(0);
        l.try_write(T1, &e, |_| 1).unwrap();
        l.try_write(T1, &e, |v| v + 1).unwrap();
        assert_eq!(*l.current_value(), 2);
        assert_eq!(l.write_holders().count(), 1);
    }

    #[test]
    fn upgrade_read_to_write() {
        let e = env();
        let mut l = LockState::new(0);
        l.try_read(T1, &e).unwrap();
        l.try_write(T1, &e, |_| 5).unwrap();
        assert!(l.read_holders().is_empty(), "read lock subsumed");
        // Another reader blocks the upgrade.
        let mut l2 = LockState::new(0);
        l2.try_read(T1, &e).unwrap();
        l2.try_read(T2, &e).unwrap();
        assert!(l2.try_write(T1, &e, |_| 5).is_err());
    }

    #[test]
    fn commit_passes_write_to_parent_and_merges() {
        let e = env();
        let mut l = LockState::new(7);
        l.try_write(T1, &e, |_| 8).unwrap();
        l.try_write(C1, &e, |_| 9).unwrap();
        // Child commits: its version overwrites the parent's entry.
        l.commit_to_parent(C1, Some(T1), &e);
        assert_eq!(l.write_holders().collect::<Vec<_>>(), vec![T1]);
        assert_eq!(*l.current_value(), 9);
        // Top-level commit publishes to base.
        l.commit_to_parent(T1, None, &e);
        assert_eq!(l.write_holders().count(), 0);
        assert_eq!(*l.base_value(), 9);
    }

    #[test]
    fn commit_inserts_parent_when_absent() {
        let e = env();
        let mut l = LockState::new(7);
        // Only the child wrote; parent never held the lock.
        l.try_write(C1, &e, |_| 9).unwrap();
        l.commit_to_parent(C1, Some(T1), &e);
        assert_eq!(l.write_holders().collect::<Vec<_>>(), vec![T1]);
        assert_eq!(*l.current_value(), 9);
        // T2 still cannot write (T1 is not its ancestor) — retention!
        assert!(l.try_write(T2, &e, |_| 0).is_err());
    }

    #[test]
    fn commit_passes_read_to_parent() {
        let e = env();
        let mut l = LockState::new(7);
        l.try_read(C1, &e).unwrap();
        l.commit_to_parent(C1, Some(T1), &e);
        assert_eq!(l.read_holders(), &[T1]);
        // Top-level read commit just drops the lock.
        l.commit_to_parent(T1, None, &e);
        assert!(l.read_holders().is_empty());
    }

    #[test]
    fn abort_restores_enclosing_version() {
        let e = env();
        let mut l = LockState::new(7);
        l.try_write(T1, &e, |_| 8).unwrap();
        l.try_write(C1, &e, |_| 9).unwrap();
        l.abort_discard(C1);
        assert_eq!(*l.current_value(), 8, "child's version discarded");
        l.abort_discard(T1);
        assert_eq!(*l.current_value(), 7, "base restored");
    }

    #[test]
    fn dead_locks_reaped_lazily() {
        let mut e = env();
        let mut l = LockState::new(7);
        l.try_write(C1, &e, |_| 9).unwrap();
        l.try_read(C1, &e).ok();
        // T1 aborts somewhere else; C1 is an orphan whose locks linger.
        e.dead.insert(T1);
        // T2's request reaps them and succeeds.
        let seen = l.try_write(T2, &e, |v| v + 1).unwrap();
        assert_eq!(seen, 7, "orphan version discarded, base visible");
        assert_eq!(l.write_holders().collect::<Vec<_>>(), vec![T2]);
    }

    #[test]
    fn reap_truncates_descendants_of_dead() {
        let mut e = env();
        e.parent.insert(TxnId(111), C1);
        let mut l = LockState::new(0);
        l.try_write(T1, &e, |_| 1).unwrap();
        l.try_write(C1, &e, |_| 2).unwrap();
        l.try_write(TxnId(111), &e, |_| 3).unwrap();
        e.dead.insert(C1);
        l.reap(&e);
        assert_eq!(l.write_holders().collect::<Vec<_>>(), vec![T1]);
        assert_eq!(*l.current_value(), 1);
    }

    #[test]
    fn conflict_lists_all_blockers() {
        let e = env();
        let mut l = LockState::new(0);
        l.try_read(T1, &e).unwrap();
        l.try_read(T2, &e).unwrap();
        let err = l.try_write(TxnId(3), &e, |_| 1).unwrap_err();
        assert_eq!(err.blockers.len(), 2);
    }
}
