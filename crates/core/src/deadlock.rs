//! Wait-for-graph deadlock detection.
//!
//! Under [`crate::DeadlockPolicy::Detect`], a blocked transaction registers
//! `waiter → blockers` edges before sleeping; if the new edges close a
//! cycle, the requester is chosen as the victim and the edges are rolled
//! back.

use crate::registry::TxnId;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};

/// The global wait-for graph.
#[derive(Debug, Default)]
pub struct WaitForGraph {
    edges: Mutex<HashMap<TxnId, Vec<TxnId>>>,
}

impl WaitForGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register that `waiter` is blocked on `blockers`. Returns the cycle
    /// (starting and ending at `waiter`) if adding the edges would create
    /// one; in that case the edges are *not* added.
    pub fn block(&self, waiter: TxnId, blockers: &[TxnId]) -> Option<Vec<TxnId>> {
        let mut edges = self.edges.lock();
        // Check: can any blocker reach the waiter already?
        for &b in blockers {
            if let Some(mut path) = reach(&edges, b, waiter) {
                let mut cycle = vec![waiter];
                cycle.append(&mut path);
                return Some(cycle);
            }
        }
        edges.entry(waiter).or_default().extend_from_slice(blockers);
        None
    }

    /// Remove all of `waiter`'s outgoing edges (called after waking).
    pub fn unblock(&self, waiter: TxnId) {
        self.edges.lock().remove(&waiter);
    }

    /// Number of currently blocked transactions (for stats/tests).
    pub fn blocked_count(&self) -> usize {
        self.edges.lock().len()
    }
}

/// DFS: a path from `from` to `to` through the wait-for edges, if any.
fn reach(edges: &HashMap<TxnId, Vec<TxnId>>, from: TxnId, to: TxnId) -> Option<Vec<TxnId>> {
    let mut visited: HashSet<TxnId> = HashSet::new();
    let mut stack = vec![(from, vec![from])];
    while let Some((node, path)) = stack.pop() {
        if node == to {
            return Some(path);
        }
        if !visited.insert(node) {
            continue;
        }
        for &next in edges.get(&node).into_iter().flatten() {
            let mut p = path.clone();
            p.push(next);
            stack.push((next, p));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: TxnId = TxnId(1);
    const B: TxnId = TxnId(2);
    const C: TxnId = TxnId(3);

    #[test]
    fn no_cycle_on_chain() {
        let g = WaitForGraph::new();
        assert_eq!(g.block(A, &[B]), None);
        assert_eq!(g.block(B, &[C]), None);
        assert_eq!(g.blocked_count(), 2);
    }

    #[test]
    fn direct_cycle_detected() {
        let g = WaitForGraph::new();
        assert_eq!(g.block(A, &[B]), None);
        let cycle = g.block(B, &[A]).expect("cycle");
        assert_eq!(cycle.first(), Some(&B));
        assert_eq!(cycle.last(), Some(&B));
    }

    #[test]
    fn transitive_cycle_detected() {
        let g = WaitForGraph::new();
        g.block(A, &[B]);
        g.block(B, &[C]);
        let cycle = g.block(C, &[A]).expect("cycle via two hops");
        assert!(cycle.len() >= 3);
    }

    #[test]
    fn rejected_edges_not_added() {
        let g = WaitForGraph::new();
        g.block(A, &[B]);
        assert!(g.block(B, &[A]).is_some());
        // B's edge was rolled back, so A→B alone remains.
        assert_eq!(g.blocked_count(), 1);
        // And B can block on C fine.
        assert_eq!(g.block(B, &[C]), None);
    }

    #[test]
    fn unblock_clears_edges() {
        let g = WaitForGraph::new();
        g.block(A, &[B]);
        g.unblock(A);
        assert_eq!(g.blocked_count(), 0);
        // Former cycle no longer detected.
        assert_eq!(g.block(B, &[A]), None);
    }
}
