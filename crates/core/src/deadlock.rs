//! Wait-for-graph deadlock detection.
//!
//! Under [`crate::DeadlockPolicy::Detect`], a blocked transaction registers
//! `waiter → blockers` edges before sleeping; if the new edges close a
//! cycle, the requester is chosen as the victim and the edges are rolled
//! back.
//!
//! Edges store the *direct* lock holders only. Waiting on a holder means
//! waiting on its whole active subtree (a parent's lock releases only when
//! its children finish), and that subtree keeps growing while a waiter is
//! parked — so the expansion happens at *query* time, through the `expand`
//! callback, against the registry's current state. Storing expanded
//! snapshots instead (the previous design) missed every cycle closed by a
//! child begun after the waiter parked, leaving real deadlocks undetected
//! until a wait-slice expired and the waiter re-registered.

use crate::registry::TxnId;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};

/// The global wait-for graph.
#[derive(Debug, Default)]
pub struct WaitForGraph {
    edges: Mutex<HashMap<TxnId, Vec<TxnId>>>,
}

impl WaitForGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register that `waiter` is blocked on the direct holders `blockers`.
    /// `expand` maps a blocker to every transaction whose completion its
    /// lock release awaits (its current active subtree, including itself).
    ///
    /// Returns the cycle (starting and ending at `waiter`) if adding the
    /// edges would create one; in that case the edges are *not* added.
    pub fn block(
        &self,
        waiter: TxnId,
        blockers: &[TxnId],
        expand: impl Fn(TxnId) -> Vec<TxnId>,
    ) -> Option<Vec<TxnId>> {
        let mut edges = self.edges.lock();
        // Check: can any blocker's subtree reach the waiter already?
        for &b in blockers {
            if let Some(mut path) = reach(&edges, b, waiter, &expand) {
                let mut cycle = vec![waiter];
                cycle.append(&mut path);
                return Some(cycle);
            }
        }
        edges.entry(waiter).or_default().extend_from_slice(blockers);
        None
    }

    /// Remove all of `waiter`'s outgoing edges (called after waking).
    pub fn unblock(&self, waiter: TxnId) {
        self.edges.lock().remove(&waiter);
    }

    /// Number of currently blocked transactions (for stats/tests).
    pub fn blocked_count(&self) -> usize {
        self.edges.lock().len()
    }
}

/// DFS: a path from `from`'s expansion to `to` through the wait-for edges,
/// expanding every hop through the blockers' current subtrees.
fn reach(
    edges: &HashMap<TxnId, Vec<TxnId>>,
    from: TxnId,
    to: TxnId,
    expand: &impl Fn(TxnId) -> Vec<TxnId>,
) -> Option<Vec<TxnId>> {
    let mut visited: HashSet<TxnId> = HashSet::new();
    let mut stack: Vec<(TxnId, Vec<TxnId>)> =
        expand(from).into_iter().map(|m| (m, vec![m])).collect();
    while let Some((node, path)) = stack.pop() {
        if node == to {
            return Some(path);
        }
        if !visited.insert(node) {
            continue;
        }
        for &b in edges.get(&node).into_iter().flatten() {
            for next in expand(b) {
                let mut p = path.clone();
                p.push(next);
                stack.push((next, p));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: TxnId = TxnId(1);
    const B: TxnId = TxnId(2);
    const C: TxnId = TxnId(3);

    /// A blocker stands for itself alone — the flat-transaction case.
    fn flat(t: TxnId) -> Vec<TxnId> {
        vec![t]
    }

    #[test]
    fn no_cycle_on_chain() {
        let g = WaitForGraph::new();
        assert_eq!(g.block(A, &[B], flat), None);
        assert_eq!(g.block(B, &[C], flat), None);
        assert_eq!(g.blocked_count(), 2);
    }

    #[test]
    fn direct_cycle_detected() {
        let g = WaitForGraph::new();
        assert_eq!(g.block(A, &[B], flat), None);
        let cycle = g.block(B, &[A], flat).expect("cycle");
        assert_eq!(cycle.first(), Some(&B));
        assert_eq!(cycle.last(), Some(&B));
    }

    #[test]
    fn transitive_cycle_detected() {
        let g = WaitForGraph::new();
        g.block(A, &[B], flat);
        g.block(B, &[C], flat);
        let cycle = g.block(C, &[A], flat).expect("cycle via two hops");
        assert!(cycle.len() >= 3);
    }

    #[test]
    fn rejected_edges_not_added() {
        let g = WaitForGraph::new();
        g.block(A, &[B], flat);
        assert!(g.block(B, &[A], flat).is_some());
        // B's edge was rolled back, so A→B alone remains.
        assert_eq!(g.blocked_count(), 1);
        // And B can block on C fine.
        assert_eq!(g.block(B, &[C], flat), None);
    }

    #[test]
    fn unblock_clears_edges() {
        let g = WaitForGraph::new();
        g.block(A, &[B], flat);
        g.unblock(A);
        assert_eq!(g.blocked_count(), 0);
        // Former cycle no longer detected.
        assert_eq!(g.block(B, &[A], flat), None);
    }

    /// The regression the query-time expansion exists for: A parks blocked
    /// on B; B then begins a child C (so B's subtree grows *after* A's
    /// edge was recorded); C requests a lock held by A. With snapshot
    /// expansion the graph knows nothing of C and misses the cycle; with
    /// query-time expansion C's request resolves A's blocker B to the
    /// current subtree {B, C} and finds the cycle through itself.
    #[test]
    fn cycle_through_child_begun_after_parking() {
        let g = WaitForGraph::new();
        assert_eq!(g.block(A, &[B], flat), None);
        // C now exists under B: expansion reports it at query time.
        let subtree = |t: TxnId| if t == B { vec![B, C] } else { vec![t] };
        let cycle = g.block(C, &[A], subtree).expect("cycle via grown subtree");
        assert_eq!(cycle.first(), Some(&C));
        assert_eq!(cycle.last(), Some(&C));
    }
}
