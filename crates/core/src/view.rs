//! The unified read API: one abstract view of the keyspace, refined by
//! every concrete read surface.
//!
//! Börger–Schewe–Wang's multi-level specification of nested transactions
//! frames each machine level as a refinement of one abstract view of the
//! object state; this module is that idea applied to reads. [`ReadView`]
//! is the abstract surface — point lookup, key-ordered range scan, and
//! the epoch the view is anchored at — and both concrete surfaces refine
//! it:
//!
//! * [`Snapshot`](crate::Snapshot) — a *frozen* view: the committed state
//!   at a pinned epoch, served lock-free from the MVCC version chains.
//!   Its operations never fail, so the trait's `Result` is always `Ok`.
//! * [`Txn`](crate::Txn) — a *live* view: the transaction's own writes
//!   over the committed state, served through Moss's lock discipline.
//!   Reads acquire locks, so they can die, deadlock, or time out.
//!
//! Code written against `ReadView` (examples, benchmark mixes, chaos
//! oracles) runs unchanged over either surface.

use crate::error::TxnError;
use std::ops::RangeBounds;

/// A readable view of the keyspace at (or after) one commit epoch.
///
/// Implemented by [`Snapshot`](crate::Snapshot) (frozen, infallible,
/// lock-free) and [`Txn`](crate::Txn) (live, lock-acquiring, fallible).
/// The `Result` return types exist for the transactional surface; the
/// snapshot surface always returns `Ok`.
pub trait ReadView<K, V> {
    /// The commit epoch this view is anchored at: the exact pinned epoch
    /// for a snapshot, the publish watermark observed at call time for a
    /// transaction (its reads are at least that fresh).
    fn epoch(&self) -> u64;

    /// The value of `key` in this view, or `None` if the key is absent.
    ///
    /// Unlike [`Txn::read`](crate::Txn::read), an unknown key is not an
    /// error on either surface — `get` is a total lookup.
    fn get(&self, key: &K) -> Result<Option<V>, TxnError>;

    /// All `(key, value)` pairs of this view with keys in `bounds`, in
    /// ascending key order.
    fn range<R: RangeBounds<K>>(&self, bounds: R) -> Result<Vec<(K, V)>, TxnError>;

    /// Every `(key, value)` pair of this view, in ascending key order.
    fn scan_all(&self) -> Result<Vec<(K, V)>, TxnError> {
        self.range(..)
    }
}

/// The epoch window a database can currently serve, from
/// [`Db::epochs`](crate::Db::epochs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub struct EpochBounds {
    /// The oldest epoch [`Db::snapshot_at`](crate::Db::snapshot_at) can
    /// still pin: reclamation has conceded everything below it.
    pub oldest_retained: u64,
    /// The newest fully published epoch (the watermark). A fresh
    /// [`Db::snapshot`](crate::Db::snapshot) pins exactly this.
    pub watermark: u64,
}

impl EpochBounds {
    /// True iff `epoch` is currently servable by
    /// [`Db::snapshot_at`](crate::Db::snapshot_at).
    pub fn contains(&self, epoch: u64) -> bool {
        (self.oldest_retained..=self.watermark).contains(&epoch)
    }
}

/// Why [`Db::snapshot_at`](crate::Db::snapshot_at) could not open a
/// snapshot at the requested epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The epoch predates the oldest retained one: epoch-based
    /// reclamation (or the [`max_versions_per_key`] chain budget) has
    /// already dropped versions a consistent view at this epoch would
    /// need. Retained history only shrinks, so retrying cannot succeed.
    ///
    /// [`max_versions_per_key`]: crate::DbConfig::max_versions_per_key
    Pruned {
        /// The epoch that was requested.
        requested: u64,
        /// The oldest epoch still consistently resolvable.
        oldest_retained: u64,
    },
    /// The epoch is above the publish watermark: no commit with that
    /// epoch has been published yet. Retrying after more commits land
    /// can succeed.
    Future {
        /// The epoch that was requested.
        requested: u64,
        /// The highest fully published epoch at the time of the call.
        watermark: u64,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Pruned { requested, oldest_retained } => write!(
                f,
                "epoch {requested} already pruned (oldest retained epoch is {oldest_retained})"
            ),
            SnapshotError::Future { requested, watermark } => {
                write!(f, "epoch {requested} not yet published (watermark is {watermark})")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<rnt_mvcc::PinError> for SnapshotError {
    fn from(e: rnt_mvcc::PinError) -> Self {
        match e {
            rnt_mvcc::PinError::Pruned { requested, oldest_retained } => {
                SnapshotError::Pruned { requested, oldest_retained }
            }
            rnt_mvcc::PinError::Future { requested, watermark } => {
                SnapshotError::Future { requested, watermark }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_bounds_containment() {
        let b = EpochBounds { oldest_retained: 3, watermark: 7 };
        assert!(!b.contains(2));
        assert!(b.contains(3));
        assert!(b.contains(7));
        assert!(!b.contains(8));
    }

    #[test]
    fn snapshot_error_display_and_conversion() {
        let pruned: SnapshotError =
            rnt_mvcc::PinError::Pruned { requested: 1, oldest_retained: 4 }.into();
        assert_eq!(pruned, SnapshotError::Pruned { requested: 1, oldest_retained: 4 });
        assert!(pruned.to_string().contains("pruned"));
        let future: SnapshotError =
            rnt_mvcc::PinError::Future { requested: 9, watermark: 4 }.into();
        assert_eq!(future, SnapshotError::Future { requested: 9, watermark: 4 });
        assert!(future.to_string().contains("not yet published"));
    }
}
