//! Crash recovery: replay a write-ahead log into a fresh [`Db`].
//!
//! Replay reconstructs the action tree (registry), the per-key version
//! stacks (lock states), and the committed bases so that `perm(T)` — the
//! set of effects the paper's Lemma 7 calls permanent — is identical
//! before and after the crash:
//!
//! * records replay **in log order**, which the engine guarantees is a
//!   legal grant order (writes are logged under their shard guard, commit
//!   and abort records are ordered before any acquisition they enable);
//! * actions still active at end-of-log are the crash's in-flight
//!   casualties: they are aborted deepest-first, exactly as if every
//!   outstanding handle had been dropped — `perm` never contained them;
//! * recovery ends with a checkpoint rewrite, so the implicit aborts
//!   become physical and a recovered log never replays a stale suffix.
//!
//! Torn tails (see [`rnt_wal::scan`]) are the expected crash artifact and
//! are silently discarded; corruption anywhere earlier is a typed
//! [`WalError`] — a recovered database is never built on a log whose
//! middle is unreadable.

use crate::db::{Db, DbConfig, Durability};
use crate::registry::{TxnId, TxnStatus};
use rnt_wal::{scan, Record, StdVfs, Vfs, Wal, WalCodec, WalError, INIT_ACTION};
use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::sync::Arc;

fn encode_of<T: WalCodec>(value: &T, out: &mut Vec<u8>) {
    value.encode(out);
}

fn replay_err(detail: impl Into<String>) -> WalError {
    WalError::Replay { detail: detail.into() }
}

impl<K, V> Db<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + WalCodec + 'static,
    V: Clone + Hash + Send + Sync + WalCodec + 'static,
{
    /// Create a fresh database writing a **new** write-ahead log at
    /// `path` (any existing file there is truncated — use
    /// [`Db::recover`] to resume from one). With
    /// [`Durability::None`] the path is ignored and the database is
    /// purely in-memory.
    pub fn open(path: &str, config: DbConfig) -> Result<Self, WalError> {
        Self::open_with_vfs(Arc::new(StdVfs::new()), path, config)
    }

    /// [`Db::open`] through an explicit [`Vfs`] (fault-injection harnesses
    /// use [`rnt_wal::MemVfs`]).
    pub fn open_with_vfs(
        vfs: Arc<dyn Vfs>,
        path: &str,
        config: DbConfig,
    ) -> Result<Self, WalError> {
        let db = Db::with_config(config.clone());
        if config.durability != Durability::None {
            if vfs.exists(path) {
                vfs.replace(path, rnt_wal::MAGIC)?;
            }
            let log = Wal::open(vfs, path)?;
            db.install_wal(log, encode_of::<K>, encode_of::<V>)?;
        }
        Ok(db)
    }

    /// Recover a database from the write-ahead log at `path`: replay every
    /// intact record, abort the crash's in-flight transactions, checkpoint
    /// the log, and continue appending to it. A missing file is an empty
    /// database (first boot).
    pub fn recover(path: &str, config: DbConfig) -> Result<Self, WalError> {
        Self::recover_with_vfs(Arc::new(StdVfs::new()), path, config)
    }

    /// [`Db::recover`] through an explicit [`Vfs`].
    pub fn recover_with_vfs(
        vfs: Arc<dyn Vfs>,
        path: &str,
        config: DbConfig,
    ) -> Result<Self, WalError> {
        let db = Db::with_config(config.clone());
        let bytes = if vfs.exists(path) { vfs.read(path)? } else { Vec::new() };
        let (records, _tail) = scan(&bytes)?;
        let recovered = replay(&db, &records)?;
        db.stats_raw().add(|b| &b.recovered_actions, recovered);
        db.audit_register_all();
        if config.durability != Durability::None {
            let log = Wal::open(vfs, path)?;
            db.install_wal(log, encode_of::<K>, encode_of::<V>)?;
            // Make the implicit in-flight aborts physical and drop any
            // torn tail from the file: the recovered log is born clean.
            db.checkpoint_wal()?;
        }
        Ok(db)
    }
}

/// Apply one logged commit (record index `i`, for error labels) to the
/// replaying `db`: registry transition, lock inheritance/publication, and
/// — for top-level commits — the version-chain appends at the logged
/// epoch.
///
/// Top-level epochs must land strictly above the current watermark. The
/// engine allocates epochs as `watermark + 1` under the publish mutex and
/// logs the commit record while holding it, so any log claiming an epoch
/// at or below the watermark carries an epoch that was never durably
/// allocated — trusting it would replay a commit the pre-crash store
/// never published (or publish two commits at one epoch).
fn apply_commit<K, V>(
    db: &Db<K, V>,
    touched: &mut HashMap<TxnId, HashSet<K>>,
    i: usize,
    id: TxnId,
    epoch: Option<u64>,
) -> Result<(), WalError>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + WalCodec + 'static,
    V: Clone + Hash + Send + Sync + WalCodec + 'static,
{
    let registry = db.registry();
    registry.commit(id).map_err(|e| replay_err(format!("record {i}: {e}")))?;
    let parent = registry.parent(id);
    if parent.is_none() && epoch.is_none() {
        return Err(replay_err(format!(
            "record {i}: top-level commit of {id:?} without a commit epoch"
        )));
    }
    let publish_epoch = if parent.is_none() { epoch } else { None };
    if let Some(e) = publish_epoch {
        let watermark = db.raw_mvcc_watermark();
        if e <= watermark {
            return Err(replay_err(format!(
                "record {i}: commit epoch {e} of {id:?} not above watermark {watermark} — \
                 epoch never durably allocated"
            )));
        }
    }
    let keys = touched.remove(&id).unwrap_or_default();
    for key in &keys {
        let published = db.raw_with_state(key, |state, view| {
            // Mirror the live engine's publication rule: a top-level
            // commit appends a chain version for exactly the keys the
            // committer holds a write lock on (its own writes plus
            // inherited ones).
            let wrote = publish_epoch.is_some() && state.write_holders().any(|h| h == id);
            state.commit_to_parent(id, parent, view);
            wrote.then(|| state.base_value().clone())
        });
        if let Some(Some(value)) = published {
            db.raw_mvcc_append(key, publish_epoch.expect("wrote implies epoch"), value);
        }
    }
    if let Some(e) = publish_epoch {
        db.raw_mvcc_advance(e);
    }
    if let Some(p) = parent {
        touched.entry(p).or_default().extend(keys);
    }
    Ok(())
}

/// Replay `records` into the (fresh, log-less) `db`. Returns the number of
/// actions reconstructed (`Begin` records processed).
fn replay<K, V>(db: &Db<K, V>, records: &[Record]) -> Result<u64, WalError>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + WalCodec + 'static,
    V: Clone + Hash + Send + Sync + WalCodec + 'static,
{
    let registry = db.registry();
    // Keys each action holds write versions on, for commit inheritance
    // and abort restore (the engine's `touched` sets, rebuilt).
    let mut touched: HashMap<TxnId, HashSet<K>> = HashMap::new();
    let mut seen_checkpoint = false;
    let mut recovered = 0u64;
    for (i, record) in records.iter().enumerate() {
        match record {
            Record::Checkpoint { epoch, snapshot } => {
                if i != 0 {
                    return Err(replay_err(format!("checkpoint at record {i}, not at log start")));
                }
                seen_checkpoint = true;
                for (kb, e, vb) in snapshot {
                    let key =
                        K::decode(kb).ok_or_else(|| replay_err("undecodable checkpoint key"))?;
                    let value =
                        V::decode(vb).ok_or_else(|| replay_err("undecodable checkpoint value"))?;
                    // Seed the chain at the key's checkpointed last-commit
                    // epoch, so recovered chains match pre-crash ones.
                    if !db.raw_insert(key, value, *e) {
                        return Err(replay_err("duplicate key in checkpoint snapshot"));
                    }
                }
                // Epoch numbering resumes at the checkpointed watermark,
                // not at the max per-key epoch: keys whose latest commits
                // were reclaimed must not see their epochs reissued.
                db.raw_mvcc_advance(*epoch);
                // And time travel must not reach beneath the checkpoint:
                // recovered chains start at their per-key epochs, not at
                // the versions that existed pre-compaction, so a snapshot
                // pinned below the checkpointed watermark would see keys
                // flicker out of existence.
                db.raw_mvcc_concede(*epoch);
            }
            Record::Write { action, key, version } if *action == INIT_ACTION => {
                let key = K::decode(key).ok_or_else(|| replay_err("undecodable init key"))?;
                let value =
                    V::decode(version).ok_or_else(|| replay_err("undecodable init value"))?;
                if !db.raw_insert(key, value, rnt_mvcc::GENESIS_EPOCH) {
                    return Err(replay_err("duplicate init for an existing key"));
                }
            }
            Record::Begin { action, parent } => {
                if *action == INIT_ACTION {
                    return Err(replay_err("begin record with the reserved init action id"));
                }
                let id = TxnId(*action);
                match parent {
                    None => registry.replay_top(id),
                    Some(p) => registry.replay_child(id, TxnId(*p)),
                }
                .map_err(|e| replay_err(format!("record {i}: {e}")))?;
                touched.insert(id, HashSet::new());
                recovered += 1;
            }
            Record::Write { action, key, version } => {
                let id = TxnId(*action);
                if registry.status(id).is_none() {
                    return Err(replay_err(format!("record {i}: write by unknown action {id:?}")));
                }
                let key = K::decode(key).ok_or_else(|| replay_err("undecodable key"))?;
                let value = V::decode(version).ok_or_else(|| replay_err("undecodable version"))?;
                let granted = db
                    .raw_with_state(&key, |state, view| {
                        state.try_write(id, view, |_| value.clone()).is_ok()
                    })
                    .ok_or_else(|| replay_err(format!("record {i}: write to unseeded key")))?;
                if !granted {
                    // Log order is grant order; a conflict here means the
                    // log is not one the engine produced.
                    return Err(replay_err(format!(
                        "record {i}: write by {id:?} conflicts at replay"
                    )));
                }
                touched.entry(id).or_default().insert(key);
            }
            Record::Commit { action, epoch } => {
                let id = TxnId(*action);
                if registry.status(id).is_none() {
                    if seen_checkpoint {
                        // A checkpoint prunes dead (orphaned) subtrees; a
                        // pruned orphan's handle may still have logged its
                        // no-effect commit afterwards. Harmless.
                        continue;
                    }
                    return Err(replay_err(format!("record {i}: commit of unknown action {id:?}")));
                }
                apply_commit(db, &mut touched, i, id, *epoch)?;
            }
            Record::BatchCommit { commits } => {
                // A group-commit batch: semantically the listed top-level
                // commits in epoch order, durably atomic because they
                // share this one frame. Participants are always known —
                // they were alive and top-level when staged, and the
                // committing threads hold the checkpoint latch from
                // registry transition through batch retirement, so no
                // checkpoint can prune a batch participant's Begin.
                if commits.is_empty() {
                    return Err(replay_err(format!("record {i}: empty commit batch")));
                }
                for &(action, epoch) in commits {
                    let id = TxnId(action);
                    if registry.status(id).is_none() {
                        return Err(replay_err(format!(
                            "record {i}: batched commit of unknown action {id:?}"
                        )));
                    }
                    if registry.parent(id).is_some() {
                        return Err(replay_err(format!(
                            "record {i}: batched commit of nested action {id:?}"
                        )));
                    }
                    apply_commit(db, &mut touched, i, id, Some(epoch))?;
                }
            }
            Record::Abort { action } => {
                let id = TxnId(*action);
                if registry.status(id).is_none() {
                    if seen_checkpoint {
                        continue; // pruned orphan's abort — see Commit arm
                    }
                    return Err(replay_err(format!("record {i}: abort of unknown action {id:?}")));
                }
                registry.abort(id).map_err(|e| replay_err(format!("record {i}: {e}")))?;
                for key in touched.remove(&id).unwrap_or_default() {
                    db.raw_with_state(&key, |state, _| state.abort_discard(id));
                }
            }
        }
    }
    // End of log: everything still active was in flight at the crash.
    // Abort deepest-first so children discard their versions before their
    // parents do (restoring each enclosing version in turn).
    let mut in_flight: Vec<(TxnId, usize)> = registry
        .snapshot()
        .into_iter()
        .filter(|(_, _, status, _)| *status == TxnStatus::Active)
        .map(|(id, _, _, path)| (id, path.len()))
        .collect();
    in_flight.sort_by(|a, b| b.1.cmp(&a.1).then(b.0.cmp(&a.0)));
    for (id, _) in in_flight {
        registry.abort(id).map_err(|e| replay_err(format!("in-flight abort: {e}")))?;
        for key in touched.remove(&id).unwrap_or_default() {
            db.raw_with_state(&key, |state, _| state.abort_discard(id));
        }
    }
    Ok(recovered)
}
