//! Engine counters, cheap enough to leave on in benchmarks.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic event counters for one database.
#[derive(Debug, Default)]
pub struct Stats {
    /// Transactions begun (top-level + nested).
    pub begun: AtomicU64,
    /// Transactions committed.
    pub committed: AtomicU64,
    /// Transactions aborted.
    pub aborted: AtomicU64,
    /// Read operations completed.
    pub reads: AtomicU64,
    /// Write/rmw operations completed.
    pub writes: AtomicU64,
    /// Lock conflicts encountered (before any waiting).
    pub conflicts: AtomicU64,
    /// Wait episodes (a conflict that led to sleeping).
    pub waits: AtomicU64,
    /// Wait-die deaths issued.
    pub dies: AtomicU64,
    /// Deadlocks detected.
    pub deadlocks: AtomicU64,
    /// Lock-wait timeouts.
    pub timeouts: AtomicU64,
    /// Wakeups after which the awaited key's lock state had changed
    /// (a targeted `release-lock` notification did its job).
    pub wakeups_productive: AtomicU64,
    /// Wakeups with the awaited key's lock state unchanged — fallback-slice
    /// expiries or broadcast wakeups for unrelated keys. Near zero when
    /// targeted notifications, not polling, drive progress.
    pub wakeups_spurious: AtomicU64,
    /// Release-path notifications issued to waiters.
    pub notifies: AtomicU64,
    /// Total time spent blocked on lock waits, in nanoseconds.
    pub wait_nanos: AtomicU64,
    /// Records appended to the write-ahead log (excludes checkpoint
    /// rewrites, which replace records rather than add them).
    pub wal_appends: AtomicU64,
    /// Fsyncs issued for top-level commit durability.
    pub wal_fsyncs: AtomicU64,
    /// Transactions reconstructed by crash recovery (replayed `Begin`s).
    pub recovered_actions: AtomicU64,
    /// Reads served from a pinned snapshot (lock-free: these never touch
    /// the lock tables, so they add nothing to `reads`/`conflicts`/`waits`).
    pub snapshot_reads: AtomicU64,
    /// Range scans started through any read view (snapshot walks of the
    /// ordered index, plus locked transactional range reads).
    pub range_scans: AtomicU64,
    /// Top-level commits handed to the group-commit sequencer.
    pub commits_staged: AtomicU64,
    /// Top-level commits retired (published) by the sequencer.
    /// Conservation: equals `commits_staged` at quiescence — the pipeline
    /// never loses or invents a commit.
    pub commits_batched: AtomicU64,
    /// Group-commit batches retired (each one WAL force + one publish
    /// acquisition). `commits_batched / commit_batches` is the achieved
    /// amortization factor.
    pub commit_batches: AtomicU64,
    /// Optimistic (first-committer-wins) validation failures at commit:
    /// a footprint key had a committed version newer than the begin
    /// snapshot, so the transaction aborted with [`Conflict`] instead of
    /// publishing. The optimistic counterpart of `conflicts` (which
    /// counts lock-manager conflicts and stays zero in optimistic mode).
    ///
    /// [`Conflict`]: crate::TxnError::Conflict
    pub occ_conflicts: AtomicU64,
}

/// A plain snapshot of [`Stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Transactions begun.
    pub begun: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted.
    pub aborted: u64,
    /// Read operations completed.
    pub reads: u64,
    /// Write operations completed.
    pub writes: u64,
    /// Lock conflicts encountered.
    pub conflicts: u64,
    /// Wait episodes.
    pub waits: u64,
    /// Wait-die deaths.
    pub dies: u64,
    /// Deadlocks detected.
    pub deadlocks: u64,
    /// Lock-wait timeouts.
    pub timeouts: u64,
    /// Wakeups that observed a changed lock state on the awaited key.
    pub wakeups_productive: u64,
    /// Wakeups that observed an unchanged lock state (poll expiry or
    /// broadcast overreach).
    pub wakeups_spurious: u64,
    /// Release-path notifications issued.
    pub notifies: u64,
    /// Total lock-wait time in nanoseconds.
    pub wait_nanos: u64,
    /// Records appended to the write-ahead log.
    pub wal_appends: u64,
    /// Fsyncs issued for top-level commit durability.
    pub wal_fsyncs: u64,
    /// Transactions reconstructed by crash recovery.
    pub recovered_actions: u64,
    /// Reads served from a pinned snapshot (lock-free).
    pub snapshot_reads: u64,
    /// Range scans started through any read view.
    pub range_scans: u64,
    /// Top-level commits handed to the group-commit sequencer.
    pub commits_staged: u64,
    /// Top-level commits retired by the sequencer (= `commits_staged` at
    /// quiescence).
    pub commits_batched: u64,
    /// Group-commit batches retired.
    pub commit_batches: u64,
    /// Optimistic validation failures at commit (first-committer-wins
    /// losers, each surfaced as a retryable `Conflict`).
    pub occ_conflicts: u64,
    /// Committed versions ever appended to the MVCC chains (top-level
    /// commit publications plus seeds).
    pub versions_created: u64,
    /// Superseded versions reclaimed by epoch-based GC. Conservation:
    /// `versions_created - versions_reclaimed` equals the number of
    /// versions currently held across all chains.
    pub versions_reclaimed: u64,
    /// Snapshots currently holding an epoch pin (a gauge, not monotonic).
    pub snapshot_pins_live: u64,
}

impl Stats {
    /// Take a consistent-enough snapshot (each counter read atomically).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            begun: self.begun.load(Ordering::Relaxed),
            committed: self.committed.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            dies: self.dies.load(Ordering::Relaxed),
            deadlocks: self.deadlocks.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            wakeups_productive: self.wakeups_productive.load(Ordering::Relaxed),
            wakeups_spurious: self.wakeups_spurious.load(Ordering::Relaxed),
            notifies: self.notifies.load(Ordering::Relaxed),
            wait_nanos: self.wait_nanos.load(Ordering::Relaxed),
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            wal_fsyncs: self.wal_fsyncs.load(Ordering::Relaxed),
            recovered_actions: self.recovered_actions.load(Ordering::Relaxed),
            snapshot_reads: self.snapshot_reads.load(Ordering::Relaxed),
            range_scans: self.range_scans.load(Ordering::Relaxed),
            commits_staged: self.commits_staged.load(Ordering::Relaxed),
            commits_batched: self.commits_batched.load(Ordering::Relaxed),
            commit_batches: self.commit_batches.load(Ordering::Relaxed),
            occ_conflicts: self.occ_conflicts.load(Ordering::Relaxed),
            // Filled in by `Db::stats` from the MVCC store's own counters;
            // a bare `Stats` has no version chains to report on.
            versions_created: 0,
            versions_reclaimed: 0,
            snapshot_pins_live: 0,
        }
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

impl StatsSnapshot {
    /// Net committed transactions.
    pub fn commits_minus_aborts(&self) -> i64 {
        self.committed as i64 - self.aborted as i64
    }

    /// The WAL append-conservation total: in a log-enabled run with no
    /// checkpoint rewrites, every begin, write/rmw, commit, and abort
    /// appends exactly one record, and every seeded key appends one init
    /// record — so `wal_appends` must equal this sum for `inserts` keys.
    ///
    /// Group-commit runs break the one-record-per-commit assumption: a
    /// batch of `n` coalesced commits appends ONE `BatchCommit` record, so
    /// `wal_appends` falls short of this sum by
    /// `commits_batched - commit_batches`.
    pub fn wal_appends_expected(&self, inserts: u64) -> u64 {
        self.begun + self.writes + self.committed + self.aborted + inserts
    }

    /// Mean blocked time per wait episode, in microseconds (0 if none).
    pub fn avg_wait_micros(&self) -> f64 {
        if self.waits == 0 {
            0.0
        } else {
            self.wait_nanos as f64 / 1_000.0 / self.waits as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = Stats::default();
        Stats::bump(&s.begun);
        Stats::bump(&s.begun);
        Stats::bump(&s.deadlocks);
        let snap = s.snapshot();
        assert_eq!(snap.begun, 2);
        assert_eq!(snap.deadlocks, 1);
        assert_eq!(snap.commits_minus_aborts(), 0);
    }

    #[test]
    fn wal_counters_snapshot_and_conservation() {
        let s = Stats::default();
        Stats::bump(&s.begun);
        Stats::bump(&s.writes);
        Stats::bump(&s.writes);
        Stats::bump(&s.committed);
        // begin + 2 writes + commit + 3 init records.
        for _ in 0..7 {
            Stats::bump(&s.wal_appends);
        }
        Stats::bump(&s.wal_fsyncs);
        Stats::add(&s.recovered_actions, 4);
        let snap = s.snapshot();
        assert_eq!(snap.wal_appends, 7);
        assert_eq!(snap.wal_fsyncs, 1);
        assert_eq!(snap.recovered_actions, 4);
        assert_eq!(snap.wal_appends_expected(3), snap.wal_appends);
    }
}
