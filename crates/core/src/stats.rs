//! Engine counters, cheap enough to leave on in benchmarks.
//!
//! Counters are *striped*: [`Stats`] holds a power-of-two array of
//! cache-line-isolated [`StatsBlock`]s and each thread bumps its own
//! stripe (picked once per thread, round-robin), so commits on different
//! cores stop bouncing a shared counter line. [`Stats::snapshot`] folds
//! the stripes into the same [`StatsSnapshot`] totals a single block
//! would produce — every conservation identity over the snapshot is
//! unaffected by striping. A stripe count of 1 reproduces the
//! pre-scaling single-block layout exactly (used by the legacy arm of
//! the hot-path benchmark).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Default stripe count (power of two). Sixteen blocks cover typical core
/// counts; threads beyond that share stripes round-robin, which only
/// costs contention, never correctness.
const DEFAULT_STRIPES: usize = 16;

/// One stripe of monotonic event counters.
///
/// `align(128)` keeps a whole block (23 × 8 = 184 bytes, rounded up to
/// 256) on cache lines no other stripe touches, so cross-core false
/// sharing between stripes is impossible even with adjacent-line
/// prefetching.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct StatsBlock {
    /// Transactions begun (top-level + nested).
    pub begun: AtomicU64,
    /// Transactions committed.
    pub committed: AtomicU64,
    /// Transactions aborted.
    pub aborted: AtomicU64,
    /// Read operations completed.
    pub reads: AtomicU64,
    /// Write/rmw operations completed.
    pub writes: AtomicU64,
    /// Lock conflicts encountered (before any waiting).
    pub conflicts: AtomicU64,
    /// Wait episodes (a conflict that led to sleeping).
    pub waits: AtomicU64,
    /// Wait-die deaths issued.
    pub dies: AtomicU64,
    /// Deadlocks detected.
    pub deadlocks: AtomicU64,
    /// Lock-wait timeouts.
    pub timeouts: AtomicU64,
    /// Wakeups after which the awaited key's lock state had changed
    /// (a targeted `release-lock` notification did its job).
    pub wakeups_productive: AtomicU64,
    /// Wakeups with the awaited key's lock state unchanged — fallback-slice
    /// expiries or broadcast wakeups for unrelated keys. Near zero when
    /// targeted notifications, not polling, drive progress.
    pub wakeups_spurious: AtomicU64,
    /// Release-path notifications issued to waiters.
    pub notifies: AtomicU64,
    /// Total time spent blocked on lock waits, in nanoseconds.
    pub wait_nanos: AtomicU64,
    /// Records appended to the write-ahead log (excludes checkpoint
    /// rewrites, which replace records rather than add them).
    pub wal_appends: AtomicU64,
    /// Fsyncs issued for top-level commit durability.
    pub wal_fsyncs: AtomicU64,
    /// Transactions reconstructed by crash recovery (replayed `Begin`s).
    pub recovered_actions: AtomicU64,
    /// Reads served from a pinned snapshot (lock-free: these never touch
    /// the lock tables, so they add nothing to `reads`/`conflicts`/`waits`).
    pub snapshot_reads: AtomicU64,
    /// Range scans started through any read view (snapshot walks of the
    /// ordered index, plus locked transactional range reads).
    pub range_scans: AtomicU64,
    /// Top-level commits handed to the group-commit sequencer.
    pub commits_staged: AtomicU64,
    /// Top-level commits retired (published) by the sequencer.
    /// Conservation: equals `commits_staged` at quiescence — the pipeline
    /// never loses or invents a commit.
    pub commits_batched: AtomicU64,
    /// Group-commit batches retired (each one WAL force + one publish
    /// acquisition). `commits_batched / commit_batches` is the achieved
    /// amortization factor.
    pub commit_batches: AtomicU64,
    /// Optimistic (first-committer-wins) validation failures at commit:
    /// a footprint key had a committed version newer than the begin
    /// snapshot, so the transaction aborted with [`Conflict`] instead of
    /// publishing. The optimistic counterpart of `conflicts` (which
    /// counts lock-manager conflicts and stays zero in optimistic mode).
    ///
    /// [`Conflict`]: crate::TxnError::Conflict
    pub occ_conflicts: AtomicU64,
}

/// Striped monotonic event counters for one database.
#[derive(Debug)]
pub struct Stats {
    stripes: Box<[StatsBlock]>,
}

impl Default for Stats {
    fn default() -> Self {
        Self::striped(DEFAULT_STRIPES)
    }
}

/// Every thread gets a process-wide ordinal on first counter bump; a
/// `Stats` instance maps it onto its own stripe array with a mask, so
/// instances with different stripe counts coexist.
static NEXT_THREAD_ORDINAL: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_ORDINAL: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn thread_ordinal() -> usize {
    THREAD_ORDINAL.with(|c| {
        let mut v = c.get();
        if v == usize::MAX {
            v = NEXT_THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed);
            c.set(v);
        }
        v
    })
}

impl Stats {
    /// Counters striped over `n` blocks (rounded up to a power of two;
    /// 1 reproduces the pre-scaling single-block layout).
    pub fn striped(n: usize) -> Self {
        let n = n.max(1).next_power_of_two();
        Stats { stripes: (0..n).map(|_| StatsBlock::default()).collect() }
    }

    /// Number of stripes (a power of two).
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// The calling thread's stripe.
    #[inline]
    fn block(&self) -> &StatsBlock {
        // Single stripe: skip the thread-local dance entirely.
        if self.stripes.len() == 1 {
            return &self.stripes[0];
        }
        &self.stripes[thread_ordinal() & (self.stripes.len() - 1)]
    }

    /// Increment one counter on the calling thread's stripe.
    #[inline]
    pub(crate) fn bump(&self, field: impl FnOnce(&StatsBlock) -> &AtomicU64) {
        field(self.block()).fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n` to one counter on the calling thread's stripe.
    #[inline]
    pub(crate) fn add(&self, field: impl FnOnce(&StatsBlock) -> &AtomicU64, n: u64) {
        field(self.block()).fetch_add(n, Ordering::Relaxed);
    }

    /// Take a consistent-enough snapshot: each counter is the fold (sum)
    /// of its per-stripe cells, each cell read atomically.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut snap = StatsSnapshot::default();
        for b in self.stripes.iter() {
            snap.begun += b.begun.load(Ordering::Relaxed);
            snap.committed += b.committed.load(Ordering::Relaxed);
            snap.aborted += b.aborted.load(Ordering::Relaxed);
            snap.reads += b.reads.load(Ordering::Relaxed);
            snap.writes += b.writes.load(Ordering::Relaxed);
            snap.conflicts += b.conflicts.load(Ordering::Relaxed);
            snap.waits += b.waits.load(Ordering::Relaxed);
            snap.dies += b.dies.load(Ordering::Relaxed);
            snap.deadlocks += b.deadlocks.load(Ordering::Relaxed);
            snap.timeouts += b.timeouts.load(Ordering::Relaxed);
            snap.wakeups_productive += b.wakeups_productive.load(Ordering::Relaxed);
            snap.wakeups_spurious += b.wakeups_spurious.load(Ordering::Relaxed);
            snap.notifies += b.notifies.load(Ordering::Relaxed);
            snap.wait_nanos += b.wait_nanos.load(Ordering::Relaxed);
            snap.wal_appends += b.wal_appends.load(Ordering::Relaxed);
            snap.wal_fsyncs += b.wal_fsyncs.load(Ordering::Relaxed);
            snap.recovered_actions += b.recovered_actions.load(Ordering::Relaxed);
            snap.snapshot_reads += b.snapshot_reads.load(Ordering::Relaxed);
            snap.range_scans += b.range_scans.load(Ordering::Relaxed);
            snap.commits_staged += b.commits_staged.load(Ordering::Relaxed);
            snap.commits_batched += b.commits_batched.load(Ordering::Relaxed);
            snap.commit_batches += b.commit_batches.load(Ordering::Relaxed);
            snap.occ_conflicts += b.occ_conflicts.load(Ordering::Relaxed);
        }
        snap
    }
}

/// A plain snapshot of [`Stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Transactions begun.
    pub begun: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted.
    pub aborted: u64,
    /// Read operations completed.
    pub reads: u64,
    /// Write operations completed.
    pub writes: u64,
    /// Lock conflicts encountered.
    pub conflicts: u64,
    /// Wait episodes.
    pub waits: u64,
    /// Wait-die deaths.
    pub dies: u64,
    /// Deadlocks detected.
    pub deadlocks: u64,
    /// Lock-wait timeouts.
    pub timeouts: u64,
    /// Wakeups that observed a changed lock state on the awaited key.
    pub wakeups_productive: u64,
    /// Wakeups that observed an unchanged lock state (poll expiry or
    /// broadcast overreach).
    pub wakeups_spurious: u64,
    /// Release-path notifications issued.
    pub notifies: u64,
    /// Total lock-wait time in nanoseconds.
    pub wait_nanos: u64,
    /// Records appended to the write-ahead log.
    pub wal_appends: u64,
    /// Fsyncs issued for top-level commit durability.
    pub wal_fsyncs: u64,
    /// Transactions reconstructed by crash recovery.
    pub recovered_actions: u64,
    /// Reads served from a pinned snapshot (lock-free).
    pub snapshot_reads: u64,
    /// Range scans started through any read view.
    pub range_scans: u64,
    /// Top-level commits handed to the group-commit sequencer.
    pub commits_staged: u64,
    /// Top-level commits retired by the sequencer (= `commits_staged` at
    /// quiescence).
    pub commits_batched: u64,
    /// Group-commit batches retired.
    pub commit_batches: u64,
    /// Optimistic validation failures at commit (first-committer-wins
    /// losers, each surfaced as a retryable `Conflict`).
    pub occ_conflicts: u64,
    /// Committed versions ever appended to the MVCC chains (top-level
    /// commit publications plus seeds).
    pub versions_created: u64,
    /// Superseded versions reclaimed by epoch-based GC. Conservation:
    /// `versions_created - versions_reclaimed` equals the number of
    /// versions currently held across all chains.
    pub versions_reclaimed: u64,
    /// Snapshots currently holding an epoch pin (a gauge, not monotonic).
    pub snapshot_pins_live: u64,
}

impl StatsSnapshot {
    /// Net committed transactions.
    pub fn commits_minus_aborts(&self) -> i64 {
        self.committed as i64 - self.aborted as i64
    }

    /// The WAL append-conservation total: in a log-enabled run with no
    /// checkpoint rewrites, every begin, write/rmw, commit, and abort
    /// appends exactly one record, and every seeded key appends one init
    /// record — so `wal_appends` must equal this sum for `inserts` keys.
    ///
    /// Group-commit runs break the one-record-per-commit assumption: a
    /// batch of `n` coalesced commits appends ONE `BatchCommit` record, so
    /// `wal_appends` falls short of this sum by
    /// `commits_batched - commit_batches`.
    pub fn wal_appends_expected(&self, inserts: u64) -> u64 {
        self.begun + self.writes + self.committed + self.aborted + inserts
    }

    /// Mean blocked time per wait episode, in microseconds (0 if none).
    pub fn avg_wait_micros(&self) -> f64 {
        if self.waits == 0 {
            0.0
        } else {
            self.wait_nanos as f64 / 1_000.0 / self.waits as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = Stats::default();
        s.bump(|b| &b.begun);
        s.bump(|b| &b.begun);
        s.bump(|b| &b.deadlocks);
        let snap = s.snapshot();
        assert_eq!(snap.begun, 2);
        assert_eq!(snap.deadlocks, 1);
        assert_eq!(snap.commits_minus_aborts(), 0);
    }

    #[test]
    fn wal_counters_snapshot_and_conservation() {
        let s = Stats::default();
        s.bump(|b| &b.begun);
        s.bump(|b| &b.writes);
        s.bump(|b| &b.writes);
        s.bump(|b| &b.committed);
        // begin + 2 writes + commit + 3 init records.
        for _ in 0..7 {
            s.bump(|b| &b.wal_appends);
        }
        s.bump(|b| &b.wal_fsyncs);
        s.add(|b| &b.recovered_actions, 4);
        let snap = s.snapshot();
        assert_eq!(snap.wal_appends, 7);
        assert_eq!(snap.wal_fsyncs, 1);
        assert_eq!(snap.recovered_actions, 4);
        assert_eq!(snap.wal_appends_expected(3), snap.wal_appends);
    }

    #[test]
    fn stripe_count_rounds_to_power_of_two() {
        assert_eq!(Stats::striped(1).stripe_count(), 1);
        assert_eq!(Stats::striped(3).stripe_count(), 4);
        assert_eq!(Stats::striped(16).stripe_count(), 16);
        assert_eq!(Stats::striped(0).stripe_count(), 1);
    }

    #[test]
    fn blocks_are_cache_line_isolated() {
        assert_eq!(std::mem::align_of::<StatsBlock>() % 128, 0);
        assert_eq!(std::mem::size_of::<StatsBlock>() % 128, 0);
    }

    /// Fold-equivalence: the same bump sequence applied to a striped and a
    /// single-block instance produces identical snapshots, even when the
    /// bumps come from many threads (cross-thread visibility of stripes).
    #[test]
    fn striped_fold_matches_single_block_across_threads() {
        let striped = std::sync::Arc::new(Stats::striped(8));
        let single = std::sync::Arc::new(Stats::striped(1));
        let threads = 8;
        let per_thread = 1000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let striped = striped.clone();
                let single = single.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        striped.bump(|b| &b.committed);
                        single.bump(|b| &b.committed);
                        if i % 3 == 0 {
                            striped.add(|b| &b.wait_nanos, i);
                            single.add(|b| &b.wait_nanos, i);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(striped.snapshot(), single.snapshot());
        assert_eq!(striped.snapshot().committed, threads as u64 * per_thread);
    }
}
