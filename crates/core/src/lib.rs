//! # rnt-core
//!
//! A production-grade nested-transaction engine implementing Moss's
//! locking algorithm — the algorithm whose correctness Lynch's PODS'83
//! paper proves — extended with the read/write lock modes the paper lists
//! as follow-up work:
//!
//! * [`Db`] / [`Txn`] — a sharded in-memory transactional store with
//!   arbitrarily nested subtransactions, lock inheritance on commit, and
//!   version restore on abort (resilience);
//! * [`DeadlockPolicy`] — timeout, wait-die, wait-for-graph detection, or
//!   no-wait conflict handling;
//! * [`AuditLog`] — optional execution recording that reconstructs the
//!   paper's augmented action tree, so live runs can be checked against
//!   the formal correctness condition (`perm(T)` data-serializable).
//!
//! ```
//! use rnt_core::{Db, DbConfig};
//!
//! let db: Db<&'static str, i64> = Db::new();
//! db.insert("balance", 100);
//!
//! let t = db.begin();
//! let c = t.child().unwrap();           // a subtransaction
//! c.rmw(&"balance", |v| v - 30).unwrap();
//! c.commit().unwrap();                  // visible to the parent only
//! assert_eq!(t.read(&"balance").unwrap(), 70);
//! t.commit().unwrap();                  // now visible to everyone
//! assert_eq!(db.committed_value(&"balance"), Some(70));
//! ```

#![warn(missing_docs)]

mod audit;
#[cfg(feature = "chaos-hooks")]
pub mod chaos;
mod commit_pipeline;
mod db;
mod deadlock;
mod error;
mod lock;
mod recover;
mod registry;
mod stats;
mod view;

pub use audit::{hash_value, AuditLog, AuditRecord};
pub use db::{
    CcMode, Db, DbConfig, DbConfigBuilder, DeadlockPolicy, Durability, HotPath, Snapshot, Txn,
    WakeupMode,
};
pub use deadlock::WaitForGraph;
pub use error::TxnError;
pub use lock::{Conflict, LockEnv, LockState};
pub use registry::{Registry, RegistryError, RegistryView, TxnId, TxnStatus};
pub use stats::{Stats, StatsSnapshot};
pub use view::{EpochBounds, ReadView, SnapshotError};
