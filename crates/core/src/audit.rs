//! The audit log: reconstructing an augmented action tree from a live
//! engine run.
//!
//! When auditing is enabled, the engine records every transaction begin,
//! access (with the value *seen*, hashed into the model's value domain),
//! commit and abort. [`AuditLog::reconstruct`] rebuilds the corresponding
//! [`Universe`] and [`Aat`], so a concurrent execution of the production
//! engine can be checked against the paper's correctness condition —
//! `perm(T)` data-serializable — via the Theorem 9 characterization. This
//! closes the loop between the verified algebra tower and the running code.
//!
//! Values of any `Hash` type are folded into the model's `i64` domain by
//! hashing; reads audit as `UpdateFn::Read` and writes/rmws as
//! `UpdateFn::Write(hash(new))`, so version-compatibility checks that every
//! access saw *exactly* the value its visible data-predecessor wrote.

use parking_lot::Mutex;
use rnt_model::{
    Aat, AccessSpec, ActionId, ObjectId, ObjectSpec, Universe, UniverseError, UpdateFn, Value,
};
use std::hash::{Hash, Hasher};

/// Fold an arbitrary hashable value into the model's value domain.
pub fn hash_value<V: Hash>(v: &V) -> Value {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.hash(&mut h);
    h.finish() as Value
}

/// One audit record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditRecord {
    /// A transaction began (path in the action tree).
    Begin {
        /// Action-tree path of the transaction.
        path: Vec<u32>,
    },
    /// An access completed, seeing `seen` (hashed).
    Access {
        /// Action-tree path of the access leaf.
        path: Vec<u32>,
        /// Audit object id of the key.
        object: u32,
        /// The access's update function (hashed domain).
        update: UpdateFn,
        /// The (hashed) value the access saw.
        seen: Value,
    },
    /// A transaction committed.
    Commit {
        /// Action-tree path of the transaction.
        path: Vec<u32>,
    },
    /// A transaction aborted.
    Abort {
        /// Action-tree path of the transaction.
        path: Vec<u32>,
    },
}

/// The engine's audit log.
#[derive(Debug, Default)]
pub struct AuditLog {
    records: Mutex<Vec<AuditRecord>>,
    /// `(object id, hashed initial value)` for every seeded key.
    objects: Mutex<Vec<(u32, Value)>>,
}

impl AuditLog {
    /// Create an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a seeded object.
    pub fn register_object(&self, id: u32, init_hash: Value) {
        self.objects.lock().push((id, init_hash));
    }

    /// Append a record.
    pub fn push(&self, record: AuditRecord) {
        self.records.lock().push(record);
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True iff no records have been logged.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Snapshot the records.
    pub fn records(&self) -> Vec<AuditRecord> {
        self.records.lock().clone()
    }

    /// Rebuild the `(Universe, Aat)` pair this run denotes.
    ///
    /// Call only when the engine is quiescent (no in-flight transactions);
    /// the records are interpreted in log order.
    pub fn reconstruct(&self) -> Result<(Universe, Aat), UniverseError> {
        let records = self.records.lock();
        let objects: Vec<ObjectSpec> = self
            .objects
            .lock()
            .iter()
            .map(|&(id, init)| ObjectSpec { id: ObjectId(id), init })
            .collect();
        let mut actions: Vec<(ActionId, Option<AccessSpec>)> = Vec::new();
        for r in records.iter() {
            match r {
                AuditRecord::Begin { path } => {
                    actions.push((ActionId::from_path(path.clone()), None));
                }
                AuditRecord::Access { path, object, update, .. } => {
                    actions.push((
                        ActionId::from_path(path.clone()),
                        Some(AccessSpec { object: ObjectId(*object), update: *update }),
                    ));
                }
                _ => {}
            }
        }
        let universe = Universe::new(objects, actions)?;

        let mut aat = Aat::trivial();
        for r in records.iter() {
            match r {
                AuditRecord::Begin { path } => {
                    aat.tree.create(ActionId::from_path(path.clone()));
                }
                AuditRecord::Access { path, object, seen, .. } => {
                    let a = ActionId::from_path(path.clone());
                    aat.tree.create(a.clone());
                    aat.tree.set_committed(&a);
                    aat.tree.set_label(a.clone(), *seen);
                    aat.append_datastep(ObjectId(*object), a);
                }
                AuditRecord::Commit { path } => {
                    aat.tree.set_committed(&ActionId::from_path(path.clone()));
                }
                AuditRecord::Abort { path } => {
                    aat.tree.set_aborted(&ActionId::from_path(path.clone()));
                }
            }
        }
        Ok((universe, aat))
    }
}

impl AuditLog {
    /// Orphan-view anomaly count (experiment E9's engine column): replay
    /// the log in order, maintaining the prefix AAT, and compare each
    /// access's recorded value against the counterfactual expected value
    /// at that moment. Returns `(performs, orphan performs, anomalies,
    /// live anomalies)`.
    pub fn orphan_view_anomalies(&self) -> Result<(usize, usize, usize, usize), UniverseError> {
        let (universe, _) = self.reconstruct()?;
        let records = self.records.lock();
        let mut aat = Aat::trivial();
        let (mut performs, mut orphans, mut anomalies, mut live_anomalies) = (0, 0, 0, 0);
        for r in records.iter() {
            match r {
                AuditRecord::Begin { path } => aat.tree.create(ActionId::from_path(path.clone())),
                AuditRecord::Commit { path } => {
                    aat.tree.set_committed(&ActionId::from_path(path.clone()))
                }
                AuditRecord::Abort { path } => {
                    aat.tree.set_aborted(&ActionId::from_path(path.clone()))
                }
                AuditRecord::Access { path, object, seen, .. } => {
                    let a = ActionId::from_path(path.clone());
                    performs += 1;
                    // Evaluate against the prefix tree *before* this access.
                    aat.tree.create(a.clone());
                    let orphan = aat.tree.is_dead(&a);
                    if orphan {
                        orphans += 1;
                    }
                    let expected = {
                        // Temporarily register the access for the check.
                        aat.tree.set_committed(&a);
                        aat.counterfactual_expected_value(&a, &universe)
                    };
                    if *seen != expected {
                        anomalies += 1;
                        if !orphan {
                            live_anomalies += 1;
                        }
                    }
                    aat.tree.set_label(a.clone(), *seen);
                    aat.append_datastep(ObjectId(*object), a);
                }
            }
        }
        Ok((performs, orphans, anomalies, live_anomalies))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_discriminating() {
        assert_eq!(hash_value(&42u64), hash_value(&42u64));
        assert_ne!(hash_value(&42u64), hash_value(&43u64));
        assert_eq!(hash_value(&"abc"), hash_value(&"abc"));
    }

    #[test]
    fn reconstruct_serial_run() {
        let log = AuditLog::new();
        let h0 = hash_value(&100i64);
        let h1 = hash_value(&200i64);
        log.register_object(0, h0);
        log.push(AuditRecord::Begin { path: vec![0] });
        log.push(AuditRecord::Access {
            path: vec![0, 0],
            object: 0,
            update: UpdateFn::Write(h1),
            seen: h0,
        });
        log.push(AuditRecord::Commit { path: vec![0] });
        log.push(AuditRecord::Begin { path: vec![1] });
        log.push(AuditRecord::Access {
            path: vec![1, 0],
            object: 0,
            update: UpdateFn::Read,
            seen: h1,
        });
        log.push(AuditRecord::Commit { path: vec![1] });
        let (universe, aat) = log.reconstruct().unwrap();
        assert!(aat.perm().is_data_serializable(&universe));
    }

    #[test]
    fn reconstruct_detects_anomaly() {
        // The second txn claims to have seen the *initial* value although a
        // committed write precedes it in the data order: not serializable.
        let log = AuditLog::new();
        let h0 = hash_value(&100i64);
        let h1 = hash_value(&200i64);
        log.register_object(0, h0);
        log.push(AuditRecord::Begin { path: vec![0] });
        log.push(AuditRecord::Access {
            path: vec![0, 0],
            object: 0,
            update: UpdateFn::Write(h1),
            seen: h0,
        });
        log.push(AuditRecord::Commit { path: vec![0] });
        log.push(AuditRecord::Begin { path: vec![1] });
        log.push(AuditRecord::Access {
            path: vec![1, 0],
            object: 0,
            update: UpdateFn::Read,
            seen: h0, // stale read!
        });
        log.push(AuditRecord::Commit { path: vec![1] });
        let (universe, aat) = log.reconstruct().unwrap();
        assert!(!aat.perm().is_data_serializable(&universe));
    }

    #[test]
    fn aborted_subtree_excluded_from_perm() {
        let log = AuditLog::new();
        let h0 = hash_value(&0i64);
        log.register_object(0, h0);
        log.push(AuditRecord::Begin { path: vec![0] });
        log.push(AuditRecord::Access {
            path: vec![0, 0],
            object: 0,
            update: UpdateFn::Write(hash_value(&1i64)),
            seen: h0,
        });
        log.push(AuditRecord::Abort { path: vec![0] });
        // A later reader sees the initial value again — consistent.
        log.push(AuditRecord::Begin { path: vec![1] });
        log.push(AuditRecord::Access {
            path: vec![1, 0],
            object: 0,
            update: UpdateFn::Read,
            seen: h0,
        });
        log.push(AuditRecord::Commit { path: vec![1] });
        let (universe, aat) = log.reconstruct().unwrap();
        assert!(aat.perm().is_data_serializable(&universe));
    }

    #[test]
    fn empty_log_reconstructs_trivially() {
        let log = AuditLog::new();
        let (universe, aat) = log.reconstruct().unwrap();
        assert!(aat.perm().is_data_serializable(&universe));
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
    }
}
