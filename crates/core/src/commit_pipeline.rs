//! The group-commit sequencer: stages finished top-level commits from
//! many threads and lets one **leader** retire them as a batch.
//!
//! The paper's Lemma 7 requires the log be forced before a top-level
//! commit becomes visible — it does *not* require one force per commit.
//! The sequencer exploits that: every staged commit in a batch shares one
//! WAL append + fsync and one publish-mutex acquisition (a contiguous
//! epoch run), amortizing the two measured serial bottlenecks of the
//! commit path across the batch.
//!
//! # Protocol (leader with handoff)
//!
//! A committing thread *stages* its commit into a FIFO queue. If no
//! leader is active, it becomes the leader itself; otherwise it parks
//! until its result is posted. The leader optionally waits up to
//! `max_batch_wait` for the queue to reach `max_batch`, drains a batch,
//! releases the pipeline lock, processes the batch (WAL + fsync + epoch
//! publication — supplied by the caller), posts every participant's
//! result, and repeats until its own commit has been retired. When the
//! leader steps down it wakes everyone, so a parked stager whose result
//! is still pending takes over leadership (handoff) — no thread ever
//! depends on another thread *arriving*, which keeps the protocol live
//! under a single-threaded deterministic scheduler.

use crate::registry::TxnId;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

/// Fallback re-check bound for a parked stager. Notifications (results
/// posted, leadership released) are what actually drive progress; the
/// bound only caps the cost of a lost race, mirroring the engine's
/// wait-slice idiom.
const STAGER_WAIT_SLICE: Duration = Duration::from_millis(2);

/// One staged top-level commit, queued until a leader retires it.
///
/// `P` is the mode-specific payload: the locking engine stages the key
/// set whose locks the commit holds; the optimistic engine stages its
/// whole validation footprint (begin epoch, buffered writes, read set,
/// buffered audit records) so the leader can validate and publish — or
/// abort — each participant under one publish-gate acquisition.
pub(crate) struct StagedCommit<P> {
    /// The committing transaction.
    pub txn: TxnId,
    /// Mode-specific commit payload.
    pub payload: P,
    /// Queue ticket, unique per staging.
    pub seq: u64,
}

struct PipelineState<P, R> {
    queue: VecDeque<StagedCommit<P>>,
    results: HashMap<u64, R>,
    leader_active: bool,
    /// True only while the leader is parked inside its batch window.
    /// Stagers notify only then, and only on the arrival that fills the
    /// batch — an unconditional notify would wake every parked stager
    /// on every arrival (a thundering herd that serializes through the
    /// scheduler on small hosts).
    leader_waiting: bool,
    next_seq: u64,
}

/// The sequencer shared by all committing threads of one database.
pub(crate) struct CommitPipeline<P, R> {
    state: Mutex<PipelineState<P, R>>,
    /// Wakes parked stagers (results posted / leadership released) and a
    /// leader waiting out `max_batch_wait` (new arrivals).
    cv: Condvar,
}

impl<P, R: Clone> CommitPipeline<P, R> {
    pub fn new() -> Self {
        CommitPipeline {
            state: Mutex::new(PipelineState {
                queue: VecDeque::new(),
                results: HashMap::new(),
                leader_active: false,
                leader_waiting: false,
                next_seq: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Stage one finished top-level commit and block until a batch
    /// containing it has been durably retired; returns its result.
    ///
    /// `process` retires one drained batch — append + force + publish —
    /// and returns one result per participant, keyed by `seq`. It runs
    /// outside the pipeline lock (so staging never blocks behind an
    /// fsync) on whichever thread holds leadership at the time.
    pub fn stage(
        &self,
        txn: TxnId,
        payload: P,
        max_batch: usize,
        max_batch_wait: Duration,
        process: impl Fn(Vec<StagedCommit<P>>) -> Vec<(u64, R)>,
    ) -> R {
        let max_batch = max_batch.max(1);
        let mut state = self.state.lock();
        let seq = state.next_seq;
        state.next_seq += 1;
        state.queue.push_back(StagedCommit { txn, payload, seq });
        // Wake a leader parked in its batch window only when this arrival
        // *fills* the batch — below that the leader sleeps to its deadline
        // regardless, and a notify per arrival would drag every parked
        // stager through the scheduler only to re-park.
        if state.leader_waiting && state.queue.len() >= max_batch {
            self.cv.notify_all();
        }
        loop {
            if let Some(result) = state.results.remove(&seq) {
                return result;
            }
            if !state.leader_active {
                state.leader_active = true;
                // Lead until our own commit is retired. We may retire
                // batches that do not contain us first (our entry can sit
                // deeper than `max_batch` in the queue).
                loop {
                    if !max_batch_wait.is_zero() {
                        let deadline = Instant::now() + max_batch_wait;
                        state.leader_waiting = true;
                        while state.queue.len() < max_batch {
                            let now = Instant::now();
                            if now >= deadline {
                                break;
                            }
                            self.cv.wait_for(&mut state, deadline - now);
                        }
                        state.leader_waiting = false;
                    }
                    let take = state.queue.len().min(max_batch);
                    let batch: Vec<StagedCommit<P>> = state.queue.drain(..take).collect();
                    debug_assert!(!batch.is_empty(), "leader with an empty queue");
                    drop(state);
                    let results = process(batch);
                    state = self.state.lock();
                    state.results.extend(results);
                    if let Some(result) = state.results.remove(&seq) {
                        state.leader_active = false;
                        // Release the lock *before* waking the batch: a
                        // notify under the mutex makes every woken stager
                        // immediately block on it again (two context
                        // switches per waiter). The wake also hands
                        // leadership to any stager queued behind this
                        // batch, so nobody stays parked leaderless.
                        drop(state);
                        self.cv.notify_all();
                        return result;
                    }
                    // Our own commit sat deeper than this batch: wake its
                    // participants and keep leading. (Rare path — holding
                    // the lock across the notify is fine here.)
                    self.cv.notify_all();
                }
            }
            // A leader is processing (possibly our batch): park until
            // results land or leadership frees up.
            self.cv.wait_for(&mut state, STAGER_WAIT_SLICE);
        }
    }

    /// Commits currently staged and not yet retired (test introspection).
    #[cfg(test)]
    pub fn queued(&self) -> usize {
        self.state.lock().queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn retire_all(batch: Vec<StagedCommit<()>>) -> Vec<(u64, Result<(), ()>)> {
        batch.iter().map(|s| (s.seq, Ok(()))).collect()
    }

    #[test]
    fn solo_stager_leads_itself() {
        let p: CommitPipeline<(), Result<(), ()>> = CommitPipeline::new();
        let out = p.stage(TxnId(1), (), 8, Duration::ZERO, retire_all);
        assert_eq!(out, Ok(()));
        assert_eq!(p.queued(), 0);
    }

    #[test]
    fn many_threads_all_retire() {
        let p: Arc<CommitPipeline<(), Result<(), ()>>> = Arc::new(CommitPipeline::new());
        let batches = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..16u64 {
            let p = p.clone();
            let batches = batches.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    let out =
                        p.stage(TxnId(t * 100 + i), (), 4, Duration::from_micros(50), |batch| {
                            batches.fetch_add(1, Ordering::Relaxed);
                            assert!(batch.len() <= 4, "batch over max_batch");
                            retire_all(batch)
                        });
                    assert_eq!(out, Ok(()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.queued(), 0, "conservation: staged = retired");
        // 400 commits in batches of ≤4 takes at least 100 batches; any
        // batching at all takes fewer than 400.
        assert!(batches.load(Ordering::Relaxed) >= 100);
    }

    #[test]
    fn results_reach_the_right_stager() {
        let p: Arc<CommitPipeline<(), Result<u64, ()>>> = Arc::new(CommitPipeline::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                // Result = the staging transaction's id: each stager must
                // get its own back, never a batchmate's.
                let out = p.stage(TxnId(t), (), 8, Duration::from_micros(200), |b| {
                    b.iter().map(|s| (s.seq, Ok(s.txn.0))).collect()
                });
                assert_eq!(out, Ok(t));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn zero_wait_never_blocks_on_arrivals() {
        // max_batch 64 but nobody else ever stages: with a zero window the
        // solo stager must retire immediately instead of waiting for 63
        // peers that will never come.
        let p: CommitPipeline<(), Result<(), ()>> = CommitPipeline::new();
        let out = p.stage(TxnId(9), (), 64, Duration::ZERO, retire_all);
        assert_eq!(out, Ok(()));
    }
}
