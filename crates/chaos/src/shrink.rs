//! Schedule shrinking: bisect a failing fault schedule down to a minimal
//! counterexample.
//!
//! Classic delta-debugging over the fault list: repeatedly try deleting
//! chunks of halving size, keeping any deletion that preserves the
//! failure. The result is 1-minimal — removing any single remaining fault
//! makes the failure disappear — which is what a human wants to read.

use crate::driver::{run_with_plan, ChaosConfig};
use crate::schedule::FaultPlan;

/// Minimize `plan` while `still_fails` keeps returning `true`. If the
/// input does not fail, it is returned unchanged.
pub fn shrink_plan(plan: &FaultPlan, mut still_fails: impl FnMut(&FaultPlan) -> bool) -> FaultPlan {
    let mut current = plan.clone();
    if !still_fails(&current) {
        return current;
    }
    let mut chunk = current.faults.len().div_ceil(2).max(1);
    loop {
        let mut i = 0;
        while i < current.faults.len() {
            let mut candidate = current.clone();
            let end = (i + chunk).min(candidate.faults.len());
            candidate.faults.drain(i..end);
            if still_fails(&candidate) {
                current = candidate;
            } else {
                i = end;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    current
}

/// Shrink a failing seeded run to its minimal fault schedule: re-runs the
/// same workload (same config) under shrunken plans and keeps the failure.
/// Returns `None` if the config does not actually fail.
pub fn shrink_failing_run(config: &ChaosConfig) -> Option<FaultPlan> {
    let plan = crate::schedule::FaultPlan::generate(
        config.seed,
        config.faults,
        config.horizon(),
        config.workers,
        config.max_depth + 1,
    );
    let fails = |p: &FaultPlan| run_with_plan(config, p).verdict.is_err();
    if !fails(&plan) {
        return None;
    }
    Some(shrink_plan(&plan, fails))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FaultEvent, FaultKind};

    fn plan_with_noise() -> FaultPlan {
        let mut faults = vec![
            FaultEvent { at_step: 3, kind: FaultKind::LoseLock },
            FaultEvent { at_step: 9, kind: FaultKind::ForcedAbort { worker: 1, depth: 1 } },
        ];
        for i in 0..10 {
            faults.push(FaultEvent { at_step: 10 + i, kind: FaultKind::VictimKill { worker: i } });
        }
        faults.sort_by_key(|f| f.at_step);
        FaultPlan { faults }
    }

    #[test]
    fn shrinks_to_the_two_culprits() {
        // Synthetic failure predicate: the bug needs a lose-lock AND a
        // forced abort in the schedule.
        let fails = |p: &FaultPlan| {
            p.faults.iter().any(|f| matches!(f.kind, FaultKind::LoseLock))
                && p.faults.iter().any(|f| matches!(f.kind, FaultKind::ForcedAbort { .. }))
        };
        let min = shrink_plan(&plan_with_noise(), fails);
        assert_eq!(min.faults.len(), 2, "not minimal: {min:?}");
        assert!(fails(&min));
    }

    #[test]
    fn non_failing_plan_is_untouched() {
        let plan = plan_with_noise();
        let out = shrink_plan(&plan, |_| false);
        assert_eq!(out, plan);
    }

    #[test]
    fn healthy_engine_has_nothing_to_shrink() {
        assert!(shrink_failing_run(&ChaosConfig::seeded(11)).is_none());
    }
}
