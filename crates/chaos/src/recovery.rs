//! The crash-recovery oracle: an independent reference interpreter over
//! raw WAL records, plus the end-to-end checks every crash point must
//! pass.
//!
//! The engine's own replay ([`rnt_core::Db::recover`]) reuses the engine's
//! lock and registry machinery, so a bug shared by the forward path and
//! replay would cancel out there. This module interprets the *raw record
//! stream* with none of that machinery — a dozen lines of
//! merge-on-commit / discard-on-abort over plain maps — and demands the
//! recovered database agree with it. [`check_crash_recovery`] bundles the
//! full post-crash obligation:
//!
//! 1. **Differential**: the recovered committed state equals the reference
//!    interpreter's, key by key;
//! 2. **Prefix soundness**: uncommitted and in-flight writes are absent
//!    (the reference only applies effects whose top-level `Commit` record
//!    survived the cut — Lemma 7's `perm` boundary);
//! 3. **Lock invariants**: the recovered engine passes the chaos lock
//!    oracle (no dead holders, write stacks are ancestor chains, lock
//!    tables drain at quiescence);
//! 4. **Accounting**: `recovered_actions` equals the `Begin` records in
//!    the surviving prefix;
//! 5. **Idempotence**: recovering the recovered log changes nothing —
//!    `recover ∘ recover ≡ recover`, byte-for-byte.

use crate::oracle;
use rnt_core::{Db, DbConfig, DeadlockPolicy, Durability};
use rnt_wal::{scan, MemVfs, Record, Tail, WalCodec, INIT_ACTION};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// The log path WAL-backed chaos runs write to (inside a [`MemVfs`]).
pub const WAL_PATH: &str = "chaos.wal";

/// What a successful [`check_crash_recovery`] saw.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whole records in the surviving prefix.
    pub records: usize,
    /// Whether the prefix ended in a torn (partially written) record.
    pub torn: bool,
    /// Actions the engine reconstructed (`Begin` records replayed).
    pub recovered_actions: u64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum RefStatus {
    Active,
    Committed,
    Aborted,
}

fn dec_u64(bytes: &[u8], what: &str) -> Result<u64, String> {
    <u64 as WalCodec>::decode(bytes).ok_or_else(|| format!("undecodable {what}"))
}

fn dec_i64(bytes: &[u8], what: &str) -> Result<i64, String> {
    <i64 as WalCodec>::decode(bytes).ok_or_else(|| format!("undecodable {what}"))
}

/// The reference interpreter's full output: the committed state *indexed
/// by commit epoch*, so the snapshot oracle can ask "what was the
/// committed state at epoch `e`?" and compare it against a pinned
/// [`rnt_core::Snapshot`].
#[derive(Clone, Debug, Default)]
pub struct ReferenceTrace {
    /// Genesis state: checkpoint snapshot entries plus init writes. These
    /// are epoch-0 (or pre-checkpoint) values, visible at every epoch.
    base: BTreeMap<u64, i64>,
    /// Per-epoch committed effect batches, one per effective top-level
    /// commit, keyed by the epoch its `Commit` record carries.
    batches: BTreeMap<u64, BTreeMap<u64, i64>>,
}

impl ReferenceTrace {
    /// The committed state as of `epoch`: base plus every batch ≤ it.
    pub fn state_at(&self, epoch: u64) -> BTreeMap<u64, i64> {
        let mut state = self.base.clone();
        for batch in self.batches.range(..=epoch).map(|(_, b)| b) {
            state.extend(batch.iter().map(|(&k, &v)| (k, v)));
        }
        state
    }

    /// The final committed state (every epoch applied).
    pub fn committed(&self) -> BTreeMap<u64, i64> {
        self.state_at(u64::MAX)
    }

    /// The highest commit epoch in the trace (0 if none).
    pub fn max_epoch(&self) -> u64 {
        self.batches.keys().next_back().copied().unwrap_or(0)
    }
}

/// Interpret a record stream with plain maps: per-action pending write
/// sets, merged into the parent on commit, discarded on abort, applied to
/// the base only by a *top-level* commit — at the commit epoch the record
/// carries. Returns the full epoch-indexed trace; the committed state is
/// [`ReferenceTrace::committed`] — what a crash immediately after the last
/// record must preserve, and nothing more.
pub fn reference_trace(records: &[Record]) -> Result<ReferenceTrace, String> {
    let mut trace = ReferenceTrace::default();
    let mut last_epoch = 0u64;
    let mut parent: HashMap<u64, Option<u64>> = HashMap::new();
    let mut status: HashMap<u64, RefStatus> = HashMap::new();
    let mut pending: HashMap<u64, BTreeMap<u64, i64>> = HashMap::new();
    for (i, record) in records.iter().enumerate() {
        match record {
            Record::Checkpoint { epoch, snapshot } => {
                if i != 0 {
                    return Err(format!("checkpoint at record {i}, not at log start"));
                }
                last_epoch = *epoch;
                for (kb, e, vb) in snapshot {
                    if *e > *epoch {
                        return Err(format!(
                            "checkpoint entry epoch {e} above the checkpoint watermark {epoch}"
                        ));
                    }
                    trace
                        .base
                        .insert(dec_u64(kb, "checkpoint key")?, dec_i64(vb, "checkpoint value")?);
                }
            }
            Record::Write { action, key, version } if *action == INIT_ACTION => {
                trace.base.insert(dec_u64(key, "init key")?, dec_i64(version, "init value")?);
            }
            Record::Begin { action, parent: p } => {
                parent.insert(*action, *p);
                status.insert(*action, RefStatus::Active);
                pending.insert(*action, BTreeMap::new());
            }
            Record::Write { action, key, version } => {
                if status.get(action) != Some(&RefStatus::Active) {
                    return Err(format!("record {i}: write by a non-active action {action}"));
                }
                pending
                    .entry(*action)
                    .or_default()
                    .insert(dec_u64(key, "key")?, dec_i64(version, "value")?);
            }
            Record::Commit { action, epoch } => {
                match status.get(action) {
                    None => continue, // pruned by a checkpoint: no effect left
                    Some(RefStatus::Active) => {}
                    Some(_) => return Err(format!("record {i}: double finish of {action}")),
                }
                status.insert(*action, RefStatus::Committed);
                let effects = pending.remove(action).unwrap_or_default();
                match parent.get(action).copied().flatten() {
                    // A subtransaction's effects move up one level; if that
                    // parent is already dead this is a dead-end entry that
                    // can never commit again — exactly an orphan's fate.
                    Some(p) => {
                        if epoch.is_some() {
                            return Err(format!(
                                "record {i}: nested commit of {action} carries a commit epoch"
                            ));
                        }
                        pending.entry(p).or_default().extend(effects)
                    }
                    // Only a top-level commit reaches the permanent base,
                    // and every top-level commit must carry a fresh,
                    // strictly increasing epoch — the engine serializes
                    // publication, so the log must prove it did.
                    None => {
                        let e = epoch.ok_or_else(|| {
                            format!("record {i}: top-level commit of {action} without an epoch")
                        })?;
                        if e <= last_epoch {
                            return Err(format!(
                                "record {i}: commit epoch {e} not above the last ({last_epoch})"
                            ));
                        }
                        last_epoch = e;
                        trace.batches.insert(e, effects);
                    }
                }
            }
            Record::BatchCommit { commits } => {
                // A group-commit batch: the listed top-level commits in
                // epoch order, atomic because they share one frame — the
                // interpreter either sees the whole batch or none of it
                // (a torn frame never reaches `scan`'s output). Batch
                // participants are never checkpoint-pruned: committers
                // hold the checkpoint latch from registry transition
                // through batch retirement, so unknown actions here mean
                // a corrupt log, not a pruned orphan.
                if commits.is_empty() {
                    return Err(format!("record {i}: empty commit batch"));
                }
                for &(action, epoch) in commits {
                    match status.get(&action) {
                        None => {
                            return Err(format!(
                                "record {i}: batched commit of unknown action {action}"
                            ))
                        }
                        Some(RefStatus::Active) => {}
                        Some(_) => return Err(format!("record {i}: double finish of {action}")),
                    }
                    if parent.get(&action).copied().flatten().is_some() {
                        return Err(format!(
                            "record {i}: batched commit of nested action {action}"
                        ));
                    }
                    if epoch <= last_epoch {
                        return Err(format!(
                            "record {i}: batch epoch {epoch} not above the last ({last_epoch})"
                        ));
                    }
                    last_epoch = epoch;
                    status.insert(action, RefStatus::Committed);
                    let effects = pending.remove(&action).unwrap_or_default();
                    trace.batches.insert(epoch, effects);
                }
            }
            Record::Abort { action } => {
                match status.get(action) {
                    None => continue, // pruned by a checkpoint
                    Some(RefStatus::Active) => {}
                    Some(_) => return Err(format!("record {i}: double finish of {action}")),
                }
                status.insert(*action, RefStatus::Aborted);
                pending.remove(action);
            }
        }
    }
    // End of stream: every still-pending write set belonged to an action
    // in flight at the crash and simply never happened.
    Ok(trace)
}

/// The final committed state of a record stream (see [`reference_trace`]).
pub fn reference_committed(records: &[Record]) -> Result<BTreeMap<u64, i64>, String> {
    reference_trace(records).map(|t| t.committed())
}

fn recovery_config() -> DbConfig {
    DbConfig::builder()
        .policy(DeadlockPolicy::NoWait)
        .audit(true)
        .durability(Durability::Wal)
        .build()
}

fn recover_from(bytes: &[u8]) -> Result<(Arc<MemVfs>, Db<u64, i64>), String> {
    let vfs = Arc::new(MemVfs::new());
    vfs.install(WAL_PATH, bytes.to_vec());
    let db = Db::recover_with_vfs(vfs.clone(), WAL_PATH, recovery_config())
        .map_err(|e| format!("recovery failed: {e}"))?;
    Ok((vfs, db))
}

/// Run the full recovery oracle against the raw bytes a crash left behind
/// (any prefix of a live log, torn or clean). See the module docs for the
/// five obligations checked.
pub fn check_crash_recovery(bytes: &[u8]) -> Result<RecoveryReport, String> {
    let (records, tail) = scan(bytes).map_err(|e| format!("scan: {e}"))?;
    let trace = reference_trace(&records)?;
    let expected = trace.committed();
    let begins = records.iter().filter(|r| matches!(r, Record::Begin { .. })).count() as u64;

    let (vfs, db) = recover_from(bytes)?;
    for (k, v) in &expected {
        let got = db.committed_value(k);
        if got != Some(*v) {
            return Err(format!(
                "recovered state diverges from reference at key {k}: engine {got:?}, \
                 reference {v}"
            ));
        }
    }
    oracle::check(&db).map_err(|e| format!("post-recovery oracle: {e}"))?;

    // MVCC obligations. A fresh snapshot of the recovered database must
    // equal the reference's committed state — no crashed snapshot pin
    // survives recovery, so nothing may block it or resurrect aborted
    // data.
    let snap = db.snapshot();
    for (k, v) in &expected {
        let got = snap.read(k);
        if got != Some(*v) {
            return Err(format!(
                "post-recovery snapshot diverges at key {k}: snapshot {got:?}, reference {v}"
            ));
        }
    }
    // The rebuilt ordered index must walk the reference state in key
    // order: recovery replays chain appends through the same primitive
    // the live engine publishes with, so index membership and order come
    // back identical — checked differentially, not assumed.
    let scanned = snap.range(..);
    let reference: Vec<(u64, i64)> = expected.iter().map(|(k, v)| (*k, *v)).collect();
    if scanned != reference {
        return Err(format!(
            "post-recovery range walk diverges from the reference state: scanned {scanned:?}, \
             reference {reference:?}"
        ));
    }
    // Time travel across the crash boundary is honest: replay compacts
    // chains (no pins are live during recovery), so every pre-crash epoch
    // is either servable-and-consistent or a typed Pruned refusal — and
    // the floor itself must always be servable.
    let bounds = db.epochs();
    match db.snapshot_at(bounds.oldest_retained) {
        Ok(at_floor) => {
            if at_floor.range(..) != scanned {
                // With chains compacted to single versions, the floor
                // view and the fresh snapshot must coincide.
                return Err(format!(
                    "snapshot at the retained floor {} disagrees with the fresh snapshot",
                    bounds.oldest_retained
                ));
            }
        }
        Err(e) => return Err(format!("retained floor {} unservable: {e}", bounds.oldest_retained)),
    }
    drop(snap);
    // With no pins, every recovered chain must have collapsed to exactly
    // its committed value, and the version counters must conserve.
    let mut held = 0u64;
    for (k, v) in &expected {
        let chain = db.history(k);
        held += chain.len() as u64;
        if chain.len() != 1 {
            return Err(format!("recovered chain for key {k} not reclaimed: {chain:?}"));
        }
        if chain[0].1 != *v {
            return Err(format!(
                "recovered chain head for key {k} is {}, reference {v}",
                chain[0].1
            ));
        }
    }
    let stats = db.stats();
    if stats.versions_created - stats.versions_reclaimed != held {
        return Err(format!(
            "version conservation violated after recovery: created {} - reclaimed {} != held {held}",
            stats.versions_created, stats.versions_reclaimed
        ));
    }
    if db.epochs().watermark < trace.max_epoch() {
        return Err(format!(
            "recovered epoch watermark {} below the log's max commit epoch {}",
            db.epochs().watermark,
            trace.max_epoch()
        ));
    }
    let recovered_actions = db.stats().recovered_actions;
    if recovered_actions != begins {
        return Err(format!(
            "recovered_actions miscounts: stat {recovered_actions}, {begins} begin record(s)"
        ));
    }

    // recover ∘ recover ≡ recover: the checkpointed log recovers to the
    // same state and rewrites to the same bytes.
    let after_first = vfs.snapshot(WAL_PATH);
    let (vfs2, db2) = recover_from(&after_first)?;
    for (k, v) in &expected {
        if db2.committed_value(k) != Some(*v) {
            return Err(format!("second recovery diverges at key {k}"));
        }
        if db2.history(k) != db.history(k) {
            return Err(format!("second recovery rebuilds a different chain for key {k}"));
        }
    }
    if db2.epochs().watermark != db.epochs().watermark {
        return Err("second recovery lands on a different epoch watermark".into());
    }
    if db2.snapshot().range(..) != db.snapshot().range(..) {
        return Err("second recovery rebuilds a different ordered index".into());
    }
    if vfs2.snapshot(WAL_PATH) != after_first {
        return Err("second recovery rewrote a different log: recovery is not idempotent".into());
    }

    Ok(RecoveryReport {
        records: records.len(),
        torn: matches!(tail, Tail::Torn(_)),
        recovered_actions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_applies_only_top_level_commits() {
        let records = vec![
            Record::Write { action: INIT_ACTION, key: enc(0), version: enc_v(10) },
            Record::Begin { action: 1, parent: None },
            Record::Begin { action: 2, parent: Some(1) },
            Record::Write { action: 2, key: enc(0), version: enc_v(99) },
            Record::Commit { action: 2, epoch: None },
        ];
        // Child committed but the top level is in flight: base unchanged.
        let base = reference_committed(&records).unwrap();
        assert_eq!(base.get(&0), Some(&10));
        let mut done = records.clone();
        done.push(Record::Commit { action: 1, epoch: Some(1) });
        let trace = reference_trace(&done).unwrap();
        assert_eq!(trace.committed().get(&0), Some(&99));
        // The epoch index resolves per-epoch states.
        assert_eq!(trace.state_at(0).get(&0), Some(&10));
        assert_eq!(trace.state_at(1).get(&0), Some(&99));
        assert_eq!(trace.max_epoch(), 1);
    }

    #[test]
    fn reference_discards_aborted_subtrees() {
        let records = vec![
            Record::Write { action: INIT_ACTION, key: enc(0), version: enc_v(10) },
            Record::Begin { action: 1, parent: None },
            Record::Begin { action: 2, parent: Some(1) },
            Record::Write { action: 2, key: enc(0), version: enc_v(99) },
            Record::Abort { action: 2 },
            Record::Commit { action: 1, epoch: Some(1) },
        ];
        let base = reference_committed(&records).unwrap();
        assert_eq!(base.get(&0), Some(&10));
    }

    #[test]
    fn oracle_passes_on_a_live_log() {
        let vfs = Arc::new(MemVfs::new());
        let db: Db<u64, i64> = Db::open_with_vfs(vfs.clone(), WAL_PATH, recovery_config()).unwrap();
        db.insert(0, 5);
        let t = db.begin();
        t.rmw(&0, |v| v * 2).unwrap();
        t.commit().unwrap();
        let hang = db.begin();
        hang.rmw(&0, |v| v + 1).unwrap(); // in flight at the "crash"
        let report = check_crash_recovery(&vfs.snapshot(WAL_PATH)).unwrap();
        assert_eq!(report.recovered_actions, 2);
        assert!(!report.torn);
        drop(hang);
    }

    fn enc(k: u64) -> Vec<u8> {
        rnt_wal::encode_to_vec(&k)
    }

    fn enc_v(v: i64) -> Vec<u8> {
        rnt_wal::encode_to_vec(&v)
    }
}
