//! Chaos walks over the level-5 distributed state machine: seeded random
//! runs biased toward failure-path events (aborts and `lose-lock`s), with
//! optional node crashes, checking the node-local invariants at every
//! step.
//!
//! Unlike the engine driver, every event here is a pure state transition,
//! so determinism is immediate; the point is coverage of fault-heavy
//! interleavings the happy-path gossip sweeps rarely reach.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnt_algebra::Algebra;
use rnt_distributed::{DistEvent, Level5, Topology};
use rnt_sim::gen::{random_universe, UniverseConfig};
use std::sync::Arc;

/// Configuration of one distributed chaos walk.
#[derive(Clone, Copy, Debug)]
pub struct DistChaosConfig {
    /// Seed for the random universe.
    pub useed: u64,
    /// Seed for the walk itself.
    pub rseed: u64,
    /// Node count.
    pub nodes: usize,
    /// Step bound.
    pub max_steps: usize,
    /// Probability of picking a failure-path event when one is enabled.
    pub fault_bias: f64,
    /// Fail-stop: after the given number of steps, the given node performs
    /// no further events (its knowledge freezes).
    pub crash: Option<(usize, usize)>,
}

impl Default for DistChaosConfig {
    fn default() -> Self {
        DistChaosConfig {
            useed: 0,
            rseed: 0,
            nodes: 2,
            max_steps: 400,
            fault_bias: 0.3,
            crash: None,
        }
    }
}

/// The outcome of one walk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistChaosReport {
    /// Steps taken before quiescence or the bound.
    pub steps: usize,
    /// Failure-path events (aborts / lose-locks) taken.
    pub faults: usize,
    /// Order-sensitive hash of the final state: equal ⇔ identical walks.
    pub fingerprint: u64,
}

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Run one fault-biased walk; `Err` carries the first invariant violation.
pub fn run_dist_chaos(cfg: &DistChaosConfig) -> Result<DistChaosReport, String> {
    let universe = Arc::new(random_universe(
        cfg.useed,
        &UniverseConfig {
            objects: 3,
            top_actions: 3,
            max_fanout: 2,
            max_depth: 2,
            inner_prob: 0.5,
        },
    ));
    let topology = Arc::new(Topology::round_robin(&universe, cfg.nodes.max(1)));
    let alg = Level5::new(universe, topology);
    let mut rng = StdRng::seed_from_u64(cfg.rseed);
    let mut state = alg.initial();
    let (mut steps, mut faults) = (0, 0);

    let crashed = |step: usize| cfg.crash.filter(|&(_, after)| step >= after).map(|(n, _)| n);
    let alive = |e: &DistEvent, dead: Option<usize>| match (e, dead) {
        (DistEvent::Tx(i, _), Some(c)) => *i != c,
        (DistEvent::Send { from, .. }, Some(c)) => *from != c,
        _ => true,
    };

    while steps < cfg.max_steps {
        let dead = crashed(steps);
        let enabled: Vec<DistEvent> =
            alg.enabled(&state).into_iter().filter(|e| alive(e, dead)).collect();
        if !enabled.iter().any(|e| matches!(e, DistEvent::Tx(..))) {
            // Only gossip remains: flush every inbox once; if that enables
            // no transaction event at a live node, the system is quiescent.
            for j in 0..state.inboxes.len() {
                if !state.inboxes[j].is_empty() {
                    let ev = DistEvent::Receive { to: j, summary: state.inboxes[j].clone() };
                    if let Some(next) = alg.apply(&state, &ev) {
                        state = next;
                    }
                }
            }
            let unlocked = alg
                .enabled(&state)
                .into_iter()
                .any(|e| matches!(e, DistEvent::Tx(..)) && alive(&e, dead));
            if !unlocked {
                break;
            }
            continue;
        }
        let fault_events: Vec<DistEvent> =
            alg.chaos_enabled_faults(&state).into_iter().filter(|e| alive(e, dead)).collect();
        let event = if !fault_events.is_empty() && rng.gen_bool(cfg.fault_bias) {
            faults += 1;
            fault_events[rng.gen_range(0..fault_events.len())].clone()
        } else {
            enabled[rng.gen_range(0..enabled.len())].clone()
        };
        state = alg.apply(&state, &event).expect("enabled event applies");
        let violations = alg.chaos_node_violations(&state);
        if !violations.is_empty() {
            return Err(format!("step {steps} after {event:?}: {}", violations.join("; ")));
        }
        steps += 1;
    }

    let mut fingerprint: u64 = 0xcbf2_9ce4_8422_2325;
    fnv(&mut fingerprint, format!("{state:?}").as_bytes());
    Ok(DistChaosReport { steps, faults, fingerprint })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_hold_invariants_and_are_deterministic() {
        for seed in 0..20u64 {
            let cfg = DistChaosConfig {
                useed: seed,
                rseed: seed.wrapping_mul(3).wrapping_add(1),
                nodes: 1 + (seed as usize % 3),
                ..DistChaosConfig::default()
            };
            let a = run_dist_chaos(&cfg).expect("invariants hold");
            let b = run_dist_chaos(&cfg).expect("invariants hold");
            assert_eq!(a, b, "seed {seed} diverged");
        }
    }

    #[test]
    fn fault_bias_actually_injects() {
        let mut total_faults = 0;
        for seed in 0..10u64 {
            let cfg = DistChaosConfig {
                useed: seed,
                rseed: seed,
                fault_bias: 0.8,
                ..DistChaosConfig::default()
            };
            total_faults += run_dist_chaos(&cfg).expect("invariants hold").faults;
        }
        assert!(total_faults > 0, "no failure-path events ever taken");
    }

    #[test]
    fn crashed_node_still_leaves_a_consistent_system() {
        for seed in 0..10u64 {
            let cfg = DistChaosConfig {
                useed: seed,
                rseed: seed ^ 0xC0FFEE,
                nodes: 3,
                crash: Some((0, 5)),
                ..DistChaosConfig::default()
            };
            run_dist_chaos(&cfg).expect("invariants hold under a node crash");
        }
    }
}
