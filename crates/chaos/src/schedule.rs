//! Fault schedules: what to inject, into whom, and when.
//!
//! A [`FaultPlan`] is derived deterministically from a single `u64` seed
//! *before* the run starts, so a failing schedule can be replayed exactly
//! and shrunk by deleting events from the plan (see [`crate::shrink`]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One kind of injected fault.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// Forcibly abort the worker's transaction at the given tree depth
    /// (0 = the top-level transaction, `d ≥ 1` = the `d`-th open
    /// subtransaction). Aborting a non-leaf leaves its open descendants as
    /// orphans.
    ForcedAbort {
        /// Target worker index (taken modulo the worker count).
        worker: usize,
        /// Depth in that worker's open-transaction stack.
        depth: usize,
    },
    /// Abort the worker's top-level transaction while subtransactions are
    /// still open, turning the entire open subtree into orphans.
    OrphanParent {
        /// Target worker index.
        worker: usize,
    },
    /// Eagerly perform every pending `lose-lock` across all shards (the
    /// paper's level-4 event, normally lazily performed).
    LoseLock,
    /// Arm the injector to kill the worker's deepest open transaction at
    /// its next lock acquisition (a deadlock-policy victim kill).
    VictimKill {
        /// Target worker index.
        worker: usize,
    },
    /// Arm the injector to time the worker's deepest open transaction out
    /// at its next lock acquisition (a lock-wait expiry).
    ShardStall {
        /// Target worker index.
        worker: usize,
    },
    /// Arm the injector to fail the worker's next subtransaction begin.
    BeginChildFail {
        /// Target worker index.
        worker: usize,
    },
    /// Simulated machine crash at a write-ahead-log record boundary: once
    /// `record` whole records have reached the (simulated) disk, the next
    /// append tears and every later write is lost, while the in-memory run
    /// continues oblivious. Only fires in WAL-backed runs
    /// ([`crate::ChaosConfig::wal`]); the post-run recovery oracle then
    /// recovers from the surviving prefix and checks it against the
    /// reference interpreter. Not produced by [`FaultPlan::generate`] —
    /// crash points are swept or sampled explicitly by the recovery suites.
    CrashAfterRecord {
        /// Number of whole records that survive on disk.
        record: u64,
    },
}

/// A fault scheduled at a driver step.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultEvent {
    /// The scheduler step at (or after) which the fault fires.
    pub at_step: usize,
    /// What to inject.
    pub kind: FaultKind,
}

/// The full fault schedule of one run, ordered by [`FaultEvent::at_step`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled faults.
    pub faults: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Derive a plan from a seed: `count` faults spread uniformly over
    /// `horizon` scheduler steps, targeting `workers` logical workers with
    /// nesting depths below `max_depth`.
    pub fn generate(
        seed: u64,
        count: usize,
        horizon: usize,
        workers: usize,
        max_depth: usize,
    ) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xFA_07);
        let mut faults: Vec<FaultEvent> = (0..count)
            .map(|_| {
                let at_step = rng.gen_range(0..horizon.max(1));
                let worker = rng.gen_range(0..workers.max(1));
                let kind = match rng.gen_range(0..6u32) {
                    0 => {
                        FaultKind::ForcedAbort { worker, depth: rng.gen_range(0..max_depth.max(1)) }
                    }
                    1 => FaultKind::OrphanParent { worker },
                    2 => FaultKind::LoseLock,
                    3 => FaultKind::VictimKill { worker },
                    4 => FaultKind::ShardStall { worker },
                    _ => FaultKind::BeginChildFail { worker },
                };
                FaultEvent { at_step, kind }
            })
            .collect();
        faults.sort_by_key(|f| f.at_step);
        FaultPlan { faults }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = FaultPlan::generate(42, 8, 100, 3, 3);
        let b = FaultPlan::generate(42, 8, 100, 3, 3);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 8);
        let c = FaultPlan::generate(43, 8, 100, 3, 3);
        assert_ne!(a, c, "different seeds give different plans");
    }

    #[test]
    fn plans_are_step_ordered() {
        let p = FaultPlan::generate(7, 16, 50, 4, 2);
        assert!(p.faults.windows(2).all(|w| w[0].at_step <= w[1].at_step));
    }
}
