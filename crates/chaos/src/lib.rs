//! # rnt-chaos
//!
//! A deterministic fault-injection harness for the resilient
//! nested-transaction engine, with a serializability oracle.
//!
//! The driver runs seeded, randomized nested-transaction workloads
//! against [`rnt_core::Db`] on a single thread and injects the faults the
//! paper's model is built to survive:
//!
//! * **forced aborts** at arbitrary depths of the transaction tree;
//! * **orphaned subtransactions** (a parent aborts under live children);
//! * **lose-lock events** — eager reaping of dead holders' locks (the
//!   paper's level-4 event, normally lazily performed);
//! * **deadlock-policy victim kills** and lock-wait **timeouts**, both
//!   natural (non-blocking conflict policies) and injector-forced;
//! * **interleaving perturbation** — the seeded scheduler decides which
//!   logical worker advances at every step.
//!
//! After every injected fault and at quiescence, the [`oracle`] replays
//! the engine's audit log through the AAT checker and asserts the
//! Theorem-9 condition (version compatibility, no nontrivial sibling-data
//! cycles), orphan-view cleanliness, and the engine lock invariants (no
//! lock held by a dead transaction, write stacks are ancestor chains,
//! empty lock tables at quiescence).
//!
//! Every run — schedule, faults, verdict — is a pure function of a single
//! `u64` seed ([`driver::run`]); failures shrink to a minimal fault
//! schedule with [`shrink::shrink_failing_run`]. The [`dist`] module runs
//! the same idea over the level-5 distributed state machine, and the
//! [`cluster`] module over the running sharded engine
//! ([`rnt_cluster::Cluster`]) with node-crash, delayed-gossip and
//! partition fault classes.
//!
//! WAL-backed runs ([`ChaosConfig::wal`]) add machine crashes to the fault
//! model: [`FaultKind::CrashAfterRecord`] tears the write-ahead log at a
//! chosen record boundary, and the [`recovery`] module's oracle then
//! demands that recovering the surviving prefix reproduces exactly the
//! committed state an independent reference interpreter computes from the
//! same records — with in-flight and uncommitted effects absent, lock
//! invariants intact, and `recover ∘ recover ≡ recover`.
//!
//! Reproduce a failure:
//!
//! ```text
//! cargo test -p rnt-chaos --test repro -- --seed <n>
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod dist;
pub mod driver;
pub mod oracle;
pub mod recovery;
pub mod schedule;
pub mod shrink;

pub use cluster::{run_cluster_chaos, ClusterChaosConfig, ClusterChaosReport, ClusterFaultClass};
pub use dist::{run_dist_chaos, DistChaosConfig, DistChaosReport};
pub use driver::{run, run_with_plan, ChaosConfig, ChaosFailure, ChaosInjector, ChaosReport};
pub use recovery::{check_crash_recovery, reference_committed, RecoveryReport};
pub use schedule::{FaultEvent, FaultKind, FaultPlan};
pub use shrink::{shrink_failing_run, shrink_plan};
