//! The deterministic chaos driver: seeded logical workers running
//! randomized nested-transaction workloads against [`rnt_core::Db`] on a
//! single thread, with a fault schedule injected between steps.
//!
//! Determinism contract: the whole run — workload, interleaving, faults,
//! audit log, verdict — is a pure function of [`ChaosConfig`] (and thus of
//! its seed). The driver only uses non-blocking conflict policies
//! ([`DeadlockPolicy::NoWait`] and [`DeadlockPolicy::Timeout`] with a zero
//! bound), so no wall-clock waiting can reorder anything; every conflict
//! resolves immediately into a deterministic victim kill or timeout —
//! the single-threaded analogue of deadlock-policy victim selection.
//! Thread-interleaving perturbation is modeled by the seeded scheduler
//! choosing which logical worker advances at each step, plus injector
//! faults that flip the winner of lock races on the sharded lock table.

use crate::oracle;
use crate::recovery;
use crate::schedule::{FaultEvent, FaultKind, FaultPlan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnt_core::chaos::{AccessFault, Injector};
use rnt_core::{
    CcMode, Db, DbConfig, DeadlockPolicy, Durability, ReadView, Snapshot, Txn, TxnError, TxnId,
};
use rnt_wal::faults::record_count;
use rnt_wal::MemVfs;
use std::collections::{BTreeMap, HashSet};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Configuration of one chaos run. Everything is derived from `seed`; the
/// remaining knobs size the workload.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// The seed: same seed ⇒ identical schedule, faults, log and verdict.
    pub seed: u64,
    /// Logical workers interleaved by the seeded scheduler.
    pub workers: usize,
    /// Top-level transactions each worker runs.
    pub txns_per_worker: usize,
    /// Maximum open-subtransaction depth below a top-level transaction.
    pub max_depth: usize,
    /// Operation budget per top-level transaction.
    pub ops_per_txn: usize,
    /// Keys seeded into the store.
    pub keys: u64,
    /// Fraction of operations that are reads (the rest are rmw).
    pub read_ratio: f64,
    /// Number of faults scheduled over the run.
    pub faults: usize,
    /// Safety bound on scheduler steps.
    pub max_steps: usize,
    /// Run the oracle after every applied fault (always at quiescence).
    pub check_after_each_fault: bool,
    /// Run against a write-ahead-logged database (an in-memory [`MemVfs`]
    /// file at [`recovery::WAL_PATH`]). Enables
    /// [`FaultKind::CrashAfterRecord`] and adds the post-run recovery
    /// oracle: whatever bytes the (possibly crashed) log holds at the end
    /// must recover to the reference interpreter's committed state.
    pub wal: bool,
    /// Interleave lock-free snapshot readers with the workers: the seeded
    /// schedule opens/reads/drops [`rnt_core::Snapshot`]s between steps and
    /// asserts every pinned view stays frozen at the state captured when it
    /// was opened (for WAL runs, additionally cross-checked against the
    /// reference trace's state at the pinned epoch). Off by default so
    /// pre-existing seed fingerprints stay comparable.
    pub snapshots: bool,
    /// Route top-level commits through the group-commit pipeline. The
    /// driver is single-threaded, so every batch is a singleton and —
    /// because singleton batches log a plain `Commit` record — the WAL
    /// bytes, audit log and verdict must be *identical* to the same seed
    /// run without the pipeline. The differential suite asserts exactly
    /// that.
    pub group_commit: bool,
    /// Concurrency-control mode the database runs under. `Locking` is the
    /// historical default (so pre-existing seed fingerprints stay
    /// comparable); `Optimistic` runs the same seeded schedule against the
    /// first-committer-wins validator — commit-time `Conflict` aborts
    /// instead of lock conflicts. The cross-mode differential suite runs
    /// every seed under both and compares the final committed states.
    pub cc_mode: CcMode,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            workers: 3,
            txns_per_worker: 2,
            max_depth: 3,
            ops_per_txn: 8,
            keys: 4,
            read_ratio: 0.5,
            faults: 4,
            max_steps: 10_000,
            check_after_each_fault: true,
            wal: false,
            snapshots: false,
            group_commit: false,
            cc_mode: CcMode::Locking,
        }
    }
}

impl ChaosConfig {
    /// A config differing from default only in its seed.
    pub fn seeded(seed: u64) -> Self {
        ChaosConfig { seed, ..ChaosConfig::default() }
    }

    /// [`ChaosConfig::seeded`] with the write-ahead log and the post-run
    /// recovery oracle enabled.
    pub fn seeded_wal(seed: u64) -> Self {
        ChaosConfig { wal: true, ..ChaosConfig::seeded(seed) }
    }

    /// [`ChaosConfig::seeded`] with interleaved snapshot readers.
    pub fn seeded_snapshots(seed: u64) -> Self {
        ChaosConfig { snapshots: true, ..ChaosConfig::seeded(seed) }
    }

    /// [`ChaosConfig::seeded_wal`] with interleaved snapshot readers (the
    /// full oracle: faulty writers, crash points, epoch cross-checks).
    pub fn seeded_wal_snapshots(seed: u64) -> Self {
        ChaosConfig { snapshots: true, ..ChaosConfig::seeded_wal(seed) }
    }

    /// [`ChaosConfig::seeded_wal`] with top-level commits routed through
    /// the group-commit pipeline (the differential suite's "on" side).
    pub fn seeded_wal_group(seed: u64) -> Self {
        ChaosConfig { group_commit: true, ..ChaosConfig::seeded_wal(seed) }
    }

    /// The same schedule under optimistic (first-committer-wins)
    /// concurrency control — the cross-mode differential suite's other
    /// side.
    pub fn optimistic(self) -> Self {
        ChaosConfig { cc_mode: CcMode::Optimistic, ..self }
    }

    /// The deadlock policy this seed runs under: both are non-blocking, so
    /// the single-threaded driver stays deterministic.
    pub fn policy(&self) -> DeadlockPolicy {
        if self.seed.is_multiple_of(2) {
            DeadlockPolicy::NoWait
        } else {
            DeadlockPolicy::Timeout
        }
    }

    /// The step horizon faults are spread over.
    pub fn horizon(&self) -> usize {
        self.workers * self.txns_per_worker * (self.ops_per_txn + self.max_depth + 4)
    }
}

/// An oracle or invariant failure, with the step it was detected at.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosFailure {
    /// Scheduler step at which the failure was detected.
    pub step: usize,
    /// Human-readable description from the oracle.
    pub detail: String,
}

impl std::fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "step {}: {}", self.step, self.detail)
    }
}

/// The outcome of one chaos run.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// The seed the run was derived from.
    pub seed: u64,
    /// Scheduler steps executed.
    pub steps: usize,
    /// Faults that actually fired (some scheduled faults are no-ops, e.g.
    /// aborting a depth the worker never reached).
    pub faults_applied: Vec<String>,
    /// Committed / aborted top-level-or-nested transaction counts.
    pub commits: u64,
    /// Aborts (including orphan cleanup and fault-forced aborts).
    pub aborts: u64,
    /// Audit records produced.
    pub audit_records: usize,
    /// Order-sensitive hash of the audit log and fault trace: equal
    /// fingerprints ⇔ identical schedules.
    pub fingerprint: u64,
    /// Whole WAL records on (simulated) disk at the end of a WAL-backed
    /// run — after any injected crash cut (0 for in-memory runs).
    pub wal_records: usize,
    /// FNV-1a over the raw WAL bytes on (simulated) disk (0 for in-memory
    /// runs). Equal hashes ⇔ byte-identical logs — the differential
    /// suite's strongest equivalence: a single-threaded run with the
    /// group-commit pipeline on must log the *same bytes* as one with it
    /// off, because singleton batches emit plain `Commit` records.
    pub wal_hash: u64,
    /// FNV-1a over the final committed state (key/value pairs in key
    /// order). Unlike [`fingerprint`] and [`wal_hash`] — which encode
    /// record *ordering* and so legitimately differ across CC modes —
    /// this hashes only what the run left behind, so a conflict-free seed
    /// must produce the same value under `Locking` and `Optimistic`.
    pub state_fingerprint: u64,
    /// Lock-manager conflicts the run hit (zero in optimistic mode, where
    /// transactions never contend on locks).
    pub lock_conflicts: u64,
    /// Optimistic validation failures at commit (zero in locking mode).
    /// `lock_conflicts == 0 && occ_conflicts == 0` ⇔ the schedule was
    /// conflict-free, which is when cross-mode state equality is owed.
    pub occ_conflicts: u64,
    /// `Ok(())` iff every oracle check passed.
    pub verdict: Result<(), ChaosFailure>,
}

/// The armable injector the driver installs into the engine: one-shot
/// per-transaction fault triggers consumed at the next hook call.
#[derive(Default)]
pub struct ChaosInjector {
    die: Mutex<HashSet<TxnId>>,
    timeout: Mutex<HashSet<TxnId>>,
    fail_child: Mutex<HashSet<TxnId>>,
}

impl ChaosInjector {
    fn arm_die(&self, t: TxnId) {
        self.die.lock().unwrap().insert(t);
    }
    fn arm_timeout(&self, t: TxnId) {
        self.timeout.lock().unwrap().insert(t);
    }
    fn arm_fail_child(&self, t: TxnId) {
        self.fail_child.lock().unwrap().insert(t);
    }
}

impl Injector for ChaosInjector {
    fn before_access(&self, t: TxnId, _shard: usize) -> AccessFault {
        if self.die.lock().unwrap().remove(&t) {
            return AccessFault::Die;
        }
        if self.timeout.lock().unwrap().remove(&t) {
            return AccessFault::Timeout;
        }
        AccessFault::Proceed
    }

    fn fail_begin_child(&self, parent: TxnId) -> bool {
        self.fail_child.lock().unwrap().remove(&parent)
    }
}

/// One logical worker: a top-level transaction plus its stack of open
/// subtransactions (innermost last), advanced one operation per step.
struct Worker {
    rng: StdRng,
    top: Option<Txn<u64, i64>>,
    stack: Vec<Txn<u64, i64>>,
    remaining_txns: usize,
    ops_left: usize,
}

impl Worker {
    fn new(seed: u64, index: usize, txns: usize) -> Worker {
        let mix = seed.wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Worker {
            rng: StdRng::seed_from_u64(mix),
            top: None,
            stack: Vec::new(),
            remaining_txns: txns,
            ops_left: 0,
        }
    }

    fn finished(&self) -> bool {
        self.remaining_txns == 0 && self.top.is_none() && self.stack.is_empty()
    }

    /// The deepest open transaction's id (for arming injector faults).
    fn deepest_id(&self) -> Option<TxnId> {
        self.stack.last().or(self.top.as_ref()).map(|t| t.id())
    }

    /// Drop the deepest open handle (aborting it): the response to an
    /// orphaned or killed subtransaction.
    fn drop_deepest(&mut self) {
        if self.stack.pop().is_none() {
            self.top = None;
        }
    }

    /// Advance this worker by one operation.
    fn step(&mut self, db: &Db<u64, i64>, cfg: &ChaosConfig) {
        let Some(_) = self.top.as_ref() else {
            // Leftover stack handles under a gone top are orphans: poke one
            // (exercising the orphan error path), then drop-abort it.
            if let Some(orphan) = self.stack.pop() {
                let key = self.rng.gen_range(0..cfg.keys.max(1));
                let _ = orphan.read(&key);
                drop(orphan);
                return;
            }
            if self.remaining_txns > 0 {
                self.remaining_txns -= 1;
                self.ops_left = cfg.ops_per_txn;
                self.top = Some(db.begin());
            }
            return;
        };

        if self.ops_left == 0 {
            // Close phase: commit inside-out, then the top.
            if let Some(child) = self.stack.pop() {
                let _ = child.commit();
            } else if let Some(top) = self.top.take() {
                let _ = top.commit();
            }
            return;
        }
        self.ops_left -= 1;

        let roll: f64 = self.rng.gen_range(0.0..1.0);
        if roll < 0.25 && self.stack.len() < cfg.max_depth {
            // Open a subtransaction under the deepest handle.
            let parent = self.stack.last().unwrap_or_else(|| self.top.as_ref().expect("top set"));
            match parent.child() {
                Ok(child) => self.stack.push(child),
                Err(e) => self.handle_error(e),
            }
            return;
        }
        if roll < 0.35 && !self.stack.is_empty() {
            // Commit the deepest subtransaction.
            let child = self.stack.pop().expect("non-empty");
            if let Err(e) = child.commit() {
                self.handle_error(e);
            }
            return;
        }
        if roll < 0.40 && !self.stack.is_empty() {
            // Voluntarily abort the deepest subtransaction (the resilient
            // path: siblings and ancestors are unaffected).
            self.stack.pop().expect("non-empty").abort();
            return;
        }
        // A data operation on the deepest handle.
        let key = self.rng.gen_range(0..cfg.keys.max(1));
        let read = self.rng.gen_range(0.0..1.0) < cfg.read_ratio;
        let handle = self.stack.last().unwrap_or_else(|| self.top.as_ref().expect("top set"));
        let result = if read {
            handle.read(&key).map(|_| ())
        } else {
            handle.rmw(&key, |v| v + 1).map(|_| ())
        };
        if let Err(e) = result {
            self.handle_error(e);
        }
    }

    fn handle_error(&mut self, e: TxnError) {
        match e {
            // Orphaned / dead handles: unwind the deepest one.
            TxnError::Orphaned | TxnError::NotActive => self.drop_deepest(),
            // Contention verdicts (victim kill, timeout): abort the deepest
            // and let the enclosing transaction carry on — resilience.
            e if e.is_retryable() => {
                if let Some(child) = self.stack.pop() {
                    child.abort();
                } else if let Some(top) = self.top.take() {
                    top.abort();
                }
            }
            // Nothing else should surface from this workload.
            other => panic!("unexpected engine error in chaos driver: {other}"),
        }
    }

    /// Abort-and-drop everything still open (end-of-run cleanup).
    fn teardown(&mut self) {
        self.stack.clear();
        self.top = None;
        self.remaining_txns = 0;
    }
}

/// Apply one fault. Returns a description if it actually fired.
fn apply_fault(
    fault: &FaultEvent,
    db: &Db<u64, i64>,
    injector: &ChaosInjector,
    workers: &mut [Worker],
    vfs: Option<&Arc<MemVfs>>,
) -> Option<String> {
    let n = workers.len();
    match &fault.kind {
        FaultKind::ForcedAbort { worker, depth } => {
            let w = &mut workers[*worker % n];
            if *depth == 0 {
                let top = w.top.take()?;
                let id = top.id();
                top.abort();
                Some(format!("forced-abort top {id:?} ({} orphaned)", w.stack.len()))
            } else if *depth <= w.stack.len() {
                // Abort a mid-tree handle; deeper handles stay in the stack
                // as live orphan handles the worker will trip over.
                let victim = w.stack.remove(*depth - 1);
                let id = victim.id();
                victim.abort();
                Some(format!("forced-abort depth {depth} {id:?}"))
            } else {
                None
            }
        }
        FaultKind::OrphanParent { worker } => {
            let w = &mut workers[*worker % n];
            if w.stack.is_empty() {
                return None;
            }
            let top = w.top.take()?;
            let id = top.id();
            let orphans = w.stack.len();
            top.abort();
            Some(format!("orphan-parent {id:?} ({orphans} live children orphaned)"))
        }
        FaultKind::LoseLock => {
            db.chaos_reap_all();
            Some("lose-lock (eager reap of all shards)".to_string())
        }
        FaultKind::VictimKill { worker } => {
            let id = workers[*worker % n].deepest_id()?;
            injector.arm_die(id);
            Some(format!("victim-kill armed for {id:?}"))
        }
        FaultKind::ShardStall { worker } => {
            let id = workers[*worker % n].deepest_id()?;
            injector.arm_timeout(id);
            Some(format!("shard-stall armed for {id:?}"))
        }
        FaultKind::BeginChildFail { worker } => {
            let id = workers[*worker % n].deepest_id()?;
            injector.arm_fail_child(id);
            Some(format!("begin-child-fail armed for {id:?}"))
        }
        FaultKind::CrashAfterRecord { record } => {
            let vfs = vfs?;
            if vfs.crashed() {
                return None; // the machine only dies once
            }
            let on_disk = record_count(&vfs.snapshot(recovery::WAL_PATH)) as u64;
            vfs.arm_crash(record.saturating_sub(on_disk), 0);
            Some(format!("crash-after-record {record} armed ({on_disk} already on disk)"))
        }
    }
}

/// An open snapshot pin paired with the committed state captured when it
/// was opened — the state it must keep answering with until dropped.
type PinnedSnap = (Snapshot<u64, i64>, BTreeMap<u64, i64>);

/// The committed state, key by key — what a snapshot opened *now* must
/// keep returning forever (the driver is single-threaded, so no commit
/// can land between the pin and this capture).
fn committed_state(db: &Db<u64, i64>, keys: u64) -> BTreeMap<u64, i64> {
    (0..keys.max(1)).filter_map(|k| db.committed_value(&k).map(|v| (k, v))).collect()
}

/// Full key-ordered scan through any read surface — the oracle's single
/// implementation against the unified [`ReadView`] API, so the snapshot
/// and transactional surfaces are checked by literally the same code.
fn full_scan<R: ReadView<u64, i64>>(view: &R) -> Result<Vec<(u64, i64)>, String> {
    view.scan_all().map_err(|e| format!("range scan through read view failed: {e}"))
}

/// One seeded snapshot-schedule step: sometimes open a snapshot (capturing
/// the state it must stay frozen at, and for live WAL runs cross-checking
/// that state against the reference trace at the pinned epoch), sometimes
/// re-read a pinned snapshot against its capture — point reads and
/// key-ordered range scans — sometimes re-open its epoch by time travel,
/// sometimes drop one.
fn step_snapshots(
    config: &ChaosConfig,
    db: &Db<u64, i64>,
    vfs: Option<&Arc<MemVfs>>,
    rng: &mut StdRng,
    snaps: &mut Vec<PinnedSnap>,
) -> Result<(), String> {
    let roll: f64 = rng.gen_range(0.0..1.0);
    if roll < 0.15 && snaps.len() < 3 {
        let snap = db.snapshot();
        let expected = committed_state(db, config.keys);
        if let Some(vfs) = vfs {
            // Cross-check against the independent interpreter: the state
            // the log proves was committed at the pinned epoch must be
            // exactly what the engine pinned. Skipped once the simulated
            // disk has died — the in-memory engine keeps running, so the
            // log is legitimately behind.
            if !vfs.crashed() {
                let (records, _) = rnt_wal::scan(&vfs.snapshot(recovery::WAL_PATH))
                    .map_err(|e| format!("snapshot cross-check scan: {e}"))?;
                let trace = recovery::reference_trace(&records)
                    .map_err(|e| format!("snapshot cross-check trace: {e}"))?;
                let at_epoch = trace.state_at(snap.epoch());
                if at_epoch != expected {
                    return Err(format!(
                        "snapshot at epoch {} disagrees with the reference trace: \
                         engine {expected:?}, trace {at_epoch:?}",
                        snap.epoch()
                    ));
                }
            }
        }
        snaps.push((snap, expected));
    } else if roll < 0.50 && !snaps.is_empty() {
        let (snap, expected) = &snaps[rng.gen_range(0..snaps.len())];
        if rng.gen_bool(0.5) {
            let key = rng.gen_range(0..config.keys.max(1));
            let got = snap.read(&key);
            if got != expected.get(&key).copied() {
                return Err(format!(
                    "pinned snapshot (epoch {}) moved at key {key}: read {got:?}, pinned {:?}",
                    snap.epoch(),
                    expected.get(&key)
                ));
            }
        } else {
            // A key-ordered range walk over the pinned view must equal the
            // captured state filtered to the bounds — same freshness rule
            // as a point read, checked across keys at once.
            let a = rng.gen_range(0..config.keys.max(1));
            let b = rng.gen_range(0..=config.keys.max(1));
            let (lo, hi) = (a.min(b), a.max(b));
            let got = snap.range(lo..hi);
            let expect: Vec<(u64, i64)> = expected.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
            if got != expect {
                return Err(format!(
                    "pinned snapshot (epoch {}) range {lo}..{hi} moved: scanned {got:?}, \
                     pinned {expect:?}",
                    snap.epoch()
                ));
            }
        }
    } else if roll < 0.58 && !snaps.is_empty() {
        // Time travel back to a live pin's epoch: the pin keeps the epoch
        // at or above the retained floor, so `snapshot_at` must succeed,
        // and the re-opened view must reproduce the original capture.
        let (snap, expected) = &snaps[rng.gen_range(0..snaps.len())];
        let again = db.snapshot_at(snap.epoch()).map_err(|e| {
            format!("time travel to live-pinned epoch {} refused: {e}", snap.epoch())
        })?;
        let got = full_scan(&again)?;
        let expect: Vec<(u64, i64)> = expected.iter().map(|(k, v)| (*k, *v)).collect();
        if got != expect {
            return Err(format!(
                "time-travel snapshot at epoch {} disagrees with the original capture: \
                 scanned {got:?}, pinned {expect:?}",
                again.epoch()
            ));
        }
    } else if roll < 0.65 && !snaps.is_empty() {
        let i = rng.gen_range(0..snaps.len());
        snaps.swap_remove(i);
    }
    Ok(())
}

/// Teardown obligations of the snapshot schedule: every still-open
/// snapshot re-verifies in full, and once all pins drop, epoch GC must
/// collapse every chain back to length 1 with counters conserving.
fn finish_snapshots(
    config: &ChaosConfig,
    db: &Db<u64, i64>,
    snaps: Vec<PinnedSnap>,
) -> Result<(), String> {
    for (snap, expected) in &snaps {
        for k in 0..config.keys.max(1) {
            let got = snap.read(&k);
            if got != expected.get(&k).copied() {
                return Err(format!(
                    "snapshot (epoch {}) diverged by teardown at key {k}: read {got:?}, \
                     pinned {:?}",
                    snap.epoch(),
                    expected.get(&k)
                ));
            }
        }
        // The full ordered walk must agree with the capture too — one
        // scan covering every key the point loop just checked, exercising
        // the index merge instead of per-key chain lookups.
        let scanned = full_scan(snap)?;
        let expect: Vec<(u64, i64)> = expected.iter().map(|(k, v)| (*k, *v)).collect();
        if scanned != expect {
            return Err(format!(
                "snapshot (epoch {}) range walk diverged by teardown: scanned {scanned:?}, \
                 pinned {expect:?}",
                snap.epoch()
            ));
        }
    }
    drop(snaps);
    // At quiescence the *transactional* read surface must see the same
    // keyspace: the unified-API check — the same `full_scan` the snapshot
    // checks above used, now through a locked transaction.
    let committed: Vec<(u64, i64)> = committed_state(db, config.keys).into_iter().collect();
    let scanned = db
        .run(|t| ReadView::range(t, ..))
        .map_err(|e| format!("teardown transactional scan failed: {e}"))?;
    if scanned != committed {
        return Err(format!(
            "transactional range walk at quiescence disagrees with committed state: \
             scanned {scanned:?}, committed {committed:?}"
        ));
    }
    let stats = db.stats();
    if stats.snapshot_pins_live != 0 {
        return Err(format!("{} pins still live after teardown", stats.snapshot_pins_live));
    }
    let mut held = 0u64;
    for k in 0..config.keys.max(1) {
        let chain = db.history(&k);
        held += chain.len() as u64;
        if chain.len() != 1 {
            return Err(format!("chain for key {k} not reclaimed after all snapshots dropped"));
        }
    }
    if stats.versions_created - stats.versions_reclaimed != held {
        return Err(format!(
            "version conservation violated: created {} - reclaimed {} != held {held}",
            stats.versions_created, stats.versions_reclaimed
        ));
    }
    Ok(())
}

/// FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// FNV-1a over the audit log and the applied-fault trace.
fn fingerprint(db: &Db<u64, i64>, applied: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    if let Some(log) = db.audit_log() {
        for record in log.records() {
            eat(format!("{record:?}").as_bytes());
        }
    }
    for line in applied {
        eat(line.as_bytes());
    }
    h
}

/// Run a chaos schedule derived entirely from `config.seed`.
pub fn run(config: &ChaosConfig) -> ChaosReport {
    let plan = FaultPlan::generate(
        config.seed,
        config.faults,
        config.horizon(),
        config.workers,
        config.max_depth + 1,
    );
    run_with_plan(config, &plan)
}

/// Run a chaos workload with an explicit fault plan (the shrinker's entry
/// point; [`run`] is `run_with_plan` with the seed-derived plan).
pub fn run_with_plan(config: &ChaosConfig, plan: &FaultPlan) -> ChaosReport {
    let db_config = DbConfig::builder()
        .policy(config.policy())
        .cc_mode(config.cc_mode)
        .lock_timeout(Duration::ZERO)
        .audit(true)
        .durability(if config.wal { Durability::Wal } else { Durability::None })
        // Zero batch window: the single-threaded driver must never have a
        // leader wait for peers that cannot arrive.
        .group_commit(config.group_commit)
        .max_batch_wait(Duration::ZERO)
        .build();
    let (vfs, db): (Option<Arc<MemVfs>>, Db<u64, i64>) = if config.wal {
        let vfs = Arc::new(MemVfs::new());
        let db = Db::open_with_vfs(vfs.clone(), recovery::WAL_PATH, db_config)
            .expect("a fresh MemVfs log cannot fail to open");
        (Some(vfs), db)
    } else {
        (None, Db::with_config(db_config))
    };
    for k in 0..config.keys.max(1) {
        db.insert(k, k as i64 * 100);
    }
    let injector = Arc::new(ChaosInjector::default());
    db.chaos_set_injector(Some(injector.clone()));

    let mut workers: Vec<Worker> = (0..config.workers.max(1))
        .map(|i| Worker::new(config.seed, i, config.txns_per_worker))
        .collect();
    let mut sched = StdRng::seed_from_u64(config.seed ^ 0x5_C4ED);

    let mut applied: Vec<String> = Vec::new();
    let mut verdict: Result<(), ChaosFailure> = Ok(());
    let mut next_fault = 0;
    let mut step = 0;

    // Open snapshot pins, each with the committed state captured at pin
    // time — the state it must keep answering with until dropped.
    let mut snaps: Vec<PinnedSnap> = Vec::new();
    let mut snap_rng = StdRng::seed_from_u64(config.seed ^ 0x5AAB_5EED);

    'run: while step < config.max_steps {
        while next_fault < plan.faults.len() && plan.faults[next_fault].at_step <= step {
            let fault = &plan.faults[next_fault];
            next_fault += 1;
            if let Some(desc) = apply_fault(fault, &db, &injector, &mut workers, vfs.as_ref()) {
                applied.push(format!("step {step}: {desc}"));
                if config.check_after_each_fault {
                    if let Err(detail) = oracle::check(&db) {
                        verdict = Err(ChaosFailure { step, detail });
                        break 'run;
                    }
                }
            }
        }
        if config.snapshots {
            if let Err(detail) =
                step_snapshots(config, &db, vfs.as_ref(), &mut snap_rng, &mut snaps)
            {
                verdict = Err(ChaosFailure { step, detail });
                break 'run;
            }
        }
        let live: Vec<usize> =
            workers.iter().enumerate().filter(|(_, w)| !w.finished()).map(|(i, _)| i).collect();
        if live.is_empty() {
            break;
        }
        let w = live[sched.gen_range(0..live.len())];
        workers[w].step(&db, config);
        step += 1;
    }

    for w in &mut workers {
        w.teardown();
    }
    if verdict.is_ok() && config.snapshots {
        if let Err(detail) = finish_snapshots(config, &db, std::mem::take(&mut snaps)) {
            verdict = Err(ChaosFailure { step, detail });
        }
    }
    drop(snaps);
    if verdict.is_ok() {
        // Quiescence: every handle is closed; the full oracle must pass and
        // every lock table must have drained.
        if let Err(detail) = oracle::check(&db) {
            verdict = Err(ChaosFailure { step, detail });
        }
    }
    let mut wal_records = 0;
    let mut wal_hash = 0;
    if let Some(vfs) = &vfs {
        let bytes = vfs.snapshot(recovery::WAL_PATH);
        wal_records = record_count(&bytes);
        wal_hash = fnv1a(&bytes);
        if verdict.is_ok() {
            // Whatever reached the (possibly crash-cut) disk must recover
            // to the reference interpreter's committed state.
            if let Err(detail) = recovery::check_crash_recovery(&bytes) {
                verdict = Err(ChaosFailure { step, detail: format!("recovery oracle: {detail}") });
            }
        }
    }

    let stats = db.stats();
    let mut state_hash: u64 = 0xcbf2_9ce4_8422_2325;
    for (k, v) in committed_state(&db, config.keys) {
        state_hash ^= fnv1a(format!("{k}={v};").as_bytes());
        state_hash = state_hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    ChaosReport {
        seed: config.seed,
        steps: step,
        faults_applied: applied.clone(),
        commits: stats.committed,
        aborts: stats.aborted,
        audit_records: db.audit_log().map(|l| l.len()).unwrap_or(0),
        fingerprint: fingerprint(&db, &applied),
        wal_records,
        wal_hash,
        state_fingerprint: state_hash,
        lock_conflicts: stats.conflicts,
        occ_conflicts: stats.occ_conflicts,
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_run_completes_and_passes() {
        let report = run(&ChaosConfig::seeded(1));
        assert!(report.verdict.is_ok(), "{:?}", report.verdict);
        assert!(report.steps > 0);
        assert!(report.audit_records > 0);
    }

    #[test]
    fn same_seed_same_fingerprint() {
        for seed in [0, 1, 7, 99, 12345] {
            let a = run(&ChaosConfig::seeded(seed));
            let b = run(&ChaosConfig::seeded(seed));
            assert_eq!(a.fingerprint, b.fingerprint, "seed {seed} diverged");
            assert_eq!(a.steps, b.steps);
            assert_eq!(a.faults_applied, b.faults_applied);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(&ChaosConfig::seeded(2));
        let b = run(&ChaosConfig::seeded(3));
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn injector_faults_fire() {
        // Over a modest seed sweep, every fault kind must fire at least
        // once — the schedule space actually exercises all six.
        let mut seen_kinds: HashSet<&'static str> = HashSet::new();
        for seed in 0..60 {
            let report = run(&ChaosConfig { faults: 6, ..ChaosConfig::seeded(seed) });
            assert!(report.verdict.is_ok(), "seed {seed}: {:?}", report.verdict);
            for line in &report.faults_applied {
                for tag in [
                    "forced-abort",
                    "orphan-parent",
                    "lose-lock",
                    "victim-kill",
                    "shard-stall",
                    "begin-child-fail",
                ] {
                    if line.contains(tag) {
                        seen_kinds.insert(tag);
                    }
                }
            }
        }
        assert_eq!(seen_kinds.len(), 6, "only saw {seen_kinds:?}");
    }
}
