//! The serializability oracle: replay the engine's [`AuditLog`] through
//! the AAT checker and assert the paper's correctness condition plus the
//! engine-level lock invariants.
//!
//! Checks, in order:
//!
//! 1. **Theorem 9** — the log reconstructs to a `(Universe, Aat)` pair
//!    whose committed permutation is rw-data-serializable, i.e. every
//!    access is version-compatible and the sibling-data order has no
//!    nontrivial cycles;
//! 2. **Orphan views** — no *live* (non-orphan) access ever saw a value
//!    other than its counterfactual expected value;
//! 3. **Lock invariants** — after an eager `lose-lock` pass, no lock is
//!    held by a dead transaction, every write stack is an ancestor chain
//!    (so version stacks restore correctly on abort), and at quiescence
//!    all lock tables are empty.
//!
//! The oracle is sound mid-run: active transactions are simply excluded
//! from the committed permutation, so it may be invoked after every
//! injected fault, not just at quiescence.

use rnt_core::{AuditLog, Db};
use std::fmt::Debug;
use std::hash::Hash;

/// Check the Theorem-9 condition and orphan-view cleanliness on a log.
pub fn check_log(log: &AuditLog) -> Result<(), String> {
    let (universe, aat) =
        log.reconstruct().map_err(|e| format!("audit log does not reconstruct: {e:?}"))?;
    if !aat.perm().is_rw_data_serializable(&universe) {
        return Err("Theorem 9 violated: the committed permutation is not rw-data-serializable \
             (version incompatibility or a nontrivial sibling-data cycle)"
            .to_string());
    }
    let (_performs, _orphans, _anomalies, live) =
        log.orphan_view_anomalies().map_err(|e| format!("orphan-view replay failed: {e:?}"))?;
    if live != 0 {
        return Err(format!("{live} live access(es) saw an inconsistent value"));
    }
    Ok(())
}

/// Run the full oracle against a database: the audit-log checks above plus
/// the engine-level lock invariants (after an eager reap).
pub fn check<K, V>(db: &Db<K, V>) -> Result<(), String>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + Debug + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    let log = db.audit_log().ok_or("auditing is not enabled on this database")?;
    check_log(log)?;
    db.chaos_reap_all();
    let violations = db.chaos_lock_violations();
    if !violations.is_empty() {
        return Err(format!("lock invariants violated: {}", violations.join("; ")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnt_core::{DbConfig, TxnError};

    #[test]
    fn clean_run_passes() {
        let db: Db<u64, i64> = Db::with_config(DbConfig::builder().audit(true).build());
        db.insert(0, 10);
        let t = db.begin();
        let c = t.child().unwrap();
        c.rmw(&0, |v| v + 1).unwrap();
        c.commit().unwrap();
        t.commit().unwrap();
        assert_eq!(check(&db), Ok(()));
    }

    #[test]
    fn mid_run_check_is_sound() {
        let db: Db<u64, i64> = Db::with_config(DbConfig::builder().audit(true).build());
        db.insert(0, 10);
        let t = db.begin();
        t.write(&0, 99).unwrap();
        // t is still active: the oracle must not flag the in-flight write.
        assert_eq!(check(&db), Ok(()));
        t.abort();
        assert_eq!(check(&db), Ok(()));
    }

    #[test]
    fn orphaned_subtree_is_tolerated() {
        let db: Db<u64, i64> = Db::with_config(DbConfig::builder().audit(true).build());
        db.insert(0, 10);
        let t = db.begin();
        let c = t.child().unwrap();
        c.write(&0, 5).unwrap();
        // Parent aborts under the live child: c is an orphan.
        t.abort();
        assert_eq!(c.read(&0), Err(TxnError::Orphaned));
        drop(c);
        assert_eq!(check(&db), Ok(()));
        assert_eq!(db.committed_value(&0), Some(10), "orphan version discarded");
    }

    #[test]
    fn audit_required() {
        let db: Db<u64, i64> = Db::new();
        db.insert(0, 0);
        assert!(check(&db).is_err());
    }
}
