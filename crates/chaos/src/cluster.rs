//! Chaos driver for the sharded multi-node engine: seeded randomized
//! nested workloads against [`rnt_cluster::Cluster`] under the fault
//! classes of the paper's Section 9 — node crashes (fail-stop with WAL
//! recovery), delayed gossip, and network partitions — checked by four
//! oracles:
//!
//! * **differential**: every read is compared against a reference
//!   interpreter's view (committed map + the transaction's own pending
//!   writes), and the final cluster-wide snapshot must equal the
//!   reference's committed map exactly;
//! * **Theorem 9** per node: each (non-recovered) node's audit log must
//!   replay rw-data-serializably with clean orphan views, and the engine
//!   lock invariants must hold ([`crate::oracle::check`]);
//! * **Theorem 29 embedding**: each node's remote-commit apply order
//!   must be a strictly increasing subsequence of the cluster commit
//!   log;
//! * **level-5 trace**: the run's journal must validate under the
//!   distributed checker (event preconditions + `summary_le_tree`).
//!
//! Every run is a pure function of its seed: the report's fingerprint is
//! replay-stable, which the sweep asserts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnt_cluster::{Cluster, ClusterConfig, ClusterTxn, GossipPolicy};
use rnt_core::{DbConfig, DeadlockPolicy, Durability};
use std::collections::BTreeMap;

/// Which fault class a run injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterFaultClass {
    /// No injected faults (baseline; lazy gossip still stresses lock
    /// retention).
    None,
    /// Fail-stop node crashes with WAL recovery, including crashes that
    /// strand committed-but-undelivered statuses (redo path) and crashes
    /// under live transactions (cluster-wide force-abort).
    NodeCrash,
    /// Per-link delivery delays (head-of-line, order preserving).
    DelayedGossip,
    /// Blocked links; deliveries pile up until healed.
    Partition,
    /// All of the above, chosen per injection point.
    Mixed,
}

/// Configuration of one cluster chaos run.
#[derive(Clone, Copy, Debug)]
pub struct ClusterChaosConfig {
    /// The seed — the run is a pure function of it.
    pub seed: u64,
    /// Node count.
    pub nodes: usize,
    /// Cluster transactions to attempt.
    pub txns: usize,
    /// Key-space size (keys `0..keys`, all seeded to 0).
    pub keys: u64,
    /// The fault class to inject.
    pub fault: ClusterFaultClass,
}

impl Default for ClusterChaosConfig {
    fn default() -> Self {
        ClusterChaosConfig {
            seed: 0,
            nodes: 4,
            txns: 14,
            keys: 24,
            fault: ClusterFaultClass::Mixed,
        }
    }
}

/// The outcome of one run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterChaosReport {
    /// Cluster transactions committed.
    pub commits: u64,
    /// Cluster transactions aborted (injected, forced, or natural
    /// NoWait deaths).
    pub aborts: u64,
    /// Node crashes injected.
    pub crashes: u32,
    /// Node recoveries performed.
    pub recoveries: u32,
    /// Link faults (delays/partitions) injected.
    pub link_faults: u32,
    /// Committed deliveries re-applied as redo after a crash.
    pub redo_applied: u64,
    /// Level-5 events the validated journal expanded to.
    pub trace_events: usize,
    /// Order-sensitive hash of the final committed state and the commit
    /// and delivery logs: equal ⇔ identical runs.
    pub fingerprint: u64,
}

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// What one (sub)transaction level did.
enum LevelOutcome {
    /// Still live; its pending writes (to merge on commit).
    Live(BTreeMap<u64, i64>),
    /// Died mid-flight (lock death, unavailable node, doomed txn).
    Dead,
}

struct Driver {
    cluster: Cluster<u64, i64>,
    rng: StdRng,
    cfg: ClusterChaosConfig,
    durable: bool,
    reference: BTreeMap<u64, i64>,
    tainted: Vec<bool>,
    /// node → txn index at which to recover it.
    down_until: BTreeMap<usize, usize>,
    heal_at: Option<usize>,
    next_value: i64,
    commits: u64,
    aborts: u64,
    crashes: u32,
    recoveries: u32,
    link_faults: u32,
}

impl Driver {
    fn up_count(&self) -> usize {
        (0..self.cfg.nodes).filter(|&n| self.cluster.node_up(n)).count()
    }

    /// Inject (maybe) one fault before a transaction.
    fn inject(&mut self, now: usize) {
        let class = match self.cfg.fault {
            ClusterFaultClass::None => return,
            ClusterFaultClass::Mixed => match self.rng.gen_range(0..3u8) {
                0 => ClusterFaultClass::NodeCrash,
                1 => ClusterFaultClass::DelayedGossip,
                _ => ClusterFaultClass::Partition,
            },
            other => other,
        };
        if !self.rng.gen_bool(0.35) {
            return;
        }
        match class {
            ClusterFaultClass::NodeCrash if self.durable && self.up_count() > 1 => {
                let victim = loop {
                    let n = self.rng.gen_range(0..self.cfg.nodes);
                    if self.cluster.node_up(n) {
                        break n;
                    }
                };
                self.cluster.crash_node(victim);
                self.tainted[victim] = true;
                self.crashes += 1;
                let back = now + self.rng.gen_range(1..4usize);
                self.down_until.insert(victim, back);
            }
            ClusterFaultClass::DelayedGossip => {
                let from = self.rng.gen_range(0..self.cfg.nodes);
                let to = self.rng.gen_range(0..self.cfg.nodes);
                let rounds = self.rng.gen_range(1..4);
                self.cluster.set_link_delay(from, to, rounds);
                self.link_faults += 1;
                self.heal_at = Some(now + self.rng.gen_range(1..4usize));
            }
            ClusterFaultClass::Partition => {
                let from = self.rng.gen_range(0..self.cfg.nodes);
                let to = self.rng.gen_range(0..self.cfg.nodes);
                self.cluster.set_link_blocked(from, to, true);
                self.link_faults += 1;
                self.heal_at = Some(now + self.rng.gen_range(1..5usize));
            }
            _ => {}
        }
    }

    /// Recover nodes and heal links whose schedule came due.
    fn service_schedules(&mut self, now: usize) -> Result<(), String> {
        let due: Vec<usize> =
            self.down_until.iter().filter(|&(_, &at)| at <= now).map(|(&n, _)| n).collect();
        for node in due {
            self.down_until.remove(&node);
            self.cluster.recover_node(node).map_err(|e| format!("recovery failed: {e}"))?;
            self.recoveries += 1;
        }
        if self.heal_at.is_some_and(|at| at <= now) {
            self.heal_at = None;
            self.cluster.heal_links();
        }
        Ok(())
    }

    /// The reference view of `key` under the pending-write stack.
    fn view(&self, outer: &[&BTreeMap<u64, i64>], key: u64) -> i64 {
        for level in outer.iter().rev() {
            if let Some(&v) = level.get(&key) {
                return v;
            }
        }
        self.reference.get(&key).copied().unwrap_or(0)
    }

    /// Run one nesting level of one transaction. `Err` means an oracle
    /// violation (differential mismatch); `Dead` is a legitimate death.
    fn exec_level(
        &mut self,
        handle: &ClusterTxn<u64, i64>,
        depth: usize,
        outer: &[&BTreeMap<u64, i64>],
    ) -> Result<LevelOutcome, String> {
        let mut writes: BTreeMap<u64, i64> = BTreeMap::new();
        let steps = self.rng.gen_range(1..=5);
        for _ in 0..steps {
            let key = self.rng.gen_range(0..self.cfg.keys);
            let roll = self.rng.gen_range(0..100u32);
            if roll < 45 {
                let value = self.next_value;
                self.next_value += 1;
                match handle.put(&key, value) {
                    Ok(_) => {
                        writes.insert(key, value);
                    }
                    Err(_) => return Ok(LevelOutcome::Dead),
                }
            } else if roll < 75 {
                let mut stack: Vec<&BTreeMap<u64, i64>> = outer.to_vec();
                stack.push(&writes);
                let expected = self.view(&stack, key);
                match handle.get(&key) {
                    Ok(seen) if seen == expected => {}
                    Ok(seen) => {
                        return Err(format!(
                            "differential mismatch: key {key} read {seen}, expected {expected}"
                        ));
                    }
                    Err(_) => return Ok(LevelOutcome::Dead),
                }
            } else if roll < 88 && depth < 2 {
                let Ok(child) = handle.child() else { return Ok(LevelOutcome::Dead) };
                let mut stack: Vec<&BTreeMap<u64, i64>> = outer.to_vec();
                stack.push(&writes);
                let outcome = self.exec_level(&child, depth + 1, &stack)?;
                match outcome {
                    LevelOutcome::Live(child_writes) => {
                        if self.rng.gen_bool(0.25) {
                            child.abort();
                        } else if child.commit().is_ok() {
                            writes.extend(child_writes);
                        }
                    }
                    LevelOutcome::Dead => child.abort(),
                }
            } else if self.durable
                && matches!(self.cfg.fault, ClusterFaultClass::NodeCrash | ClusterFaultClass::Mixed)
                && self.up_count() > 1
                && self.rng.gen_bool(0.3)
            {
                // Mid-transaction crash: dooms this very transaction if
                // the victim hosts one of its participants.
                let victim = loop {
                    let n = self.rng.gen_range(0..self.cfg.nodes);
                    if self.cluster.node_up(n) {
                        break n;
                    }
                };
                self.cluster.crash_node(victim);
                self.tainted[victim] = true;
                self.crashes += 1;
                self.down_until.insert(victim, usize::MAX); // re-scheduled below
            }
        }
        Ok(LevelOutcome::Live(writes))
    }

    fn exec_txn(&mut self, now: usize) -> Result<(), String> {
        let txn = self.cluster.begin();
        match self.exec_level(&txn, 0, &[])? {
            LevelOutcome::Live(writes) => {
                if self.rng.gen_bool(0.15) {
                    txn.abort();
                    self.aborts += 1;
                } else {
                    match txn.commit() {
                        Ok(()) => {
                            self.reference.extend(writes);
                            self.commits += 1;
                        }
                        Err(_) => self.aborts += 1,
                    }
                }
            }
            LevelOutcome::Dead => {
                txn.abort();
                self.aborts += 1;
            }
        }
        // Give mid-transaction crash victims a concrete comeback time.
        let comebacks: Vec<usize> =
            self.down_until.iter().filter(|&(_, &at)| at == usize::MAX).map(|(&n, _)| n).collect();
        for node in comebacks {
            self.down_until.insert(node, now + self.rng.gen_range(1..4usize));
        }
        Ok(())
    }
}

/// Run one seeded cluster chaos walk; `Err` carries the first oracle
/// violation.
pub fn run_cluster_chaos(cfg: &ClusterChaosConfig) -> Result<ClusterChaosReport, String> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let durable = matches!(cfg.fault, ClusterFaultClass::NodeCrash | ClusterFaultClass::Mixed);
    let gossip = match rng.gen_range(0..3u8) {
        0 => GossipPolicy::EagerFull,
        1 => GossipPolicy::DeltaOnChange,
        _ => GossipPolicy::Periodic(rng.gen_range(1..4)),
    };
    let node_config = DbConfig::builder()
        .policy(DeadlockPolicy::NoWait)
        .audit(true)
        .durability(if durable { Durability::Wal } else { Durability::None })
        .build();
    let cluster_config =
        ClusterConfig::new(cfg.nodes).gossip(gossip).node_config(node_config).trace(true);
    let cluster: Cluster<u64, i64> = if durable {
        Cluster::new_durable(cluster_config).map_err(|e| format!("open failed: {e}"))?
    } else {
        Cluster::new(cluster_config)
    };
    for k in 0..cfg.keys {
        cluster.insert(k, 0);
    }
    let mut reference = BTreeMap::new();
    for k in 0..cfg.keys {
        reference.insert(k, 0);
    }

    let mut driver = Driver {
        cluster,
        rng,
        cfg: *cfg,
        durable,
        reference,
        tainted: vec![false; cfg.nodes],
        down_until: BTreeMap::new(),
        heal_at: None,
        next_value: 1,
        commits: 0,
        aborts: 0,
        crashes: 0,
        recoveries: 0,
        link_faults: 0,
    };

    for now in 0..cfg.txns {
        driver.service_schedules(now)?;
        driver.inject(now);
        driver.exec_txn(now)?;
        if driver.rng.gen_bool(0.5) {
            driver.cluster.pump();
        }
        // Mid-run Theorem-9 oracle on pristine (never-crashed) nodes.
        if now % 8 == 7 {
            for node in 0..cfg.nodes {
                if !driver.tainted[node] && driver.cluster.node_up(node) {
                    crate::oracle::check(&driver.cluster.node(node))
                        .map_err(|e| format!("node {node} oracle (mid-run): {e}"))?;
                }
            }
        }
    }

    // Quiesce: everyone back up, links healed, router drained.
    let down: Vec<usize> = driver.down_until.keys().copied().collect();
    for node in down {
        driver.cluster.recover_node(node).map_err(|e| format!("final recovery: {e}"))?;
        driver.recoveries += 1;
    }
    driver.down_until.clear();
    driver.cluster.heal_links();
    driver.cluster.flush();

    // Differential: the cluster-wide snapshot equals the reference map.
    let snap = driver.cluster.snapshot().map_err(|e| format!("final snapshot: {e:?}"))?;
    for k in 0..cfg.keys {
        let got = snap.read(&k);
        let want = driver.reference.get(&k).copied();
        if got != want {
            return Err(format!("final differential mismatch: key {k} is {got:?}, want {want:?}"));
        }
    }

    // Theorem-9 oracle per pristine node.
    for node in 0..cfg.nodes {
        if !driver.tainted[node] {
            crate::oracle::check(&driver.cluster.node(node))
                .map_err(|e| format!("node {node} oracle: {e}"))?;
        }
    }

    // Theorem-29 embedding: per-node apply order ⊑ cluster commit order.
    let commit_log = driver.cluster.commit_log();
    for node in 0..cfg.nodes {
        let log = driver.cluster.delivery_log(node);
        if !log.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(format!("node {node} applied remote commits out of order: {log:?}"));
        }
        let mut walk = commit_log.iter();
        for entry in &log {
            if !walk.any(|e| e == entry) {
                return Err(format!(
                    "delivery {entry:?} at node {node} does not embed into the commit log"
                ));
            }
        }
    }

    // Level-5 trace validation (deep for small journals).
    let report =
        driver.cluster.validate_trace(false).map_err(|e| format!("level-5 trace invalid: {e}"))?;
    if report.events <= 2000 {
        driver
            .cluster
            .validate_trace(true)
            .map_err(|e| format!("level-5 composed simulation failed: {e}"))?;
    }

    let stats = driver.cluster.stats();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (k, v) in &driver.reference {
        fnv(&mut h, &k.to_le_bytes());
        fnv(&mut h, &v.to_le_bytes());
    }
    for (cseq, ctid) in &commit_log {
        fnv(&mut h, &cseq.to_le_bytes());
        fnv(&mut h, &ctid.to_le_bytes());
    }
    for node in 0..cfg.nodes {
        for (cseq, _) in driver.cluster.delivery_log(node) {
            fnv(&mut h, &cseq.to_le_bytes());
        }
    }
    fnv(&mut h, &stats.router.sends.to_le_bytes());
    fnv(&mut h, &(report.events as u64).to_le_bytes());

    Ok(ClusterChaosReport {
        commits: driver.commits,
        aborts: driver.aborts,
        crashes: driver.crashes,
        recoveries: driver.recoveries,
        link_faults: driver.link_faults,
        redo_applied: stats.router.redo_applied,
        trace_events: report.events,
        fingerprint: h,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_run_is_clean() {
        let report = run_cluster_chaos(&ClusterChaosConfig {
            seed: 7,
            fault: ClusterFaultClass::None,
            ..Default::default()
        })
        .expect("clean run");
        assert!(report.commits > 0);
        assert_eq!(report.crashes, 0);
    }

    #[test]
    fn deterministic_replay() {
        let cfg = ClusterChaosConfig { seed: 42, ..Default::default() };
        let a = run_cluster_chaos(&cfg).expect("run a");
        let b = run_cluster_chaos(&cfg).expect("run b");
        assert_eq!(a, b, "same seed must replay identically");
    }
}
