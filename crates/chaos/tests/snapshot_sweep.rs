//! Seeded schedule sweep with lock-free snapshot readers interleaved into
//! the chaos workload: every run opens/reads/drops pinned snapshots
//! between scheduler steps while faulty writers commit, abort, orphan
//! subtrees, lose locks, and (in the WAL arms) crash the simulated disk.
//!
//! The oracle chain per run: each pinned snapshot stays frozen at the
//! state captured when it was opened (for WAL runs, cross-checked against
//! the reference interpreter's state at the pinned epoch); after all pins
//! drop, epoch GC collapses every chain to length 1 with version counters
//! conserving; and the usual lock-invariant + recovery oracles still pass.
//! Together with `crash_matrix.rs` this covers the ISSUE acceptance bar of
//! 2k+ seeded schedules including aborts, orphans, and crash/recover.

use rnt_chaos::{run, run_with_plan, ChaosConfig, FaultEvent, FaultKind, FaultPlan};

#[test]
fn snapshot_seed_sweep_in_memory() {
    // 1000 seeds, no WAL: snapshots vs the full injector fault mix.
    for seed in 0..1000u64 {
        let report = run(&ChaosConfig::seeded_snapshots(seed));
        assert!(report.verdict.is_ok(), "seed {seed}: {:?}", report.verdict);
    }
}

#[test]
fn snapshot_seed_sweep_wal() {
    // 1000 seeds, WAL-backed: adds the per-pin reference-trace epoch
    // cross-check and the post-run recovery oracle.
    for seed in 0..1000u64 {
        let report = run(&ChaosConfig::seeded_wal_snapshots(seed));
        assert!(report.verdict.is_ok(), "seed {seed}: {:?}", report.verdict);
        assert!(report.wal_records > 0, "seed {seed} logged nothing");
    }
}

#[test]
fn snapshot_runs_survive_machine_crashes() {
    // 200 seeds with an explicit machine-crash fault spliced into the
    // plan: snapshots are open (with live pins) when the disk dies; the
    // engine keeps serving them from RAM and the cut log still recovers.
    let mut crashed_runs = 0;
    for seed in 0..200u64 {
        let config = ChaosConfig::seeded_wal_snapshots(seed);
        let mut plan = FaultPlan::generate(
            seed,
            config.faults,
            config.horizon(),
            config.workers,
            config.max_depth + 1,
        );
        let at_step = 3 + (seed as usize % 25);
        let record = 8 + seed % 40;
        plan.faults.push(FaultEvent { at_step, kind: FaultKind::CrashAfterRecord { record } });
        plan.faults.sort_by_key(|f| f.at_step);
        let report = run_with_plan(&config, &plan);
        assert!(report.verdict.is_ok(), "seed {seed}: {:?}", report.verdict);
        if report.faults_applied.iter().any(|f| f.contains("crash-after-record")) {
            crashed_runs += 1;
        }
    }
    assert!(crashed_runs >= 100, "only {crashed_runs}/200 runs actually crashed");
}

#[test]
fn snapshots_leave_schedules_unperturbed_when_disabled() {
    // The snapshot walker must be a pure overlay: with `snapshots: false`
    // the fingerprints are identical to a config that never knew about it.
    for seed in [0u64, 3, 17] {
        let plain = run(&ChaosConfig::seeded(seed));
        let defaulted = run(&ChaosConfig { snapshots: false, ..ChaosConfig::seeded(seed) });
        assert_eq!(plain.fingerprint, defaulted.fingerprint);
    }
}

#[test]
fn snapshot_schedules_are_deterministic() {
    for seed in [1u64, 42, 777] {
        let a = run(&ChaosConfig::seeded_wal_snapshots(seed));
        let b = run(&ChaosConfig::seeded_wal_snapshots(seed));
        assert_eq!(a.fingerprint, b.fingerprint, "seed {seed} diverged");
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.verdict, b.verdict);
    }
}
