//! Property-based crash recovery: any random nested-transaction workload
//! (the rnt-sim script generator), crashed at any record boundary or any
//! byte offset, must recover to exactly the committed prefix state —
//! and recovering the full, uncrashed log must reproduce the live
//! database's final committed state.

use proptest::prelude::*;
use rnt_chaos::recovery::{check_crash_recovery, WAL_PATH};
use rnt_core::{Db, DbConfig, DeadlockPolicy, Durability};
use rnt_sim::reference::ScriptOp;
use rnt_wal::faults::{cut_at_record, record_count};
use rnt_wal::MemVfs;
use std::sync::Arc;

fn op_strategy(keys: u64) -> impl Strategy<Value = ScriptOp> {
    prop_oneof![
        3 => Just(ScriptOp::Begin),
        2 => (0..keys).prop_map(ScriptOp::Read),
        4 => (0..keys, -9i64..10).prop_map(|(k, d)| ScriptOp::Add(k, d)),
        3 => (0..keys, -99i64..100).prop_map(|(k, v)| ScriptOp::Write(k, v)),
        3 => Just(ScriptOp::Commit),
        2 => Just(ScriptOp::Abort),
    ]
}

/// Run a script single-threaded against a WAL-backed engine. Transactions
/// left open at the end stay open (in flight at the crash) unless
/// `close_all`, which commits them inside-out. Returns the raw log bytes
/// and the live committed state.
fn run_script_wal(
    keys: u64,
    script: &[ScriptOp],
    close_all: bool,
) -> (Vec<u8>, Vec<(u64, Option<i64>)>) {
    let vfs = Arc::new(MemVfs::new());
    let config = DbConfig::builder()
        .policy(DeadlockPolicy::NoWait)
        .audit(true)
        .durability(Durability::Wal)
        .build();
    let db: Db<u64, i64> = Db::open_with_vfs(vfs.clone(), WAL_PATH, config).expect("open");
    for k in 0..keys {
        db.insert(k, k as i64 * 10);
    }
    let mut open: Vec<rnt_core::Txn<u64, i64>> = Vec::new();
    for op in script {
        match op {
            ScriptOp::Begin => {
                let txn = match open.last() {
                    None => db.begin(),
                    Some(parent) => match parent.child() {
                        Ok(c) => c,
                        Err(_) => continue,
                    },
                };
                open.push(txn);
            }
            ScriptOp::Read(k) => {
                if let Some(txn) = open.last() {
                    let _ = txn.read(k);
                }
            }
            ScriptOp::Add(k, d) => {
                if let Some(txn) = open.last() {
                    let _ = txn.rmw(k, |v| v.wrapping_add(*d));
                }
            }
            ScriptOp::Write(k, v) => {
                if let Some(txn) = open.last() {
                    let _ = txn.write(k, *v);
                }
            }
            ScriptOp::Commit => {
                if let Some(txn) = open.pop() {
                    let _ = txn.commit();
                }
            }
            ScriptOp::Abort => {
                if let Some(txn) = open.pop() {
                    txn.abort();
                }
            }
        }
    }
    if close_all {
        while let Some(txn) = open.pop() {
            let _ = txn.commit();
        }
    } else {
        // Leave them in flight: forgetting the handles suppresses the
        // drop-abort, so no Abort records land — a genuine crash shape.
        for txn in open.drain(..) {
            std::mem::forget(txn);
        }
    }
    let live: Vec<(u64, Option<i64>)> = (0..keys).map(|k| (k, db.committed_value(&k))).collect();
    (vfs.snapshot(WAL_PATH), live)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any workload × any record-boundary crash point → the recovery
    /// oracle accepts (differential vs reference, no uncommitted writes
    /// visible, lock invariants, recover ∘ recover ≡ recover).
    #[test]
    fn any_workload_any_record_cut_recovers(
        keys in 1u64..5,
        script in prop::collection::vec(op_strategy(4), 0..70),
        cut_pick in 0u64..1_000_000,
    ) {
        let (bytes, _live) = run_script_wal(keys, &script, false);
        let total = record_count(&bytes);
        let cut = (cut_pick as usize) % (total + 1);
        let prefix = cut_at_record(&bytes, cut);
        if let Err(e) = check_crash_recovery(&prefix) {
            prop_assert!(false, "cut after record {cut}/{total}: {e}");
        }
    }

    /// Any workload × any *byte* crash point → the torn tail is dropped
    /// and the surviving prefix recovers.
    #[test]
    fn any_workload_any_byte_cut_recovers(
        keys in 1u64..5,
        script in prop::collection::vec(op_strategy(4), 0..70),
        cut_pick in 0u64..1_000_000,
    ) {
        let (bytes, _live) = run_script_wal(keys, &script, false);
        let len = (cut_pick as usize) % (bytes.len() + 1);
        if let Err(e) = check_crash_recovery(&bytes[..len]) {
            prop_assert!(false, "cut after byte {len}/{}: {e}", bytes.len());
        }
    }

    /// Recovering the complete log of a fully-closed run reproduces the
    /// live database's committed state exactly.
    #[test]
    fn full_log_recovery_equals_live_state(
        keys in 1u64..5,
        script in prop::collection::vec(op_strategy(4), 0..70),
    ) {
        let (bytes, live) = run_script_wal(keys, &script, true);
        let vfs = Arc::new(MemVfs::new());
        vfs.install(WAL_PATH, bytes.clone());
        let config = DbConfig::builder()
            .policy(DeadlockPolicy::NoWait)
            .audit(true)
            .durability(Durability::Wal)
            .build();
        let recovered: Db<u64, i64> =
            Db::recover_with_vfs(vfs, WAL_PATH, config).expect("recover");
        for (k, v) in &live {
            prop_assert_eq!(
                &recovered.committed_value(k), v,
                "key {} diverged after full-log recovery", k
            );
        }
        if let Err(e) = check_crash_recovery(&bytes) {
            prop_assert!(false, "full-log oracle: {e}");
        }
    }
}
