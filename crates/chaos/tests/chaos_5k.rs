//! The headline chaos suite: thousands of seeded fault schedules, each
//! checked against the Theorem-9 serializability oracle and the engine
//! lock invariants, plus determinism and shrinker coverage.

use rnt_chaos::{run, ChaosConfig};

/// ≥ 5,000 seeded fault schedules, every one oracle-clean. Oracle checks
/// run after each applied fault and at quiescence.
#[test]
fn five_thousand_fault_schedules_satisfy_the_oracle() {
    let mut failures = Vec::new();
    for seed in 0..5_000u64 {
        let report = run(&ChaosConfig::seeded(seed));
        if let Err(failure) = report.verdict {
            failures.push((seed, failure));
            if failures.len() > 5 {
                break;
            }
        }
    }
    assert!(
        failures.is_empty(),
        "oracle failures (reproduce with `cargo test -p rnt-chaos --test repro -- --seed <n>`): \
         {failures:?}"
    );
}

/// Same seed ⇒ identical schedule (fingerprint covers the full audit log
/// and fault trace) and identical verdict.
#[test]
fn schedules_are_fully_deterministic() {
    for i in 0..150u64 {
        let seed = i.wrapping_mul(37) ^ 0xD15C0;
        let a = run(&ChaosConfig::seeded(seed));
        let b = run(&ChaosConfig::seeded(seed));
        assert_eq!(a.fingerprint, b.fingerprint, "seed {seed}: schedule diverged");
        assert_eq!(a.steps, b.steps, "seed {seed}: step count diverged");
        assert_eq!(a.faults_applied, b.faults_applied, "seed {seed}: fault trace diverged");
        assert_eq!(
            format!("{:?}", a.verdict),
            format!("{:?}", b.verdict),
            "seed {seed}: verdict diverged"
        );
    }
}

/// Heavier trees under a denser fault schedule stay oracle-clean.
#[test]
fn deep_trees_under_heavy_faults() {
    for seed in 0..300u64 {
        let report = run(&ChaosConfig {
            max_depth: 5,
            ops_per_txn: 12,
            faults: 10,
            workers: 4,
            ..ChaosConfig::seeded(seed)
        });
        assert!(report.verdict.is_ok(), "seed {seed}: {:?}", report.verdict);
    }
}
