//! Property-based sequencer checks: arbitrary thread counts, arrival
//! staggers, and batch configurations (`max_batch` × `max_batch_wait`),
//! all of which must preserve the pipeline's contract:
//!
//! * **conservation** — no commit is lost or invented: every `commit()`
//!   call returns, `commits_staged == commits_batched`, and every
//!   thread's writes are all in the committed state;
//! * **force-before-ack** — under [`Durability::WalFsync`] the pipeline
//!   issues exactly one fsync per retired batch (`wal_fsyncs ==
//!   commit_batches`), and no acked commit is missing from the log;
//! * **epoch order = log order** — the independent reference interpreter
//!   rejects any log whose commit epochs are not strictly increasing in
//!   record order, so a passing [`reference_trace`] *is* the ordering
//!   proof; its committed state must equal the live engine's;
//! * **bounded batches** — no `BatchCommit` frame carries more than
//!   `max_batch` participants.

use proptest::prelude::*;
use rnt_chaos::recovery::{reference_trace, WAL_PATH};
use rnt_core::{Db, DbConfig, DeadlockPolicy, Durability};
use rnt_wal::{scan, MemVfs, Record};
use std::sync::Arc;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sequencer_contract_holds(
        threads in 1usize..7,
        commits_per in 1usize..5,
        max_batch in 1usize..9,
        wait_us in 0u64..400,
        staggers in prop::collection::vec(0u64..150, 6),
    ) {
        let vfs = Arc::new(MemVfs::new());
        let config = DbConfig::builder()
            .policy(DeadlockPolicy::NoWait)
            .durability(Durability::WalFsync)
            .group_commit(true)
            .max_batch(max_batch)
            .max_batch_wait(Duration::from_micros(wait_us))
            .build();
        let db = Arc::new(
            Db::<u64, i64>::open_with_vfs(vfs.clone(), WAL_PATH, config).expect("open"),
        );
        for k in 0..threads as u64 {
            db.insert(k, 0);
        }
        let handles: Vec<_> = (0..threads as u64)
            .map(|k| {
                let db = db.clone();
                let stagger = staggers[k as usize % staggers.len()];
                std::thread::spawn(move || {
                    // Perturb the arrival order: who stages first (and so
                    // who leads) varies across cases.
                    std::thread::sleep(Duration::from_micros(stagger));
                    for _ in 0..commits_per {
                        let t = db.begin();
                        t.rmw(&k, |v| v + 1).unwrap();
                        t.commit().unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let total = (threads * commits_per) as u64;
        let stats = db.stats();
        prop_assert_eq!(stats.commits_staged, total, "every top-level commit staged");
        prop_assert_eq!(
            stats.commits_batched, total,
            "conservation: staged = retired"
        );
        prop_assert_eq!(
            stats.wal_fsyncs, stats.commit_batches,
            "exactly one force per retired batch"
        );
        prop_assert!(
            stats.commit_batches * max_batch as u64 >= total,
            "{} batches of ≤{} cannot carry {} commits",
            stats.commit_batches, max_batch, total
        );
        prop_assert_eq!(db.epochs().watermark, total, "one epoch per top-level commit");
        for k in 0..threads as u64 {
            prop_assert_eq!(
                db.committed_value(&k), Some(commits_per as i64),
                "thread {}'s acked commits must all be in the committed state", k
            );
        }

        // The log side: bounded frames, and the reference interpreter's
        // strictly-increasing-epoch rule doubles as the ordering oracle.
        let bytes = vfs.snapshot(WAL_PATH);
        let (records, _) = scan(&bytes).expect("live log scans clean");
        for r in &records {
            if let Record::BatchCommit { commits } = r {
                prop_assert!(commits.len() >= 2, "singleton batches log plain Commits");
                prop_assert!(
                    commits.len() <= max_batch,
                    "a frame with {} participants exceeds max_batch {}",
                    commits.len(), max_batch
                );
            }
        }
        let trace = reference_trace(&records);
        prop_assert!(
            trace.is_ok(),
            "reference interpreter rejected the engine log (epoch order ≠ log order?): {:?}",
            trace.err()
        );
        let trace = trace.unwrap();
        prop_assert_eq!(trace.max_epoch(), total);
        let committed = trace.committed();
        for k in 0..threads as u64 {
            prop_assert_eq!(
                committed.get(&k).copied(), Some(commits_per as i64),
                "log-derived state diverges from acked commits at key {}", k
            );
        }
    }
}
