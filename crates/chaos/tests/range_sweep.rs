//! Differential validation of the ordered keyspace: range scans and
//! time-travel snapshots against the chaos reference interpreter.
//!
//! Three layers:
//!
//! 1. **Seeded sweeps** (fresh seed windows, disjoint from
//!    `snapshot_sweep.rs`): the snapshot walker's range re-reads,
//!    time-travel reopens, and quiescent full scans run against the full
//!    fault mix — in memory, WAL-backed, and with machine crashes spliced
//!    into the plan. Each WAL run ends in the recovery oracle, which now
//!    demands the rebuilt ordered index walk the reference state in key
//!    order and that `recover ∘ recover` rebuild the identical index.
//! 2. **Property tests**: for any random committed history,
//!    `Snapshot::range(a..b)` at any pinned epoch equals the reference
//!    interpreter's `state_at(epoch)` filtered to `[a, b)` in key order —
//!    live, and again after recovering the full log.
//! 3. **Batch publication**: under multithreaded group commit, snapshots
//!    never observe a half-published transaction and never pin an epoch
//!    strictly inside a `BatchCommit` epoch run.

use proptest::prelude::*;
use rnt_chaos::recovery::{check_crash_recovery, reference_trace, WAL_PATH};
use rnt_chaos::{run, run_with_plan, ChaosConfig, FaultEvent, FaultKind, FaultPlan};
use rnt_core::{Db, DbConfig, DeadlockPolicy, Durability, Snapshot};
use rnt_sim::reference::ScriptOp;
use rnt_wal::{scan, MemVfs, Record};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn range_seed_sweep_in_memory() {
    // 1000 seeds beyond snapshot_sweep's window: the walker's range
    // re-reads and time-travel reopens vs the full injector fault mix.
    for seed in 1000..2000u64 {
        let report = run(&ChaosConfig::seeded_snapshots(seed));
        assert!(report.verdict.is_ok(), "seed {seed}: {:?}", report.verdict);
    }
}

#[test]
fn range_seed_sweep_wal() {
    // 1000 WAL-backed seeds: adds the per-pin reference-trace epoch
    // cross-check and the recovery oracle's ordered-index obligations.
    for seed in 1000..2000u64 {
        let report = run(&ChaosConfig::seeded_wal_snapshots(seed));
        assert!(report.verdict.is_ok(), "seed {seed}: {:?}", report.verdict);
        assert!(report.wal_records > 0, "seed {seed} logged nothing");
    }
}

#[test]
fn range_runs_survive_machine_crashes() {
    // 200 seeds with an explicit machine crash spliced in while range-
    // scanning snapshots hold live pins; the cut log must recover with
    // the ordered index rebuilt identically on a second recovery.
    let mut crashed_runs = 0;
    for seed in 200..400u64 {
        let config = ChaosConfig::seeded_wal_snapshots(seed);
        let mut plan = FaultPlan::generate(
            seed,
            config.faults,
            config.horizon(),
            config.workers,
            config.max_depth + 1,
        );
        let at_step = 3 + (seed as usize % 25);
        let record = 8 + seed % 40;
        plan.faults.push(FaultEvent { at_step, kind: FaultKind::CrashAfterRecord { record } });
        plan.faults.sort_by_key(|f| f.at_step);
        let report = run_with_plan(&config, &plan);
        assert!(report.verdict.is_ok(), "seed {seed}: {:?}", report.verdict);
        if report.faults_applied.iter().any(|f| f.contains("crash-after-record")) {
            crashed_runs += 1;
        }
    }
    assert!(crashed_runs >= 100, "only {crashed_runs}/200 runs actually crashed");
}

fn op_strategy(keys: u64) -> impl Strategy<Value = ScriptOp> {
    prop_oneof![
        3 => Just(ScriptOp::Begin),
        2 => (0..keys).prop_map(ScriptOp::Read),
        4 => (0..keys, -9i64..10).prop_map(|(k, d)| ScriptOp::Add(k, d)),
        3 => (0..keys, -99i64..100).prop_map(|(k, v)| ScriptOp::Write(k, v)),
        3 => Just(ScriptOp::Commit),
        2 => Just(ScriptOp::Abort),
    ]
}

/// Run a script single-threaded against a WAL-backed engine, committing
/// everything left open at the end. A snapshot pinned at genesis keeps
/// every published epoch travelable. Returns the live database, the
/// genesis pin (dropping it would let GC raise the floor), and the log.
fn run_committed_script(
    keys: u64,
    script: &[ScriptOp],
) -> (Db<u64, i64>, Snapshot<u64, i64>, Vec<u8>) {
    let vfs = Arc::new(MemVfs::new());
    let config = DbConfig::builder()
        .policy(DeadlockPolicy::NoWait)
        .audit(true)
        .durability(Durability::Wal)
        .build();
    let db: Db<u64, i64> = Db::open_with_vfs(vfs.clone(), WAL_PATH, config).expect("open");
    for k in 0..keys {
        db.insert(k, k as i64 * 10);
    }
    let genesis = db.snapshot();
    let mut open: Vec<rnt_core::Txn<u64, i64>> = Vec::new();
    for op in script {
        match op {
            ScriptOp::Begin => {
                let txn = match open.last() {
                    None => db.begin(),
                    Some(parent) => match parent.child() {
                        Ok(c) => c,
                        Err(_) => continue,
                    },
                };
                open.push(txn);
            }
            ScriptOp::Read(k) => {
                if let Some(txn) = open.last() {
                    let _ = txn.read(k);
                }
            }
            ScriptOp::Add(k, d) => {
                if let Some(txn) = open.last() {
                    let _ = txn.rmw(k, |v| v.wrapping_add(*d));
                }
            }
            ScriptOp::Write(k, v) => {
                if let Some(txn) = open.last() {
                    let _ = txn.write(k, *v);
                }
            }
            ScriptOp::Commit => {
                if let Some(txn) = open.pop() {
                    let _ = txn.commit();
                }
            }
            ScriptOp::Abort => {
                if let Some(txn) = open.pop() {
                    txn.abort();
                }
            }
        }
    }
    while let Some(txn) = open.pop() {
        let _ = txn.commit();
    }
    let bytes = vfs.snapshot(WAL_PATH);
    (db, genesis, bytes)
}

/// The reference state at `epoch`, filtered to `[lo, hi)` in key order.
fn reference_window(
    trace: &rnt_chaos::recovery::ReferenceTrace,
    epoch: u64,
    lo: u64,
    hi: u64,
) -> Vec<(u64, i64)> {
    trace.state_at(epoch).range(lo..hi).map(|(&k, &v)| (k, v)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any committed history × every published epoch × a random window:
    /// the pinned snapshot's range walk equals the reference
    /// interpreter's epoch state filtered to the window, in key order.
    #[test]
    fn any_committed_history_ranges_match_the_reference(
        keys in 2u64..8,
        script in prop::collection::vec(op_strategy(7), 0..70),
        lo_pick in 0u64..8,
        span in 0u64..9,
    ) {
        let (db, genesis, bytes) = run_committed_script(keys, &script);
        let (records, _) = scan(&bytes).expect("live log scans clean");
        let trace = reference_trace(&records).expect("reference accepts the engine log");
        let lo = lo_pick % (keys + 1);
        let hi = (lo + span).min(keys + 1);
        for epoch in 0..=trace.max_epoch() {
            let snap = db.snapshot_at(epoch).expect("pinned-at-genesis epochs stay servable");
            prop_assert_eq!(snap.epoch(), epoch);
            prop_assert_eq!(
                snap.range(lo..hi),
                reference_window(&trace, epoch, lo, hi),
                "window [{}, {}) diverges at epoch {}", lo, hi, epoch
            );
            let full: Vec<(u64, i64)> =
                trace.state_at(epoch).iter().map(|(&k, &v)| (k, v)).collect();
            prop_assert_eq!(snap.range(..), full, "full scan diverges at epoch {}", epoch);
        }
        drop(genesis);

        // After recovering the full log the ordered index comes back:
        // a fresh snapshot's range walk equals the reference committed
        // state — and the crash oracle (any-prefix variant lives in
        // prop_recovery.rs) accepts the whole log too.
        let vfs = Arc::new(MemVfs::new());
        vfs.install(WAL_PATH, bytes.clone());
        let config = DbConfig::builder()
            .policy(DeadlockPolicy::NoWait)
            .audit(true)
            .durability(Durability::Wal)
            .build();
        let recovered: Db<u64, i64> =
            Db::recover_with_vfs(vfs, WAL_PATH, config).expect("recover");
        let expect: Vec<(u64, i64)> =
            trace.committed().range(lo..hi).map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(recovered.snapshot().range(lo..hi), expect);
        if let Err(e) = check_crash_recovery(&bytes) {
            prop_assert!(false, "full-log recovery oracle: {e}");
        }
    }
}

#[test]
fn snapshots_never_observe_a_half_published_batch() {
    // Four writers own disjoint key stripes; each transaction rewrites
    // its whole stripe to one uniform stamp, and group commit coalesces
    // the publications. Concurrent scanners assert every range walk sees
    // each stripe uniform (publication is atomic even inside a batch),
    // and that every pinned epoch re-opens via `snapshot_at`.
    const WRITERS: u64 = 4;
    const STRIPE: u64 = 4;
    const ROUNDS: i64 = 40;
    let vfs = Arc::new(MemVfs::new());
    let config = DbConfig::builder()
        .policy(DeadlockPolicy::NoWait)
        .durability(Durability::Wal)
        .group_commit(true)
        .max_batch(8)
        .max_batch_wait(Duration::from_micros(500))
        .build();
    let db = Arc::new(Db::<u64, i64>::open_with_vfs(vfs.clone(), WAL_PATH, config).expect("open"));
    for k in 0..WRITERS * STRIPE {
        db.insert(k, 0);
    }
    let done = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let db = db.clone();
            std::thread::spawn(move || {
                for round in 1..=ROUNDS {
                    let stamp = w as i64 * 10_000 + round;
                    let t = db.begin();
                    for k in w * STRIPE..(w + 1) * STRIPE {
                        t.write(&k, stamp).expect("stripes are disjoint");
                    }
                    t.commit().expect("no conflicts across stripes");
                }
            })
        })
        .collect();
    let scanners: Vec<_> = (0..2)
        .map(|_| {
            let db = db.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut pinned = Vec::new();
                while !done.load(Ordering::Acquire) {
                    let snap = db.snapshot();
                    pinned.push(snap.epoch());
                    let all = snap.range(..);
                    assert_eq!(all.len(), (WRITERS * STRIPE) as usize);
                    assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "key order");
                    for w in 0..WRITERS {
                        let stripe = snap.range(w * STRIPE..(w + 1) * STRIPE);
                        assert!(
                            stripe.windows(2).all(|p| p[0].1 == p[1].1),
                            "half-published stripe visible: {stripe:?}"
                        );
                    }
                    // The pinned epoch is re-openable and identical.
                    let again = db.snapshot_at(snap.epoch()).expect("live pin stays servable");
                    assert_eq!(again.range(..), all);
                }
                pinned
            })
        })
        .collect();
    for h in writers {
        h.join().unwrap();
    }
    done.store(true, Ordering::Release);
    let pinned: Vec<u64> = scanners.into_iter().flat_map(|h| h.join().unwrap()).collect();
    assert!(!pinned.is_empty());

    // Epoch runs published by one BatchCommit frame are atomic: no
    // scanner may have pinned an epoch strictly inside one (the
    // watermark jumps from below the run to its last epoch).
    let bytes = vfs.snapshot(WAL_PATH);
    let (records, _) = scan(&bytes).expect("live log scans clean");
    let mut frames = 0usize;
    for r in &records {
        if let Record::BatchCommit { commits } = r {
            frames += 1;
            let epochs: Vec<u64> = commits.iter().map(|(_, e)| *e).collect();
            assert!(
                epochs.windows(2).all(|w| w[1] == w[0] + 1),
                "batch epochs not consecutive: {epochs:?}"
            );
            let (first, last) = (epochs[0], *epochs.last().unwrap());
            for &p in &pinned {
                assert!(
                    p < first || p >= last,
                    "snapshot pinned epoch {p} strictly inside batch run [{first}, {last}]"
                );
            }
        }
    }
    assert!(frames >= 1, "group commit never coalesced; batching untested");
    assert_eq!(db.epochs().watermark, WRITERS * ROUNDS as u64);
}
