//! The cross-CC-mode differential suite: the same seeded chaos schedule
//! is run under pessimistic locking and under optimistic
//! first-committer-wins validation, and the two executions are compared.
//!
//! What "equal" can mean differs by seed class:
//!
//! 1. **Conflict-free seeds** — if the locking run hit zero lock
//!    conflicts *and* the optimistic run hit zero validation failures,
//!    the two executions took identical control flow (the injector
//!    faults fire on the same transaction ids at the same steps, and no
//!    contention verdict ever diverted a worker), so the final committed
//!    states must be identical — compared via `state_fingerprint`, which
//!    hashes only the surviving key/value pairs. Audit fingerprints and
//!    WAL bytes are *expected* to differ across modes (optimistic logs
//!    its writes at commit, locking at access), so they are not compared.
//! 2. **Every seed** — both runs must pass the full oracle stack:
//!    Theorem-9 serializability over the audit log, lock-table
//!    quiescence, and (for WAL runs, which include machine-crash faults)
//!    the crash-recovery oracle — the raw log must replay to the
//!    reference interpreter's committed state, both for the locking log
//!    and for the optimistic log, proving the two modes share one
//!    durable format.
//!
//! The proptest half checks first-committer-wins *soundness* directly:
//! any interleaving of top-level optimistic transactions, tracked with
//! their begin/commit epochs and footprints, must satisfy "a committed
//! transaction's footprint has no foreign commit strictly inside its
//! (begin, commit) window" — and every `Conflict` abort must be genuine
//! (some footprint key really was committed in the window). The final
//! state is cross-checked against the WAL reference interpreter live and
//! again after full-log recovery.

use proptest::prelude::*;
use rnt_chaos::recovery::{check_crash_recovery, reference_committed, WAL_PATH};
use rnt_chaos::{run, ChaosConfig};
use rnt_core::{CcMode, Db, DbConfig, DeadlockPolicy, Durability, ReadView, Txn, TxnError};
use rnt_wal::MemVfs;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// Run one seed under both modes and compare. Returns whether the seed
/// was conflict-free (and therefore had its states compared).
fn differential(config: &ChaosConfig) -> bool {
    let seed = config.seed;
    let lock = run(config);
    let opt = run(&config.clone().optimistic());
    assert!(lock.verdict.is_ok(), "seed {seed} (locking): {:?}", lock.verdict);
    assert!(opt.verdict.is_ok(), "seed {seed} (optimistic): {:?}", opt.verdict);
    // Mode purity: optimistic transactions never contend on locks, and
    // locking transactions never fail validation.
    assert_eq!(opt.lock_conflicts, 0, "seed {seed}: optimistic run touched the lock manager");
    assert_eq!(lock.occ_conflicts, 0, "seed {seed}: locking run ran the validator");
    let conflict_free = lock.lock_conflicts == 0 && opt.occ_conflicts == 0;
    if conflict_free {
        assert_eq!(
            lock.state_fingerprint, opt.state_fingerprint,
            "seed {seed}: conflict-free run left different committed states across CC modes"
        );
        assert_eq!(
            (lock.commits, lock.aborts, lock.steps),
            (opt.commits, opt.aborts, opt.steps),
            "seed {seed}: conflict-free run diverged in counters across CC modes"
        );
    }
    conflict_free
}

/// ≥1000 in-memory seeds under both modes: every verdict passes, and
/// every conflict-free seed leaves the identical committed state.
#[test]
fn cc_modes_agree_across_1000_seeds() {
    let mut conflicted = 0usize;
    for seed in 0..1000u64 {
        if !differential(&ChaosConfig::seeded(seed)) {
            conflicted += 1;
        }
    }
    // The default 4-key workload must actually exercise contention —
    // otherwise the sweep proves nothing about conflicting schedules.
    assert!(conflicted > 0, "no seed produced a conflict: sweep too gentle");
}

/// WAL-backed seeds (whose fault plans include machine crashes): both
/// modes' logs must independently satisfy the crash-recovery oracle —
/// the one durable format serves both concurrency controls.
#[test]
fn cc_modes_agree_across_wal_and_crash_seeds() {
    for seed in 0..1000u64 {
        differential(&ChaosConfig::seeded_wal(seed));
    }
}

/// A low-contention sweep (wide keyspace, read-leaning) so conflict-free
/// seeds — where cross-mode state equality is actually owed and checked —
/// appear in bulk, not as a lucky accident.
#[test]
fn cc_modes_agree_on_low_contention_seeds() {
    let mut conflict_free = 0usize;
    for seed in 0..300u64 {
        let config = ChaosConfig { keys: 64, read_ratio: 0.75, ..ChaosConfig::seeded(seed) };
        if differential(&config) {
            conflict_free += 1;
        }
    }
    assert!(conflict_free > 0, "no conflict-free seed: the equality arm never ran");
}

/// Optimistic runs are as deterministic as locking ones: the same seed
/// reproduces the same audit fingerprint, WAL bytes, and final state.
#[test]
fn optimistic_runs_are_deterministic() {
    for seed in [0u64, 1, 7, 99, 12345] {
        let a = run(&ChaosConfig::seeded_wal(seed).optimistic());
        let b = run(&ChaosConfig::seeded_wal(seed).optimistic());
        assert!(a.verdict.is_ok(), "seed {seed}: {:?}", a.verdict);
        assert_eq!(a.fingerprint, b.fingerprint, "seed {seed}: audit trace diverged");
        assert_eq!(a.wal_hash, b.wal_hash, "seed {seed}: WAL bytes diverged");
        assert_eq!(a.state_fingerprint, b.state_fingerprint, "seed {seed}: state diverged");
        assert_eq!((a.commits, a.aborts, a.occ_conflicts), (b.commits, b.aborts, b.occ_conflicts));
    }
}

// ---------------------------------------------------------------------
// First-committer-wins soundness, property-based.
// ---------------------------------------------------------------------

/// One step of a multi-slot optimistic workload: up to `SLOTS` top-level
/// transactions are open at once, so their snapshot windows interleave
/// and commit-time validation has real foreign commits to catch.
#[derive(Clone, Debug)]
enum CcOp {
    Begin(usize),
    Read(usize, u64),
    Add(usize, u64, i64),
    /// Open a subtransaction under the slot, rmw one key, commit it —
    /// the child's write must merge into the parent's footprint.
    Nest(usize, u64, i64),
    Commit(usize),
    Abort(usize),
}

const SLOTS: usize = 3;
/// Keys seeded before the script runs; ops only ever touch these, so
/// every lock-free read and buffered rmw must succeed.
const KEYS: u64 = 4;

fn cc_op_strategy(keys: u64) -> impl Strategy<Value = CcOp> {
    prop_oneof![
        3 => (0..SLOTS).prop_map(CcOp::Begin),
        3 => (0..SLOTS, 0..keys).prop_map(|(s, k)| CcOp::Read(s, k)),
        4 => (0..SLOTS, 0..keys, -9i64..10).prop_map(|(s, k, d)| CcOp::Add(s, k, d)),
        2 => (0..SLOTS, 0..keys, -9i64..10).prop_map(|(s, k, d)| CcOp::Nest(s, k, d)),
        3 => (0..SLOTS).prop_map(CcOp::Commit),
        1 => (0..SLOTS).prop_map(CcOp::Abort),
    ]
}

/// A live top-level optimistic transaction plus the footprint the test
/// tracks independently of the engine.
struct Slot {
    txn: Txn<u64, i64>,
    begin: u64,
    writes: HashSet<u64>,
    reads: HashSet<u64>,
}

/// A committed transaction's validation-relevant summary.
struct CommittedTxn {
    begin: u64,
    commit: u64,
    footprint: HashSet<u64>,
}

fn fcw_db(group_commit: bool) -> (Arc<MemVfs>, Db<u64, i64>) {
    let vfs = Arc::new(MemVfs::new());
    let config = DbConfig::builder()
        .cc_mode(CcMode::Optimistic)
        .policy(DeadlockPolicy::NoWait)
        .audit(true)
        .durability(Durability::Wal)
        .group_commit(group_commit)
        .max_batch_wait(std::time::Duration::ZERO)
        .build();
    let db = Db::open_with_vfs(vfs.clone(), WAL_PATH, config).expect("open");
    (vfs, db)
}

/// Drive the script, tracking every commit's epoch window and footprint;
/// assert first-committer-wins soundness plus conflict genuineness as we
/// go, then cross-check the final state against the reference
/// interpreter live and after recovery.
fn check_fcw(keys: u64, script: &[CcOp], group_commit: bool) -> Result<(), TestCaseError> {
    let (vfs, db) = fcw_db(group_commit);
    for k in 0..keys {
        db.insert(k, k as i64 * 10);
    }
    let mut slots: Vec<Option<Slot>> = (0..SLOTS).map(|_| None).collect();
    let mut committed: Vec<CommittedTxn> = Vec::new();
    // Every committed epoch per key, in commit order.
    let mut per_key: BTreeMap<u64, Vec<u64>> = BTreeMap::new();

    let finish = |slot: Slot,
                  committed: &mut Vec<CommittedTxn>,
                  per_key: &mut BTreeMap<u64, Vec<u64>>|
     -> Result<(), TestCaseError> {
        let Slot { txn, begin, writes, reads } = slot;
        let footprint: HashSet<u64> = writes.union(&reads).copied().collect();
        match txn.commit() {
            Ok(()) => {
                // Single-threaded: the watermark right after a commit IS
                // its commit epoch.
                let commit = db.epochs().watermark;
                prop_assert!(commit > begin, "commit epoch {commit} not above begin {begin}");
                for k in &writes {
                    per_key.entry(*k).or_default().push(commit);
                }
                committed.push(CommittedTxn { begin, commit, footprint });
            }
            Err(TxnError::Conflict { begin_epoch, committed_epoch }) => {
                prop_assert_eq!(begin_epoch, begin, "Conflict reports a foreign begin epoch");
                // The abort must be genuine: some footprint key really
                // was committed after this transaction's snapshot.
                let newest = footprint
                    .iter()
                    .filter_map(|k| per_key.get(k).and_then(|v| v.last()).copied())
                    .max()
                    .unwrap_or(0);
                prop_assert!(
                    newest > begin,
                    "spurious Conflict: no footprint key committed after epoch {begin} \
                     (newest foreign commit {newest}, reported {committed_epoch})"
                );
            }
            Err(e) => prop_assert!(false, "unexpected commit error: {e}"),
        }
        Ok(())
    };

    for op in script {
        match op {
            CcOp::Begin(s) => {
                if slots[*s].is_none() {
                    let txn = db.begin();
                    let begin = ReadView::epoch(&txn);
                    slots[*s] =
                        Some(Slot { txn, begin, writes: HashSet::new(), reads: HashSet::new() });
                }
            }
            CcOp::Read(s, k) => {
                if let Some(slot) = slots[*s].as_mut() {
                    let v = slot.txn.read(k);
                    prop_assert!(v.is_ok(), "lock-free read of a seeded key failed: {v:?}");
                    slot.reads.insert(*k);
                }
            }
            CcOp::Add(s, k, d) => {
                if let Some(slot) = slots[*s].as_mut() {
                    let d = *d;
                    let v = slot.txn.rmw(k, move |v| v.wrapping_add(d));
                    prop_assert!(v.is_ok(), "buffered rmw of a seeded key failed: {v:?}");
                    slot.writes.insert(*k);
                }
            }
            CcOp::Nest(s, k, d) => {
                if let Some(slot) = slots[*s].as_mut() {
                    let d = *d;
                    let child = slot.txn.child().expect("child under a live optimistic txn");
                    child.rmw(k, move |v| v.wrapping_add(d)).expect("child rmw");
                    child.commit().expect("nested optimistic commit is merge-only");
                    slot.writes.insert(*k);
                }
            }
            CcOp::Commit(s) => {
                if let Some(slot) = slots[*s].take() {
                    finish(slot, &mut committed, &mut per_key)?;
                }
            }
            CcOp::Abort(s) => {
                if let Some(slot) = slots[*s].take() {
                    slot.txn.abort();
                }
            }
        }
    }
    for slot in slots.iter_mut() {
        if let Some(slot) = slot.take() {
            finish(slot, &mut committed, &mut per_key)?;
        }
    }

    // First-committer-wins soundness: no committed transaction's
    // footprint key carries a foreign commit strictly inside its
    // (begin, commit) snapshot window.
    for t in &committed {
        for k in &t.footprint {
            if let Some(epochs) = per_key.get(k) {
                for &e in epochs {
                    prop_assert!(
                        !(t.begin < e && e < t.commit),
                        "FCW violated: key {k} committed at epoch {e} inside another committed \
                         transaction's window ({}, {})",
                        t.begin,
                        t.commit
                    );
                }
            }
        }
    }

    // The live state must equal the reference interpreter's reading of
    // the optimistic log — one durable format, independently decoded.
    let bytes = vfs.snapshot(WAL_PATH);
    let (records, _) = rnt_wal::scan(&bytes).expect("clean log scans");
    let reference = reference_committed(&records).expect("reference accepts the optimistic log");
    for k in 0..keys {
        prop_assert_eq!(
            db.committed_value(&k),
            reference.get(&k).copied(),
            "live state diverges from the reference interpreter at key {}",
            k
        );
    }
    // And again through the engine's own replay plus the full recovery
    // oracle (differential, idempotence, lock invariants).
    if let Err(e) = check_crash_recovery(&bytes) {
        prop_assert!(false, "recovery oracle rejected the optimistic log: {e}");
    }
    let vfs2 = Arc::new(MemVfs::new());
    vfs2.install(WAL_PATH, bytes);
    let recovered: Db<u64, i64> = Db::recover_with_vfs(
        vfs2,
        WAL_PATH,
        DbConfig::builder().policy(DeadlockPolicy::NoWait).durability(Durability::Wal).build(),
    )
    .expect("recover");
    for k in 0..keys {
        prop_assert_eq!(
            recovered.committed_value(&k),
            db.committed_value(&k),
            "full-log recovery diverges from the live optimistic database at key {}",
            k
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any interleaving of overlapping top-level optimistic transactions
    /// upholds first-committer-wins, aborts only on genuine conflicts,
    /// and leaves a log both the reference interpreter and crash
    /// recovery agree with.
    #[test]
    fn first_committer_wins_is_sound(
        script in prop::collection::vec(cc_op_strategy(KEYS), 0..80),
    ) {
        check_fcw(KEYS, &script, false)?;
    }

    /// The same property with commits routed through the group-commit
    /// pipeline: batched validation must enforce the identical rule.
    #[test]
    fn first_committer_wins_is_sound_under_group_commit(
        script in prop::collection::vec(cc_op_strategy(KEYS), 0..80),
    ) {
        check_fcw(KEYS, &script, true)?;
    }
}
