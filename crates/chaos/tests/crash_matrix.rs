//! The crash-point matrix: a scripted 3-deep nested workload is run
//! against a WAL-backed engine, then the log is cut at *every* record
//! boundary — and, separately, at every byte offset — and each prefix
//! must pass the full recovery oracle (differential vs the reference
//! interpreter, lock invariants, accounting, idempotence).
//!
//! The record-boundary sweep models a clean crash between two writes; the
//! byte-offset sweep models a torn write anywhere, including inside the
//! file magic. There is no crash point the engine is allowed to lose
//! committed top-level work at, and none where uncommitted work may leak.

use rnt_chaos::recovery::{check_crash_recovery, WAL_PATH};
use rnt_chaos::{run_with_plan, ChaosConfig, FaultEvent, FaultKind, FaultPlan};
use rnt_core::{Db, DbConfig, DeadlockPolicy, Durability};
use rnt_wal::faults::{cut_at_record, record_count, record_offsets};
use rnt_wal::{frame, scan, MemVfs, Record, INIT_ACTION, MAGIC};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn wal_db() -> (Arc<MemVfs>, Db<u64, i64>) {
    let vfs = Arc::new(MemVfs::new());
    let config = DbConfig::builder()
        .policy(DeadlockPolicy::NoWait)
        .audit(true)
        .durability(Durability::Wal)
        .build();
    let db = Db::open_with_vfs(vfs.clone(), WAL_PATH, config).expect("open");
    (vfs, db)
}

/// A deterministic workload exercising every record type and transition
/// the recovery path must handle: 3-deep nesting, sibling aborts, an
/// orphaned subtree, interleaved top-level transactions, and an in-flight
/// transaction left open at the end (the crash's casualty).
fn scripted_log() -> Vec<u8> {
    let (vfs, db) = wal_db();
    for k in 0..4u64 {
        db.insert(k, k as i64 * 10);
    }

    // t1: full 3-deep chain, everything commits.
    let t1 = db.begin();
    let c1 = t1.child().unwrap();
    let g1 = c1.child().unwrap();
    g1.rmw(&0, |v| v + 1).unwrap();
    g1.commit().unwrap();
    c1.rmw(&0, |v| v * 2).unwrap();
    c1.commit().unwrap();
    t1.rmw(&1, |v| v + 5).unwrap();
    t1.commit().unwrap();

    // t2: a committed child and an aborted sibling, then top commit.
    let t2 = db.begin();
    let keep = t2.child().unwrap();
    keep.rmw(&2, |v| v + 100).unwrap();
    keep.commit().unwrap();
    let lose = t2.child().unwrap();
    lose.rmw(&3, |v| v + 100).unwrap();
    lose.abort();
    t2.commit().unwrap();

    // t3: the parent aborts under a live grandchild — an orphaned subtree.
    let t3 = db.begin();
    let c3 = t3.child().unwrap();
    let g3 = c3.child().unwrap();
    g3.rmw(&1, |v| v - 1).unwrap();
    t3.abort(); // c3 and g3 are now orphans
    drop(g3);
    drop(c3);

    // t4: committed work...
    let t4 = db.begin();
    t4.rmw(&2, |v| v - 7).unwrap();
    t4.commit().unwrap();

    // ...and t5 still in flight when the machine dies.
    let t5 = db.begin();
    let c5 = t5.child().unwrap();
    c5.rmw(&3, |v| v + 1).unwrap();
    c5.commit().unwrap();
    std::mem::forget(t5); // in flight: no Commit/Abort record ever lands

    vfs.snapshot(WAL_PATH)
}

#[test]
fn every_record_boundary_recovers() {
    let bytes = scripted_log();
    let total = record_count(&bytes);
    assert!(total >= 25, "workload too small to be interesting: {total} records");
    for cut in 0..=total {
        let prefix = cut_at_record(&bytes, cut);
        if let Err(e) = check_crash_recovery(&prefix) {
            panic!("crash after record {cut}/{total}: {e}");
        }
    }
}

#[test]
fn every_byte_offset_recovers() {
    let bytes = scripted_log();
    for len in 0..=bytes.len() {
        if let Err(e) = check_crash_recovery(&bytes[..len]) {
            panic!("crash after byte {len}/{}: {e}", bytes.len());
        }
    }
}

#[test]
fn post_checkpoint_crash_points_recover() {
    // Same sweep, but with a checkpoint in the middle of the history: cuts
    // landing after the rewrite must replay snapshot + suffix correctly.
    let (vfs, db) = wal_db();
    for k in 0..4u64 {
        db.insert(k, k as i64 * 10);
    }
    let t = db.begin();
    t.rmw(&0, |v| v + 1).unwrap();
    t.commit().unwrap();
    let live = db.begin();
    live.rmw(&1, |v| v + 1).unwrap();
    db.checkpoint().unwrap(); // re-logs `live`'s Begin + Write
    live.rmw(&2, |v| v + 1).unwrap();
    live.commit().unwrap();
    let t = db.begin();
    t.rmw(&3, |v| v + 1).unwrap();
    t.commit().unwrap();

    let bytes = vfs.snapshot(WAL_PATH);
    let total = record_count(&bytes);
    for cut in 0..=total {
        let prefix = cut_at_record(&bytes, cut);
        if let Err(e) = check_crash_recovery(&prefix) {
            panic!("crash after record {cut}/{total}: {e}");
        }
    }
}

#[test]
fn open_snapshots_at_crash_time_never_block_recovery() {
    // Snapshot pins are pure RAM: a crash with snapshots open must recover
    // exactly like one without. The pinned (superseded) versions they were
    // holding must NOT resurface in the recovered instance — its chains
    // collapse to length 1 — while the survivor process's pins stay frozen
    // and readable throughout every recovery of its log.
    let (vfs, db) = wal_db();
    for k in 0..4u64 {
        db.insert(k, k as i64 * 10);
    }
    let s0 = db.snapshot(); // pins the pre-history state
    let mut mid = None;
    for i in 0..6 {
        let t = db.begin();
        t.rmw(&(i % 4), |v| v + 1).unwrap();
        t.commit().unwrap();
        if i == 2 {
            mid = Some(db.snapshot()); // pins a mid-history epoch
        }
    }
    let mid = mid.unwrap();
    assert!(
        (0..4u64).map(|k| db.history(&k).len()).sum::<usize>() > 4,
        "the pins must be holding superseded versions for this test to bite"
    );

    let bytes = vfs.snapshot(WAL_PATH);
    let total = record_count(&bytes);
    for cut in 0..=total {
        let prefix = cut_at_record(&bytes, cut);
        if let Err(e) = check_crash_recovery(&prefix) {
            panic!("crash after record {cut}/{total} with open snapshots: {e}");
        }
        // Full-log cut: the recovered peer must agree with the survivor's
        // present, and must hold no memory of the pinned old versions.
        if cut == total {
            let fresh = Arc::new(MemVfs::new());
            fresh.install(WAL_PATH, prefix.clone());
            let config = DbConfig::builder().durability(Durability::Wal).build();
            let r = Db::<u64, i64>::recover_with_vfs(fresh, WAL_PATH, config).expect("recover");
            for k in 0..4u64 {
                assert_eq!(r.committed_value(&k), db.committed_value(&k));
                assert_eq!(r.history(&k).len(), 1, "pins must not survive a crash");
            }
            assert_eq!(r.stats().snapshot_pins_live, 0);
        }
    }
    // The survivor's pins never moved while its log was being recovered.
    assert_eq!(s0.read(&0), Some(0));
    assert_eq!(s0.read(&3), Some(30));
    assert_eq!(mid.read(&0), Some(1));
    assert_eq!(mid.read(&2), Some(21));
}

// ---- the group-commit batch crash matrix ----

fn enc_k(k: u64) -> Vec<u8> {
    rnt_wal::encode_to_vec(&k)
}

fn enc_v(v: i64) -> Vec<u8> {
    rnt_wal::encode_to_vec(&v)
}

/// A handcrafted format-03 log whose centerpiece is a three-participant
/// `BatchCommit` frame (one participant carries effects merged up from a
/// committed child), followed by a post-batch singleton commit and a
/// transaction left in flight at the crash.
fn batch_records() -> Vec<Record> {
    let mut records: Vec<Record> = (0..6u64)
        .map(|k| Record::Write {
            action: INIT_ACTION,
            key: enc_k(k),
            version: enc_v(k as i64 * 10),
        })
        .collect();
    records.extend([
        Record::Begin { action: 0, parent: None },
        Record::Write { action: 0, key: enc_k(0), version: enc_v(100) },
        Record::Begin { action: 1, parent: None },
        Record::Begin { action: 3, parent: Some(1) },
        Record::Write { action: 3, key: enc_k(1), version: enc_v(101) },
        Record::Commit { action: 3, epoch: None },
        Record::Begin { action: 2, parent: None },
        Record::Write { action: 2, key: enc_k(2), version: enc_v(102) },
        Record::BatchCommit { commits: vec![(0, 1), (1, 2), (2, 3)] },
        Record::Begin { action: 4, parent: None },
        Record::Write { action: 4, key: enc_k(3), version: enc_v(104) },
        Record::Commit { action: 4, epoch: Some(4) },
        Record::Begin { action: 5, parent: None },
        Record::Write { action: 5, key: enc_k(4), version: enc_v(105) },
    ]);
    records
}

fn encode_log(records: &[Record]) -> Vec<u8> {
    let mut bytes = MAGIC.to_vec();
    for r in records {
        bytes.extend_from_slice(&frame(r));
    }
    bytes
}

fn recover_values(bytes: &[u8], keys: u64) -> Vec<Option<i64>> {
    let vfs = Arc::new(MemVfs::new());
    vfs.install(WAL_PATH, bytes.to_vec());
    let config = DbConfig::builder().durability(Durability::Wal).build();
    let db = Db::<u64, i64>::recover_with_vfs(vfs, WAL_PATH, config).expect("recover");
    (0..keys).map(|k| db.committed_value(&k)).collect()
}

/// Every record-boundary and every byte-offset cut of a batch-bearing log
/// passes the full recovery oracle — the PR-3 matrix extended across a
/// multi-commit batch.
#[test]
fn batch_log_every_crash_point_recovers() {
    let bytes = encode_log(&batch_records());
    let total = record_count(&bytes);
    for cut in 0..=total {
        let prefix = cut_at_record(&bytes, cut);
        if let Err(e) = check_crash_recovery(&prefix) {
            panic!("crash after record {cut}/{total}: {e}");
        }
    }
    for len in 0..=bytes.len() {
        if let Err(e) = check_crash_recovery(&bytes[..len]) {
            panic!("crash after byte {len}/{}: {e}", bytes.len());
        }
    }
}

/// The all-or-nothing obligation, stated directly on recovered values: a
/// cut anywhere *inside* the batch frame recovers NONE of the three
/// participants' effects; a cut at or past the frame end recovers ALL of
/// them. No crash point exists where the batch is partially applied.
#[test]
fn batch_is_all_or_nothing_at_every_byte() {
    let records = batch_records();
    let bytes = encode_log(&records);
    let offsets = record_offsets(&bytes);
    let idx = records
        .iter()
        .position(|r| matches!(r, Record::BatchCommit { .. }))
        .expect("the log has a batch");
    let (batch_start, batch_end) = (offsets[idx], offsets[idx + 1]);
    for cut in batch_start..batch_end {
        let got = recover_values(&bytes[..cut], 3);
        assert_eq!(
            got,
            vec![Some(0), Some(10), Some(20)],
            "cut {cut} bytes in (batch frame spans {batch_start}..{batch_end}): \
             a torn batch must leave every participant unapplied"
        );
    }
    let got = recover_values(&bytes[..batch_end], 3);
    assert_eq!(
        got,
        vec![Some(100), Some(101), Some(102)],
        "the intact frame must apply every participant"
    );
}

/// The same matrix over a log the *engine* wrote: real threads group-
/// committed through the pipeline, so the `BatchCommit` frame under test
/// is production output, not a handcrafted fixture.
#[test]
fn engine_written_batch_crash_matrix() {
    const THREADS: usize = 4;
    let vfs = Arc::new(MemVfs::new());
    let config = DbConfig::builder()
        .policy(DeadlockPolicy::NoWait)
        .audit(true)
        .durability(Durability::Wal)
        .group_commit(true)
        .max_batch(THREADS)
        .max_batch_wait(Duration::from_secs(2))
        .build();
    let db = Arc::new(Db::<u64, i64>::open_with_vfs(vfs.clone(), WAL_PATH, config).expect("open"));
    for k in 0..THREADS as u64 {
        db.insert(k, k as i64 * 10);
    }
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS as u64)
        .map(|k| {
            let db = db.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let t = db.begin();
                t.rmw(&k, |v| v + 100).unwrap();
                // All writes locked in before anyone stages: every commit
                // lands inside the leader's batch window.
                barrier.wait();
                t.commit().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = db.stats();
    assert_eq!(stats.commits_staged, THREADS as u64);
    assert_eq!(stats.commits_batched, THREADS as u64, "conservation: staged = retired");
    assert!(
        stats.commit_batches < THREADS as u64,
        "no coalescing happened: {} batches for {THREADS} commits",
        stats.commit_batches
    );

    let bytes = vfs.snapshot(WAL_PATH);
    let (records, _) = scan(&bytes).expect("engine log scans");
    let batched: usize = records
        .iter()
        .filter_map(|r| match r {
            Record::BatchCommit { commits } => Some(commits.len()),
            _ => None,
        })
        .sum();
    assert!(batched >= 2, "expected a multi-participant BatchCommit frame in the engine log");

    let total = record_count(&bytes);
    for cut in 0..=total {
        let prefix = cut_at_record(&bytes, cut);
        if let Err(e) = check_crash_recovery(&prefix) {
            panic!("crash after record {cut}/{total} of the engine batch log: {e}");
        }
    }
    // Byte sweep across the batch frame itself.
    let offsets = record_offsets(&bytes);
    let idx = records
        .iter()
        .position(|r| matches!(r, Record::BatchCommit { .. }))
        .expect("position exists: scan found one above");
    for len in offsets[idx]..=offsets[idx + 1] {
        if let Err(e) = check_crash_recovery(&bytes[..len]) {
            panic!("crash {} bytes into the engine batch frame: {e}", len - offsets[idx]);
        }
    }
}

#[test]
fn driver_crash_faults_pass_the_recovery_oracle() {
    // Inject machine crashes into seeded chaos runs at varied record
    // counts: every run must still pass its oracle chain, which now ends
    // with recovery of the crash-cut log.
    let mut crashed_runs = 0;
    for seed in 0..12u64 {
        let config = ChaosConfig::seeded_wal(seed);
        let mut plan = FaultPlan::generate(
            seed,
            config.faults,
            config.horizon(),
            config.workers,
            config.max_depth + 1,
        );
        let at_step = 5 + (seed as usize % 20);
        let record = 10 + seed * 7;
        plan.faults.push(FaultEvent { at_step, kind: FaultKind::CrashAfterRecord { record } });
        plan.faults.sort_by_key(|f| f.at_step);
        let report = run_with_plan(&config, &plan);
        assert!(report.verdict.is_ok(), "seed {seed}: {:?}", report.verdict);
        if report.faults_applied.iter().any(|f| f.contains("crash-after-record")) {
            crashed_runs += 1;
            assert!(
                report.wal_records as u64 <= record + 1,
                "seed {seed}: {} records on disk after crash armed at {record}",
                report.wal_records
            );
        }
    }
    assert!(crashed_runs >= 6, "only {crashed_runs}/12 runs actually crashed");
}

#[test]
fn wal_mode_seed_sweep_passes() {
    // WAL-backed runs with the ordinary fault mix (no crash): the post-run
    // recovery oracle rides along on every run.
    for seed in 0..20u64 {
        let report = rnt_chaos::run(&ChaosConfig::seeded_wal(seed));
        assert!(report.verdict.is_ok(), "seed {seed}: {:?}", report.verdict);
        assert!(report.wal_records > 0, "seed {seed} logged nothing");
    }
}
