//! The ISSUE-10 acceptance sweep: a 4-node [`rnt_cluster::Cluster`] runs
//! 540 seeded chaos walks (180 per fault class — node-crash,
//! delayed-gossip, partition) and every run must come back clean: the
//! differential oracle, the per-node Theorem-9 oracle, the Theorem-29
//! order embedding, and the level-5 trace checker all pass.
//!
//! Set `CLUSTER_SWEEP_SEEDS` to shrink or grow the per-class seed count
//! (CI smoke uses a small value; the default is the full sweep).

use rnt_chaos::{run_cluster_chaos, ClusterChaosConfig, ClusterChaosReport, ClusterFaultClass};

fn seeds_per_class() -> u64 {
    std::env::var("CLUSTER_SWEEP_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(180)
}

fn sweep(fault: ClusterFaultClass, base: u64) -> Vec<ClusterChaosReport> {
    (0..seeds_per_class())
        .map(|i| {
            let seed = base + i;
            let cfg = ClusterChaosConfig { seed, nodes: 4, fault, ..Default::default() };
            match run_cluster_chaos(&cfg) {
                Ok(report) => report,
                Err(e) => panic!("seed {seed} ({fault:?}): {e}"),
            }
        })
        .collect()
}

#[test]
fn sweep_node_crash() {
    let reports = sweep(ClusterFaultClass::NodeCrash, 0x10_0000);
    let crashes: u32 = reports.iter().map(|r| r.crashes).sum();
    let recoveries: u32 = reports.iter().map(|r| r.recoveries).sum();
    let commits: u64 = reports.iter().map(|r| r.commits).sum();
    assert!(crashes > 0, "the crash class must actually crash nodes");
    assert_eq!(crashes, recoveries, "every crash must be recovered by quiescence");
    assert!(commits > 0);
    // The redo path (committed-but-undelivered status surviving a crash
    // of its recipient) must be exercised somewhere in the sweep.
    let redo: u64 = reports.iter().map(|r| r.redo_applied).sum();
    assert!(redo > 0, "sweep never exercised crash-redo of queued commits");
}

#[test]
fn sweep_delayed_gossip() {
    let reports = sweep(ClusterFaultClass::DelayedGossip, 0x20_0000);
    assert!(reports.iter().map(|r| r.link_faults).sum::<u32>() > 0);
    assert!(reports.iter().map(|r| r.commits).sum::<u64>() > 0);
    assert!(reports.iter().all(|r| r.crashes == 0));
}

#[test]
fn sweep_partition() {
    let reports = sweep(ClusterFaultClass::Partition, 0x30_0000);
    assert!(reports.iter().map(|r| r.link_faults).sum::<u32>() > 0);
    assert!(reports.iter().map(|r| r.commits).sum::<u64>() > 0);
    // Partitioned links force natural NoWait deaths on held locks.
    assert!(reports.iter().map(|r| r.aborts).sum::<u64>() > 0);
}

#[test]
fn sweep_is_deterministic() {
    for fault in [
        ClusterFaultClass::NodeCrash,
        ClusterFaultClass::DelayedGossip,
        ClusterFaultClass::Partition,
        ClusterFaultClass::Mixed,
    ] {
        let cfg = ClusterChaosConfig { seed: 0xD5, nodes: 4, fault, ..Default::default() };
        let a = run_cluster_chaos(&cfg).expect("first run");
        let b = run_cluster_chaos(&cfg).expect("second run");
        assert_eq!(a, b, "{fault:?}: same seed must replay identically");
    }
}

#[test]
fn sweep_scales_with_node_count() {
    for nodes in [2, 3, 4, 6] {
        let cfg = ClusterChaosConfig {
            seed: 0xA0 + nodes as u64,
            nodes,
            fault: ClusterFaultClass::Mixed,
            ..Default::default()
        };
        if let Err(e) = run_cluster_chaos(&cfg) {
            panic!("{nodes}-node mixed run: {e}");
        }
    }
}
