//! Seed-replay entry point (no libtest harness, so it owns its CLI):
//!
//! ```text
//! cargo test -p rnt-chaos --test repro -- --seed 42      # replay one seed
//! cargo test -p rnt-chaos --test repro -- --count 500    # sweep seeds 0..500
//! ```
//!
//! With no arguments, sweeps a default 100 seeds. On any failure the fault
//! schedule is shrunk to a minimal counterexample, printed, and the
//! process exits nonzero.

use rnt_chaos::{run, run_with_plan, shrink_failing_run, ChaosConfig};

fn replay(seed: u64, verbose: bool) -> bool {
    let config = ChaosConfig::seeded(seed);
    let report = run(&config);
    if verbose {
        println!(
            "seed {seed}: policy {:?}, {} steps, {} commits, {} aborts, {} audit records, fingerprint {:016x}",
            config.policy(),
            report.steps,
            report.commits,
            report.aborts,
            report.audit_records,
            report.fingerprint,
        );
        for fault in &report.faults_applied {
            println!("  fault {fault}");
        }
    }
    match report.verdict {
        Ok(()) => {
            if verbose {
                println!("seed {seed}: oracle PASSED");
            }
            true
        }
        Err(failure) => {
            eprintln!("seed {seed}: oracle FAILED at {failure}");
            match shrink_failing_run(&config) {
                Some(minimal) => {
                    eprintln!("minimal fault schedule ({} event(s)):", minimal.faults.len());
                    for f in &minimal.faults {
                        eprintln!("  step {}: {:?}", f.at_step, f.kind);
                    }
                    let rerun = run_with_plan(&config, &minimal);
                    if let Err(f) = rerun.verdict {
                        eprintln!("minimal schedule still fails: {f}");
                    }
                }
                None => eprintln!("failure did not reproduce under shrinking (flaky oracle?)"),
            }
            eprintln!("reproduce with: cargo test -p rnt-chaos --test repro -- --seed {seed}");
            false
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut seed: Option<u64> = None;
    let mut count: u64 = 100;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok());
                if seed.is_none() {
                    eprintln!("--seed needs a u64 argument");
                    std::process::exit(2);
                }
            }
            "--count" => {
                i += 1;
                count = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--count needs a u64 argument");
                    std::process::exit(2);
                });
            }
            // Ignore libtest-style flags cargo may forward (e.g. -q).
            _ => {}
        }
        i += 1;
    }

    let ok = match seed {
        Some(s) => replay(s, true),
        None => {
            let mut failures = 0u64;
            for s in 0..count {
                if !replay(s, false) {
                    failures += 1;
                }
            }
            println!("swept {count} seeds, {failures} failure(s)");
            failures == 0
        }
    };
    std::process::exit(if ok { 0 } else { 1 });
}
