//! The group-commit differential suite: the pipeline is a *throughput*
//! optimization, so it must be observationally invisible.
//!
//! Two angles:
//!
//! 1. **Seed sweep** — every chaos seed is run twice, `group_commit` off
//!    and on. The driver is single-threaded, so every batch is a
//!    singleton, and singleton batches log a plain `Commit` record — the
//!    two runs must therefore agree on *everything*: audit-log
//!    fingerprint (which the Theorem-9 oracle consumed), commit/abort
//!    counts, step count, and the raw WAL bytes (hash equality), which
//!    pins the recovered state and version chains byte-for-byte. Both
//!    verdicts must pass, and each WAL verdict already includes the full
//!    recovery oracle (differential vs the reference interpreter,
//!    `recover ∘ recover ≡ recover`).
//! 2. **Real concurrency** — multithreaded runs can't be byte-identical
//!    (batch composition depends on arrival timing), so there the
//!    obligation is semantic: same final committed state, same version
//!    chains after quiescence, and a log the recovery oracle accepts.

use rnt_chaos::recovery::{check_crash_recovery, WAL_PATH};
use rnt_chaos::{run, ChaosConfig};
use rnt_core::{Db, DbConfig, DeadlockPolicy, Durability};
use rnt_wal::MemVfs;
use std::sync::Arc;
use std::time::Duration;

/// ≥1000 seeds, each run with the pipeline off and on: identical
/// fingerprints, WAL bytes, counts, and passing verdicts on both sides.
#[test]
fn group_commit_is_invisible_across_1000_seeds() {
    for seed in 0..1000u64 {
        let off = run(&ChaosConfig::seeded_wal(seed));
        let on = run(&ChaosConfig::seeded_wal_group(seed));
        assert!(off.verdict.is_ok(), "seed {seed} (off): {:?}", off.verdict);
        assert!(on.verdict.is_ok(), "seed {seed} (on): {:?}", on.verdict);
        assert_eq!(
            off.fingerprint, on.fingerprint,
            "seed {seed}: audit/fault trace diverged under group commit"
        );
        assert_eq!(off.wal_hash, on.wal_hash, "seed {seed}: WAL bytes diverged");
        assert_eq!(
            (off.commits, off.aborts, off.steps, off.wal_records),
            (on.commits, on.aborts, on.steps, on.wal_records),
            "seed {seed}: counters diverged"
        );
    }
}

/// The full-oracle variant (interleaved snapshot readers, epoch
/// cross-checks against the reference trace) over a smaller sweep: the
/// pipeline must not perturb pinned snapshots or epoch assignment.
#[test]
fn group_commit_is_invisible_under_snapshot_oracle() {
    for seed in 0..150u64 {
        let off = run(&ChaosConfig::seeded_wal_snapshots(seed));
        let on =
            run(&ChaosConfig { group_commit: true, ..ChaosConfig::seeded_wal_snapshots(seed) });
        assert!(off.verdict.is_ok(), "seed {seed} (off): {:?}", off.verdict);
        assert!(on.verdict.is_ok(), "seed {seed} (on): {:?}", on.verdict);
        assert_eq!(off.fingerprint, on.fingerprint, "seed {seed}: trace diverged");
        assert_eq!(off.wal_hash, on.wal_hash, "seed {seed}: WAL bytes diverged");
    }
}

fn concurrent_run(group_commit: bool) -> (Arc<MemVfs>, Db<u64, i64>) {
    const THREADS: u64 = 4;
    const COMMITS: i64 = 12;
    let vfs = Arc::new(MemVfs::new());
    let config = DbConfig::builder()
        .policy(DeadlockPolicy::NoWait)
        .audit(true)
        .durability(Durability::Wal)
        .group_commit(group_commit)
        .max_batch(THREADS as usize)
        .max_batch_wait(Duration::from_micros(200))
        .build();
    let db = Arc::new(Db::<u64, i64>::open_with_vfs(vfs.clone(), WAL_PATH, config).expect("open"));
    for k in 0..THREADS {
        db.insert(k, 0);
    }
    let handles: Vec<_> = (0..THREADS)
        .map(|k| {
            let db = db.clone();
            std::thread::spawn(move || {
                // Disjoint keys: every commit succeeds, so the final state
                // is timing-independent and comparable across modes.
                for _ in 0..COMMITS {
                    let t = db.begin();
                    t.rmw(&k, |v| v + 1).unwrap();
                    t.commit().unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let db = Arc::into_inner(db).expect("all threads joined");
    (vfs, db)
}

/// Multithreaded on/off runs converge to the same committed state and
/// version chains, and the batched log passes the full recovery oracle.
#[test]
fn concurrent_group_commit_converges_to_the_same_state() {
    let (vfs_off, db_off) = concurrent_run(false);
    let (vfs_on, db_on) = concurrent_run(true);
    for k in 0..4u64 {
        assert_eq!(db_off.committed_value(&k), Some(12), "off: key {k}");
        assert_eq!(db_on.committed_value(&k), Some(12), "on: key {k}");
        // Chains must have GC'd to a single committed version in both
        // modes. (Head *epochs* legitimately differ: which commit landed
        // last on a key depends on thread interleaving, not on the mode.)
        for (mode, db) in [("off", &db_off), ("on", &db_on)] {
            let chain = db.history(&k);
            assert_eq!(chain.len(), 1, "{mode}: chain for key {k} not reclaimed");
            assert_eq!(chain[0].1, 12, "{mode}: chain head for key {k}");
        }
    }
    let on = db_on.stats();
    assert_eq!(on.commits_staged, 48, "every top-level commit staged");
    assert_eq!(on.commits_batched, on.commits_staged, "conservation: staged = retired");
    assert!(on.commit_batches >= 1 && on.commit_batches <= on.commits_batched);
    for (mode, vfs) in [("off", vfs_off), ("on", vfs_on)] {
        if let Err(e) = check_crash_recovery(&vfs.snapshot(WAL_PATH)) {
            panic!("recovery oracle rejected the {mode} log: {e}");
        }
    }
}
