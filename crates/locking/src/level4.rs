//! Level 4: the algebra `A'''` over (AAT, value map) pairs (paper
//! Section 8) — the optimized locking algorithm retaining only the latest
//! value per lock holder.

use crate::value_map::ValueMap;
use rnt_algebra::Algebra;
use rnt_model::{Aat, ActionId, ObjectId, TxEvent, Universe};
use rnt_spec::common;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A level-4 state: the augmented action tree plus the value map.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct L4State {
    /// The augmented action tree `T`.
    pub aat: Aat,
    /// The value map `V`.
    pub vmap: ValueMap,
}

/// The level-4 optimized locking algebra.
pub struct Level4 {
    universe: Arc<Universe>,
}

impl Level4 {
    /// Build the algebra over a universe.
    pub fn new(universe: Arc<Universe>) -> Self {
        Level4 { universe }
    }

    /// The universe this algebra draws actions from.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Precondition (d12): every current lock holder on `A`'s object is a
    /// proper ancestor of `A`.
    pub fn holders_are_proper_ancestors(&self, s: &L4State, a: &ActionId, x: ObjectId) -> bool {
        s.vmap.holders(x).all(|h| h.is_proper_ancestor_of(a))
    }
}

impl Algebra for Level4 {
    type State = L4State;
    type Event = TxEvent;

    fn initial(&self) -> L4State {
        L4State { aat: Aat::trivial(), vmap: ValueMap::initial(&self.universe) }
    }

    fn apply(&self, s: &L4State, event: &TxEvent) -> Option<L4State> {
        let u = &self.universe;
        match event {
            TxEvent::Create(a) => {
                if !common::create_enabled(u, &s.aat.tree, a) {
                    return None;
                }
                let mut next = s.clone();
                common::create_apply(&mut next.aat.tree, a);
                Some(next)
            }
            TxEvent::Commit(a) => {
                if !common::commit_enabled(u, &s.aat.tree, a) {
                    return None;
                }
                let mut next = s.clone();
                common::commit_apply(&mut next.aat.tree, a);
                Some(next)
            }
            TxEvent::Abort(a) => {
                if !common::abort_enabled(u, &s.aat.tree, a) {
                    return None;
                }
                let mut next = s.clone();
                common::abort_apply(&mut next.aat.tree, a);
                Some(next)
            }
            TxEvent::Perform(a, value) => {
                if !u.is_access(a) || !s.aat.tree.is_active(a) {
                    return None;
                }
                let x = u.object_of(a).expect("access has object");
                if !self.holders_are_proper_ancestors(s, a, x) {
                    return None;
                }
                // (d13): u is the principal value.
                if Some(*value) != s.vmap.principal_value(x) {
                    return None;
                }
                let update = u.update_of(a).expect("access has update");
                let mut next = s.clone();
                next.aat.tree.set_committed(a); // (d21)
                next.aat.tree.set_label(a.clone(), *value); // (d22)
                next.aat.append_datastep(x, a.clone()); // (d23)
                next.vmap.acquire(x, a.clone(), update.apply(*value)); // (d24, level 4)
                Some(next)
            }
            TxEvent::ReleaseLock(a, x) => {
                if a.is_root() || !s.vmap.is_defined(*x, a) || !s.aat.tree.is_committed(a) {
                    return None;
                }
                let mut next = s.clone();
                next.vmap.release_to_parent(*x, a);
                Some(next)
            }
            TxEvent::LoseLock(a, x) => {
                if a.is_root() || !s.vmap.is_defined(*x, a) || !s.aat.tree.is_dead(a) {
                    return None;
                }
                let mut next = s.clone();
                next.vmap.discard(*x, a);
                Some(next)
            }
        }
    }

    fn enabled(&self, s: &L4State) -> Vec<TxEvent> {
        let u = &self.universe;
        let mut out = Vec::new();
        for a in u.actions() {
            if common::create_enabled(u, &s.aat.tree, a) {
                out.push(TxEvent::Create(a.clone()));
            }
            if s.aat.tree.is_active(a) {
                if u.is_access(a) {
                    let x = u.object_of(a).expect("access has object");
                    if self.holders_are_proper_ancestors(s, a, x) {
                        let value = s.vmap.principal_value(x).expect("declared object");
                        out.push(TxEvent::Perform(a.clone(), value));
                    }
                } else if common::commit_enabled(u, &s.aat.tree, a) {
                    out.push(TxEvent::Commit(a.clone()));
                }
                out.push(TxEvent::Abort(a.clone()));
            }
        }
        for (x, holder, _) in s.vmap.entries() {
            if holder.is_root() {
                continue;
            }
            if s.aat.tree.is_committed(holder) {
                out.push(TxEvent::ReleaseLock(holder.clone(), x));
            }
            if s.aat.tree.is_dead(holder) {
                out.push(TxEvent::LoseLock(holder.clone(), x));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnt_algebra::{explore, is_valid, replay, ExploreConfig};
    use rnt_model::{act, UniverseBuilder, UpdateFn};

    fn universe() -> Arc<Universe> {
        Arc::new(
            UniverseBuilder::new()
                .object(0, 1)
                .action(act![0])
                .access(act![0, 0], 0, UpdateFn::Add(1))
                .action(act![1])
                .access(act![1, 0], 0, UpdateFn::Mul(2))
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn locked_run_is_valid() {
        let alg = Level4::new(universe());
        let run = vec![
            TxEvent::Create(act![0]),
            TxEvent::Create(act![0, 0]),
            TxEvent::Perform(act![0, 0], 1),
            TxEvent::ReleaseLock(act![0, 0], ObjectId(0)),
            TxEvent::Commit(act![0]),
            TxEvent::ReleaseLock(act![0], ObjectId(0)),
            TxEvent::Create(act![1]),
            TxEvent::Create(act![1, 0]),
            TxEvent::Perform(act![1, 0], 2),
            TxEvent::Commit(act![1]),
        ];
        assert!(is_valid(&alg, run));
    }

    #[test]
    fn value_map_tracks_updates() {
        let alg = Level4::new(universe());
        let states = replay(
            &alg,
            vec![
                TxEvent::Create(act![0]),
                TxEvent::Create(act![0, 0]),
                TxEvent::Perform(act![0, 0], 1),
            ],
        )
        .unwrap();
        let s = states.last().unwrap();
        // The access saw 1, applied Add(1): its lock value is 2.
        assert_eq!(s.vmap.get(ObjectId(0), &act![0, 0]), Some(2));
        assert_eq!(s.vmap.principal_value(ObjectId(0)), Some(2));
    }

    #[test]
    fn abort_restores_old_value() {
        // The resilience property at the heart of the paper: losing a dead
        // lock re-exposes the pre-abort value.
        let alg = Level4::new(universe());
        let states = replay(
            &alg,
            vec![
                TxEvent::Create(act![0]),
                TxEvent::Create(act![0, 0]),
                TxEvent::Perform(act![0, 0], 1),
                TxEvent::Abort(act![0]),
                TxEvent::LoseLock(act![0, 0], ObjectId(0)),
            ],
        )
        .unwrap();
        let s = states.last().unwrap();
        assert_eq!(s.vmap.principal_value(ObjectId(0)), Some(1), "init value restored");
        // A fresh top-level access sees init again.
        let s2 = replay(
            &alg,
            vec![
                TxEvent::Create(act![0]),
                TxEvent::Create(act![0, 0]),
                TxEvent::Perform(act![0, 0], 1),
                TxEvent::Abort(act![0]),
                TxEvent::LoseLock(act![0, 0], ObjectId(0)),
                TxEvent::Create(act![1]),
                TxEvent::Create(act![1, 0]),
                TxEvent::Perform(act![1, 0], 1),
            ],
        );
        assert!(s2.is_ok());
        let _ = s;
    }

    #[test]
    fn perm_data_serializable_exhaustive() {
        let alg = Level4::new(universe());
        let u = universe();
        let report =
            explore(&alg, &ExploreConfig { max_states: 400_000, max_depth: 0 }, |s: &L4State| {
                if s.aat.perm().is_data_serializable(&u) {
                    Ok(())
                } else {
                    Err("perm not data-serializable at level 4".into())
                }
            })
            .unwrap_or_else(|ce| panic!("{ce}"));
        assert!(!report.truncated);
        assert!(report.states > 200, "states: {}", report.states);
    }

    #[test]
    fn value_map_well_formed_exhaustive() {
        let alg = Level4::new(universe());
        let u = universe();
        explore(&alg, &ExploreConfig { max_states: 400_000, max_depth: 0 }, |s: &L4State| {
            s.vmap.well_formed(&u)
        })
        .unwrap_or_else(|ce| panic!("{ce}"));
    }

    #[test]
    fn enabled_matches_apply() {
        let alg = Level4::new(universe());
        let mut state = alg.initial();
        for _ in 0..10 {
            let evs = alg.enabled(&state);
            for e in &evs {
                assert!(alg.apply(&state, e).is_some(), "enabled {e} rejected");
            }
            let Some(e) = evs.into_iter().next() else { break };
            state = alg.apply(&state, &e).unwrap();
        }
    }
}
