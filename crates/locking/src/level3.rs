//! Level 3: the algebra `A''` over (AAT, version map) pairs (paper
//! Section 7) — the information-rich locking algorithm, with the
//! `release-lock` and `lose-lock` events.

use crate::version_map::VersionMap;
use rnt_algebra::Algebra;
use rnt_model::{Aat, ActionId, ObjectId, TxEvent, Universe};
use rnt_spec::common;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A level-3 state: the augmented action tree plus the version map.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct L3State {
    /// The augmented action tree `T`.
    pub aat: Aat,
    /// The version map `V`.
    pub vmap: VersionMap,
}

/// The level-3 locking algebra.
pub struct Level3 {
    universe: Arc<Universe>,
}

impl Level3 {
    /// Build the algebra over a universe.
    pub fn new(universe: Arc<Universe>) -> Self {
        Level3 { universe }
    }

    /// The universe this algebra draws actions from.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Precondition (d12): every current lock holder on `A`'s object is a
    /// proper ancestor of `A`.
    pub fn holders_are_proper_ancestors(&self, s: &L3State, a: &ActionId, x: ObjectId) -> bool {
        s.vmap.holders(x).all(|h| h.is_proper_ancestor_of(a))
    }
}

impl Algebra for Level3 {
    type State = L3State;
    type Event = TxEvent;

    fn initial(&self) -> L3State {
        L3State { aat: Aat::trivial(), vmap: VersionMap::initial(&self.universe) }
    }

    fn apply(&self, s: &L3State, event: &TxEvent) -> Option<L3State> {
        let u = &self.universe;
        match event {
            TxEvent::Create(a) => {
                if !common::create_enabled(u, &s.aat.tree, a) {
                    return None;
                }
                let mut next = s.clone();
                common::create_apply(&mut next.aat.tree, a);
                Some(next)
            }
            TxEvent::Commit(a) => {
                if !common::commit_enabled(u, &s.aat.tree, a) {
                    return None;
                }
                let mut next = s.clone();
                common::commit_apply(&mut next.aat.tree, a);
                Some(next)
            }
            TxEvent::Abort(a) => {
                if !common::abort_enabled(u, &s.aat.tree, a) {
                    return None;
                }
                let mut next = s.clone();
                common::abort_apply(&mut next.aat.tree, a);
                Some(next)
            }
            TxEvent::Perform(a, value) => {
                // (d11) active access.
                if !u.is_access(a) || !s.aat.tree.is_active(a) {
                    return None;
                }
                let x = u.object_of(a).expect("access has object");
                // (d12) lock holders are proper ancestors.
                if !self.holders_are_proper_ancestors(s, a, x) {
                    return None;
                }
                // (d13) u is the principal value — unconditionally, even
                // for orphans (the lock discipline makes it well-defined).
                if Some(*value) != s.vmap.principal_value(x, u) {
                    return None;
                }
                let mut next = s.clone();
                next.aat.tree.set_committed(a); // (d21)
                next.aat.tree.set_label(a.clone(), *value); // (d22)
                next.aat.append_datastep(x, a.clone()); // (d23)
                next.vmap.acquire(x, a.clone()); // (d24)
                Some(next)
            }
            TxEvent::ReleaseLock(a, x) => {
                // (e1): V(x, A) defined and A committed.
                if a.is_root() || !s.vmap.is_defined(*x, a) || !s.aat.tree.is_committed(a) {
                    return None;
                }
                let mut next = s.clone();
                next.vmap.release_to_parent(*x, a);
                Some(next)
            }
            TxEvent::LoseLock(a, x) => {
                // (f1): V(x, A) defined and A dead.
                if a.is_root() || !s.vmap.is_defined(*x, a) || !s.aat.tree.is_dead(a) {
                    return None;
                }
                let mut next = s.clone();
                next.vmap.discard(*x, a);
                Some(next)
            }
        }
    }

    fn enabled(&self, s: &L3State) -> Vec<TxEvent> {
        let u = &self.universe;
        let mut out = Vec::new();
        for a in u.actions() {
            if common::create_enabled(u, &s.aat.tree, a) {
                out.push(TxEvent::Create(a.clone()));
            }
            if s.aat.tree.is_active(a) {
                if u.is_access(a) {
                    let x = u.object_of(a).expect("access has object");
                    if self.holders_are_proper_ancestors(s, a, x) {
                        let value =
                            s.vmap.principal_value(x, u).expect("declared object has principal");
                        out.push(TxEvent::Perform(a.clone(), value));
                    }
                } else if common::commit_enabled(u, &s.aat.tree, a) {
                    out.push(TxEvent::Commit(a.clone()));
                }
                out.push(TxEvent::Abort(a.clone()));
            }
        }
        for (x, holder, _) in s.vmap.entries() {
            if holder.is_root() {
                continue;
            }
            if s.aat.tree.is_committed(holder) {
                out.push(TxEvent::ReleaseLock(holder.clone(), x));
            }
            if s.aat.tree.is_dead(holder) {
                out.push(TxEvent::LoseLock(holder.clone(), x));
            }
        }
        out
    }
}

/// Lemma 16 invariants for computable level-3 states.
///
/// * (a) lock holders are tree vertices;
/// * (b) every live datastep appears in some ancestor's version sequence;
/// * (c) a holder's sequence elements are visible to the holder;
/// * (d) a holder's sequence is in `data_T` order;
/// * plus version-map well-formedness (§7.1).
pub fn lemma16_invariants(s: &L3State, universe: &Universe) -> Result<(), String> {
    s.vmap.well_formed(universe)?;
    let tree = &s.aat.tree;
    // (a)
    for (x, holder, _) in s.vmap.entries() {
        if !tree.contains(holder) {
            return Err(format!("lemma 16a: holder {holder} of {x} not a vertex"));
        }
    }
    // (b)
    for x in s.aat.data_objects() {
        for b in s.aat.data_order(x) {
            if !tree.is_live(b) {
                continue;
            }
            let covered = s
                .vmap
                .entries()
                .any(|(y, h, seq)| y == x && h.is_ancestor_of(b) && seq.contains(b));
            if !covered {
                return Err(format!("lemma 16b: live datastep {b} on {x} not covered"));
            }
        }
    }
    // (c) and (d)
    for (x, holder, seq) in s.vmap.entries() {
        for b in seq {
            if !tree.is_visible_to(b, holder) {
                return Err(format!("lemma 16c: {b} in V({x},{holder}) not visible"));
            }
        }
        for w in seq.windows(2) {
            if !s.aat.data_precedes(x, &w[0], &w[1]) {
                return Err(format!("lemma 16d: V({x},{holder}) not in data order"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnt_algebra::{explore, is_valid, replay, ExploreConfig};
    use rnt_model::{act, UniverseBuilder, UpdateFn};

    fn universe() -> Arc<Universe> {
        Arc::new(
            UniverseBuilder::new()
                .object(0, 1)
                .action(act![0])
                .access(act![0, 0], 0, UpdateFn::Add(1))
                .action(act![1])
                .access(act![1, 0], 0, UpdateFn::Mul(2))
                .build()
                .unwrap(),
        )
    }

    /// Serial run with explicit lock traffic.
    fn locked_run() -> Vec<TxEvent> {
        vec![
            TxEvent::Create(act![0]),
            TxEvent::Create(act![0, 0]),
            TxEvent::Perform(act![0, 0], 1),
            TxEvent::ReleaseLock(act![0, 0], ObjectId(0)),
            TxEvent::Commit(act![0]),
            TxEvent::ReleaseLock(act![0], ObjectId(0)),
            TxEvent::Create(act![1]),
            TxEvent::Create(act![1, 0]),
            TxEvent::Perform(act![1, 0], 2),
            TxEvent::ReleaseLock(act![1, 0], ObjectId(0)),
            TxEvent::Commit(act![1]),
        ]
    }

    #[test]
    fn locked_run_is_valid() {
        let alg = Level3::new(universe());
        assert!(is_valid(&alg, locked_run()));
    }

    #[test]
    fn perform_blocked_until_lock_released() {
        let alg = Level3::new(universe());
        let prefix = vec![
            TxEvent::Create(act![0]),
            TxEvent::Create(act![0, 0]),
            TxEvent::Perform(act![0, 0], 1),
            TxEvent::Create(act![1]),
            TxEvent::Create(act![1, 0]),
        ];
        let states = replay(&alg, prefix).unwrap();
        let s = states.last().unwrap();
        // act![0,0] still holds the lock: not a proper ancestor of 1.0.
        assert!(alg.apply(s, &TxEvent::Perform(act![1, 0], 2)).is_none());
        // Even releasing to act![0] is not enough (act![0] not an ancestor
        // of act![1,0] either)...
        let s = alg.apply(s, &TxEvent::ReleaseLock(act![0, 0], ObjectId(0))).unwrap();
        let s = alg.apply(&s, &TxEvent::Commit(act![0])).unwrap();
        assert!(alg.apply(&s, &TxEvent::Perform(act![1, 0], 2)).is_none());
        // ...until the lock reaches U.
        let s = alg.apply(&s, &TxEvent::ReleaseLock(act![0], ObjectId(0))).unwrap();
        assert!(alg.apply(&s, &TxEvent::Perform(act![1, 0], 2)).is_some());
    }

    #[test]
    fn release_requires_commit_lose_requires_death() {
        let alg = Level3::new(universe());
        let states = replay(
            &alg,
            vec![
                TxEvent::Create(act![0]),
                TxEvent::Create(act![0, 0]),
                TxEvent::Perform(act![0, 0], 1),
            ],
        )
        .unwrap();
        let s = states.last().unwrap();
        // act![0,0] committed by perform → release ok, lose not (live).
        assert!(alg.apply(s, &TxEvent::ReleaseLock(act![0, 0], ObjectId(0))).is_some());
        assert!(alg.apply(s, &TxEvent::LoseLock(act![0, 0], ObjectId(0))).is_none());
        // Abort the parent: the access is now dead; lose ok, release also
        // still allowed by (e1) — the access itself is committed.
        let s = alg.apply(s, &TxEvent::Abort(act![0])).unwrap();
        assert!(alg.apply(&s, &TxEvent::LoseLock(act![0, 0], ObjectId(0))).is_some());
        assert!(alg.apply(&s, &TxEvent::ReleaseLock(act![0, 0], ObjectId(0))).is_some());
    }

    #[test]
    fn orphan_perform_sees_principal_value() {
        let alg = Level3::new(universe());
        let states = replay(
            &alg,
            vec![
                TxEvent::Create(act![0]),
                TxEvent::Create(act![0, 0]),
                TxEvent::Abort(act![0]), // orphan the access
            ],
        )
        .unwrap();
        let s = states.last().unwrap();
        // d13 at level 3 determines the orphan's value too: principal is U
        // with init=1.
        assert!(alg.apply(s, &TxEvent::Perform(act![0, 0], 1)).is_some());
        assert!(alg.apply(s, &TxEvent::Perform(act![0, 0], 99)).is_none());
    }

    #[test]
    fn lemma16_exhaustive_small() {
        let alg = Level3::new(universe());
        let u = universe();
        let report =
            explore(&alg, &ExploreConfig { max_states: 400_000, max_depth: 0 }, |s: &L3State| {
                lemma16_invariants(s, &u)
            })
            .unwrap_or_else(|ce| panic!("{ce}"));
        assert!(!report.truncated, "raise bounds: {report:?}");
        assert!(report.states > 200, "states: {}", report.states);
    }

    #[test]
    fn theorem14_via_level3_exhaustive() {
        // Computable level-3 states project to computable level-2 states
        // (Lemma 17), so their perm must be data-serializable too.
        let alg = Level3::new(universe());
        let u = universe();
        explore(&alg, &ExploreConfig { max_states: 400_000, max_depth: 0 }, |s: &L3State| {
            if s.aat.perm().is_data_serializable(&u) {
                Ok(())
            } else {
                Err("perm not data-serializable at level 3".into())
            }
        })
        .unwrap_or_else(|ce| panic!("{ce}"));
    }

    #[test]
    fn enabled_matches_apply() {
        let alg = Level3::new(universe());
        let mut state = alg.initial();
        for step in 0..10 {
            let evs = alg.enabled(&state);
            for e in &evs {
                assert!(alg.apply(&state, e).is_some(), "enabled {e} rejected at {step}");
            }
            let Some(e) = evs.into_iter().next() else { break };
            state = alg.apply(&state, &e).unwrap();
        }
    }
}
