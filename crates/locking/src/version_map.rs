//! Version maps (paper Section 7.1): per object, a stack of lock holders —
//! successive descendants — each holding the sequence of accesses whose
//! result is available to it.

use rnt_model::{ActionId, ObjectId, Universe, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A version map `V : obj × act ⇀ sequences of accesses`.
///
/// Invariants (the well-formedness conditions of §7.1, checked by
/// [`VersionMap::well_formed`] and maintained by the mutating methods under
/// the level-3 preconditions):
///
/// * `V(x, U)` is defined for every declared object;
/// * holders of each object lie on one ancestor chain;
/// * deeper holders' sequences extend shallower holders' sequences.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct VersionMap {
    /// Per object: holders sorted by depth ascending, with their sequences.
    map: BTreeMap<ObjectId, Vec<(ActionId, Vec<ActionId>)>>,
}

impl VersionMap {
    /// The initial map: `V(x, U)` = empty sequence for every declared
    /// object, undefined otherwise.
    pub fn initial(universe: &Universe) -> Self {
        let map =
            universe.objects().map(|o| (o.id, vec![(ActionId::root(), Vec::new())])).collect();
        VersionMap { map }
    }

    /// `V(x, A)`, if defined.
    pub fn get(&self, x: ObjectId, a: &ActionId) -> Option<&[ActionId]> {
        self.map.get(&x)?.iter().find(|(h, _)| h == a).map(|(_, seq)| seq.as_slice())
    }

    /// True iff `V(x, A)` is defined.
    pub fn is_defined(&self, x: ObjectId, a: &ActionId) -> bool {
        self.get(x, a).is_some()
    }

    /// The holders of locks on `x`, outermost (shallowest) first.
    pub fn holders(&self, x: ObjectId) -> impl Iterator<Item = &ActionId> + '_ {
        self.map.get(&x).into_iter().flatten().map(|(h, _)| h)
    }

    /// All `(object, holder)` pairs with a defined entry.
    pub fn entries(&self) -> impl Iterator<Item = (ObjectId, &ActionId, &[ActionId])> + '_ {
        self.map.iter().flat_map(|(&x, v)| v.iter().map(move |(h, seq)| (x, h, seq.as_slice())))
    }

    /// The *principal action* for `x`: the least (deepest) holder.
    pub fn principal(&self, x: ObjectId) -> Option<&ActionId> {
        self.map.get(&x)?.last().map(|(h, _)| h)
    }

    /// The principal action's sequence.
    pub fn principal_sequence(&self, x: ObjectId) -> Option<&[ActionId]> {
        self.map.get(&x)?.last().map(|(_, seq)| seq.as_slice())
    }

    /// The *principal value* of `x`: `result(x, V(x, principal))`.
    pub fn principal_value(&self, x: ObjectId, universe: &Universe) -> Option<Value> {
        let seq = self.principal_sequence(x)?;
        let init = universe.init_of(x)?;
        Some(rnt_model::fold_updates(
            init,
            seq.iter().map(|a| universe.update_of(a).expect("sequence holds accesses")),
        ))
    }

    /// Effect (d24): give `A` a lock on `x`, with the principal sequence
    /// extended by `A` itself.
    ///
    /// # Panics
    /// If `x` has no holders (initial maps always hold `U`) or `A` is not a
    /// proper descendant of the current principal (the d12 precondition).
    pub fn acquire(&mut self, x: ObjectId, a: ActionId) {
        let stack = self.map.get_mut(&x).expect("acquire on undeclared object");
        let (principal, seq) = stack.last().expect("U always holds");
        assert!(
            principal.is_proper_ancestor_of(&a),
            "acquire: {a} not below principal {principal}"
        );
        let mut new_seq = seq.clone();
        new_seq.push(a.clone());
        stack.push((a, new_seq));
    }

    /// Effect (e2): move `A`'s entry to its parent (`V(x, parent(A)) ←
    /// V(x, A)`, `V(x, A)` undefined).
    ///
    /// # Panics
    /// If `V(x, A)` is undefined or `A` is the root.
    pub fn release_to_parent(&mut self, x: ObjectId, a: &ActionId) {
        let parent = a.parent().expect("release of root lock");
        let stack = self.map.get_mut(&x).expect("release on undeclared object");
        let pos = stack.iter().position(|(h, _)| h == a).expect("release of unheld lock");
        let (_, seq) = stack.remove(pos);
        if let Some(entry) = stack.iter_mut().find(|(h, _)| *h == parent) {
            entry.1 = seq;
        } else {
            stack.insert(pos_for(stack, &parent), (parent, seq));
        }
    }

    /// Effect (f2): discard `A`'s entry.
    ///
    /// # Panics
    /// If `V(x, A)` is undefined.
    pub fn discard(&mut self, x: ObjectId, a: &ActionId) {
        let stack = self.map.get_mut(&x).expect("discard on undeclared object");
        let pos = stack.iter().position(|(h, _)| h == a).expect("discard of unheld lock");
        stack.remove(pos);
    }

    /// Check the §7.1 well-formedness conditions.
    pub fn well_formed(&self, universe: &Universe) -> Result<(), String> {
        for obj in universe.objects() {
            let Some(stack) = self.map.get(&obj.id) else {
                return Err(format!("no version stack for {}", obj.id));
            };
            if stack.first().map(|(h, _)| h) != Some(&ActionId::root()) {
                // U's entry may have been overwritten only by re-release to
                // U itself; the chain must still start at a holder chain —
                // but V(x, U) must always be defined per the definition.
                if !stack.iter().any(|(h, _)| h.is_root()) {
                    return Err(format!("V({}, U) undefined", obj.id));
                }
            }
            for w in stack.windows(2) {
                let (ref outer, ref oseq) = w[0];
                let (ref inner, ref iseq) = w[1];
                if !outer.is_proper_ancestor_of(inner) {
                    return Err(format!("holders {outer}, {inner} of {} not a chain", obj.id));
                }
                if iseq.len() < oseq.len() || &iseq[..oseq.len()] != oseq.as_slice() {
                    return Err(format!("sequence of {inner} does not extend {outer}'s"));
                }
            }
            for (_, seq) in stack {
                for a in seq {
                    if universe.object_of(a) != Some(obj.id) {
                        return Err(format!("{a} in {}'s sequence is not an access to it", obj.id));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Insertion position keeping the stack sorted by depth ascending.
fn pos_for(stack: &[(ActionId, Vec<ActionId>)], a: &ActionId) -> usize {
    stack.iter().position(|(h, _)| h.depth() > a.depth()).unwrap_or(stack.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnt_model::{act, UniverseBuilder, UpdateFn};

    fn universe() -> Universe {
        UniverseBuilder::new()
            .object(0, 5)
            .action(act![0])
            .action(act![0, 0])
            .access(act![0, 0, 0], 0, UpdateFn::Add(1))
            .access(act![0, 1], 0, UpdateFn::Mul(2))
            .build()
            .unwrap()
    }

    #[test]
    fn initial_holds_root_with_empty_sequence() {
        let u = universe();
        let v = VersionMap::initial(&u);
        assert_eq!(v.get(ObjectId(0), &ActionId::root()), Some(&[] as &[ActionId]));
        assert_eq!(v.principal(ObjectId(0)), Some(&ActionId::root()));
        assert_eq!(v.principal_value(ObjectId(0), &u), Some(5));
        v.well_formed(&u).unwrap();
    }

    #[test]
    fn acquire_extends_principal_sequence() {
        let u = universe();
        let mut v = VersionMap::initial(&u);
        v.acquire(ObjectId(0), act![0, 0, 0]);
        assert_eq!(v.get(ObjectId(0), &act![0, 0, 0]), Some(&[act![0, 0, 0]] as &[_]));
        assert_eq!(v.principal(ObjectId(0)), Some(&act![0, 0, 0]));
        // 5 + 1.
        assert_eq!(v.principal_value(ObjectId(0), &u), Some(6));
        // Root still holds its old empty sequence.
        assert_eq!(v.get(ObjectId(0), &ActionId::root()), Some(&[] as &[ActionId]));
        v.well_formed(&u).unwrap();
    }

    #[test]
    fn release_moves_to_parent_and_overwrites() {
        let u = universe();
        let mut v = VersionMap::initial(&u);
        v.acquire(ObjectId(0), act![0, 0, 0]);
        v.release_to_parent(ObjectId(0), &act![0, 0, 0]);
        assert!(!v.is_defined(ObjectId(0), &act![0, 0, 0]));
        assert_eq!(v.get(ObjectId(0), &act![0, 0]), Some(&[act![0, 0, 0]] as &[_]));
        v.well_formed(&u).unwrap();
        // Releasing up to act![0], then to root overwrites U's entry.
        v.release_to_parent(ObjectId(0), &act![0, 0]);
        v.release_to_parent(ObjectId(0), &act![0]);
        assert_eq!(v.get(ObjectId(0), &ActionId::root()), Some(&[act![0, 0, 0]] as &[_]));
        assert_eq!(v.principal(ObjectId(0)), Some(&ActionId::root()));
        v.well_formed(&u).unwrap();
    }

    #[test]
    fn discard_drops_entry() {
        let u = universe();
        let mut v = VersionMap::initial(&u);
        v.acquire(ObjectId(0), act![0, 0, 0]);
        v.discard(ObjectId(0), &act![0, 0, 0]);
        assert!(!v.is_defined(ObjectId(0), &act![0, 0, 0]));
        assert_eq!(v.principal(ObjectId(0)), Some(&ActionId::root()));
        assert_eq!(v.principal_value(ObjectId(0), &u), Some(5));
        v.well_formed(&u).unwrap();
    }

    #[test]
    fn nested_acquire_chain() {
        let u = universe();
        let mut v = VersionMap::initial(&u);
        v.acquire(ObjectId(0), act![0, 0, 0]);
        v.release_to_parent(ObjectId(0), &act![0, 0, 0]);
        // act![0,0] now principal with seq [0.0.0]; a sibling subtree access
        // must extend it.
        v.release_to_parent(ObjectId(0), &act![0, 0]);
        v.acquire(ObjectId(0), act![0, 1]);
        assert_eq!(v.get(ObjectId(0), &act![0, 1]), Some(&[act![0, 0, 0], act![0, 1]] as &[_]));
        // (5 + 1) * 2.
        assert_eq!(v.principal_value(ObjectId(0), &u), Some(12));
        v.well_formed(&u).unwrap();
    }

    #[test]
    #[should_panic(expected = "not below principal")]
    fn acquire_requires_descendant_of_principal() {
        let u = universe();
        let mut v = VersionMap::initial(&u);
        v.acquire(ObjectId(0), act![0, 0, 0]);
        // act![0,1] is not a descendant of the principal act![0,0,0].
        v.acquire(ObjectId(0), act![0, 1]);
    }

    #[test]
    fn holders_outermost_first() {
        let u = universe();
        let mut v = VersionMap::initial(&u);
        v.acquire(ObjectId(0), act![0, 0, 0]);
        let hs: Vec<_> = v.holders(ObjectId(0)).cloned().collect();
        assert_eq!(hs, vec![ActionId::root(), act![0, 0, 0]]);
    }

    #[test]
    fn well_formed_detects_broken_chain() {
        let u = universe();
        let mut v = VersionMap::initial(&u);
        v.acquire(ObjectId(0), act![0, 0, 0]);
        // Corrupt: replace holder with a non-descendant of root's... root is
        // everyone's ancestor, so corrupt the extension property instead.
        let stack = v.map.get_mut(&ObjectId(0)).unwrap();
        stack[0].1 = vec![act![0, 1]]; // outer seq not a prefix of inner
        assert!(v.well_formed(&u).is_err());
    }
}
