//! Value maps (paper Section 8.1): the optimized lock state retaining, for
//! each holder, only the latest value of the object — plus `eval`, the
//! projection from version maps that drives the Lemma 19/20 arguments.

use crate::version_map::VersionMap;
use rnt_model::{ActionId, ObjectId, Universe, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A value map `V : obj × act ⇀ values(obj)` with the same holder-chain
/// discipline as a version map.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct ValueMap {
    /// Per object: holders sorted by depth ascending, with their values.
    map: BTreeMap<ObjectId, Vec<(ActionId, Value)>>,
}

impl ValueMap {
    /// The initial map: `V(x, U) = init(x)` for every declared object.
    pub fn initial(universe: &Universe) -> Self {
        Self::initial_filtered(universe, |_| true)
    }

    /// The initial map restricted to objects satisfying `pred` — used for
    /// the per-node value maps of the distributed level, which hold only
    /// the objects homed at that node.
    pub fn initial_filtered(universe: &Universe, pred: impl Fn(ObjectId) -> bool) -> Self {
        let map = universe
            .objects()
            .filter(|o| pred(o.id))
            .map(|o| (o.id, vec![(ActionId::root(), o.init)]))
            .collect();
        ValueMap { map }
    }

    /// `V(x, A)`, if defined.
    pub fn get(&self, x: ObjectId, a: &ActionId) -> Option<Value> {
        self.map.get(&x)?.iter().find(|(h, _)| h == a).map(|(_, v)| *v)
    }

    /// True iff `V(x, A)` is defined.
    pub fn is_defined(&self, x: ObjectId, a: &ActionId) -> bool {
        self.get(x, a).is_some()
    }

    /// The holders of locks on `x`, outermost first.
    pub fn holders(&self, x: ObjectId) -> impl Iterator<Item = &ActionId> + '_ {
        self.map.get(&x).into_iter().flatten().map(|(h, _)| h)
    }

    /// All `(object, holder, value)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (ObjectId, &ActionId, Value)> + '_ {
        self.map.iter().flat_map(|(&x, v)| v.iter().map(move |(h, val)| (x, h, *val)))
    }

    /// The principal (deepest) holder for `x`.
    pub fn principal(&self, x: ObjectId) -> Option<&ActionId> {
        self.map.get(&x)?.last().map(|(h, _)| h)
    }

    /// The principal value of `x`.
    pub fn principal_value(&self, x: ObjectId) -> Option<Value> {
        self.map.get(&x)?.last().map(|(_, v)| *v)
    }

    /// Effect (d24, level 4): `V(x, A) ← update(A)(u)` where `u` was the
    /// principal value.
    ///
    /// # Panics
    /// As [`VersionMap::acquire`]: `A` must be below the current principal.
    pub fn acquire(&mut self, x: ObjectId, a: ActionId, new_value: Value) {
        let stack = self.map.get_mut(&x).expect("acquire on undeclared object");
        let (principal, _) = stack.last().expect("U always holds");
        assert!(
            principal.is_proper_ancestor_of(&a),
            "acquire: {a} not below principal {principal}"
        );
        stack.push((a, new_value));
    }

    /// Effect (e2): move `A`'s value to its parent.
    pub fn release_to_parent(&mut self, x: ObjectId, a: &ActionId) {
        let parent = a.parent().expect("release of root lock");
        let stack = self.map.get_mut(&x).expect("release on undeclared object");
        let pos = stack.iter().position(|(h, _)| h == a).expect("release of unheld lock");
        let (_, value) = stack.remove(pos);
        if let Some(entry) = stack.iter_mut().find(|(h, _)| *h == parent) {
            entry.1 = value;
        } else {
            let at =
                stack.iter().position(|(h, _)| h.depth() > parent.depth()).unwrap_or(stack.len());
            stack.insert(at, (parent, value));
        }
    }

    /// Effect (f2): discard `A`'s entry.
    pub fn discard(&mut self, x: ObjectId, a: &ActionId) {
        let stack = self.map.get_mut(&x).expect("discard on undeclared object");
        let pos = stack.iter().position(|(h, _)| h == a).expect("discard of unheld lock");
        stack.remove(pos);
    }

    /// Check the holder-chain well-formedness.
    pub fn well_formed(&self, universe: &Universe) -> Result<(), String> {
        for obj in universe.objects() {
            let Some(stack) = self.map.get(&obj.id) else {
                return Err(format!("no value stack for {}", obj.id));
            };
            if !stack.iter().any(|(h, _)| h.is_root()) {
                return Err(format!("V({}, U) undefined", obj.id));
            }
            for w in stack.windows(2) {
                if !w[0].0.is_proper_ancestor_of(&w[1].0) {
                    return Err(format!(
                        "holders {}, {} of {} not a chain",
                        w[0].0, w[1].0, obj.id
                    ));
                }
            }
        }
        Ok(())
    }
}

/// `eval(V)` (paper §8.1): the value map with the same domain as the
/// version map, each sequence folded to its result.
pub fn eval(version_map: &VersionMap, universe: &Universe) -> ValueMap {
    let mut map: BTreeMap<ObjectId, Vec<(ActionId, Value)>> = BTreeMap::new();
    for obj in universe.objects() {
        map.insert(obj.id, Vec::new());
    }
    for (x, holder, seq) in version_map.entries() {
        let init = universe.init_of(x).expect("declared object");
        let value = rnt_model::fold_updates(
            init,
            seq.iter().map(|a| universe.update_of(a).expect("sequence holds accesses")),
        );
        map.entry(x).or_default().push((holder.clone(), value));
    }
    ValueMap { map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnt_model::{act, UniverseBuilder, UpdateFn};

    fn universe() -> Universe {
        UniverseBuilder::new()
            .object(0, 5)
            .action(act![0])
            .action(act![0, 0])
            .access(act![0, 0, 0], 0, UpdateFn::Add(1))
            .access(act![0, 1], 0, UpdateFn::Mul(2))
            .build()
            .unwrap()
    }

    #[test]
    fn initial_is_init_values() {
        let u = universe();
        let v = ValueMap::initial(&u);
        assert_eq!(v.get(ObjectId(0), &ActionId::root()), Some(5));
        assert_eq!(v.principal_value(ObjectId(0)), Some(5));
        v.well_formed(&u).unwrap();
    }

    #[test]
    fn acquire_release_discard_roundtrip() {
        let u = universe();
        let mut v = ValueMap::initial(&u);
        v.acquire(ObjectId(0), act![0, 0, 0], 6);
        assert_eq!(v.principal_value(ObjectId(0)), Some(6));
        v.release_to_parent(ObjectId(0), &act![0, 0, 0]);
        assert_eq!(v.get(ObjectId(0), &act![0, 0]), Some(6));
        v.release_to_parent(ObjectId(0), &act![0, 0]);
        v.acquire(ObjectId(0), act![0, 1], 12);
        assert_eq!(v.principal_value(ObjectId(0)), Some(12));
        v.discard(ObjectId(0), &act![0, 1]);
        // act![0] holds 6 now.
        assert_eq!(v.principal(ObjectId(0)), Some(&act![0]));
        assert_eq!(v.principal_value(ObjectId(0)), Some(6));
        v.well_formed(&u).unwrap();
    }

    #[test]
    fn eval_matches_lemma19() {
        // Lemma 19: principal action and value coincide under eval.
        let u = universe();
        let mut w = VersionMap::initial(&u);
        w.acquire(ObjectId(0), act![0, 0, 0]);
        w.release_to_parent(ObjectId(0), &act![0, 0, 0]);
        w.release_to_parent(ObjectId(0), &act![0, 0]);
        w.acquire(ObjectId(0), act![0, 1]);
        let v = eval(&w, &u);
        assert_eq!(v.principal(ObjectId(0)), w.principal(ObjectId(0)));
        assert_eq!(v.principal_value(ObjectId(0)), w.principal_value(ObjectId(0), &u));
        // (5+1)*2 = 12.
        assert_eq!(v.principal_value(ObjectId(0)), Some(12));
        v.well_formed(&u).unwrap();
    }

    #[test]
    fn eval_preserves_domain() {
        let u = universe();
        let mut w = VersionMap::initial(&u);
        w.acquire(ObjectId(0), act![0, 0, 0]);
        let v = eval(&w, &u);
        let wd: Vec<_> = w.entries().map(|(x, h, _)| (x, h.clone())).collect();
        let vd: Vec<_> = v.entries().map(|(x, h, _)| (x, h.clone())).collect();
        assert_eq!(wd, vd);
    }

    #[test]
    #[should_panic(expected = "not below principal")]
    fn acquire_chain_enforced() {
        let u = universe();
        let mut v = ValueMap::initial(&u);
        v.acquire(ObjectId(0), act![0, 0, 0], 6);
        v.acquire(ObjectId(0), act![0, 1], 12);
    }
}
