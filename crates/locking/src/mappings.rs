//! The simulation mappings `h' : A'' → A'` (Section 7.4, Lemma 17) and
//! `h'' : A''' → A''` (Section 8.3, Lemma 20).
//!
//! `h''` is the paper's showcase for *possibilities* mappings: a level-4
//! state `(T, V)` maps to the **set** `{(T, W) : eval(W) = V}` of level-3
//! states — the discarded version sequences are recovered as a set of
//! possibilities rather than a single witness.

use crate::level3::{L3State, Level3};
use crate::level4::{L4State, Level4};
use crate::value_map::eval;
use rnt_algebra::{Interpretation, PossibilitiesMapping};
use rnt_model::{TxEvent, Universe};
use rnt_spec::Level2;
use std::sync::Arc;

/// `h'` of Lemma 17: lock events to Λ, everything else by name;
/// `h'(T, V) = {T}`.
pub struct HPrime;

impl Interpretation<Level3, Level2> for HPrime {
    fn map_event(&self, event: &TxEvent) -> Option<TxEvent> {
        (!event.is_lock_event()).then(|| event.clone())
    }
}

impl PossibilitiesMapping<Level3, Level2> for HPrime {
    fn is_possibility(&self, low: &L3State, high: &rnt_model::Aat) -> bool {
        &low.aat == high
    }
}

/// `h''` of Lemma 20: all events by name;
/// `h''(T, V) = {(T, W) : eval(W) = V}`.
pub struct HDoublePrime {
    universe: Arc<Universe>,
}

impl HDoublePrime {
    /// The mapping needs the universe to compute `eval`.
    pub fn new(universe: Arc<Universe>) -> Self {
        HDoublePrime { universe }
    }
}

impl Interpretation<Level4, Level3> for HDoublePrime {
    fn map_event(&self, event: &TxEvent) -> Option<TxEvent> {
        Some(event.clone())
    }
}

impl PossibilitiesMapping<Level4, Level3> for HDoublePrime {
    fn is_possibility(&self, low: &L4State, high: &L3State) -> bool {
        low.aat == high.aat && eval(&high.vmap, &self.universe) == low.vmap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnt_algebra::{check_possibilities_on_run, check_simulation_on_run, Algebra, Composed};
    use rnt_model::{act, ObjectId, UniverseBuilder, UpdateFn};
    use rnt_spec::{HSpec, Level1};

    fn universe() -> Arc<Universe> {
        Arc::new(
            UniverseBuilder::new()
                .object(0, 1)
                .action(act![0])
                .access(act![0, 0], 0, UpdateFn::Add(1))
                .action(act![1])
                .access(act![1, 0], 0, UpdateFn::Mul(2))
                .build()
                .unwrap(),
        )
    }

    /// A run with lock traffic, aborts and an orphaned access.
    fn rich_run() -> Vec<TxEvent> {
        vec![
            TxEvent::Create(act![0]),
            TxEvent::Create(act![1]),
            TxEvent::Create(act![0, 0]),
            TxEvent::Perform(act![0, 0], 1),
            TxEvent::ReleaseLock(act![0, 0], ObjectId(0)),
            TxEvent::Commit(act![0]),
            TxEvent::ReleaseLock(act![0], ObjectId(0)),
            TxEvent::Create(act![1, 0]),
            TxEvent::Perform(act![1, 0], 2),
            TxEvent::Abort(act![1]),
            TxEvent::LoseLock(act![1, 0], ObjectId(0)),
        ]
    }

    #[test]
    fn lemma17_simulation_and_possibilities() {
        let low = Level3::new(universe());
        let high = Level2::new(universe());
        check_simulation_on_run(&low, &high, &HPrime, &rich_run()).unwrap();
        check_possibilities_on_run(&low, &high, &HPrime, &rich_run()).unwrap();
    }

    #[test]
    fn lemma20_simulation_and_possibilities() {
        let low = Level4::new(universe());
        let high = Level3::new(universe());
        let h = HDoublePrime::new(universe());
        let rep = check_simulation_on_run(&low, &high, &h, &rich_run()).unwrap();
        assert_eq!(rep.low_steps, rep.high_steps, "h'' maps every event by name");
        check_possibilities_on_run(&low, &high, &h, &rich_run()).unwrap();
    }

    #[test]
    fn theorem21_composed_simulation() {
        // h ∘ h' ∘ h'' : A''' simulates A (Theorem 21), on a run.
        let l4 = Level4::new(universe());
        let l1 = Level1::new(universe());
        let hdp = HDoublePrime::new(universe());
        let h43: Composed<'_, _, _, Level3> = Composed::new(&hdp, &HPrime);
        let h42: Composed<'_, _, _, Level2> = Composed::new(&h43, &HSpec);
        check_simulation_on_run(&l4, &l1, &h42, &rich_run()).unwrap();
    }

    #[test]
    fn possibility_rejects_mismatched_value_map() {
        let l4 = Level4::new(universe());
        let l3 = Level3::new(universe());
        let h = HDoublePrime::new(universe());
        // After one perform, the level-3 witness with an *empty* version map
        // is not a possibility.
        let run = vec![
            TxEvent::Create(act![0]),
            TxEvent::Create(act![0, 0]),
            TxEvent::Perform(act![0, 0], 1),
        ];
        let low = rnt_algebra::replay(&l4, run.clone()).unwrap().pop().unwrap();
        let high_initial = l3.initial();
        assert!(!h.is_possibility(&low, &high_initial));
        let high = rnt_algebra::replay(&l3, run).unwrap().pop().unwrap();
        assert!(h.is_possibility(&low, &high));
    }
}
