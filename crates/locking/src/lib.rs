//! # rnt-locking
//!
//! Levels 3 and 4 of the paper's algebra tower — the centralized Moss-style
//! locking algorithm:
//!
//! * [`VersionMap`] / [`Level3`] — locks holding *version sequences*
//!   (Section 7), with `release-lock` / `lose-lock` and executable
//!   Lemma 16 ([`lemma16_invariants`]);
//! * [`ValueMap`] / [`Level4`] — the optimization retaining only latest
//!   values (Section 8), related by [`eval`] (Lemma 19);
//! * [`HPrime`] / [`HDoublePrime`] — the simulation mappings of Lemmas 17
//!   and 20; composing them with `rnt_spec::HSpec` gives Theorem 21;
//! * [`LevelRw`] — the *complete* Moss algorithm with read/write lock
//!   modes (the paper's §10 future work), checked directly against
//!   serializability.
//!
//! ```
//! use rnt_algebra::{replay, Algebra};
//! use rnt_locking::Level4;
//! use rnt_model::{act, ObjectId, TxEvent, UniverseBuilder, UpdateFn};
//! use std::sync::Arc;
//!
//! let universe = Arc::new(
//!     UniverseBuilder::new()
//!         .object(0, 5)
//!         .action(act![0])
//!         .access(act![0, 0], 0, UpdateFn::Write(9))
//!         .build()
//!         .unwrap(),
//! );
//! let level4 = Level4::new(universe.clone());
//! let states = replay(&level4, vec![
//!     TxEvent::Create(act![0]),
//!     TxEvent::Create(act![0, 0]),
//!     TxEvent::Perform(act![0, 0], 5),              // takes the lock, writes 9
//!     TxEvent::Abort(act![0]),                      // the subtree dies...
//!     TxEvent::LoseLock(act![0, 0], ObjectId(0)),   // ...and its version is discarded
//! ]).unwrap();
//! // Resilience: the initial value is visible again.
//! let last = states.last().unwrap();
//! assert_eq!(last.vmap.principal_value(ObjectId(0)), Some(5));
//! ```

#![warn(missing_docs)]

mod level3;
mod level4;
mod mappings;
mod rw_level;
mod value_map;
mod version_map;

pub use level3::{lemma16_invariants, L3State, Level3};
pub use level4::{L4State, Level4};
pub use mappings::{HDoublePrime, HPrime};
pub use rw_level::{LevelRw, RwLockMap, RwState};
pub use value_map::{eval, ValueMap};
pub use version_map::VersionMap;
