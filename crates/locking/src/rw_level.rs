//! The *complete* Moss algorithm as a formal level: read/write lock modes
//! (paper §10: "Certainly, Moss' complete algorithm (with a distinction
//! between read and write operations) should be proved correct; we do not
//! expect this extension to be very difficult").
//!
//! `LevelRw` refines level 4: an access whose update is the identity takes
//! a *read* lock — granted when every **write** holder is a proper
//! ancestor — while any other access takes a *write* lock — granted when
//! every holder of any lock is a proper ancestor. Its executions are
//! checked against serializability directly (the conflict-restricted
//! Theorem 9 condition, and brute force on small universes), since the
//! level-2 abstract effect deliberately over-serializes reads.

use rnt_algebra::Algebra;
use rnt_model::{Aat, ActionId, ObjectId, TxEvent, Universe, Value};
use rnt_spec::common;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-object read/write lock state: a write chain with values (the value
/// map) plus a set of read holders.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct RwObjectLocks {
    /// Write holders, outermost first, with their values; `U` at the base.
    writes: Vec<(ActionId, Value)>,
    /// Read-lock holders (committed-to-some-level accesses and their
    /// inheriting ancestors).
    readers: Vec<ActionId>,
}

/// The lock table of [`LevelRw`].
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct RwLockMap {
    map: BTreeMap<ObjectId, RwObjectLocks>,
}

impl RwLockMap {
    /// Initial table: `U` holds every object's initial value.
    pub fn initial(universe: &Universe) -> Self {
        let map = universe
            .objects()
            .map(|o| {
                (
                    o.id,
                    RwObjectLocks { writes: vec![(ActionId::root(), o.init)], readers: Vec::new() },
                )
            })
            .collect();
        RwLockMap { map }
    }

    fn locks(&self, x: ObjectId) -> &RwObjectLocks {
        self.map.get(&x).expect("declared object")
    }

    fn locks_mut(&mut self, x: ObjectId) -> &mut RwObjectLocks {
        self.map.get_mut(&x).expect("declared object")
    }

    /// Write-lock holders of `x`, outermost first.
    pub fn write_holders(&self, x: ObjectId) -> impl Iterator<Item = &ActionId> + '_ {
        self.locks(x).writes.iter().map(|(h, _)| h)
    }

    /// Read-lock holders of `x`.
    pub fn read_holders(&self, x: ObjectId) -> &[ActionId] {
        &self.locks(x).readers
    }

    /// The principal (deepest write holder's) value of `x`.
    pub fn principal_value(&self, x: ObjectId) -> Value {
        self.locks(x).writes.last().expect("U always holds").1
    }

    /// True iff `a` holds any lock on `x`.
    pub fn holds(&self, x: ObjectId, a: &ActionId) -> bool {
        let l = self.locks(x);
        l.readers.contains(a) || l.writes.iter().any(|(h, _)| h == a)
    }

    /// All `(object, holder)` pairs, writers then readers.
    pub fn holders(&self) -> impl Iterator<Item = (ObjectId, &ActionId)> + '_ {
        self.map.iter().flat_map(|(&x, l)| {
            l.writes.iter().map(move |(h, _)| (x, h)).chain(l.readers.iter().map(move |h| (x, h)))
        })
    }

    fn acquire_read(&mut self, x: ObjectId, a: ActionId) {
        let l = self.locks_mut(x);
        if !l.readers.contains(&a) {
            l.readers.push(a);
            l.readers.sort();
        }
    }

    fn acquire_write(&mut self, x: ObjectId, a: ActionId, value: Value) {
        let l = self.locks_mut(x);
        debug_assert!(
            l.writes.last().is_some_and(|(h, _)| h.is_proper_ancestor_of(&a)),
            "write acquire must extend the chain"
        );
        l.writes.push((a, value));
    }

    fn release_to_parent(&mut self, x: ObjectId, a: &ActionId) {
        let parent = a.parent().expect("non-root release");
        let l = self.locks_mut(x);
        if let Some(pos) = l.writes.iter().position(|(h, _)| h == a) {
            let (_, v) = l.writes.remove(pos);
            if let Some(entry) = l.writes.iter_mut().find(|(h, _)| *h == parent) {
                entry.1 = v;
            } else {
                l.writes.insert(pos, (parent.clone(), v));
            }
            l.readers.retain(|r| *r != parent);
        }
        if let Some(pos) = l.readers.iter().position(|r| r == a) {
            l.readers.remove(pos);
            let parent_writes = l.writes.iter().any(|(h, _)| *h == parent);
            if !parent_writes && !l.readers.contains(&parent) {
                l.readers.push(parent);
                l.readers.sort();
            }
        }
    }

    fn discard(&mut self, x: ObjectId, a: &ActionId) {
        let l = self.locks_mut(x);
        if let Some(pos) = l.writes.iter().position(|(h, _)| h == a) {
            // Everything above a dead holder is a dead descendant.
            l.writes.truncate(pos);
        }
        l.readers.retain(|r| r != a);
    }

    /// Structural invariants: write chains are ancestor chains rooted at a
    /// chain containing `U`'s entry, and reader/writer pairs are related.
    pub fn well_formed(&self, universe: &Universe) -> Result<(), String> {
        for obj in universe.objects() {
            let Some(l) = self.map.get(&obj.id) else {
                return Err(format!("no lock state for {}", obj.id));
            };
            if !l.writes.iter().any(|(h, _)| h.is_root()) {
                return Err(format!("U lost its base entry for {}", obj.id));
            }
            for w in l.writes.windows(2) {
                if !w[0].0.is_proper_ancestor_of(&w[1].0) {
                    return Err(format!("write chain broken for {}", obj.id));
                }
            }
            for r in &l.readers {
                for (h, _) in &l.writes {
                    if !h.is_ancestor_of(r) && !r.is_ancestor_of(h) {
                        return Err(format!("reader {r} unrelated to writer {h} on {}", obj.id));
                    }
                }
            }
        }
        Ok(())
    }
}

/// A `LevelRw` state: the AAT plus the read/write lock table.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct RwState {
    /// The augmented action tree.
    pub aat: Aat,
    /// The lock table.
    pub locks: RwLockMap,
}

/// The full read/write Moss locking algebra.
pub struct LevelRw {
    universe: Arc<Universe>,
}

impl LevelRw {
    /// Build the algebra over a universe.
    pub fn new(universe: Arc<Universe>) -> Self {
        LevelRw { universe }
    }

    /// The universe this algebra draws actions from.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Read-grant condition: every *write* holder is a proper ancestor.
    pub fn read_grantable(&self, s: &RwState, a: &ActionId, x: ObjectId) -> bool {
        s.locks.write_holders(x).all(|h| h.is_proper_ancestor_of(a))
    }

    /// Write-grant condition: every holder of any lock is a proper ancestor.
    pub fn write_grantable(&self, s: &RwState, a: &ActionId, x: ObjectId) -> bool {
        self.read_grantable(s, a, x)
            && s.locks.read_holders(x).iter().all(|h| h.is_proper_ancestor_of(a))
    }
}

impl Algebra for LevelRw {
    type State = RwState;
    type Event = TxEvent;

    fn initial(&self) -> RwState {
        RwState { aat: Aat::trivial(), locks: RwLockMap::initial(&self.universe) }
    }

    fn apply(&self, s: &RwState, event: &TxEvent) -> Option<RwState> {
        let u = &self.universe;
        match event {
            TxEvent::Create(a) => {
                if !common::create_enabled(u, &s.aat.tree, a) {
                    return None;
                }
                let mut next = s.clone();
                common::create_apply(&mut next.aat.tree, a);
                Some(next)
            }
            TxEvent::Commit(a) => {
                if !common::commit_enabled(u, &s.aat.tree, a) {
                    return None;
                }
                let mut next = s.clone();
                common::commit_apply(&mut next.aat.tree, a);
                Some(next)
            }
            TxEvent::Abort(a) => {
                if !common::abort_enabled(u, &s.aat.tree, a) {
                    return None;
                }
                let mut next = s.clone();
                common::abort_apply(&mut next.aat.tree, a);
                Some(next)
            }
            TxEvent::Perform(a, value) => {
                if !u.is_access(a) || !s.aat.tree.is_active(a) {
                    return None;
                }
                let x = u.object_of(a).expect("access has object");
                let update = u.update_of(a).expect("access has update");
                let grantable = if update.is_read() {
                    self.read_grantable(s, a, x)
                } else {
                    self.write_grantable(s, a, x)
                };
                if !grantable || *value != s.locks.principal_value(x) {
                    return None;
                }
                let mut next = s.clone();
                next.aat.tree.set_committed(a);
                next.aat.tree.set_label(a.clone(), *value);
                next.aat.append_datastep(x, a.clone());
                if update.is_read() {
                    next.locks.acquire_read(x, a.clone());
                } else {
                    next.locks.acquire_write(x, a.clone(), update.apply(*value));
                }
                Some(next)
            }
            TxEvent::ReleaseLock(a, x) => {
                if a.is_root() || !s.locks.holds(*x, a) || !s.aat.tree.is_committed(a) {
                    return None;
                }
                let mut next = s.clone();
                next.locks.release_to_parent(*x, a);
                Some(next)
            }
            TxEvent::LoseLock(a, x) => {
                if a.is_root() || !s.locks.holds(*x, a) || !s.aat.tree.is_dead(a) {
                    return None;
                }
                let mut next = s.clone();
                next.locks.discard(*x, a);
                Some(next)
            }
        }
    }

    fn enabled(&self, s: &RwState) -> Vec<TxEvent> {
        let u = &self.universe;
        let mut out = Vec::new();
        for a in u.actions() {
            if common::create_enabled(u, &s.aat.tree, a) {
                out.push(TxEvent::Create(a.clone()));
            }
            if s.aat.tree.is_active(a) {
                if u.is_access(a) {
                    let x = u.object_of(a).expect("access has object");
                    let update = u.update_of(a).expect("access has update");
                    let grantable = if update.is_read() {
                        self.read_grantable(s, a, x)
                    } else {
                        self.write_grantable(s, a, x)
                    };
                    if grantable {
                        out.push(TxEvent::Perform(a.clone(), s.locks.principal_value(x)));
                    }
                } else if common::commit_enabled(u, &s.aat.tree, a) {
                    out.push(TxEvent::Commit(a.clone()));
                }
                out.push(TxEvent::Abort(a.clone()));
            }
        }
        let lock_holders: Vec<(ObjectId, ActionId)> =
            s.locks.holders().filter(|(_, h)| !h.is_root()).map(|(x, h)| (x, h.clone())).collect();
        for (x, h) in lock_holders {
            if s.aat.tree.is_committed(&h) {
                out.push(TxEvent::ReleaseLock(h.clone(), x));
            }
            if s.aat.tree.is_dead(&h) {
                out.push(TxEvent::LoseLock(h, x));
            }
        }
        out.sort_by_key(|e| format!("{e:?}"));
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnt_algebra::{explore, is_valid, replay, ExploreConfig};
    use rnt_model::serial::is_serializable_bruteforce;
    use rnt_model::{act, UniverseBuilder, UpdateFn};

    /// Universe with genuine read sharing: two readers and a writer on x0.
    fn universe() -> Arc<Universe> {
        Arc::new(
            UniverseBuilder::new()
                .object(0, 1)
                .action(act![0])
                .access(act![0, 0], 0, UpdateFn::Read)
                .action(act![1])
                .access(act![1, 0], 0, UpdateFn::Read)
                .action(act![2])
                .access(act![2, 0], 0, UpdateFn::Add(1))
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn concurrent_reads_allowed() {
        // Both read accesses perform with neither transaction committed —
        // impossible at levels 2–4 (exclusive accesses), legal here.
        let alg = LevelRw::new(universe());
        let run = vec![
            TxEvent::Create(act![0]),
            TxEvent::Create(act![1]),
            TxEvent::Create(act![0, 0]),
            TxEvent::Create(act![1, 0]),
            TxEvent::Perform(act![0, 0], 1),
            TxEvent::Perform(act![1, 0], 1),
        ];
        assert!(is_valid(&alg, run));
    }

    #[test]
    fn read_blocks_unrelated_write_until_released_to_root() {
        let alg = LevelRw::new(universe());
        let states = replay(
            &alg,
            vec![
                TxEvent::Create(act![0]),
                TxEvent::Create(act![0, 0]),
                TxEvent::Perform(act![0, 0], 1),
                TxEvent::Create(act![2]),
                TxEvent::Create(act![2, 0]),
            ],
        )
        .unwrap();
        let s = states.last().unwrap();
        assert!(alg.apply(s, &TxEvent::Perform(act![2, 0], 1)).is_none(), "reader blocks writer");
        // Reads don't block reads though.
        let s2 = alg.apply(s, &TxEvent::Create(act![1])).unwrap();
        let s2 = alg.apply(&s2, &TxEvent::Create(act![1, 0])).unwrap();
        assert!(alg.apply(&s2, &TxEvent::Perform(act![1, 0], 1)).is_some());
        // Release the read lock up to U; the write becomes grantable.
        let s = alg.apply(s, &TxEvent::ReleaseLock(act![0, 0], ObjectId(0))).unwrap();
        let s = alg.apply(&s, &TxEvent::Commit(act![0])).unwrap();
        let s = alg.apply(&s, &TxEvent::ReleaseLock(act![0], ObjectId(0))).unwrap();
        assert!(alg.apply(&s, &TxEvent::Perform(act![2, 0], 1)).is_some());
    }

    #[test]
    fn writer_blocks_unrelated_read() {
        let alg = LevelRw::new(universe());
        let states = replay(
            &alg,
            vec![
                TxEvent::Create(act![2]),
                TxEvent::Create(act![2, 0]),
                TxEvent::Perform(act![2, 0], 1),
                TxEvent::Create(act![0]),
                TxEvent::Create(act![0, 0]),
            ],
        )
        .unwrap();
        let s = states.last().unwrap();
        assert!(alg.apply(s, &TxEvent::Perform(act![0, 0], 1)).is_none());
        assert!(alg.apply(s, &TxEvent::Perform(act![0, 0], 2)).is_none(), "value check too");
    }

    #[test]
    fn abort_restores_written_value() {
        let alg = LevelRw::new(universe());
        let states = replay(
            &alg,
            vec![
                TxEvent::Create(act![2]),
                TxEvent::Create(act![2, 0]),
                TxEvent::Perform(act![2, 0], 1), // writes 2
                TxEvent::Abort(act![2]),
                TxEvent::LoseLock(act![2, 0], ObjectId(0)),
                TxEvent::Create(act![0]),
                TxEvent::Create(act![0, 0]),
                TxEvent::Perform(act![0, 0], 1), // sees init again
            ],
        );
        assert!(states.is_ok());
    }

    #[test]
    fn exhaustive_serializability_and_well_formedness() {
        // Exhaustive over the read-sharing universe: every reachable state
        // has perm(T) rw-data-serializable AND serializable by brute-force
        // definition, and the lock table stays well-formed.
        let u = universe();
        let alg = LevelRw::new(u.clone());
        let report =
            explore(&alg, &ExploreConfig { max_states: 500_000, max_depth: 0 }, |s: &RwState| {
                s.locks.well_formed(&u)?;
                if !s.aat.perm().is_rw_data_serializable(&u) {
                    return Err("perm not rw-data-serializable".into());
                }
                if !is_serializable_bruteforce(&s.aat.perm().tree, &u) {
                    return Err("perm not serializable (brute force)".into());
                }
                Ok(())
            })
            .unwrap_or_else(|ce| panic!("{ce}"));
        assert!(!report.truncated, "raise bounds: {report:?}");
        assert!(report.states > 300, "read sharing should enlarge the space: {report:?}");
    }

    #[test]
    fn enabled_matches_apply() {
        let alg = LevelRw::new(universe());
        let mut state = alg.initial();
        for _ in 0..12 {
            let evs = alg.enabled(&state);
            for e in &evs {
                assert!(alg.apply(&state, e).is_some(), "enabled {e} rejected");
            }
            let Some(e) = evs.into_iter().next() else { break };
            state = alg.apply(&state, &e).unwrap();
        }
    }

    #[test]
    fn strictly_more_concurrent_than_level4() {
        // The same universe explored under exclusive locks (level 4) and
        // rw locks: rw admits strictly more reachable states.
        let u = universe();
        let cfg = ExploreConfig { max_states: 500_000, max_depth: 0 };
        let l4 = crate::Level4::new(u.clone());
        let r4 = explore(&l4, &cfg, |_| Ok(())).unwrap();
        let lrw = LevelRw::new(u);
        let rrw = explore(&lrw, &cfg, |_| Ok(())).unwrap();
        assert!(rrw.states > r4.states, "rw {} should exceed exclusive {}", rrw.states, r4.states);
    }
}
