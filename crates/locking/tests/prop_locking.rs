//! Randomized checking of the level-3/4 results: Lemma 16, version-map
//! well-formedness, Lemma 19, and the Lemma 17/20 simulations along random
//! valid runs over generated universes.

use proptest::prelude::*;
use rnt_algebra::{check_possibilities_on_run, check_simulation_on_run, replay, Composed};
use rnt_locking::{eval, lemma16_invariants, HDoublePrime, HPrime, Level3, Level4};
use rnt_sim::gen::{random_run, random_universe, UniverseConfig};
use rnt_spec::{HSpec, Level1, Level2};
use std::sync::Arc;

fn config() -> UniverseConfig {
    UniverseConfig { objects: 2, top_actions: 2, max_fanout: 2, max_depth: 3, inner_prob: 0.5 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lemma16_on_random_runs(useed in 0u64..5000, rseed in 0u64..5000) {
        let u = Arc::new(random_universe(useed, &config()));
        let alg = Level3::new(u.clone());
        let run = random_run(&alg, rseed, 60);
        let states = replay(&alg, run).expect("valid");
        for s in &states {
            prop_assert!(lemma16_invariants(s, &u).is_ok());
        }
    }

    #[test]
    fn level4_value_map_well_formed_on_random_runs(useed in 0u64..5000, rseed in 0u64..5000) {
        let u = Arc::new(random_universe(useed, &config()));
        let alg = Level4::new(u.clone());
        let run = random_run(&alg, rseed, 60);
        let states = replay(&alg, run).expect("valid");
        for s in &states {
            prop_assert!(s.vmap.well_formed(&u).is_ok());
        }
    }

    #[test]
    fn lemma17_on_random_runs(useed in 0u64..3000, rseed in 0u64..3000) {
        let u = Arc::new(random_universe(useed, &config()));
        let low = Level3::new(u.clone());
        let high = Level2::new(u.clone());
        let run = random_run(&low, rseed, 40);
        check_possibilities_on_run(&low, &high, &HPrime, &run)
            .unwrap_or_else(|e| panic!("Lemma 17 failed: {e}"));
    }

    #[test]
    fn lemma20_on_random_runs(useed in 0u64..3000, rseed in 0u64..3000) {
        let u = Arc::new(random_universe(useed, &config()));
        let low = Level4::new(u.clone());
        let high = Level3::new(u.clone());
        let h = HDoublePrime::new(u.clone());
        let run = random_run(&low, rseed, 40);
        check_possibilities_on_run(&low, &high, &h, &run)
            .unwrap_or_else(|e| panic!("Lemma 20 failed: {e}"));
    }

    #[test]
    fn lemma19_eval_naturality_on_random_runs(useed in 0u64..3000, rseed in 0u64..3000) {
        // Run level 3 and level 4 on the *same* event sequence; at every
        // step, eval of the level-3 version map equals the level-4 value
        // map (the simulation invariant of Lemma 20, stated via Lemma 19).
        let u = Arc::new(random_universe(useed, &config()));
        let l3 = Level3::new(u.clone());
        let l4 = Level4::new(u.clone());
        let run = random_run(&l4, rseed, 40);
        let s3 = replay(&l3, run.clone()).expect("level-3 accepts the same run");
        let s4 = replay(&l4, run).expect("valid");
        for (a, b) in s3.iter().zip(&s4) {
            prop_assert_eq!(&eval(&a.vmap, &u), &b.vmap);
            prop_assert_eq!(&a.aat, &b.aat);
        }
    }

    #[test]
    fn theorem21_on_random_runs(useed in 0u64..2000, rseed in 0u64..2000) {
        let u = Arc::new(random_universe(useed, &config()));
        let l4 = Level4::new(u.clone());
        let l1 = Level1::new(u.clone());
        let hdp = HDoublePrime::new(u.clone());
        let h43: Composed<'_, _, _, Level3> = Composed::new(&hdp, &HPrime);
        let h42: Composed<'_, _, _, Level2> = Composed::new(&h43, &HSpec);
        let run = random_run(&l4, rseed, 25);
        check_simulation_on_run(&l4, &l1, &h42, &run)
            .unwrap_or_else(|e| panic!("Theorem 21 failed: {e}"));
    }

    #[test]
    fn perm_data_serializable_at_level4(useed in 0u64..5000, rseed in 0u64..5000) {
        let u = Arc::new(random_universe(useed, &config()));
        let alg = Level4::new(u.clone());
        let run = random_run(&alg, rseed, 60);
        let states = replay(&alg, run).expect("valid");
        for s in &states {
            prop_assert!(s.aat.perm().is_data_serializable(&u));
        }
    }
}
