//! Bounded state-space exploration.
//!
//! The experiments "prove by exhaustion": on a small action universe they
//! visit *every* computable state of an algebra and check an invariant
//! (e.g. Theorem 14's "perm(T) is data-serializable") on each. This module
//! provides the breadth-first explorer with deduplication, bounds, and
//! counterexample path reconstruction.

use crate::algebra::Algebra;
use std::collections::HashMap;
use std::collections::VecDeque;

/// Exploration bounds.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Stop after this many distinct states (0 = unlimited).
    pub max_states: usize,
    /// Do not expand states deeper than this many events (0 = unlimited).
    pub max_depth: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig { max_states: 100_000, max_depth: 0 }
    }
}

/// Statistics from an exploration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreReport {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions traversed (including ones into already-known states).
    pub transitions: usize,
    /// True iff a bound cut the exploration short (the state space was not
    /// exhausted).
    pub truncated: bool,
    /// Depth (in events) of the deepest visited state.
    pub max_depth_reached: usize,
}

/// An invariant violation with its witness path.
#[derive(Clone)]
pub struct Counterexample<A: Algebra> {
    /// The offending state.
    pub state: A::State,
    /// A shortest event path from σ to the offending state.
    pub path: Vec<A::Event>,
    /// The invariant's message.
    pub message: String,
}

impl<A: Algebra> std::fmt::Debug for Counterexample<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counterexample")
            .field("state", &self.state)
            .field("path", &self.path)
            .field("message", &self.message)
            .finish()
    }
}

impl<A: Algebra> std::fmt::Display for Counterexample<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "invariant violated: {}", self.message)?;
        writeln!(f, "state: {:?}", self.state)?;
        writeln!(f, "path ({} events):", self.path.len())?;
        for e in &self.path {
            writeln!(f, "  {e:?}")?;
        }
        Ok(())
    }
}

/// Breadth-first exploration of the computable states, invoking `invariant`
/// on every distinct state. Returns the report, or the first
/// counterexample (with a shortest witness path, thanks to BFS order).
pub fn explore<A: Algebra>(
    algebra: &A,
    config: &ExploreConfig,
    mut invariant: impl FnMut(&A::State) -> Result<(), String>,
) -> Result<ExploreReport, Box<Counterexample<A>>> {
    // id ↦ (parent id, inbound event); used to rebuild counterexample paths.
    let mut parents: Vec<Option<(usize, A::Event)>> = Vec::new();
    let mut ids: HashMap<A::State, usize> = HashMap::new();
    let mut states: Vec<A::State> = Vec::new();
    let mut depths: Vec<usize> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut report = ExploreReport::default();

    let rebuild_path = |parents: &[Option<(usize, A::Event)>], mut id: usize| {
        let mut path = Vec::new();
        while let Some((pid, ev)) = &parents[id] {
            path.push(ev.clone());
            id = *pid;
        }
        path.reverse();
        path
    };

    let initial = algebra.initial();
    ids.insert(initial.clone(), 0);
    states.push(initial.clone());
    parents.push(None);
    depths.push(0);
    queue.push_back(0);
    report.states = 1;
    if let Err(message) = invariant(&initial) {
        return Err(Box::new(Counterexample { state: initial, path: Vec::new(), message }));
    }

    while let Some(id) = queue.pop_front() {
        if config.max_depth > 0 && depths[id] >= config.max_depth {
            report.truncated = true;
            continue;
        }
        let state = states[id].clone();
        for event in algebra.enabled(&state) {
            let Some(next) = algebra.apply(&state, &event) else {
                panic!("enabled() returned disabled event {event:?}");
            };
            report.transitions += 1;
            if ids.contains_key(&next) {
                continue;
            }
            if config.max_states > 0 && report.states >= config.max_states {
                report.truncated = true;
                continue;
            }
            let nid = states.len();
            ids.insert(next.clone(), nid);
            states.push(next.clone());
            parents.push(Some((id, event)));
            depths.push(depths[id] + 1);
            report.states += 1;
            report.max_depth_reached = report.max_depth_reached.max(depths[nid]);
            if let Err(message) = invariant(&next) {
                let path = rebuild_path(&parents, nid);
                return Err(Box::new(Counterexample { state: next, path, message }));
            }
            queue.push_back(nid);
        }
    }
    Ok(report)
}

/// Exhaustively collect all computable states (no invariant). Panics if the
/// bounds truncate, since callers rely on completeness.
pub fn reachable_states<A: Algebra>(algebra: &A, config: &ExploreConfig) -> Vec<A::State> {
    let mut out = Vec::new();
    let report = explore(algebra, config, |s| {
        out.push(s.clone());
        Ok(())
    })
    .unwrap_or_else(|ce| panic!("invariant-free exploration failed: {ce}"));
    assert!(!report.truncated, "reachable_states: exploration truncated; raise the bounds");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::counter::{CEvent, Counter};

    #[test]
    fn explores_whole_counter() {
        let alg = Counter { max: 5 };
        let report = explore(&alg, &ExploreConfig::default(), |_| Ok(())).unwrap();
        assert_eq!(report.states, 6);
        assert!(!report.truncated);
        // Transitions: Inc from 0..=4 (5), Reset from 5 (1).
        assert_eq!(report.transitions, 6);
    }

    #[test]
    fn finds_counterexample_with_shortest_path() {
        let alg = Counter { max: 10 };
        let err = explore(&alg, &ExploreConfig::default(), |s| {
            if *s >= 3 {
                Err(format!("state {s} too large"))
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(err.state, 3);
        assert_eq!(err.path, vec![CEvent::Inc; 3]);
        assert!(err.message.contains("too large"));
    }

    #[test]
    fn max_states_truncates() {
        let alg = Counter { max: 1000 };
        let report =
            explore(&alg, &ExploreConfig { max_states: 10, max_depth: 0 }, |_| Ok(())).unwrap();
        assert_eq!(report.states, 10);
        assert!(report.truncated);
    }

    #[test]
    fn max_depth_truncates() {
        let alg = Counter { max: 1000 };
        let report =
            explore(&alg, &ExploreConfig { max_states: 0, max_depth: 4 }, |_| Ok(())).unwrap();
        assert_eq!(report.states, 5); // 0..=4
        assert!(report.truncated);
        assert_eq!(report.max_depth_reached, 4);
    }

    #[test]
    fn reachable_states_complete() {
        let alg = Counter { max: 3 };
        let states = reachable_states(&alg, &ExploreConfig::default());
        assert_eq!(states.len(), 4);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn reachable_states_panics_on_truncation() {
        let alg = Counter { max: 1000 };
        let _ = reachable_states(&alg, &ExploreConfig { max_states: 5, max_depth: 0 });
    }

    #[test]
    fn initial_state_checked() {
        let alg = Counter { max: 3 };
        let err = explore(&alg, &ExploreConfig::default(), |s| {
            if *s == 0 {
                Err("bad init".into())
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert!(err.path.is_empty());
    }
}
