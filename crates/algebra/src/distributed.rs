//! Distributed algebras and local mappings (paper Section 2.3).
//!
//! A distributed algebra's state is a product of component states, each
//! event has a *doer*, and definability/effects are componentwise (the
//! Local Domain and Local Changes properties). A *local mapping* gives, per
//! component, the set of abstract states consistent with that component's
//! knowledge; Lemma 4 shows the intersection over components is a
//! possibilities mapping. We expose the membership predicates and provide
//! executable checkers for all of these properties — the content of the
//! paper's Figures 2 and 3.

use crate::algebra::Algebra;
use crate::mapping::{Interpretation, SimulationError};
use std::fmt::Debug;
use std::hash::Hash;

/// An algebra distributed over a finite component index set.
pub trait DistributedAlgebra: Algebra {
    /// Component identifiers (the index set `I`).
    type ComponentId: Copy + Eq + Ord + Debug;
    /// The local state of one component.
    type ComponentState: Clone + Eq + Hash + Debug;

    /// The index set `I`.
    fn component_ids(&self) -> Vec<Self::ComponentId>;

    /// `d(π)`: the component that performs the event.
    fn doer(&self, event: &Self::Event) -> Self::ComponentId;

    /// Project a global state onto one component.
    fn component_state(&self, state: &Self::State, comp: Self::ComponentId)
        -> Self::ComponentState;
}

/// A violation of the Local Domain or Local Changes property.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LocalityError {
    /// Two states agreeing on the doer's component disagreed on
    /// definability of an event.
    DomainMismatch {
        /// Debug rendering of the event.
        event: String,
    },
    /// Two states agreeing on some component were mapped by an event to
    /// states disagreeing on that component.
    ChangeMismatch {
        /// Debug rendering of the event.
        event: String,
        /// Debug rendering of the component index.
        component: String,
    },
}

impl std::fmt::Display for LocalityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LocalityError::DomainMismatch { event } => {
                write!(f, "local-domain violation for event {event}")
            }
            LocalityError::ChangeMismatch { event, component } => {
                write!(f, "local-changes violation for event {event} at component {component}")
            }
        }
    }
}

impl std::error::Error for LocalityError {}

/// Check the Local Domain property on a sample of states: for every pair
/// agreeing on the doer's component state, an event is enabled in one iff
/// enabled in the other.
pub fn check_local_domain<D: DistributedAlgebra>(
    alg: &D,
    states: &[D::State],
    events: &[D::Event],
) -> Result<(), LocalityError> {
    for e in events {
        let i = alg.doer(e);
        for a in states {
            for b in states {
                if alg.component_state(a, i) == alg.component_state(b, i)
                    && alg.apply(a, e).is_some() != alg.apply(b, e).is_some()
                {
                    return Err(LocalityError::DomainMismatch { event: format!("{e:?}") });
                }
            }
        }
    }
    Ok(())
}

/// Check the Local Changes property on a sample of states: for every pair
/// in an event's domain agreeing on *any* component `j`, the successors
/// agree on `j` too.
pub fn check_local_changes<D: DistributedAlgebra>(
    alg: &D,
    states: &[D::State],
    events: &[D::Event],
) -> Result<(), LocalityError> {
    let comps = alg.component_ids();
    for e in events {
        for a in states {
            let Some(a2) = alg.apply(a, e) else { continue };
            for b in states {
                let Some(b2) = alg.apply(b, e) else { continue };
                for &j in &comps {
                    if alg.component_state(a, j) == alg.component_state(b, j)
                        && alg.component_state(&a2, j) != alg.component_state(&b2, j)
                    {
                        return Err(LocalityError::ChangeMismatch {
                            event: format!("{e:?}"),
                            component: format!("{j:?}"),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// A local mapping (paper §2.3): per-component possibilities predicates
/// whose intersection, by Lemma 4, is a possibilities mapping.
pub trait LocalMapping<L: DistributedAlgebra, H: Algebra>: Interpretation<L, H> {
    /// `high ∈ h_i(low)`: is the abstract state consistent with component
    /// `comp`'s local knowledge? Must depend only on
    /// `L::component_state(low, comp)`.
    fn is_locally_consistent(&self, low: &L::State, comp: L::ComponentId, high: &H::State) -> bool;
}

/// The possibilities membership `high ∈ ⋂_i h_i(low)` derived from a local
/// mapping — the construction of Lemma 4. Takes the algebra to enumerate
/// the component index set.
pub fn is_global_possibility<L, H, M>(alg: &L, mapping: &M, low: &L::State, high: &H::State) -> bool
where
    L: DistributedAlgebra,
    H: Algebra,
    M: LocalMapping<L, H>,
{
    alg.component_ids().iter().all(|&c| mapping.is_locally_consistent(low, c, high))
}

/// Check the local-mapping discipline along one low-level run: the
/// executable content of Lemmas 23–26 and the paper's Figures 2/3.
///
/// At σ and after every step, for *every* component `i`, the co-replayed
/// high state must be in `h_i` (properties (a), (c), (d)); property (b) is
/// checked by validity of the mapped high-level replay.
pub fn check_local_mapping_on_run<L, H, M>(
    low: &L,
    high: &H,
    mapping: &M,
    events: &[L::Event],
) -> Result<crate::mapping::SimulationReport, SimulationError>
where
    L: DistributedAlgebra,
    H: Algebra,
    M: LocalMapping<L, H>,
{
    let comps = low.component_ids();
    let mut low_state = low.initial();
    let mut high_state = high.initial();
    let check_all = |low_state: &L::State, high_state: &H::State, step: usize, ev: &str| {
        for &c in &comps {
            if !mapping.is_locally_consistent(low_state, c, high_state) {
                return Err(if ev.is_empty() {
                    SimulationError::InitialNotPossible
                } else {
                    SimulationError::PossibilityLost { step, event: format!("{ev} @ {c:?}") }
                });
            }
        }
        Ok(())
    };
    check_all(&low_state, &high_state, 0, "")?;
    let mut high_steps = 0;
    for (step, event) in events.iter().enumerate() {
        low_state = low.apply(&low_state, event).ok_or_else(|| {
            SimulationError::LowInvalid(crate::algebra::ReplayError {
                step,
                event: format!("{event:?}"),
                state: format!("{low_state:?}"),
            })
        })?;
        if let Some(image) = mapping.map_event(event) {
            high_state = high.apply(&high_state, &image).ok_or_else(|| {
                SimulationError::HighInvalid(crate::algebra::ReplayError {
                    step,
                    event: format!("{image:?}"),
                    state: format!("{high_state:?}"),
                })
            })?;
            high_steps += 1;
        }
        check_all(&low_state, &high_state, step, &format!("{event:?}"))?;
    }
    Ok(crate::mapping::SimulationReport { low_steps: events.len(), high_steps })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two counters plus an unbounded channel: component 0 increments and
    /// sends its value; component 1 receives. The doer of Recv is the
    /// channel (as the paper's buffer is the doer of receive events), so
    /// definability is local to the doer in all cases.
    #[derive(Clone, PartialEq, Eq, Hash, Debug)]
    struct TwoState {
        left: u32,
        chan: Vec<u32>,
        right: u32,
    }

    /// Payloads ride in the event name, as in the paper's `send_{i,j,T'}`:
    /// the Local Changes property requires effects on non-doer components
    /// to be determined by the event and that component's state alone.
    #[derive(Clone, PartialEq, Eq, Hash, Debug)]
    enum TwoEvent {
        IncLeft,
        Send(u32),
        Recv(u32),
    }

    struct TwoNode;

    impl Algebra for TwoNode {
        type State = TwoState;
        type Event = TwoEvent;

        fn initial(&self) -> TwoState {
            TwoState { left: 0, chan: Vec::new(), right: 0 }
        }

        fn apply(&self, s: &TwoState, e: &TwoEvent) -> Option<TwoState> {
            let mut n = s.clone();
            match e {
                TwoEvent::IncLeft => {
                    n.left += 1;
                    Some(n)
                }
                TwoEvent::Send(v) => {
                    // Precondition local to the doer (node 0): the payload
                    // is the doer's current value.
                    if *v != s.left {
                        return None;
                    }
                    n.chan.push(*v);
                    Some(n)
                }
                TwoEvent::Recv(v) => {
                    // Precondition local to the doer (the channel).
                    if s.chan.first() != Some(v) {
                        return None;
                    }
                    n.right = *v;
                    n.chan.remove(0);
                    Some(n)
                }
            }
        }

        fn enabled(&self, s: &TwoState) -> Vec<TwoEvent> {
            let mut out = vec![TwoEvent::IncLeft, TwoEvent::Send(s.left)];
            if let Some(&v) = s.chan.first() {
                out.push(TwoEvent::Recv(v));
            }
            out
        }
    }

    impl DistributedAlgebra for TwoNode {
        type ComponentId = u8; // 0 = left node, 1 = right node, 2 = channel
        type ComponentState = (u32, Vec<u32>);

        fn component_ids(&self) -> Vec<u8> {
            vec![0, 1, 2]
        }

        fn doer(&self, e: &TwoEvent) -> u8 {
            match e {
                TwoEvent::IncLeft | TwoEvent::Send(_) => 0,
                TwoEvent::Recv(_) => 2,
            }
        }

        fn component_state(&self, s: &TwoState, c: u8) -> (u32, Vec<u32>) {
            match c {
                0 => (s.left, Vec::new()),
                1 => (s.right, Vec::new()),
                _ => (0, s.chan.clone()),
            }
        }
    }

    #[test]
    fn locality_properties_hold() {
        let alg = TwoNode;
        // Sample a few reachable states.
        let mut states = vec![alg.initial()];
        for e in [TwoEvent::IncLeft, TwoEvent::Send(1), TwoEvent::IncLeft, TwoEvent::Recv(1)] {
            let last = states.last().unwrap().clone();
            states.push(alg.apply(&last, &e).unwrap());
        }
        let events =
            vec![TwoEvent::IncLeft, TwoEvent::Send(1), TwoEvent::Send(2), TwoEvent::Recv(1)];
        check_local_domain(&alg, &states, &events).unwrap();
        check_local_changes(&alg, &states, &events).unwrap();
    }

    /// High algebra: the left counter alone.
    struct LeftOnly;
    impl Interpretation<TwoNode, crate::algebra::counter::Counter> for LeftOnly {
        fn map_event(&self, e: &TwoEvent) -> Option<crate::algebra::counter::CEvent> {
            match e {
                TwoEvent::IncLeft => Some(crate::algebra::counter::CEvent::Inc),
                _ => None,
            }
        }
    }
    impl LocalMapping<TwoNode, crate::algebra::counter::Counter> for LeftOnly {
        fn is_locally_consistent(&self, low: &TwoState, comp: u8, high: &u32) -> bool {
            match comp {
                0 => *high == low.left,
                // Right node knows only a lower bound (its last received value).
                1 => *high >= low.right,
                // The channel carries lower bounds too.
                _ => low.chan.iter().all(|v| *high >= *v),
            }
        }
    }

    #[test]
    fn local_mapping_run_check() {
        let low = TwoNode;
        let high = crate::algebra::counter::Counter { max: 1000 };
        let run = vec![
            TwoEvent::IncLeft,
            TwoEvent::Send(1),
            TwoEvent::IncLeft,
            TwoEvent::Recv(1),
            TwoEvent::Send(2),
            TwoEvent::Recv(2),
        ];
        let rep = check_local_mapping_on_run(&low, &high, &LeftOnly, &run).unwrap();
        assert_eq!(rep.low_steps, 6);
        assert_eq!(rep.high_steps, 2);
    }

    #[test]
    fn local_mapping_violation_detected() {
        /// Wrong local predicate for the right node: claims exact equality.
        struct Wrong;
        impl Interpretation<TwoNode, crate::algebra::counter::Counter> for Wrong {
            fn map_event(&self, e: &TwoEvent) -> Option<crate::algebra::counter::CEvent> {
                LeftOnly.map_event(e)
            }
        }
        impl LocalMapping<TwoNode, crate::algebra::counter::Counter> for Wrong {
            fn is_locally_consistent(&self, low: &TwoState, comp: u8, high: &u32) -> bool {
                match comp {
                    0 => *high == low.left,
                    1 => *high == low.right, // wrong: stale knowledge ≠ equality
                    _ => true,
                }
            }
        }
        let low = TwoNode;
        let high = crate::algebra::counter::Counter { max: 1000 };
        // After IncLeft, right still 0 but high is 1 → violation at comp 1.
        let run = vec![TwoEvent::IncLeft];
        let err = check_local_mapping_on_run(&low, &high, &Wrong, &run).unwrap_err();
        assert!(matches!(err, SimulationError::PossibilityLost { .. }));
    }
}
