//! Event-state algebras (paper Section 2.1).
//!
//! An event-state algebra is `⟨A, σ, Π⟩`: a state set, an initial state, and
//! a set of *partial* unary operations (events). We represent the partial
//! operations by [`Algebra::apply`] returning `None` outside the event's
//! domain. The rules deciding when an event is defined *are* the protocol
//! under study.

use std::fmt::Debug;
use std::hash::Hash;

/// An event-state algebra.
///
/// `enabled` exists for state-space exploration and random execution
/// generation: it must return only events whose `apply` succeeds on the
/// given state, and — for the exhaustiveness claims of the experiments — it
/// should cover every enabled event up to the documented finite restriction
/// of event parameters (e.g. the candidate `u` values of orphan `perform`s
/// at level 2).
pub trait Algebra {
    /// States of the algebra. Value semantics; hashable for exploration.
    type State: Clone + Eq + Hash + Debug;
    /// Events (the operations Π).
    type Event: Clone + Eq + Hash + Debug;

    /// The initial state σ.
    fn initial(&self) -> Self::State;

    /// Apply an event: `Some(next)` iff `state ∈ domain(event)`.
    fn apply(&self, state: &Self::State, event: &Self::Event) -> Option<Self::State>;

    /// Enumerate enabled events at `state` (see trait docs for the contract).
    fn enabled(&self, state: &Self::State) -> Vec<Self::Event>;
}

/// Why a replay failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayError {
    /// Index of the offending event in the input sequence.
    pub step: usize,
    /// Debug rendering of the offending event.
    pub event: String,
    /// Debug rendering of the state it was not enabled in.
    pub state: String,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "event #{} {} not enabled in state {}", self.step, self.event, self.state)
    }
}

impl std::error::Error for ReplayError {}

/// Replay an event sequence from σ, returning every intermediate state
/// (`result[0]` is σ, `result[k]` the state after `events[k-1]`).
///
/// This is "Φ is valid" from Section 2.1, with the witness states.
pub fn replay<A: Algebra>(
    algebra: &A,
    events: impl IntoIterator<Item = A::Event>,
) -> Result<Vec<A::State>, ReplayError> {
    replay_from(algebra, algebra.initial(), events)
}

/// Replay an event sequence from an arbitrary start state.
pub fn replay_from<A: Algebra>(
    algebra: &A,
    start: A::State,
    events: impl IntoIterator<Item = A::Event>,
) -> Result<Vec<A::State>, ReplayError> {
    let mut states = vec![start];
    for (step, event) in events.into_iter().enumerate() {
        let cur = states.last().expect("states nonempty");
        match algebra.apply(cur, &event) {
            Some(next) => states.push(next),
            None => {
                return Err(ReplayError {
                    step,
                    event: format!("{event:?}"),
                    state: format!("{cur:?}"),
                })
            }
        }
    }
    Ok(states)
}

/// True iff the event sequence is valid from σ (paper: "Φ is valid").
pub fn is_valid<A: Algebra>(algebra: &A, events: impl IntoIterator<Item = A::Event>) -> bool {
    replay(algebra, events).is_ok()
}

/// The result of a valid event sequence applied to σ, if valid.
pub fn result_of<A: Algebra>(
    algebra: &A,
    events: impl IntoIterator<Item = A::Event>,
) -> Option<A::State> {
    replay(algebra, events).ok().and_then(|mut s| s.pop())
}

#[cfg(test)]
pub(crate) mod counter {
    //! A tiny algebra used by the framework's own tests: a saturating
    //! counter with increments and a guarded reset.
    use super::*;

    /// Counter in `0..=max`; `Inc` is defined below `max`, `Reset` only at
    /// `max`.
    pub struct Counter {
        pub max: u32,
    }

    #[derive(Clone, PartialEq, Eq, Hash, Debug)]
    pub enum CEvent {
        Inc,
        Reset,
    }

    impl Algebra for Counter {
        type State = u32;
        type Event = CEvent;

        fn initial(&self) -> u32 {
            0
        }

        fn apply(&self, s: &u32, e: &CEvent) -> Option<u32> {
            match e {
                CEvent::Inc if *s < self.max => Some(s + 1),
                CEvent::Reset if *s == self.max => Some(0),
                _ => None,
            }
        }

        fn enabled(&self, s: &u32) -> Vec<CEvent> {
            let mut out = Vec::new();
            if *s < self.max {
                out.push(CEvent::Inc);
            }
            if *s == self.max {
                out.push(CEvent::Reset);
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::counter::{CEvent, Counter};
    use super::*;

    #[test]
    fn replay_records_all_states() {
        let alg = Counter { max: 3 };
        let states = replay(&alg, vec![CEvent::Inc, CEvent::Inc]).unwrap();
        assert_eq!(states, vec![0, 1, 2]);
    }

    #[test]
    fn replay_rejects_disabled_event() {
        let alg = Counter { max: 1 };
        let err = replay(&alg, vec![CEvent::Inc, CEvent::Inc]).unwrap_err();
        assert_eq!(err.step, 1);
        assert!(err.to_string().contains("Inc"));
    }

    #[test]
    fn validity_and_result() {
        let alg = Counter { max: 2 };
        assert!(is_valid(&alg, vec![CEvent::Inc, CEvent::Inc, CEvent::Reset]));
        assert!(!is_valid(&alg, vec![CEvent::Reset]));
        assert_eq!(result_of(&alg, vec![CEvent::Inc]), Some(1));
        assert_eq!(result_of(&alg, vec![CEvent::Reset]), None);
    }

    #[test]
    fn enabled_matches_apply() {
        let alg = Counter { max: 2 };
        for s in 0..=2u32 {
            for e in alg.enabled(&s) {
                assert!(alg.apply(&s, &e).is_some(), "enabled() returned disabled event");
            }
        }
    }

    #[test]
    fn replay_from_arbitrary_start() {
        let alg = Counter { max: 5 };
        let states = replay_from(&alg, 4, vec![CEvent::Inc, CEvent::Reset]).unwrap();
        assert_eq!(states, vec![4, 5, 0]);
    }
}
