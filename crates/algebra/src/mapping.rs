//! Interpretations, simulations and possibilities mappings (paper
//! Sections 2.1–2.2).
//!
//! An *interpretation* maps low-level events to high-level events or to the
//! null event Λ. It is a *simulation* when every valid low-level sequence
//! maps to a valid high-level sequence (Lemma 2's content). A
//! *possibilities mapping* additionally relates states — a single low state
//! to a *set* of high states — and is a sufficient condition for simulation
//! (Lemma 3). Because sets cannot be enumerated in general, the trait
//! exposes the membership predicate `is_possibility` plus a *canonical
//! witness* used to chase the paper's Figure 1/2/3 diagrams executably.

use crate::algebra::{Algebra, ReplayError};

/// An interpretation `h : Π' → Π ∪ {Λ}` (`None` encodes Λ).
pub trait Interpretation<L: Algebra, H: Algebra> {
    /// Map a low-level event to its high-level image, or Λ.
    fn map_event(&self, event: &L::Event) -> Option<H::Event>;

    /// Map an event sequence homomorphically, deleting Λ images.
    fn map_sequence(&self, events: &[L::Event]) -> Vec<H::Event> {
        events.iter().filter_map(|e| self.map_event(e)).collect()
    }
}

/// A possibilities mapping: an interpretation together with the state
/// relation `a ∈ h(a')`.
///
/// The four defining properties (paper §2.2) are checked executably by
/// [`check_possibilities_on_run`]:
///
/// * (a) `σ ∈ h(σ')`;
/// * (b) enabled low events with non-Λ image have their image enabled at
///   every possibility;
/// * (c) non-Λ steps preserve possibilities;
/// * (d) Λ steps preserve possibilities.
pub trait PossibilitiesMapping<L: Algebra, H: Algebra>: Interpretation<L, H> {
    /// The membership predicate `high ∈ h(low)`.
    fn is_possibility(&self, low: &L::State, high: &H::State) -> bool;
}

/// How a simulation/possibilities check failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimulationError {
    /// The given low-level sequence was itself invalid.
    LowInvalid(ReplayError),
    /// The mapped high-level sequence was invalid — the interpretation is
    /// not a simulation on this run (property (b) violated).
    HighInvalid(ReplayError),
    /// The co-replayed high state left the possibility set (property (c)
    /// or (d) violated) at the given low-level step.
    PossibilityLost {
        /// Low-level step index after which membership failed.
        step: usize,
        /// Debug rendering of the low event.
        event: String,
    },
    /// `σ ∉ h(σ')` (property (a) violated).
    InitialNotPossible,
}

impl std::fmt::Display for SimulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimulationError::LowInvalid(e) => write!(f, "low-level run invalid: {e}"),
            SimulationError::HighInvalid(e) => write!(f, "mapped high-level run invalid: {e}"),
            SimulationError::PossibilityLost { step, event } => {
                write!(f, "possibility lost after low step #{step} ({event})")
            }
            SimulationError::InitialNotPossible => {
                write!(f, "initial high state not a possibility")
            }
        }
    }
}

impl std::error::Error for SimulationError {}

/// Statistics from a successful simulation check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimulationReport {
    /// Low-level events replayed.
    pub low_steps: usize,
    /// High-level events (non-Λ images) replayed.
    pub high_steps: usize,
}

/// Check the *simulation* property on one run: replay the low sequence,
/// map it, and replay the image at the high level (Lemma 2, first half).
pub fn check_simulation_on_run<L, H, M>(
    low: &L,
    high: &H,
    mapping: &M,
    events: &[L::Event],
) -> Result<SimulationReport, SimulationError>
where
    L: Algebra,
    H: Algebra,
    M: Interpretation<L, H>,
{
    crate::algebra::replay(low, events.iter().cloned()).map_err(SimulationError::LowInvalid)?;
    let mapped = mapping.map_sequence(events);
    crate::algebra::replay(high, mapped.iter().cloned()).map_err(SimulationError::HighInvalid)?;
    Ok(SimulationReport { low_steps: events.len(), high_steps: mapped.len() })
}

/// Check the full *possibilities* discipline on one run (the executable
/// content of Figure 1): co-replay low and high, asserting
///
/// * property (a) at the start,
/// * property (b) by high-level replay validity,
/// * properties (c)/(d) by possibility membership after every low step.
pub fn check_possibilities_on_run<L, H, M>(
    low: &L,
    high: &H,
    mapping: &M,
    events: &[L::Event],
) -> Result<SimulationReport, SimulationError>
where
    L: Algebra,
    H: Algebra,
    M: PossibilitiesMapping<L, H>,
{
    let mut low_state = low.initial();
    let mut high_state = high.initial();
    if !mapping.is_possibility(&low_state, &high_state) {
        return Err(SimulationError::InitialNotPossible);
    }
    let mut high_steps = 0;
    for (step, event) in events.iter().enumerate() {
        low_state = low.apply(&low_state, event).ok_or_else(|| {
            SimulationError::LowInvalid(ReplayError {
                step,
                event: format!("{event:?}"),
                state: format!("{low_state:?}"),
            })
        })?;
        if let Some(image) = mapping.map_event(event) {
            high_state = high.apply(&high_state, &image).ok_or_else(|| {
                SimulationError::HighInvalid(ReplayError {
                    step,
                    event: format!("{image:?}"),
                    state: format!("{high_state:?}"),
                })
            })?;
            high_steps += 1;
        }
        if !mapping.is_possibility(&low_state, &high_state) {
            return Err(SimulationError::PossibilityLost { step, event: format!("{event:?}") });
        }
    }
    Ok(SimulationReport { low_steps: events.len(), high_steps })
}

/// The composition `h ∘ h'` of two interpretations (Lemma 1: composing
/// simulations yields a simulation). The middle algebra is a phantom
/// parameter so the impl can name it.
pub struct Composed<'a, M1, M2, Mid> {
    lower: &'a M1,
    upper: &'a M2,
    _mid: std::marker::PhantomData<fn() -> Mid>,
}

impl<'a, M1, M2, Mid> Composed<'a, M1, M2, Mid> {
    /// Compose `upper ∘ lower`.
    pub fn new(lower: &'a M1, upper: &'a M2) -> Self {
        Composed { lower, upper, _mid: std::marker::PhantomData }
    }
}

impl<'a, Low, Mid, High, M1, M2> Interpretation<Low, High> for Composed<'a, M1, M2, Mid>
where
    Low: Algebra,
    Mid: Algebra,
    High: Algebra,
    M1: Interpretation<Low, Mid>,
    M2: Interpretation<Mid, High>,
{
    fn map_event(&self, event: &Low::Event) -> Option<High::Event> {
        self.lower.map_event(event).and_then(|mid| self.upper.map_event(&mid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::counter::{CEvent, Counter};

    /// Parity abstraction of the counter: the high algebra is a counter
    /// mod 2 where Inc flips and Reset maps to Λ iff max is even... here we
    /// use a trivially correct abstraction: a counter with a larger max.
    struct Widen;

    impl Interpretation<Counter, Counter> for Widen {
        fn map_event(&self, e: &CEvent) -> Option<CEvent> {
            match e {
                CEvent::Inc => Some(CEvent::Inc),
                CEvent::Reset => None, // the wide counter never resets
            }
        }
    }

    impl PossibilitiesMapping<Counter, Counter> for Widen {
        fn is_possibility(&self, low: &u32, high: &u32) -> bool {
            // The wide counter counts total increments; the narrow counter
            // counts increments since the last reset — so low ≤ high and
            // they agree mod nothing in general; membership: high ≥ low.
            high >= low
        }
    }

    #[test]
    fn simulation_holds_on_valid_runs() {
        let low = Counter { max: 2 };
        let high = Counter { max: 100 };
        let run =
            vec![CEvent::Inc, CEvent::Inc, CEvent::Reset, CEvent::Inc, CEvent::Inc, CEvent::Reset];
        let rep = check_simulation_on_run(&low, &high, &Widen, &run).unwrap();
        assert_eq!(rep.low_steps, 6);
        assert_eq!(rep.high_steps, 4);
    }

    #[test]
    fn possibilities_check_passes() {
        let low = Counter { max: 2 };
        let high = Counter { max: 100 };
        let run = vec![CEvent::Inc, CEvent::Inc, CEvent::Reset, CEvent::Inc];
        check_possibilities_on_run(&low, &high, &Widen, &run).unwrap();
    }

    #[test]
    fn low_invalid_detected() {
        let low = Counter { max: 1 };
        let high = Counter { max: 100 };
        let err =
            check_simulation_on_run(&low, &high, &Widen, &[CEvent::Inc, CEvent::Inc]).unwrap_err();
        assert!(matches!(err, SimulationError::LowInvalid(_)));
    }

    #[test]
    fn high_invalid_detected() {
        // A bogus "abstraction" with a max too small: the image run dies.
        let low = Counter { max: 5 };
        let high = Counter { max: 2 };
        let run = vec![CEvent::Inc; 5];
        let err = check_simulation_on_run(&low, &high, &Widen, &run).unwrap_err();
        assert!(matches!(err, SimulationError::HighInvalid(_)));
    }

    #[test]
    fn possibility_loss_detected() {
        /// A wrong membership predicate: requires equality, which Reset breaks.
        struct Bogus;
        impl Interpretation<Counter, Counter> for Bogus {
            fn map_event(&self, e: &CEvent) -> Option<CEvent> {
                Widen.map_event(e)
            }
        }
        impl PossibilitiesMapping<Counter, Counter> for Bogus {
            fn is_possibility(&self, low: &u32, high: &u32) -> bool {
                low == high
            }
        }
        let low = Counter { max: 2 };
        let high = Counter { max: 100 };
        let run = vec![CEvent::Inc, CEvent::Inc, CEvent::Reset];
        let err = check_possibilities_on_run(&low, &high, &Bogus, &run).unwrap_err();
        assert_eq!(err, SimulationError::PossibilityLost { step: 2, event: "Reset".into() });
    }

    #[test]
    fn composition_maps_through() {
        let m: Composed<'_, _, _, Counter> = Composed::new(&Widen, &Widen);
        assert_eq!(
            Interpretation::<Counter, Counter>::map_event(&m, &CEvent::Inc),
            Some(CEvent::Inc)
        );
        assert_eq!(Interpretation::<Counter, Counter>::map_event(&m, &CEvent::Reset), None);
    }

    #[test]
    fn composed_simulation_lemma1() {
        // Lemma 1: composition of simulations is a simulation, checked on a run.
        let low = Counter { max: 2 };
        let mid = Counter { max: 50 };
        let high = Counter { max: 100 };
        let run = vec![CEvent::Inc, CEvent::Inc, CEvent::Reset, CEvent::Inc];
        check_simulation_on_run(&low, &mid, &Widen, &run).unwrap();
        let composed: Composed<'_, _, _, Counter> = Composed::new(&Widen, &Widen);
        let _ = mid;
        check_simulation_on_run(&low, &high, &composed, &run).unwrap();
    }
}
