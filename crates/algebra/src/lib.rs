//! # rnt-algebra
//!
//! The event-state algebra framework of Lynch's PODS'83 paper (Section 2),
//! made executable:
//!
//! * [`Algebra`] — states, initial state, partial events ([`replay`],
//!   validity, results);
//! * [`Interpretation`] / [`PossibilitiesMapping`] — simulations between
//!   algebras, with run-based checkers ([`check_simulation_on_run`],
//!   [`check_possibilities_on_run`]) realizing Lemmas 1–3 and the
//!   diagram-chase of Figure 1;
//! * [`DistributedAlgebra`] / [`LocalMapping`] — Section 2.3, with checkers
//!   for the Local Domain / Local Changes properties and the Lemma 4
//!   construction ([`check_local_mapping_on_run`], Figures 2–3);
//! * [`explore`] — bounded exhaustive exploration of computable states with
//!   invariant checking and shortest counterexample paths.
//!
//! This crate is independent of the nested-transaction model; the concrete
//! five-level algebra tower lives in `rnt-spec`, `rnt-locking` and
//! `rnt-distributed`.
//!
//! ```
//! use rnt_algebra::{explore, is_valid, Algebra, ExploreConfig};
//!
//! /// A two-phase toggle: `Set` is defined only when off, `Clear` only on.
//! struct Toggle;
//! #[derive(Clone, PartialEq, Eq, Hash, Debug)]
//! enum Ev { Set, Clear }
//!
//! impl Algebra for Toggle {
//!     type State = bool;
//!     type Event = Ev;
//!     fn initial(&self) -> bool { false }
//!     fn apply(&self, s: &bool, e: &Ev) -> Option<bool> {
//!         match (e, s) {
//!             (Ev::Set, false) => Some(true),
//!             (Ev::Clear, true) => Some(false),
//!             _ => None,
//!         }
//!     }
//!     fn enabled(&self, s: &bool) -> Vec<Ev> {
//!         if *s { vec![Ev::Clear] } else { vec![Ev::Set] }
//!     }
//! }
//!
//! assert!(is_valid(&Toggle, [Ev::Set, Ev::Clear, Ev::Set]));
//! assert!(!is_valid(&Toggle, [Ev::Clear]));
//! let report = explore(&Toggle, &ExploreConfig::default(), |_| Ok(())).unwrap();
//! assert_eq!(report.states, 2);
//! ```

#![warn(missing_docs)]

mod algebra;
mod distributed;
mod explore;
mod mapping;

pub use algebra::{is_valid, replay, replay_from, result_of, Algebra, ReplayError};
pub use distributed::{
    check_local_changes, check_local_domain, check_local_mapping_on_run, is_global_possibility,
    DistributedAlgebra, LocalMapping, LocalityError,
};
pub use explore::{explore, reachable_states, Counterexample, ExploreConfig, ExploreReport};
pub use mapping::{
    check_possibilities_on_run, check_simulation_on_run, Composed, Interpretation,
    PossibilitiesMapping, SimulationError, SimulationReport,
};
