//! The sharded multi-node engine.
//!
//! A [`Cluster`] is `k` full [`Db`] nodes — each with its own lock
//! manager, MVCC store, commit pipeline and (optionally) write-ahead log
//! — behind one transaction surface. Keys are routed by the
//! deterministic [`Partition`] (`home(x)`, Section 9.1); a cluster
//! transaction materializes a *participant* engine transaction per node
//! it touches, lazily, and nested cluster transactions materialize
//! engine subtransactions under the participants.
//!
//! Commit protocol (no two-phase commit needed): nodes run Moss locking
//! ([`rnt_core::CcMode::Locking`]), under which a participant that
//! performed its accesses can always commit — validation cannot fail at
//! commit time. A cluster commit therefore commits the **home**
//! participant synchronously (that is the commit point, sequenced by a
//! cluster sequence number) and hands each remote participant to the
//! gossip router, which commits it when the status delivery arrives.
//! Until then the remote node's locks stay held — gossip is
//! load-bearing, exactly as in the paper's level-5 algebra where a node
//! may release a lock only once its *local* summary knows the holder
//! committed. Aborts propagate eagerly (the resilience bias: locks of
//! dead transactions should die fast).

use crate::partition::Partition;
use crate::router::{apply_delivery, Delivery, Router, RouterStats};
use crate::trace::{RecOp, Recorder, ReleasedByNode, TraceValue};
use parking_lot::{Mutex, RwLock};
use rnt_core::{Db, DbConfig, Durability, Snapshot, StatsSnapshot, Txn, TxnError};
use rnt_distributed::{GossipPolicy, NodeId, TraceReport};
use rnt_model::{Status, UpdateFn};
use rnt_wal::{MemVfs, WalCodec, WalError};
use std::collections::{BTreeMap, BTreeSet};
use std::hash::Hash;
use std::ops::RangeBounds;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The per-node WAL file name (each node has its own [`MemVfs`]).
const NODE_WAL: &str = "node.wal";

/// Cluster construction parameters.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of nodes `k`.
    pub nodes: usize,
    /// How commit status gossips to remote participants.
    pub gossip: GossipPolicy,
    /// The configuration every node's [`Db`] is built with. Must use
    /// [`rnt_core::CcMode::Locking`] (the commit protocol relies on
    /// locking-mode commits being conflict-free).
    pub node_config: DbConfig,
    /// Record a level-5 event journal of the run (single-threaded
    /// drivers only; see [`crate::TraceValue`]).
    pub trace: bool,
}

impl ClusterConfig {
    /// A configuration with `nodes` in-memory nodes, eager gossip, the
    /// default node config and tracing off.
    pub fn new(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            gossip: GossipPolicy::EagerFull,
            node_config: DbConfig::default(),
            trace: false,
        }
    }

    /// Set the gossip policy.
    pub fn gossip(mut self, gossip: GossipPolicy) -> Self {
        self.gossip = gossip;
        self
    }

    /// Set the per-node engine configuration.
    pub fn node_config(mut self, config: DbConfig) -> Self {
        self.node_config = config;
        self
    }

    /// Enable or disable trace recording.
    pub fn trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }
}

/// One node: its engine, its (simulated) durable medium, and its
/// fail-stop bookkeeping.
struct NodeSlot<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    db: Db<K, V>,
    vfs: Option<Arc<MemVfs>>,
    /// WAL bytes captured at crash time — what the durable medium held
    /// when the node failed (later appends by the dying process must not
    /// leak into recovery).
    crash_image: Option<Vec<u8>>,
    incarnation: u64,
    up: bool,
}

/// Keys for per-(cluster-action, node) bookkeeping: the action's path
/// *relative to the transaction* (empty = the top level) plus the node.
type Slot = (Vec<u32>, NodeId);

/// The mutable state of one live cluster transaction.
struct TxnState<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    /// Engine transactions: participants at `(\[\], node)`, engine
    /// subtransactions below them.
    txns: BTreeMap<Slot, Txn<K, V>>,
    /// Final written value per key per slot (redo images; durable
    /// clusters only).
    writes: BTreeMap<Slot, BTreeMap<K, V>>,
    /// Keys each cluster action write-locked, per node (the journal's
    /// lock bookkeeping; engine read locks have no model image).
    touched: BTreeMap<Slot, BTreeSet<K>>,
    /// Node incarnation each participant was created against.
    participant_inc: BTreeMap<NodeId, u64>,
    /// Live (unresolved) cluster actions, as relative paths; always
    /// contains `[]` until the top level resolves.
    live_paths: BTreeSet<Vec<u32>>,
    /// Next child index per relative path (shared by subtransactions and
    /// accesses, so model action ids never collide).
    next_idx: BTreeMap<Vec<u32>, u32>,
    /// Set when a participant node crashed under the transaction.
    doomed: Option<NodeId>,
    /// The top level has resolved (committed or aborted).
    finished: bool,
}

struct TxnInner<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    ctid: u64,
    home: NodeId,
    state: Mutex<TxnState<K, V>>,
}

struct ClusterInner<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    config: ClusterConfig,
    partition: Partition,
    durable: bool,
    nodes: Vec<RwLock<NodeSlot<K, V>>>,
    /// Commits/aborts take this shared; cluster-wide snapshots take it
    /// exclusively, so a snapshot never observes a half-propagated
    /// commit.
    gate: RwLock<()>,
    router: Mutex<Router<K, V>>,
    live: Mutex<BTreeMap<u64, Arc<TxnInner<K, V>>>>,
    commit_log: Mutex<Vec<(u64, u64)>>,
    next_ctid: AtomicU64,
    next_cseq: AtomicU64,
    aborts: AtomicU64,
    recorder: Option<Mutex<Recorder<K>>>,
}

/// A sharded multi-node database: the paper's level-5 system as a
/// runtime. Cheap to clone (all clones share the cluster).
pub struct Cluster<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    inner: Arc<ClusterInner<K, V>>,
}

impl<K, V> Clone for Cluster<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    fn clone(&self) -> Self {
        Cluster { inner: self.inner.clone() }
    }
}

/// Counters over the whole cluster.
#[derive(Clone, Debug)]
pub struct ClusterStats {
    /// Cluster transactions committed.
    pub commits: u64,
    /// Cluster transactions aborted.
    pub aborts: u64,
    /// Gossip traffic and fault accounting.
    pub router: RouterStats,
    /// Deliveries currently queued.
    pub pending_deliveries: usize,
    /// Per-node engine counters.
    pub nodes: Vec<StatsSnapshot>,
}

/// A cluster-wide consistent snapshot: one pinned MVCC snapshot per
/// node, taken under the commit gate after a full router flush, so every
/// cluster commit is either fully visible on all nodes or on none.
pub struct ClusterSnapshot<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    partition: Partition,
    pins: Vec<Snapshot<K, V>>,
}

impl<K, V> ClusterSnapshot<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    /// Read a key through the snapshot.
    pub fn read(&self, key: &K) -> Option<V> {
        self.pins[self.partition.home(key)].read(key)
    }

    /// All key/value pairs in `bounds`, ascending by key, merged across
    /// nodes.
    pub fn range<R: RangeBounds<K> + Clone>(&self, bounds: R) -> Vec<(K, V)> {
        let mut out: Vec<(K, V)> = Vec::new();
        for pin in &self.pins {
            out.extend(pin.range(bounds.clone()));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The pinned epoch at each node.
    pub fn epochs(&self) -> Vec<u64> {
        self.pins.iter().map(Snapshot::epoch).collect()
    }
}

/// A (possibly nested) cluster transaction. The top-level handle comes
/// from [`Cluster::begin`]; [`ClusterTxn::child`] opens a resilient
/// subtransaction whose failure aborts only its own subtree, even when
/// that subtree spans nodes. Dropping a live handle aborts it.
pub struct ClusterTxn<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + TraceValue + Send + Sync + 'static,
{
    cluster: Cluster<K, V>,
    txn: Arc<TxnInner<K, V>>,
    path: Vec<u32>,
}

impl<K, V> Cluster<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + TraceValue + Send + Sync + 'static,
{
    /// Build an in-memory cluster (no write-ahead logs; node crash is
    /// not survivable — see [`Cluster::new_durable`]).
    pub fn new(config: ClusterConfig) -> Self {
        assert_eq!(
            config.node_config.durability,
            Durability::None,
            "durable node configs need Cluster::new_durable (WalCodec bounds)"
        );
        let slots = (0..config.nodes)
            .map(|_| NodeSlot {
                db: Db::with_config(config.node_config.clone()),
                vfs: None,
                crash_image: None,
                incarnation: 0,
                up: true,
            })
            .collect();
        Self::assemble(config, slots, false)
    }

    fn assemble(config: ClusterConfig, slots: Vec<NodeSlot<K, V>>, durable: bool) -> Self {
        assert!(config.nodes > 0, "a cluster needs at least one node");
        let recorder = config.trace.then(|| Mutex::new(Recorder::new()));
        Cluster {
            inner: Arc::new(ClusterInner {
                partition: Partition::new(config.nodes),
                durable,
                nodes: slots.into_iter().map(RwLock::new).collect(),
                gate: RwLock::new(()),
                router: Mutex::new(Router::new(config.nodes)),
                live: Mutex::new(BTreeMap::new()),
                commit_log: Mutex::new(Vec::new()),
                next_ctid: AtomicU64::new(0),
                next_cseq: AtomicU64::new(0),
                aborts: AtomicU64::new(0),
                recorder,
                config,
            }),
        }
    }

    fn record(&self, op: impl FnOnce() -> RecOp<K>) {
        if let Some(rec) = &self.inner.recorder {
            rec.lock().ops.push(op());
        }
    }

    /// Number of nodes `k`.
    pub fn node_count(&self) -> usize {
        self.inner.config.nodes
    }

    /// The partition map (`home`).
    pub fn partition(&self) -> Partition {
        self.inner.partition
    }

    /// The engine at `node` — an escape hatch for harnesses (audit logs,
    /// chaos hooks, per-node inspection).
    pub fn node(&self, node: NodeId) -> Db<K, V> {
        self.inner.nodes[node].db_clone()
    }

    /// Whether `node` is currently up.
    pub fn node_up(&self, node: NodeId) -> bool {
        self.inner.nodes[node].read().up
    }

    /// Seed a key at its home node (the fixed object universe of the
    /// paper: keys exist before transactions use them). Returns false if
    /// the key was already present.
    pub fn insert(&self, key: K, value: V) -> bool {
        let node = self.inner.partition.home(&key);
        let init = value.trace_value();
        let key_for_trace = key.clone();
        let fresh = {
            let slot = self.inner.nodes[node].read();
            slot.db.insert(key, value)
        };
        if fresh {
            self.record(|| RecOp::Seed { key: key_for_trace, node, init });
        }
        fresh
    }

    /// The committed value of `key` at its home node.
    pub fn committed_value(&self, key: &K) -> Result<Option<V>, TxnError> {
        let node = self.inner.partition.home(key);
        let slot = self.inner.nodes[node].read();
        if !slot.up {
            return Err(TxnError::Unavailable { node });
        }
        Ok(slot.db.committed_value(key))
    }

    /// Begin a top-level cluster transaction. Its home node is chosen
    /// round-robin; all its non-access bookkeeping lives there, mirroring
    /// `origin(A) = home(parent(A))`.
    pub fn begin(&self) -> ClusterTxn<K, V> {
        let ctid = self.inner.next_ctid.fetch_add(1, Ordering::Relaxed);
        let home = (ctid % self.inner.config.nodes as u64) as NodeId;
        let mut live_paths = BTreeSet::new();
        live_paths.insert(Vec::new());
        let txn = Arc::new(TxnInner {
            ctid,
            home,
            state: Mutex::new(TxnState {
                txns: BTreeMap::new(),
                writes: BTreeMap::new(),
                touched: BTreeMap::new(),
                participant_inc: BTreeMap::new(),
                live_paths,
                next_idx: BTreeMap::new(),
                doomed: None,
                finished: false,
            }),
        });
        self.inner.live.lock().insert(ctid, txn.clone());
        self.record(|| RecOp::Create { action: vec![ctid as u32], home });
        ClusterTxn { cluster: self.clone(), txn, path: Vec::new() }
    }

    /// Run `body` in a cluster transaction with automatic retry on
    /// retryable (contention) errors — [`Db::run`] one level up.
    pub fn run<R>(
        &self,
        body: impl FnMut(&ClusterTxn<K, V>) -> Result<R, TxnError>,
    ) -> Result<R, TxnError> {
        self.run_with_retries(u32::MAX, body)
    }

    /// [`Cluster::run`] with an explicit bound on re-runs (0 = try once).
    pub fn run_with_retries<R>(
        &self,
        max_retries: u32,
        mut body: impl FnMut(&ClusterTxn<K, V>) -> Result<R, TxnError>,
    ) -> Result<R, TxnError> {
        let mut attempts: u32 = 0;
        loop {
            let txn = self.begin();
            match body(&txn) {
                Ok(out) => match txn.commit() {
                    Ok(()) => return Ok(out),
                    Err(e) if e.is_retryable() && attempts < max_retries => {
                        attempts += 1;
                        backoff(attempts);
                    }
                    Err(e) => return Err(e),
                },
                Err(e) if e.is_retryable() && attempts < max_retries => {
                    txn.abort();
                    attempts += 1;
                    backoff(attempts);
                }
                Err(e) => {
                    txn.abort();
                    return Err(e);
                }
            }
        }
    }

    /// A cluster-wide consistent snapshot: drains the router under an
    /// exclusive commit gate, then pins every node. Fails with
    /// [`TxnError::Unavailable`] while any node is down.
    pub fn snapshot(&self) -> Result<ClusterSnapshot<K, V>, TxnError> {
        let _gate = self.inner.gate.write();
        for (node, slot) in self.inner.nodes.iter().enumerate() {
            if !slot.read().up {
                return Err(TxnError::Unavailable { node });
            }
        }
        {
            let mut router = self.inner.router.lock();
            self.pump_locked(&mut router, true);
            debug_assert_eq!(router.pending(), 0, "flush must drain the router");
        }
        let pins = self.inner.nodes.iter().map(|slot| slot.read().db.snapshot()).collect();
        Ok(ClusterSnapshot { partition: self.inner.partition, pins })
    }

    /// Deliver whatever the links currently allow (one pump round).
    /// Useful with [`GossipPolicy::Periodic`] and in fault drivers.
    pub fn pump(&self) {
        let _gate = self.inner.gate.read();
        let mut router = self.inner.router.lock();
        self.pump_locked(&mut router, false);
    }

    /// Force-deliver everything to every up node, ignoring link faults.
    pub fn flush(&self) {
        let _gate = self.inner.gate.write();
        let mut router = self.inner.router.lock();
        self.pump_locked(&mut router, true);
    }

    /// Partition or heal the directed link `from → to`.
    pub fn set_link_blocked(&self, from: NodeId, to: NodeId, blocked: bool) {
        self.inner.router.lock().blocked[from][to] = blocked;
    }

    /// Delay deliveries on the directed link `from → to` by `rounds`
    /// pump rounds.
    pub fn set_link_delay(&self, from: NodeId, to: NodeId, rounds: u32) {
        self.inner.router.lock().delay[from][to] = rounds;
    }

    /// Heal all partitions and clear all delays.
    pub fn heal_links(&self) {
        let mut router = self.inner.router.lock();
        for row in router.blocked.iter_mut() {
            row.fill(false);
        }
        for row in router.delay.iter_mut() {
            row.fill(0);
        }
    }

    /// The global commit order as `(cseq, ctid)` pairs.
    pub fn commit_log(&self) -> Vec<(u64, u64)> {
        self.inner.commit_log.lock().clone()
    }

    /// The order `(cseq, ctid)` in which `node` applied remote commits.
    pub fn delivery_log(&self, node: NodeId) -> Vec<(u64, u64)> {
        self.inner.router.lock().delivery_log[node].clone()
    }

    /// Cluster-wide counters.
    pub fn stats(&self) -> ClusterStats {
        let router = self.inner.router.lock();
        ClusterStats {
            commits: self.inner.commit_log.lock().len() as u64,
            aborts: self.inner.aborts.load(Ordering::Relaxed),
            router: router.stats,
            pending_deliveries: router.pending(),
            nodes: self.inner.nodes.iter().map(|slot| slot.read().db.stats()).collect(),
        }
    }

    /// Validate the recorded journal against the formal tower (requires
    /// [`ClusterConfig::trace`]); `deep` adds the Theorem-29 composed
    /// simulation. Pending deliveries are fine — a valid prefix is still
    /// a valid run.
    pub fn validate_trace(&self, deep: bool) -> Result<TraceReport, String> {
        let rec = self.inner.recorder.as_ref().ok_or("tracing is disabled for this cluster")?;
        let ops = rec.lock();
        crate::trace::validate(self.inner.config.nodes, &ops.ops, deep)
    }

    /// Mark `node` failed (fail-stop): its engine is frozen, every live
    /// cluster transaction with a participant there is force-aborted
    /// cluster-wide, and — on a durable cluster — the WAL bytes as of
    /// this instant become the recovery image for
    /// [`Cluster::recover_node`].
    pub fn crash_node(&self, node: NodeId) {
        {
            let mut slot = self.inner.nodes[node].write();
            assert!(slot.up, "crash of a node that is already down");
            slot.up = false;
            slot.incarnation += 1;
            slot.crash_image = slot.vfs.as_ref().map(|vfs| vfs.snapshot(NODE_WAL));
        }
        let victims: Vec<Arc<TxnInner<K, V>>> = self.inner.live.lock().values().cloned().collect();
        for victim in victims {
            let mut st = victim.state.lock();
            if st.finished || !st.participant_inc.contains_key(&node) {
                continue;
            }
            self.abort_subtree(&victim, &mut st, &[]);
            st.finished = true;
            st.doomed = Some(node);
            drop(st);
            self.inner.aborts.fetch_add(1, Ordering::Relaxed);
            self.inner.live.lock().remove(&victim.ctid);
        }
    }

    /// One delivery round under the router lock.
    fn pump_locked(&self, router: &mut Router<K, V>, flush: bool) {
        router.age();
        for node in 0..self.inner.config.nodes {
            self.drain_node_locked(router, node, flush);
        }
    }

    /// Drain `node`'s queue as far as the links (or `flush`) allow.
    fn drain_node_locked(&self, router: &mut Router<K, V>, node: NodeId, flush: bool) {
        while router.front_deliverable(node, flush) {
            let (db, incarnation, up) = {
                let slot = self.inner.nodes[node].read();
                (slot.db.clone(), slot.incarnation, slot.up)
            };
            if !up {
                break;
            }
            let delivery = router.queues[node].pop_front().expect("front checked");
            let entry = (delivery.cseq, delivery.ctid);
            let ctid = delivery.ctid;
            let released = apply_delivery(delivery, &db, incarnation, &mut router.stats);
            router.delivery_log[node].push(entry);
            router.known[node].insert(ctid, Status::Committed);
            self.record(|| RecOp::Deliver {
                node,
                action: vec![ctid as u32],
                released: released.into_iter().map(|k| (vec![ctid as u32], k)).collect(),
            });
        }
    }

    /// Policy-directed pumping after a commit enqueued deliveries.
    fn pump_policy_locked(&self, router: &mut Router<K, V>) {
        match self.inner.config.gossip {
            GossipPolicy::EagerFull | GossipPolicy::DeltaOnChange => {
                self.pump_locked(router, false);
            }
            GossipPolicy::Periodic(n) => {
                router.since_pump += 1;
                if router.since_pump >= n {
                    router.since_pump = 0;
                    self.pump_locked(router, false);
                }
            }
        }
    }

    /// Create the engine-transaction chain for `path` at `node` (the
    /// participant, then one engine subtransaction per nesting level).
    fn ensure_chain(
        &self,
        txn: &TxnInner<K, V>,
        st: &mut TxnState<K, V>,
        node: NodeId,
        path: &[u32],
    ) -> Result<(), TxnError> {
        for depth in 0..=path.len() {
            let slot_key = (path[..depth].to_vec(), node);
            if st.txns.contains_key(&slot_key) {
                continue;
            }
            let engine_txn = if depth == 0 {
                let slot = self.inner.nodes[node].read();
                if !slot.up {
                    return Err(TxnError::Unavailable { node });
                }
                st.participant_inc.insert(node, slot.incarnation);
                slot.db.begin()
            } else {
                let parent_key = (path[..depth - 1].to_vec(), node);
                st.txns.get(&parent_key).expect("parent ensured").child()?
            };
            st.txns.insert(slot_key, engine_txn);
        }
        let _ = txn;
        Ok(())
    }

    /// Abort the cluster-action subtree rooted at `root` (relative
    /// path): engine aborts deepest-first everywhere, eager status
    /// gossip, and the journal's `lose-lock`s.
    fn abort_subtree(&self, txn: &TxnInner<K, V>, st: &mut TxnState<K, V>, root: &[u32]) {
        let mut paths: Vec<Vec<u32>> = st
            .live_paths
            .iter()
            .filter(|p| p.len() >= root.len() && p[..root.len()] == *root)
            .cloned()
            .collect();
        paths.sort_by_key(|p| std::cmp::Reverse(p.len()));
        let mut released: BTreeMap<NodeId, Vec<(Vec<u32>, K)>> = BTreeMap::new();
        for path in &paths {
            let slots: Vec<Slot> = st.txns.keys().filter(|(p, _)| p == path).cloned().collect();
            for slot in slots {
                let handle = st.txns.remove(&slot).expect("listed");
                handle.abort();
            }
            let touched_slots: Vec<Slot> =
                st.touched.keys().filter(|(p, _)| p == path).cloned().collect();
            for slot in touched_slots {
                let keys = st.touched.remove(&slot).expect("listed");
                let holder = Self::action_path(txn.ctid, &slot.0);
                released
                    .entry(slot.1)
                    .or_default()
                    .extend(keys.into_iter().map(|k| (holder.clone(), k)));
            }
            st.writes.retain(|(p, _), _| p != path);
            st.next_idx.remove(path);
            st.live_paths.remove(path);
        }
        self.record(|| RecOp::Finish {
            action: Self::action_path(txn.ctid, root),
            home: txn.home,
            committed: false,
            released: released.into_iter().collect(),
        });
    }

    fn action_path(ctid: u64, rel: &[u32]) -> Vec<u32> {
        let mut path = Vec::with_capacity(rel.len() + 1);
        path.push(ctid as u32);
        path.extend_from_slice(rel);
        path
    }
}

/// Read-only slot access without poisoning generic bounds.
trait SlotExt<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    fn db_clone(&self) -> Db<K, V>;
}

impl<K, V> SlotExt<K, V> for RwLock<NodeSlot<K, V>>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + Send + Sync + 'static,
{
    fn db_clone(&self) -> Db<K, V> {
        self.read().db.clone()
    }
}

impl<K, V> Cluster<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + WalCodec + 'static,
    V: Clone + Hash + TraceValue + Send + Sync + WalCodec + 'static,
{
    /// Build a durable cluster: every node writes a WAL on its own
    /// in-memory VFS, so [`Cluster::crash_node`] /
    /// [`Cluster::recover_node`] model fail-stop crashes that keep
    /// committed state. The node config must enable durability
    /// ([`Durability::Wal`] or [`Durability::WalFsync`]).
    pub fn new_durable(config: ClusterConfig) -> Result<Self, WalError> {
        assert_ne!(
            config.node_config.durability,
            Durability::None,
            "durable clusters need a WAL-enabled node config"
        );
        let mut slots = Vec::with_capacity(config.nodes);
        for _ in 0..config.nodes {
            let vfs = Arc::new(MemVfs::new());
            let db = Db::open_with_vfs(vfs.clone(), NODE_WAL, config.node_config.clone())?;
            slots.push(NodeSlot {
                db,
                vfs: Some(vfs),
                crash_image: None,
                incarnation: 0,
                up: true,
            });
        }
        Ok(Self::assemble(config, slots, true))
    }

    /// Recover a crashed node from its WAL image: replay its log into a
    /// fresh engine (in-flight participants become the crash's aborted
    /// casualties), then flush every queued delivery destined to it —
    /// commits the crash interrupted are re-applied from their redo
    /// images, which is what makes a cluster commit durable even when a
    /// remote participant dies before its status arrives.
    pub fn recover_node(&self, node: NodeId) -> Result<(), WalError> {
        {
            let mut slot = self.inner.nodes[node].write();
            assert!(!slot.up, "recover of a node that is up");
            let image = slot.crash_image.take().unwrap_or_default();
            let vfs = Arc::new(MemVfs::new());
            vfs.install(NODE_WAL, image);
            let db =
                Db::recover_with_vfs(vfs.clone(), NODE_WAL, self.inner.config.node_config.clone())?;
            slot.db = db;
            slot.vfs = Some(vfs);
            slot.up = true;
        }
        let mut router = self.inner.router.lock();
        self.drain_node_locked(&mut router, node, true);
        Ok(())
    }
}

/// Seeded-free backoff between cluster retry attempts (mirrors
/// [`Db::run`]'s spirit without per-db state): yield first, then sleep a
/// capped, attempt-scaled duration.
fn backoff(attempt: u32) {
    if attempt <= 2 {
        std::thread::yield_now();
        return;
    }
    let micros = 1u64 << attempt.min(7);
    std::thread::sleep(Duration::from_micros(micros));
}

impl<K, V> ClusterTxn<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + TraceValue + Send + Sync + 'static,
{
    /// The cluster transaction id.
    pub fn id(&self) -> u64 {
        self.txn.ctid
    }

    /// The transaction's home node.
    pub fn home(&self) -> NodeId {
        self.txn.home
    }

    /// True while this (sub)transaction is unresolved.
    pub fn is_live(&self) -> bool {
        let st = self.txn.state.lock();
        !st.finished && st.live_paths.contains(&self.path)
    }

    /// Read `key` at its home node.
    pub fn get(&self, key: &K) -> Result<V, TxnError> {
        self.op(self.cluster.inner.partition.home(key), key, None)
    }

    /// Write `key` at its home node; returns the previously visible
    /// value.
    pub fn put(&self, key: &K, value: V) -> Result<V, TxnError> {
        self.op(self.cluster.inner.partition.home(key), key, Some(value))
    }

    /// Read-modify-write: `get` then `put` under the same (held) lock.
    /// Returns the value seen.
    pub fn rmw(&self, key: &K, f: impl Fn(&V) -> V) -> Result<V, TxnError> {
        let seen = self.get(key)?;
        self.put(key, f(&seen))?;
        Ok(seen)
    }

    /// [`ClusterTxn::get`] addressed to an explicit node — the paper's
    /// side condition `home(x) = i` checked at runtime: a mismatch is
    /// [`TxnError::WrongNode`].
    pub fn get_at(&self, node: NodeId, key: &K) -> Result<V, TxnError> {
        self.op(node, key, None)
    }

    fn op(&self, node: NodeId, key: &K, write: Option<V>) -> Result<V, TxnError> {
        let home_of_key = self.cluster.inner.partition.home(key);
        if node != home_of_key {
            return Err(TxnError::WrongNode { node, home: home_of_key });
        }
        let mut st = self.txn.state.lock();
        if st.finished || !st.live_paths.contains(&self.path) {
            return Err(self.gone_error(&st));
        }
        self.cluster.ensure_chain(&self.txn, &mut st, node, &self.path)?;
        let engine_txn = st.txns.get(&(self.path.clone(), node)).expect("chain ensured");
        let seen = match &write {
            Some(value) => engine_txn.write(key, value.clone()),
            None => engine_txn.read(key),
        }?;
        // Only writes enter the journal bookkeeping: the formal tower
        // models the exclusive-lock algebra, so the trace maps the run's
        // write skeleton (see trace.rs); reads hold engine read locks
        // but have no model image.
        if let Some(value) = &write {
            let slot = (self.path.clone(), node);
            st.touched.entry(slot.clone()).or_default().insert(key.clone());
            if self.cluster.inner.durable {
                st.writes.entry(slot).or_default().insert(key.clone(), value.clone());
            }
            let idx_slot = st.next_idx.entry(self.path.clone()).or_insert(0);
            let aidx = *idx_slot;
            *idx_slot += 1;
            let (ctid, home) = (self.txn.ctid, self.txn.home);
            let update = UpdateFn::Write(value.trace_value());
            let pre = seen.trace_value();
            let rel = &self.path;
            self.cluster.record(|| {
                let mut action = Cluster::<K, V>::action_path(ctid, rel);
                action.push(aidx);
                RecOp::Access { action, home, node, key: key.clone(), pre, update }
            });
        }
        Ok(seen)
    }

    fn gone_error(&self, st: &TxnState<K, V>) -> TxnError {
        match st.doomed {
            Some(node) => TxnError::Unavailable { node },
            None => TxnError::NotActive,
        }
    }

    /// Open a resilient subtransaction: its failure (or a node failure
    /// under it) aborts only its own subtree; its commit publishes its
    /// work to this transaction via engine lock inheritance on every
    /// node it touched.
    pub fn child(&self) -> Result<ClusterTxn<K, V>, TxnError> {
        let mut st = self.txn.state.lock();
        if st.finished || !st.live_paths.contains(&self.path) {
            return Err(self.gone_error(&st));
        }
        let idx_slot = st.next_idx.entry(self.path.clone()).or_insert(0);
        let idx = *idx_slot;
        *idx_slot += 1;
        let mut child_path = self.path.clone();
        child_path.push(idx);
        st.live_paths.insert(child_path.clone());
        let (ctid, home) = (self.txn.ctid, self.txn.home);
        let rel = &child_path;
        self.cluster
            .record(|| RecOp::Create { action: Cluster::<K, V>::action_path(ctid, rel), home });
        Ok(ClusterTxn { cluster: self.cluster.clone(), txn: self.txn.clone(), path: child_path })
    }

    /// Run `body` in a subtransaction with bounded retry — the cluster
    /// mirror of [`Txn::run_child`].
    pub fn run_child<R>(
        &self,
        max_retries: u32,
        mut body: impl FnMut(&ClusterTxn<K, V>) -> Result<R, TxnError>,
    ) -> Result<R, TxnError> {
        let mut attempts = 0;
        loop {
            let child = self.child()?;
            match body(&child) {
                Ok(out) => match child.commit() {
                    Ok(()) => return Ok(out),
                    Err(e) if e.is_retryable() && attempts < max_retries => attempts += 1,
                    Err(e) => return Err(e),
                },
                Err(e) if e.is_retryable() && attempts < max_retries => {
                    child.abort();
                    attempts += 1;
                }
                Err(e) => {
                    child.abort();
                    return Err(e);
                }
            }
        }
    }

    /// Commit. For the top level this is the cluster commit point: the
    /// home participant commits synchronously under the commit gate, the
    /// commit takes its place in the cluster serialization, and each
    /// remote participant is handed to the gossip router. For a
    /// subtransaction every engine subtransaction commits synchronously
    /// (lock inheritance is node-local).
    pub fn commit(self) -> Result<(), TxnError> {
        if self.path.is_empty() {
            self.commit_top()
        } else {
            self.commit_child()
        }
    }

    fn commit_top(&self) -> Result<(), TxnError> {
        let cluster = self.cluster.clone();
        let _gate = cluster.inner.gate.read();
        let mut st = self.txn.state.lock();
        if st.finished {
            return Err(self.gone_error(&st));
        }
        let live_children = st.live_paths.iter().filter(|p| !p.is_empty()).count();
        if live_children > 0 {
            return Err(TxnError::ChildrenActive(live_children as u32));
        }
        let (ctid, home) = (self.txn.ctid, self.txn.home);
        if let Some(home_txn) = st.txns.remove(&(Vec::new(), home)) {
            if let Err(e) = home_txn.commit() {
                cluster.abort_subtree(&self.txn, &mut st, &[]);
                st.finished = true;
                drop(st);
                cluster.inner.aborts.fetch_add(1, Ordering::Relaxed);
                cluster.inner.live.lock().remove(&ctid);
                return Err(e);
            }
        }
        let cseq = cluster.inner.next_cseq.fetch_add(1, Ordering::Relaxed);
        cluster.inner.commit_log.lock().push((cseq, ctid));
        st.finished = true;
        let home_released: Vec<K> =
            st.touched.remove(&(Vec::new(), home)).unwrap_or_default().into_iter().collect();
        cluster.record(|| RecOp::Finish {
            action: vec![ctid as u32],
            home,
            committed: true,
            released: vec![(
                home,
                home_released.iter().map(|k| (vec![ctid as u32], k.clone())).collect(),
            )],
        });
        // Hand each remote participant to the router: its locks stay
        // held until the status delivery arrives.
        let remotes: Vec<NodeId> =
            st.txns.keys().filter(|(p, _)| p.is_empty()).map(|(_, n)| *n).collect();
        let mut deliveries = Vec::with_capacity(remotes.len());
        for node in remotes {
            let engine_txn = st.txns.remove(&(Vec::new(), node)).expect("listed");
            let writes: Vec<(K, V)> =
                st.writes.remove(&(Vec::new(), node)).unwrap_or_default().into_iter().collect();
            let touched: Vec<K> =
                st.touched.remove(&(Vec::new(), node)).unwrap_or_default().into_iter().collect();
            let incarnation = st.participant_inc[&node];
            deliveries.push((
                node,
                Delivery {
                    cseq,
                    ctid,
                    from: home,
                    txn: Some(engine_txn),
                    incarnation,
                    writes,
                    touched,
                    hold: 0,
                },
            ));
        }
        drop(st);
        cluster.inner.live.lock().remove(&ctid);
        if !deliveries.is_empty()
            || matches!(cluster.inner.config.gossip, GossipPolicy::Periodic(_))
        {
            let eager = matches!(cluster.inner.config.gossip, GossipPolicy::EagerFull);
            let mut router = cluster.inner.router.lock();
            router.known[home].insert(ctid, Status::Committed);
            for (node, delivery) in deliveries {
                cluster.record(|| RecOp::Send { from: home, to: node, action: vec![ctid as u32] });
                router.enqueue(delivery, node, eager);
            }
            cluster.pump_policy_locked(&mut router);
        }
        Ok(())
    }

    fn commit_child(&self) -> Result<(), TxnError> {
        let cluster = self.cluster.clone();
        let mut st = self.txn.state.lock();
        if st.finished || !st.live_paths.contains(&self.path) {
            return Err(self.gone_error(&st));
        }
        let live_descendants = st
            .live_paths
            .iter()
            .filter(|p| p.len() > self.path.len() && p[..self.path.len()] == self.path[..])
            .count();
        if live_descendants > 0 {
            return Err(TxnError::ChildrenActive(live_descendants as u32));
        }
        let (ctid, home) = (self.txn.ctid, self.txn.home);
        // Commit the engine subtransactions node by node; inheritance
        // publishes their work to the parent chain on each node.
        let slots: Vec<Slot> = st.txns.keys().filter(|(p, _)| *p == self.path).cloned().collect();
        for slot in &slots {
            let engine_txn = st.txns.remove(slot).expect("listed");
            if let Err(e) = engine_txn.commit() {
                cluster.abort_subtree(&self.txn, &mut st, &self.path);
                return Err(e);
            }
        }
        // The journal's releases: this action's locks pass to its parent.
        let action = Cluster::<K, V>::action_path(ctid, &self.path);
        let touched_slots: Vec<Slot> =
            st.touched.keys().filter(|(p, _)| *p == self.path).cloned().collect();
        let mut released: ReleasedByNode<K> = Vec::new();
        let parent_path = self.path[..self.path.len() - 1].to_vec();
        for slot in touched_slots {
            let keys = st.touched.remove(&slot).expect("listed");
            released.push((slot.1, keys.iter().map(|k| (action.clone(), k.clone())).collect()));
            st.touched.entry((parent_path.clone(), slot.1)).or_default().extend(keys);
        }
        let write_slots: Vec<Slot> =
            st.writes.keys().filter(|(p, _)| *p == self.path).cloned().collect();
        for slot in write_slots {
            let writes = st.writes.remove(&slot).expect("listed");
            st.writes.entry((parent_path.clone(), slot.1)).or_default().extend(writes);
        }
        st.live_paths.remove(&self.path);
        st.next_idx.remove(&self.path);
        cluster.record(|| RecOp::Finish { action, home, committed: true, released });
        Ok(())
    }

    /// Abort this (sub)transaction: engine aborts everywhere it ran,
    /// eager status gossip, locks lost. A subtransaction abort leaves
    /// its parent fully usable — the paper's resilience, across nodes.
    pub fn abort(self) {
        self.abort_in_place();
    }

    fn abort_in_place(&self) {
        let cluster = self.cluster.clone();
        if self.path.is_empty() {
            let _gate = cluster.inner.gate.read();
            let mut st = self.txn.state.lock();
            if st.finished {
                return;
            }
            cluster.abort_subtree(&self.txn, &mut st, &[]);
            st.finished = true;
            drop(st);
            cluster.inner.aborts.fetch_add(1, Ordering::Relaxed);
            cluster.inner.live.lock().remove(&self.txn.ctid);
        } else {
            let mut st = self.txn.state.lock();
            if st.finished || !st.live_paths.contains(&self.path) {
                return;
            }
            cluster.abort_subtree(&self.txn, &mut st, &self.path);
        }
    }
}

impl<K, V> Drop for ClusterTxn<K, V>
where
    K: Eq + Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + Hash + TraceValue + Send + Sync + 'static,
{
    fn drop(&mut self) {
        self.abort_in_place();
    }
}
