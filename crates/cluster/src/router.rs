//! The gossip router: the paper's message buffer made executable.
//!
//! Cross-node commit status travels as *deliveries*: when a cluster
//! transaction commits at its home node, each remote participant
//! transaction is handed to the router together with the commit's
//! cluster sequence number and a redo image of the writes it performed
//! at that node. The router keeps one FIFO queue per recipient and
//! applies deliveries **strictly in enqueue (= cluster commit) order**,
//! so each node's apply order embeds into the cluster serialization —
//! the runtime shadow of Theorem 29's order embedding.
//!
//! Fault classes the queues model:
//!
//! * **delayed gossip** — a per-link hold count; a held delivery blocks
//!   its recipient's queue (head-of-line, preserving order);
//! * **partition** — a blocked link; deliveries pile up until healed;
//! * **node crash** — a delivery that arrives at a node whose
//!   incarnation changed since enqueue has lost its participant
//!   transaction to recovery; a committed delivery is then applied as a
//!   *redo* (fresh transaction re-playing the write image), which is
//!   exactly why the enqueue captures one.
//!
//! The abort path never queues: aborts propagate eagerly (the paper's
//! resilience bias — release locks as soon as status is known), so only
//! commit statuses are subject to gossip policy and faults.

use rnt_core::{Db, Txn};
use rnt_distributed::NodeId;
use rnt_model::Status;
use std::collections::{HashMap, VecDeque};

/// One queued commit status for a remote participant.
pub(crate) struct Delivery<K, V>
where
    K: Eq + std::hash::Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + std::hash::Hash + Send + Sync + 'static,
{
    /// Cluster commit sequence number of the transaction.
    pub cseq: u64,
    /// Cluster transaction id.
    pub ctid: u64,
    /// The sending (home) node.
    pub from: NodeId,
    /// The remote participant transaction, committed on delivery. Dead
    /// (dropped without commit) if the node crashed in between.
    pub txn: Option<Txn<K, V>>,
    /// The recipient-node incarnation the participant belongs to.
    pub incarnation: u64,
    /// Final value per key written at the recipient — the redo image
    /// applied if the participant did not survive a crash.
    pub writes: Vec<(K, V)>,
    /// Keys touched at the recipient (for the trace's lock releases).
    pub touched: Vec<K>,
    /// Remaining pump rounds this delivery is held by link delay.
    pub hold: u32,
}

/// Traffic and fault accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Deliveries enqueued (`send` events).
    pub sends: u64,
    /// Deliveries applied (`receive` events).
    pub receives: u64,
    /// Summary entries shipped (eager gossip re-ships full knowledge).
    pub entries_shipped: u64,
    /// Committed deliveries applied as redo after a crash.
    pub redo_applied: u64,
    /// Remote participant commits that failed (e.g. a WAL fault at the
    /// recipient); the cluster commit itself already stood.
    pub remote_commit_failures: u64,
}

/// Per-recipient FIFO queues plus link state.
pub(crate) struct Router<K, V>
where
    K: Eq + std::hash::Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + std::hash::Hash + Send + Sync + 'static,
{
    pub queues: Vec<VecDeque<Delivery<K, V>>>,
    /// `blocked[from][to]`: the link is partitioned.
    pub blocked: Vec<Vec<bool>>,
    /// `delay[from][to]`: pump rounds a fresh delivery on this link waits.
    pub delay: Vec<Vec<u32>>,
    /// What each node knows (delivered or locally resolved statuses) —
    /// the runtime `i.T`, used for eager-gossip payload accounting.
    pub known: Vec<HashMap<u64, Status>>,
    /// Commits resolved since the last periodic pump.
    pub since_pump: u32,
    pub stats: RouterStats,
    /// Per-node applied `(cseq, ctid)` order, for the embedding checks.
    pub delivery_log: Vec<Vec<(u64, u64)>>,
}

impl<K, V> Router<K, V>
where
    K: Eq + std::hash::Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + std::hash::Hash + Send + Sync + 'static,
{
    pub fn new(nodes: usize) -> Self {
        Router {
            queues: (0..nodes).map(|_| VecDeque::new()).collect(),
            blocked: vec![vec![false; nodes]; nodes],
            delay: vec![vec![0; nodes]; nodes],
            known: (0..nodes).map(|_| HashMap::new()).collect(),
            since_pump: 0,
            stats: RouterStats::default(),
            delivery_log: (0..nodes).map(|_| Vec::new()).collect(),
        }
    }

    /// Enqueue a commit delivery, charging the link's current delay.
    pub fn enqueue(&mut self, mut d: Delivery<K, V>, to: NodeId, eager_full: bool) {
        d.hold = self.delay[d.from][to];
        self.stats.sends += 1;
        // Delta gossip ships one entry; eager gossip re-ships the
        // sender's whole knowledge alongside it.
        self.stats.entries_shipped +=
            if eager_full { self.known[d.from].len() as u64 + 1 } else { 1 };
        self.queues[to].push_back(d);
    }

    /// True if the front delivery for `to` may be applied now.
    pub fn front_deliverable(&self, to: NodeId, flush: bool) -> bool {
        match self.queues[to].front() {
            None => false,
            Some(d) => flush || (!self.blocked[d.from][to] && d.hold == 0),
        }
    }

    /// Age the head-of-line holds by one pump round.
    pub fn age(&mut self) {
        for q in &mut self.queues {
            if let Some(front) = q.front_mut() {
                front.hold = front.hold.saturating_sub(1);
            }
        }
    }

    pub fn pending(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

/// Apply one delivery against the recipient's current database state.
/// Returns the keys whose locks the recipient released (for the trace).
pub(crate) fn apply_delivery<K, V>(
    d: Delivery<K, V>,
    db: &Db<K, V>,
    incarnation: u64,
    stats: &mut RouterStats,
) -> Vec<K>
where
    K: Eq + std::hash::Hash + Ord + Clone + Send + Sync + 'static,
    V: Clone + std::hash::Hash + Send + Sync + 'static,
{
    stats.receives += 1;
    if d.incarnation == incarnation {
        if let Some(txn) = d.txn {
            if txn.commit().is_err() {
                stats.remote_commit_failures += 1;
            }
        }
    } else {
        // The participant died with the old incarnation; recovery kept
        // only locally-committed state, so re-play the write image.
        drop(d.txn);
        if !d.writes.is_empty() {
            let txn = db.begin();
            let mut ok = true;
            for (k, v) in &d.writes {
                if txn.write(k, v.clone()).is_err() {
                    ok = false;
                    break;
                }
            }
            if ok && txn.commit().is_ok() {
                stats.redo_applied += 1;
            } else {
                stats.remote_commit_failures += 1;
            }
        }
    }
    d.touched
}
