//! The partition map: `home(x)` for runtime keys.
//!
//! The paper fixes an a-priori assignment of objects to nodes (Section
//! 9.1); the runtime equivalent is a deterministic hash partition over
//! the key space. Determinism matters twice over: every handle of the
//! same cluster must route a key identically, and the chaos harness
//! replays whole runs from a seed — so the hash must not depend on
//! process-random state the way `std`'s default `RandomState` does. We
//! use FNV-1a over the key's `Hash` byte stream.

use rnt_distributed::NodeId;
use std::hash::{Hash, Hasher};

/// FNV-1a, a fixed (seedless) hasher for the partition map.
struct Fnv(u64);

impl Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// The cluster's `home` function: key → owning node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partition {
    nodes: usize,
}

impl Partition {
    /// A partition over `nodes` nodes (at least one).
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "a cluster needs at least one node");
        Partition { nodes }
    }

    /// Number of nodes `k`.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// `home(x)`: the node owning `key`. Deterministic across processes
    /// and handles.
    pub fn home<K: Hash + ?Sized>(&self, key: &K) -> NodeId {
        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        key.hash(&mut h);
        (h.finish() % self.nodes as u64) as NodeId
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let p = Partition::new(4);
        for k in 0u64..1000 {
            let h = p.home(&k);
            assert!(h < 4);
            assert_eq!(h, p.home(&k), "routing must be stable");
            assert_eq!(h, Partition::new(4).home(&k), "routing must be shared");
        }
    }

    #[test]
    fn single_node_takes_all() {
        let p = Partition::new(1);
        assert_eq!(p.home(&"anything"), 0);
    }

    #[test]
    fn spreads_keys() {
        let p = Partition::new(4);
        let mut counts = [0usize; 4];
        for k in 0u64..4000 {
            counts[p.home(&k)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 500, "node {i} got only {c}/4000 keys");
        }
    }
}
