//! Recording cluster executions as level-5 event traces.
//!
//! The cluster does not *interpret* the formal algebra — it runs real
//! engine transactions — but every run can be journaled as the sequence
//! of level-5 events it corresponds to, and the journal replayed through
//! [`rnt_distributed::validate_level5_run`]: every event must be enabled
//! under the paper's eight preconditions, the local mapping (Lemmas
//! 23–28) must hold step by step, and optionally the full Theorem-29
//! composed simulation down to level 1.
//!
//! The mapping from runtime to model vocabulary:
//!
//! | runtime                              | level-5 events                        |
//! |--------------------------------------|---------------------------------------|
//! | `Cluster::insert` seed               | object + initial value in the universe |
//! | `Cluster::begin` / `ClusterTxn::child` | `create` at the home node            |
//! | `put` at `home(x)`                   | `create` at home, gossip of the active chain, `perform`, eager `release-lock` of the access |
//! | remote `put` acknowledgment          | gossip of the access's commit back home |
//! | `commit` (home side)                 | `commit` at home + `release-lock` of home write keys |
//! | router delivery of a commit          | `send`/`receive` of the status + `release-lock` at the recipient |
//! | `abort`                              | `abort` at home + eager gossip + `lose-lock` everywhere |
//!
//! **Reads are not journaled.** The formal tower models the paper's
//! exclusive-lock algebra, where *every* perform needs all value-map
//! holders to be proper ancestors; the engine runs the read/write
//! extension the paper lists as follow-up work, under which read locks
//! are shared (see `rnt-core`'s `lock.rs`). A shared read has no sound
//! image in the exclusive algebra, so the journal maps the run's
//! *write skeleton*: engine write grants are strictly more restrictive
//! than the model's perform rule (they also exclude non-ancestor
//! readers), hence every journaled perform is model-enabled and the
//! value stacks coincide exactly.
//!
//! Recording is only meaningful for **single-threaded** drivers (the
//! chaos harness, the proptests): with concurrent committers the journal
//! order is not the execution order. The recorder is therefore an opt-in
//! ([`crate::ClusterConfig::trace`]), off for benchmarks.

use rnt_distributed::{validate_level5_run, DistEvent, NodeId, Topology, TraceReport};
use rnt_model::{
    ActionId, ActionSummary, ObjectId, Status, TxEvent, Universe, UniverseBuilder, UpdateFn, Value,
};
use std::collections::BTreeMap;
use std::hash::Hash;
use std::sync::Arc;

/// Conversion from a runtime value type into the model's [`Value`].
///
/// The formal algebra computes over `i64`; to judge a run of
/// `Cluster<K, V>` against it, `V` must embed into `i64` injectively on
/// the values the run actually uses (the validator compares performed
/// values exactly).
pub trait TraceValue {
    /// This value rendered as a model [`Value`].
    fn trace_value(&self) -> Value;
}

macro_rules! int_trace_value {
    ($($t:ty),*) => {$(
        impl TraceValue for $t {
            fn trace_value(&self) -> Value {
                *self as Value
            }
        }
    )*};
}

int_trace_value!(i64, i32, i16, i8, u64, u32, u16, u8);

impl TraceValue for bool {
    fn trace_value(&self) -> Value {
        Value::from(*self)
    }
}

/// One recorded high-level operation. `action` paths are the model
/// coordinates: `[ctid]` is the top-level cluster transaction,
/// `[ctid, ...]` its nested descendants.
#[derive(Clone, Debug)]
pub(crate) enum RecOp<K> {
    /// `Cluster::insert`: an object of the universe with its initial
    /// value, homed at `node`.
    Seed { key: K, node: NodeId, init: Value },
    /// `begin`/`child`: the action enters `Active` at its home node.
    Create { action: Vec<u32>, home: NodeId },
    /// A successful `put`: a write access performed at `node` (the home
    /// of `key`), created at `home` (the transaction's home node), seeing
    /// `pre` and applying `update` (always a write; reads are not
    /// journaled — see the module docs).
    Access { action: Vec<u32>, home: NodeId, node: NodeId, key: K, pre: Value, update: UpdateFn },
    /// A commit or abort resolved *synchronously* (child commit, any
    /// abort, and the home-node half of a top-level commit): the status
    /// event at `home` plus, per node, the lock movements `(holder, key)`
    /// with eager gossip to remote nodes.
    Finish { action: Vec<u32>, home: NodeId, committed: bool, released: ReleasedByNode<K> },
    /// Router enqueue of a top-level commit status toward `to`.
    Send { from: NodeId, to: NodeId, action: Vec<u32> },
    /// Router delivery of that status at `node`: the `receive` plus the
    /// remote `release-lock`s it enables.
    Deliver { node: NodeId, action: Vec<u32>, released: Vec<(Vec<u32>, K)> },
}

/// The journal of one cluster run.
#[derive(Debug)]
pub(crate) struct Recorder<K> {
    pub(crate) ops: Vec<RecOp<K>>,
}

impl<K> Recorder<K> {
    pub(crate) fn new() -> Self {
        Recorder { ops: Vec::new() }
    }
}

/// Lock releases grouped by node: `(holder action path, key)` pairs.
pub(crate) type ReleasedByNode<K> = Vec<(NodeId, Vec<(Vec<u32>, K)>)>;

/// A journal rendered into the formal vocabulary: the universe it
/// implies, the node topology, and the level-5 event sequence.
pub(crate) type BuiltTrace = (Arc<Universe>, Arc<Topology>, Vec<DistEvent>);

fn act(path: &[u32]) -> ActionId {
    ActionId::from_path(path.to_vec())
}

/// Build the formal `(universe, topology, events)` triple from a journal.
pub(crate) fn build<K: Eq + Hash + Ord + Clone>(
    nodes: usize,
    ops: &[RecOp<K>],
) -> Result<BuiltTrace, String> {
    // Pass 1: the universe (objects from seeds, actions from creates and
    // accesses) and the home assignment.
    let mut key_obj: BTreeMap<&K, u32> = BTreeMap::new();
    let mut builder = UniverseBuilder::new();
    let mut home_obj = BTreeMap::new();
    let mut home_act = BTreeMap::new();
    for op in ops {
        match op {
            RecOp::Seed { key, node, init } => {
                let id = key_obj.len() as u32;
                if key_obj.insert(key, id).is_some() {
                    return Err("key seeded twice".into());
                }
                builder = builder.object(id, *init);
                home_obj.insert(ObjectId(id), *node);
            }
            RecOp::Create { action, home } => {
                builder = builder.action(act(action));
                home_act.insert(act(action), *home);
            }
            RecOp::Access { action, node, key, update, .. } => {
                let obj = *key_obj.get(key).ok_or("access to an unseeded key")?;
                builder = builder.access(act(action), obj, *update);
                home_act.insert(act(action), *node);
            }
            _ => {}
        }
    }
    let universe =
        Arc::new(builder.build().map_err(|e| format!("journal universe invalid: {e:?}"))?);
    let topology = Arc::new(
        Topology::new(&universe, nodes, home_obj, home_act)
            .map_err(|e| format!("journal topology invalid: {e:?}"))?,
    );

    // Pass 2: the event sequence.
    let obj_of = |key: &K| ObjectId(key_obj[key]);
    let mut events = Vec::new();
    for op in ops {
        match op {
            RecOp::Seed { .. } => {}
            RecOp::Create { action, home } => {
                events.push(DistEvent::Tx(*home, TxEvent::Create(act(action))));
            }
            RecOp::Access { action, home, node, key, pre, .. } => {
                let a = act(action);
                events.push(DistEvent::Tx(*home, TxEvent::Create(a.clone())));
                if node != home {
                    // The performing node must know the access and its
                    // still-active ancestor chain before it may perform
                    // (rule (d)) — ship exactly that knowledge.
                    let chain = ActionSummary::from_entries(
                        (1..=action.len()).map(|k| (act(&action[..k]), Status::Active)),
                    );
                    events.push(DistEvent::Send { from: *home, to: *node, summary: chain.clone() });
                    events.push(DistEvent::Receive { to: *node, summary: chain });
                }
                events.push(DistEvent::Tx(*node, TxEvent::Perform(a.clone(), *pre)));
                // Accesses auto-commit on perform; the engine's lock
                // inheritance is the eager release to the parent.
                events.push(DistEvent::Tx(*node, TxEvent::ReleaseLock(a.clone(), obj_of(key))));
                if node != home {
                    // The op's success return is the acknowledgment: home
                    // learns the access committed.
                    let ack = ActionSummary::singleton(a, Status::Committed);
                    events.push(DistEvent::Send { from: *node, to: *home, summary: ack.clone() });
                    events.push(DistEvent::Receive { to: *home, summary: ack });
                }
            }
            RecOp::Finish { action, home, committed, released } => {
                let a = act(action);
                let status = if *committed { Status::Committed } else { Status::Aborted };
                let tx =
                    if *committed { TxEvent::Commit(a.clone()) } else { TxEvent::Abort(a.clone()) };
                events.push(DistEvent::Tx(*home, tx));
                for (node, pairs) in released {
                    if node != home {
                        let s = ActionSummary::singleton(a.clone(), status);
                        events.push(DistEvent::Send { from: *home, to: *node, summary: s.clone() });
                        events.push(DistEvent::Receive { to: *node, summary: s });
                    }
                    for (holder, key) in pairs {
                        let tx = if *committed {
                            TxEvent::ReleaseLock(act(holder), obj_of(key))
                        } else {
                            TxEvent::LoseLock(act(holder), obj_of(key))
                        };
                        events.push(DistEvent::Tx(*node, tx));
                    }
                }
            }
            RecOp::Send { from, to, action } => {
                events.push(DistEvent::Send {
                    from: *from,
                    to: *to,
                    summary: ActionSummary::singleton(act(action), Status::Committed),
                });
            }
            RecOp::Deliver { node, action, released } => {
                events.push(DistEvent::Receive {
                    to: *node,
                    summary: ActionSummary::singleton(act(action), Status::Committed),
                });
                for (holder, key) in released {
                    events
                        .push(DistEvent::Tx(*node, TxEvent::ReleaseLock(act(holder), obj_of(key))));
                }
            }
        }
    }
    Ok((universe, topology, events))
}

/// Build and validate a journal; `deep` additionally runs the Theorem-29
/// composed simulation down to level 1.
pub(crate) fn validate<K: Eq + Hash + Ord + Clone>(
    nodes: usize,
    ops: &[RecOp<K>],
    deep: bool,
) -> Result<TraceReport, String> {
    let (universe, topology, events) = build(nodes, ops)?;
    validate_level5_run(&universe, &topology, &events, deep)
}
