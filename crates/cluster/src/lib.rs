//! rnt-cluster: the paper's Section-9 distributed algebra as a running
//! sharded engine.
//!
//! A [`Cluster`] shards the ordered keyspace across `k` in-process nodes
//! — each a full [`rnt_core::Db`] with its own lock manager, MVCC store,
//! commit pipeline and optional write-ahead log — routed by the
//! deterministic [`Partition`] (`home(x)`). Cluster transactions span
//! nodes transparently: every `get`/`put` runs at the key's home node
//! under a per-node *participant* transaction, nested
//! [`ClusterTxn::child`] subtransactions are resilient across node
//! boundaries, and cross-node commit status travels by the paper's
//! gossip rules (a [`GossipPolicy`]: eager, delta, or periodic), with
//! remote locks held until the status delivery arrives — the level-5
//! send/receive discipline made executable.
//!
//! Fault classes: [`Cluster::crash_node`] (fail-stop; durable clusters
//! recover from the WAL via [`Cluster::recover_node`]),
//! [`Cluster::set_link_delay`] (delayed gossip) and
//! [`Cluster::set_link_blocked`] (partition).
//!
//! With [`ClusterConfig::trace`] on, a run journals itself as a level-5
//! event trace and [`Cluster::validate_trace`] replays it through the
//! formal checker: every event enabled under the paper's eight
//! preconditions, the Lemma 23–28 local mapping, and optionally the
//! Theorem-29 composed simulation down to level 1.

#![warn(missing_docs)]

mod cluster;
mod partition;
mod router;
mod trace;

pub use cluster::{Cluster, ClusterConfig, ClusterSnapshot, ClusterStats, ClusterTxn};
pub use partition::Partition;
pub use router::RouterStats;
pub use trace::TraceValue;

pub use rnt_core::{DbConfig, Durability, TxnError};
pub use rnt_distributed::{GossipPolicy, NodeId, TraceReport};
