//! Property tests for the cluster ↔ formal-tower correspondence:
//!
//! * every router-generated level-5 trace of a randomized 2–4 node
//!   workload satisfies the paper's event preconditions and the
//!   `summary_le_tree` local mapping (Lemmas 23–28), and survives the
//!   Theorem-29 composed simulation down to level 1;
//! * each node's local apply order of remote commits embeds into the
//!   cluster serialization (Theorem 29's order embedding): per-node
//!   delivery logs are strictly increasing subsequences of the cluster
//!   commit log.

use proptest::prelude::*;
use rnt_cluster::{Cluster, ClusterConfig, GossipPolicy};
use rnt_core::{DbConfig, DeadlockPolicy};

#[derive(Clone, Debug)]
struct OpSpec {
    key: u64,
    write: bool,
}

#[derive(Clone, Debug)]
struct ChildSpec {
    ops: Vec<OpSpec>,
    abort: bool,
}

#[derive(Clone, Debug)]
struct TxnSpec {
    ops: Vec<OpSpec>,
    children: Vec<ChildSpec>,
    abort: bool,
}

fn op_strategy() -> impl Strategy<Value = OpSpec> {
    (0u64..24, 0u32..2).prop_map(|(key, write)| OpSpec { key, write: write == 1 })
}

fn txn_strategy() -> impl Strategy<Value = TxnSpec> {
    (
        proptest::collection::vec(op_strategy(), 0..6),
        proptest::collection::vec(
            (proptest::collection::vec(op_strategy(), 1..4), 0u32..2)
                .prop_map(|(ops, abort)| ChildSpec { ops, abort: abort == 1 }),
            0..3,
        ),
        0u32..2,
    )
        .prop_map(|(ops, children, abort)| TxnSpec { ops, children, abort: abort == 1 })
}

fn policy_strategy() -> impl Strategy<Value = GossipPolicy> {
    prop_oneof![
        Just(GossipPolicy::EagerFull),
        Just(GossipPolicy::DeltaOnChange),
        (1u32..4).prop_map(GossipPolicy::Periodic),
    ]
}

fn run_workload(nodes: usize, policy: GossipPolicy, txns: &[TxnSpec]) -> Cluster<u64, i64> {
    // NoWait: under lazy gossip a committed-but-undelivered transaction
    // still holds its remote locks; a single-threaded driver must die on
    // such a conflict (and treat it as an abort), never block on it.
    let node_config = DbConfig::builder().policy(DeadlockPolicy::NoWait).build();
    let cluster: Cluster<u64, i64> =
        Cluster::new(ClusterConfig::new(nodes).gossip(policy).node_config(node_config).trace(true));
    for k in 0..24u64 {
        cluster.insert(k, 0);
    }
    let mut serial = 1i64;
    for spec in txns {
        let txn = cluster.begin();
        let mut ok = true;
        for op in &spec.ops {
            let res = if op.write {
                txn.put(&op.key, serial).map(|_| ())
            } else {
                txn.get(&op.key).map(|_| ())
            };
            if res.is_err() {
                ok = false;
                break;
            }
            serial += 1;
        }
        if ok {
            for child_spec in &spec.children {
                let Ok(child) = txn.child() else { break };
                let mut child_ok = true;
                for op in &child_spec.ops {
                    let res = if op.write {
                        child.put(&op.key, serial).map(|_| ())
                    } else {
                        child.get(&op.key).map(|_| ())
                    };
                    if res.is_err() {
                        child_ok = false;
                        break;
                    }
                    serial += 1;
                }
                if child_spec.abort || !child_ok {
                    child.abort();
                } else if child.commit().is_err() {
                    break;
                }
            }
        }
        if spec.abort || !ok {
            txn.abort();
        } else {
            let _ = txn.commit();
        }
    }
    cluster.flush();
    cluster
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemmas 23–28 + Theorem 29, end to end: the synthesized level-5
    /// trace of any single-threaded random workload validates deeply.
    #[test]
    fn router_traces_satisfy_summary_le_tree(
        nodes in 2usize..=4,
        policy in policy_strategy(),
        txns in proptest::collection::vec(txn_strategy(), 1..12),
    ) {
        let cluster = run_workload(nodes, policy, &txns);
        let report = cluster.validate_trace(true)
            .map_err(|e| TestCaseError(format!("trace invalid: {e}")))?;
        prop_assert!(report.events > 0);
    }

    /// Theorem 29's order embedding at runtime: every node applies
    /// remote commits as a strictly increasing subsequence of the
    /// cluster commit log.
    #[test]
    fn delivery_order_embeds_into_commit_order(
        nodes in 2usize..=4,
        policy in policy_strategy(),
        txns in proptest::collection::vec(txn_strategy(), 1..16),
    ) {
        let cluster = run_workload(nodes, policy, &txns);
        let commit_log = cluster.commit_log();
        prop_assert!(commit_log.windows(2).all(|w| w[0].0 < w[1].0));
        for node in 0..nodes {
            let log = cluster.delivery_log(node);
            prop_assert!(
                log.windows(2).all(|w| w[0].0 < w[1].0),
                "node {} applied out of cluster order: {:?}", node, log
            );
            let mut walk = commit_log.iter();
            for entry in &log {
                prop_assert!(
                    walk.any(|e| e == entry),
                    "delivery {:?} at node {} is not in the commit log {:?}",
                    entry, node, commit_log
                );
            }
        }
    }
}
