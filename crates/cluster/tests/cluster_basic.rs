//! Functional coverage of the sharded multi-node engine: routing,
//! cross-node transactions, nesting resilience, gossip policies, fault
//! classes, recovery, snapshots, and trace validation.

use rnt_cluster::{Cluster, ClusterConfig, GossipPolicy, TxnError};
use rnt_core::{DbConfig, Durability};

fn mem_cluster(nodes: usize) -> Cluster<u64, i64> {
    let cluster = Cluster::new(ClusterConfig::new(nodes).trace(true));
    for k in 0..64u64 {
        assert!(cluster.insert(k, 0));
    }
    cluster
}

fn durable_cluster(nodes: usize) -> Cluster<u64, i64> {
    let config = ClusterConfig::new(nodes)
        .trace(true)
        .node_config(DbConfig::builder().durability(Durability::WalFsync).build());
    let cluster = Cluster::new_durable(config).expect("open");
    for k in 0..64u64 {
        assert!(cluster.insert(k, 0));
    }
    cluster
}

/// Keys spread over all nodes end up readable from every handle with
/// single-node semantics.
#[test]
fn cross_node_commit_is_visible_everywhere() {
    let cluster = mem_cluster(4);
    let txn = cluster.begin();
    for k in 0..16u64 {
        assert_eq!(txn.put(&k, k as i64 + 1).unwrap(), 0);
    }
    txn.commit().unwrap();
    for k in 0..16u64 {
        assert_eq!(cluster.committed_value(&k).unwrap(), Some(k as i64 + 1));
    }
    let report = cluster.validate_trace(true).expect("trace valid");
    assert!(report.events > 0);
    assert!(report.sends > 0, "a 4-node write-all txn must gossip");
}

/// An aborted cluster transaction leaves no trace on any node.
#[test]
fn abort_restores_all_nodes() {
    let cluster = mem_cluster(4);
    let txn = cluster.begin();
    for k in 0..16u64 {
        txn.put(&k, -7).unwrap();
    }
    txn.abort();
    for k in 0..16u64 {
        assert_eq!(cluster.committed_value(&k).unwrap(), Some(0));
    }
    cluster.validate_trace(true).expect("trace valid");
}

/// Dropping a live handle aborts it (RAII poison safety).
#[test]
fn drop_aborts() {
    let cluster = mem_cluster(2);
    {
        let txn = cluster.begin();
        txn.put(&3, 99).unwrap();
    }
    assert_eq!(cluster.committed_value(&3).unwrap(), Some(0));
    assert_eq!(cluster.stats().aborts, 1);
    cluster.validate_trace(true).expect("trace valid");
}

/// A nested subtransaction's failure aborts only its subtree, even when
/// the subtree spans nodes the parent also touched.
#[test]
fn child_abort_is_resilient_across_nodes() {
    let cluster = mem_cluster(4);
    let txn = cluster.begin();
    for k in 0..8u64 {
        txn.put(&k, 1).unwrap();
    }
    let child = txn.child().unwrap();
    for k in 0..8u64 {
        child.put(&k, 1000).unwrap();
    }
    child.abort();
    // Parent still live, child's writes undone under the parent's view.
    for k in 0..8u64 {
        assert_eq!(txn.get(&k).unwrap(), 1);
    }
    let child2 = txn.child().unwrap();
    child2.put(&0, 2).unwrap();
    child2.commit().unwrap();
    assert_eq!(txn.get(&0).unwrap(), 2);
    txn.commit().unwrap();
    assert_eq!(cluster.committed_value(&0).unwrap(), Some(2));
    assert_eq!(cluster.committed_value(&1).unwrap(), Some(1));
    cluster.validate_trace(true).expect("trace valid");
}

/// Deeply nested cluster transactions commit bottom-up, and committing
/// over a live descendant is refused (consuming the handle, which
/// aborts the subtree — the engine's own contract, one level up).
#[test]
fn deep_nesting() {
    let cluster = mem_cluster(3);
    let top = cluster.begin();
    let c1 = top.child().unwrap();
    let c2 = c1.child().unwrap();
    for k in 0..6u64 {
        c2.put(&k, 5).unwrap();
    }
    c2.commit().unwrap();
    c1.commit().unwrap();
    top.put(&0, 1).unwrap();
    top.commit().unwrap();
    assert_eq!(cluster.committed_value(&0).unwrap(), Some(1));
    for k in 1..6u64 {
        assert_eq!(cluster.committed_value(&k).unwrap(), Some(5));
    }
    // A top-level commit over a live child fails and (handle consumed)
    // aborts the whole tree — top's own writes included.
    let top2 = cluster.begin();
    top2.put(&0, 100).unwrap();
    let orphan = top2.child().unwrap();
    orphan.put(&1, 100).unwrap();
    assert!(matches!(top2.commit(), Err(TxnError::ChildrenActive(_))));
    assert!(!orphan.is_live(), "parent death kills the subtree");
    assert_eq!(cluster.committed_value(&0).unwrap(), Some(1));
    assert_eq!(cluster.committed_value(&1).unwrap(), Some(5));
    cluster.validate_trace(true).expect("trace valid");
}

/// Periodic gossip holds remote locks until the pump round, and the
/// locks block conflicting writers in the meantime.
#[test]
fn periodic_gossip_defers_remote_release() {
    let cluster: Cluster<u64, i64> =
        Cluster::new(ClusterConfig::new(2).trace(true).gossip(GossipPolicy::Periodic(100)));
    for k in 0..8u64 {
        cluster.insert(k, 0);
    }
    // Find a key homed away from txn 0's home node.
    let txn = cluster.begin();
    let home = txn.home();
    let remote_key = (0..8u64).find(|k| cluster.partition().home(k) != home).unwrap();
    txn.put(&remote_key, 42).unwrap();
    txn.commit().unwrap();
    // The commit stood (the home node sequenced it), but the remote
    // node does not know yet: its participant is queued, its lock still
    // held, its committed state still the old value — exactly the
    // level-5 discipline where status is knowledge.
    assert_eq!(cluster.stats().pending_deliveries, 1);
    assert_eq!(cluster.committed_value(&remote_key).unwrap(), Some(0));
    // A manual pump delivers what links allow regardless of policy.
    cluster.pump();
    assert_eq!(cluster.stats().pending_deliveries, 0);
    assert_eq!(cluster.committed_value(&remote_key).unwrap(), Some(42));
    cluster.validate_trace(true).expect("trace valid");
}

/// Snapshots are cluster-wide consistent: never a half-visible commit,
/// and ranges merge across nodes in key order.
#[test]
fn snapshot_is_consistent_and_ordered() {
    let cluster = mem_cluster(4);
    for round in 1..=5i64 {
        let txn = cluster.begin();
        for k in 0..16u64 {
            txn.put(&k, round).unwrap();
        }
        txn.commit().unwrap();
        let snap = cluster.snapshot().unwrap();
        let vals: Vec<i64> = (0..16u64).map(|k| snap.read(&k).unwrap()).collect();
        assert!(vals.iter().all(|&v| v == round), "torn snapshot: {vals:?}");
    }
    let snap = cluster.snapshot().unwrap();
    let range = snap.range(0..16u64);
    assert_eq!(range.len(), 16);
    assert!(range.windows(2).all(|w| w[0].0 < w[1].0), "range must be key-ordered");
    cluster.validate_trace(true).expect("trace valid");
}

/// WrongNode is a typed routing error, not a panic.
#[test]
fn wrong_node_is_typed() {
    let cluster = mem_cluster(4);
    let key = 5u64;
    let home = cluster.partition().home(&key);
    let wrong = (home + 1) % 4;
    let txn = cluster.begin();
    match txn.get_at(wrong, &key) {
        Err(TxnError::WrongNode { node, home: h }) => {
            assert_eq!(node, wrong);
            assert_eq!(h, home);
        }
        other => panic!("expected WrongNode, got {other:?}"),
    }
    assert_eq!(txn.get_at(home, &key).unwrap(), 0);
    txn.commit().unwrap();
}

/// Crashing a node force-aborts transactions with a participant there;
/// unrelated transactions and the rest of the cluster keep going.
#[test]
fn crash_aborts_participants_only() {
    let cluster = durable_cluster(4);
    let txn = cluster.begin();
    // Touch every node so the crash surely hits a participant.
    for k in 0..16u64 {
        txn.put(&k, 9).unwrap();
    }
    cluster.crash_node(2);
    assert!(!txn.is_live(), "participant at crashed node must die");
    assert!(matches!(txn.get(&0), Err(TxnError::Unavailable { node: 2 })));
    txn.abort(); // no-op, already dead
                 // Keys homed elsewhere still work.
    let other_key = (0..64u64).find(|k| cluster.partition().home(k) != 2).unwrap();
    let t2 = cluster.begin();
    t2.put(&other_key, 1).unwrap();
    t2.commit().unwrap();
    assert_eq!(cluster.committed_value(&other_key).unwrap(), Some(1));
    // Keys homed at the dead node are unavailable.
    let dead_key = (0..64u64).find(|k| cluster.partition().home(k) == 2).unwrap();
    assert!(matches!(cluster.committed_value(&dead_key), Err(TxnError::Unavailable { node: 2 })));
    // Snapshots refuse while a node is down.
    assert!(matches!(cluster.snapshot(), Err(TxnError::Unavailable { node: 2 })));
    cluster.recover_node(2).unwrap();
    assert_eq!(cluster.committed_value(&dead_key).unwrap(), Some(0));
    cluster.snapshot().unwrap();
    cluster.validate_trace(true).expect("trace valid");
}

/// A committed cluster transaction survives a remote participant's crash
/// before its status delivery: recovery + redo re-applies the writes.
#[test]
fn committed_work_survives_remote_crash_via_redo() {
    let config = ClusterConfig::new(2)
        .trace(true)
        .gossip(GossipPolicy::Periodic(1000)) // keep deliveries queued
        .node_config(DbConfig::builder().durability(Durability::WalFsync).build());
    let cluster: Cluster<u64, i64> = Cluster::new_durable(config).expect("open");
    for k in 0..16u64 {
        cluster.insert(k, 0);
    }
    let txn = cluster.begin();
    let home = txn.home();
    let remote_key = (0..16u64).find(|k| cluster.partition().home(k) != home).unwrap();
    let remote = cluster.partition().home(&remote_key);
    txn.put(&remote_key, 77).unwrap();
    txn.commit().unwrap();
    assert_eq!(cluster.stats().pending_deliveries, 1);
    // The remote node dies holding the undelivered status.
    cluster.crash_node(remote);
    cluster.recover_node(remote).unwrap();
    // Recovery flushed the queue: the redo image re-applied the write.
    assert_eq!(cluster.stats().pending_deliveries, 0);
    assert_eq!(cluster.stats().router.redo_applied, 1);
    assert_eq!(cluster.committed_value(&remote_key).unwrap(), Some(77));
    cluster.validate_trace(true).expect("trace valid");
}

/// Partitioned links queue deliveries; healing releases them in commit
/// order.
#[test]
fn partition_queues_then_heals() {
    let cluster = mem_cluster(2);
    cluster.set_link_blocked(0, 1, true);
    cluster.set_link_blocked(1, 0, true);
    // Disjoint key sets per round: remote locks stay held while the
    // partition lasts, so overlapping rounds would block — held locks of
    // *committed-but-unknown* transactions are the point of the model.
    for round in 0..6u64 {
        let txn = cluster.begin();
        for k in round * 8..round * 8 + 8 {
            txn.put(&k, round as i64 + 1).unwrap();
        }
        txn.commit().unwrap();
    }
    assert!(cluster.stats().pending_deliveries > 0, "partition must queue");
    cluster.heal_links();
    cluster.pump();
    assert_eq!(cluster.stats().pending_deliveries, 0);
    // Each node applied remote commits in cluster commit order.
    for node in 0..2 {
        let log = cluster.delivery_log(node);
        assert!(log.windows(2).all(|w| w[0].0 < w[1].0), "out-of-order delivery at {node}");
    }
    for k in 0..48u64 {
        assert_eq!(cluster.committed_value(&k).unwrap(), Some((k / 8) as i64 + 1));
    }
    cluster.validate_trace(true).expect("trace valid");
}

/// Delayed links hold deliveries for the configured number of pump
/// rounds without reordering them.
#[test]
fn delayed_gossip_preserves_order() {
    let cluster = mem_cluster(2);
    cluster.set_link_delay(0, 1, 3);
    cluster.set_link_delay(1, 0, 3);
    let txn = cluster.begin();
    for k in 0..8u64 {
        txn.put(&k, 1).unwrap();
    }
    txn.commit().unwrap();
    // The commit's own (eager) pump round already aged the hold once:
    // 3 → 2 remaining.
    assert_eq!(cluster.stats().pending_deliveries, 1);
    cluster.pump();
    assert_eq!(cluster.stats().pending_deliveries, 1, "still held");
    cluster.pump();
    assert_eq!(cluster.stats().pending_deliveries, 0, "delay served");
    cluster.validate_trace(true).expect("trace valid");
}

/// Cluster::run retries contention like Db::run: concurrent increments
/// across nodes sum exactly.
#[test]
fn run_retries_to_exact_sum() {
    let cluster: Cluster<u64, i64> = Cluster::new(ClusterConfig::new(4));
    for k in 0..4u64 {
        cluster.insert(k, 0);
    }
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let c = cluster.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    c.run(|txn| {
                        for k in 0..4u64 {
                            txn.rmw(&k, |v| v + 1)?;
                        }
                        Ok(())
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    cluster.flush();
    for k in 0..4u64 {
        assert_eq!(cluster.committed_value(&k).unwrap(), Some(200), "lost update on {k}");
    }
}

/// The trace journal round-trips through the deep (Theorem-29) checker
/// on a mixed workload: nesting, aborts, remote ops, faults.
#[test]
fn mixed_workload_trace_validates_deep() {
    let cluster = mem_cluster(3);
    for round in 0..10u64 {
        let txn = cluster.begin();
        let k1 = round % 8;
        let k2 = 8 + (round % 8);
        txn.rmw(&k1, |v| v + 1).unwrap();
        let child = txn.child().unwrap();
        child.put(&k2, round as i64).unwrap();
        if round % 3 == 0 {
            child.abort();
        } else {
            child.commit().unwrap();
        }
        if round % 4 == 3 {
            txn.abort();
        } else {
            txn.commit().unwrap();
        }
    }
    cluster.flush();
    let report = cluster.validate_trace(true).expect("deep trace valid");
    assert!(report.high_steps > 0);
}
