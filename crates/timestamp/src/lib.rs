//! # rnt-timestamp
//!
//! A timestamp-ordered implementation of resilient nested transactions —
//! the alternative the paper repeatedly contrasts with Moss's locking:
//! "Reed \[10\] has designed an algorithm which uses multiple versions of
//! data to implement nested transactions" (§1), and "other
//! implementations for nested transactions, such as Reed's, should be
//! proved correct" (§10).
//!
//! ## What is (and isn't) reproduced
//!
//! [`LevelTo`] keeps Reed's defining behavioral property: the
//! serialization order is **predetermined by timestamps** assigned at
//! creation (here: creation order within each sibling group, compared
//! lexicographically along ancestor paths, i.e. Reed's nested
//! pseudo-time), and accesses arriving **out of timestamp order are
//! rejected** rather than blocked — timestamp schedulers never wait and
//! never deadlock, they abort-and-retry. Reed's tentative versions with
//! commit dependencies are *not* modeled; instead, like the paper's
//! level-2 algebra, an access must find every live earlier-timestamped
//! datastep already visible (the no-cascading-aborts discipline). This
//! keeps the algebra directly comparable with levels 2–4 while exhibiting
//! the locking-vs-timestamp trade-off (experiment E10).
//!
//! ```
//! use rnt_algebra::{is_valid, Algebra};
//! use rnt_model::{act, TxEvent, UniverseBuilder, UpdateFn};
//! use rnt_timestamp::LevelTo;
//! use std::sync::Arc;
//!
//! let universe = Arc::new(
//!     UniverseBuilder::new()
//!         .object(0, 1)
//!         .action(act![0])
//!         .access(act![0, 0], 0, UpdateFn::Add(1))
//!         .action(act![1])
//!         .access(act![1, 0], 0, UpdateFn::Mul(2))
//!         .build()
//!         .unwrap(),
//! );
//! let to = LevelTo::new(universe);
//! // act0 was created first, so it is serialized first: performing its
//! // access after act1's would be a late arrival and is rejected.
//! let run = vec![
//!     TxEvent::Create(act![0]),
//!     TxEvent::Create(act![1]),
//!     TxEvent::Create(act![1, 0]),
//!     TxEvent::Perform(act![1, 0], 1),
//!     TxEvent::Create(act![0, 0]),
//!     TxEvent::Perform(act![0, 0], 1), // too late: rejected
//! ];
//! assert!(!is_valid(&to, run));
//! ```

#![warn(missing_docs)]

use rnt_algebra::Algebra;
use rnt_model::{fold_updates, Aat, ActionId, ObjectId, TxEvent, Universe, Value};
use rnt_spec::common;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A state of the timestamp-ordered algebra: the AAT (whose per-object
/// data orders are kept in *timestamp* order) plus the timestamp
/// assignment.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct TsState {
    /// The augmented action tree; `data_T` is ordered by timestamps.
    pub aat: Aat,
    /// Creation timestamps (Reed's pseudo-time, one per created action).
    ts: BTreeMap<ActionId, u64>,
    next_ts: u64,
}

impl TsState {
    /// The timestamp of a created action.
    pub fn timestamp(&self, a: &ActionId) -> Option<u64> {
        self.ts.get(a).copied()
    }

    /// Compare two distinct, non-ancestor-related actions in the induced
    /// pseudo-time order: the creation order of their sibling ancestors at
    /// the lca (lexicographic nested timestamps).
    pub fn ts_precedes(&self, a: &ActionId, b: &ActionId) -> Option<bool> {
        let lca = a.lca(b);
        let a_side = lca.child_towards(a)?;
        let b_side = lca.child_towards(b)?;
        match self.ts.get(&a_side)?.cmp(self.ts.get(&b_side)?) {
            Ordering::Less => Some(true),
            Ordering::Greater => Some(false),
            Ordering::Equal => None,
        }
    }
}

/// Why a `perform` is rejected (exposed for tests and the E10 metrics).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rejection {
    /// A live later-timestamped datastep already performed: admitting this
    /// access would retroactively invalidate that label.
    LateArrival,
    /// A live earlier-timestamped datastep is not yet visible: its effect
    /// can be neither safely included nor excluded.
    EarlierNotVisible,
    /// The supplied value disagrees with the timestamp-ordered fold.
    WrongValue,
    /// Not an active access at all.
    NotActiveAccess,
}

/// The timestamp-ordered nested-transaction algebra.
pub struct LevelTo {
    universe: Arc<Universe>,
}

impl LevelTo {
    /// Build the algebra over a universe.
    pub fn new(universe: Arc<Universe>) -> Self {
        LevelTo { universe }
    }

    /// The universe this algebra draws actions from.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The value an admissible access must see: the fold of the visible
    /// datasteps that precede it in pseudo-time.
    pub fn expected_value(&self, s: &TsState, a: &ActionId) -> Value {
        let x = self.universe.object_of(a).expect("expected value of non-access");
        let init = self.universe.init_of(x).expect("declared object");
        fold_updates(
            init,
            s.aat
                .data_order(x)
                .iter()
                .filter(|b| s.ts_precedes(b, a) == Some(true) && s.aat.tree.is_visible_to(b, a))
                .map(|b| self.universe.update_of(b).expect("datastep is access")),
        )
    }

    /// Check admissibility of `perform_{A,u}` without applying it.
    pub fn check_perform(&self, s: &TsState, a: &ActionId, value: Value) -> Result<(), Rejection> {
        if !self.universe.is_access(a) || !s.aat.tree.is_active(a) {
            return Err(Rejection::NotActiveAccess);
        }
        let x = self.universe.object_of(a).expect("access has object");
        for b in s.aat.data_order(x) {
            if !s.aat.tree.is_live(b) {
                continue;
            }
            match s.ts_precedes(b, a) {
                Some(true) => {
                    if !s.aat.tree.is_visible_to(b, a) {
                        return Err(Rejection::EarlierNotVisible);
                    }
                }
                Some(false) => return Err(Rejection::LateArrival),
                None => return Err(Rejection::LateArrival), // ancestor-related: impossible for leaves
            }
        }
        if s.aat.tree.is_live(a) && value != self.expected_value(s, a) {
            return Err(Rejection::WrongValue);
        }
        Ok(())
    }

    fn insert_position(&self, s: &TsState, a: &ActionId, x: ObjectId) -> usize {
        s.aat
            .data_order(x)
            .iter()
            .position(|b| s.ts_precedes(a, b) == Some(true))
            .unwrap_or_else(|| s.aat.data_order(x).len())
    }
}

impl Algebra for LevelTo {
    type State = TsState;
    type Event = TxEvent;

    fn initial(&self) -> TsState {
        let mut ts = BTreeMap::new();
        ts.insert(ActionId::root(), 0);
        TsState { aat: Aat::trivial(), ts, next_ts: 1 }
    }

    fn apply(&self, s: &TsState, event: &TxEvent) -> Option<TsState> {
        let u = &self.universe;
        match event {
            TxEvent::Create(a) => {
                if !common::create_enabled(u, &s.aat.tree, a) {
                    return None;
                }
                let mut next = s.clone();
                common::create_apply(&mut next.aat.tree, a);
                next.ts.insert(a.clone(), next.next_ts);
                next.next_ts += 1;
                Some(next)
            }
            TxEvent::Commit(a) => {
                if !common::commit_enabled(u, &s.aat.tree, a) {
                    return None;
                }
                let mut next = s.clone();
                common::commit_apply(&mut next.aat.tree, a);
                Some(next)
            }
            TxEvent::Abort(a) => {
                if !common::abort_enabled(u, &s.aat.tree, a) {
                    return None;
                }
                let mut next = s.clone();
                common::abort_apply(&mut next.aat.tree, a);
                Some(next)
            }
            TxEvent::Perform(a, value) => {
                self.check_perform(s, a, *value).ok()?;
                let x = u.object_of(a).expect("access has object");
                let mut next = s.clone();
                next.aat.tree.set_committed(a);
                next.aat.tree.set_label(a.clone(), *value);
                let pos = self.insert_position(s, a, x);
                next.aat.insert_datastep(x, pos, a.clone());
                Some(next)
            }
            // Timestamp schedulers have no locks.
            TxEvent::ReleaseLock(..) | TxEvent::LoseLock(..) => None,
        }
    }

    fn enabled(&self, s: &TsState) -> Vec<TxEvent> {
        let u = &self.universe;
        let mut out = Vec::new();
        for a in u.actions() {
            if common::create_enabled(u, &s.aat.tree, a) {
                out.push(TxEvent::Create(a.clone()));
            }
            if s.aat.tree.is_active(a) {
                if u.is_access(a) {
                    let value = self.expected_value(s, a);
                    if self.check_perform(s, a, value).is_ok() {
                        out.push(TxEvent::Perform(a.clone(), value));
                    }
                } else if common::commit_enabled(u, &s.aat.tree, a) {
                    out.push(TxEvent::Commit(a.clone()));
                }
                out.push(TxEvent::Abort(a.clone()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnt_algebra::{explore, is_valid, replay, ExploreConfig};
    use rnt_model::{act, UniverseBuilder, UpdateFn};

    fn universe() -> Arc<Universe> {
        Arc::new(
            UniverseBuilder::new()
                .object(0, 1)
                .action(act![0])
                .access(act![0, 0], 0, UpdateFn::Add(1))
                .action(act![1])
                .access(act![1, 0], 0, UpdateFn::Mul(2))
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn in_order_run_is_valid() {
        let to = LevelTo::new(universe());
        let run = vec![
            TxEvent::Create(act![0]),
            TxEvent::Create(act![0, 0]),
            TxEvent::Perform(act![0, 0], 1),
            TxEvent::Commit(act![0]),
            TxEvent::Create(act![1]),
            TxEvent::Create(act![1, 0]),
            TxEvent::Perform(act![1, 0], 2),
            TxEvent::Commit(act![1]),
        ];
        assert!(is_valid(&to, run));
    }

    #[test]
    fn late_arrival_rejected() {
        let to = LevelTo::new(universe());
        let states = replay(
            &to,
            vec![
                TxEvent::Create(act![0]),
                TxEvent::Create(act![1]),
                TxEvent::Create(act![1, 0]),
                TxEvent::Create(act![0, 0]),
            ],
        )
        .unwrap();
        let s = states.last().unwrap();
        // act1's access performs first; act0's earlier-timestamped access
        // then arrives too late.
        let s = to.apply(s, &TxEvent::Perform(act![1, 0], 1)).unwrap();
        assert_eq!(to.check_perform(&s, &act![0, 0], 1), Err(Rejection::LateArrival));
        // The late transaction aborts instead — no deadlock, no waiting.
        assert!(to.apply(&s, &TxEvent::Abort(act![0, 0])).is_some());
    }

    #[test]
    fn dead_late_datastep_does_not_block() {
        let to = LevelTo::new(universe());
        let states = replay(
            &to,
            vec![
                TxEvent::Create(act![0]),
                TxEvent::Create(act![1]),
                TxEvent::Create(act![1, 0]),
                TxEvent::Perform(act![1, 0], 1),
                TxEvent::Abort(act![1]), // the later access dies
                TxEvent::Create(act![0, 0]),
            ],
        )
        .unwrap();
        let s = states.last().unwrap();
        assert_eq!(to.check_perform(s, &act![0, 0], 1), Ok(()));
        assert!(to.apply(s, &TxEvent::Perform(act![0, 0], 1)).is_some());
    }

    #[test]
    fn earlier_invisible_rejected_until_commit() {
        let to = LevelTo::new(universe());
        let states = replay(
            &to,
            vec![
                TxEvent::Create(act![0]),
                TxEvent::Create(act![0, 0]),
                TxEvent::Perform(act![0, 0], 1),
                TxEvent::Create(act![1]),
                TxEvent::Create(act![1, 0]),
            ],
        )
        .unwrap();
        let s = states.last().unwrap();
        assert_eq!(to.check_perform(s, &act![1, 0], 2), Err(Rejection::EarlierNotVisible));
        let s = to.apply(s, &TxEvent::Commit(act![0])).unwrap();
        assert_eq!(to.check_perform(&s, &act![1, 0], 2), Ok(()));
    }

    #[test]
    fn wrong_value_rejected() {
        let to = LevelTo::new(universe());
        let states =
            replay(&to, vec![TxEvent::Create(act![0]), TxEvent::Create(act![0, 0])]).unwrap();
        let s = states.last().unwrap();
        assert_eq!(to.check_perform(s, &act![0, 0], 7), Err(Rejection::WrongValue));
    }

    #[test]
    fn exhaustive_perm_data_serializable() {
        let u = universe();
        let to = LevelTo::new(u.clone());
        let report =
            explore(&to, &ExploreConfig { max_states: 400_000, max_depth: 0 }, |s: &TsState| {
                if s.aat.perm().is_data_serializable(&u) {
                    Ok(())
                } else {
                    Err("perm not data-serializable under timestamp ordering".into())
                }
            })
            .unwrap_or_else(|ce| panic!("{ce}"));
        assert!(!report.truncated);
        assert!(report.states > 100);
    }

    #[test]
    fn data_order_is_timestamp_sorted() {
        let u = universe();
        let to = LevelTo::new(u.clone());
        // Drive to a state with both datasteps and check the order matches
        // pseudo-time regardless of arrival order (here arrival == order).
        let states = replay(
            &to,
            vec![
                TxEvent::Create(act![0]),
                TxEvent::Create(act![0, 0]),
                TxEvent::Perform(act![0, 0], 1),
                TxEvent::Commit(act![0]),
                TxEvent::Create(act![1]),
                TxEvent::Create(act![1, 0]),
                TxEvent::Perform(act![1, 0], 2),
            ],
        )
        .unwrap();
        let s = states.last().unwrap();
        assert_eq!(s.aat.data_order(ObjectId(0)), &[act![0, 0], act![1, 0]]);
        assert_eq!(s.ts_precedes(&act![0, 0], &act![1, 0]), Some(true));
    }

    #[test]
    fn enabled_matches_apply() {
        let to = LevelTo::new(universe());
        let mut state = to.initial();
        for _ in 0..10 {
            let evs = to.enabled(&state);
            for e in &evs {
                assert!(to.apply(&state, e).is_some(), "enabled {e} rejected");
            }
            let Some(e) = evs.into_iter().next() else { break };
            state = to.apply(&state, &e).unwrap();
        }
    }

    #[test]
    fn timestamps_are_creation_order() {
        let to = LevelTo::new(universe());
        let states = replay(&to, vec![TxEvent::Create(act![1]), TxEvent::Create(act![0])]).unwrap();
        let s = states.last().unwrap();
        // act1 was created first: it precedes act0 in pseudo-time even
        // though its name sorts later.
        assert!(s.timestamp(&act![1]).unwrap() < s.timestamp(&act![0]).unwrap());
    }
}
