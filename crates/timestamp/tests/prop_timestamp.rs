//! Property tests for the timestamp-ordered implementation: correctness on
//! random runs and the behavioral comparison with Moss locking.

use proptest::prelude::*;
use rnt_algebra::{replay, Algebra};
use rnt_sim::gen::{random_run, random_universe, UniverseConfig};
use rnt_spec::Level2;
use rnt_timestamp::{LevelTo, TsState};
use std::sync::Arc;

fn config() -> UniverseConfig {
    UniverseConfig { objects: 2, top_actions: 2, max_fanout: 2, max_depth: 3, inner_prob: 0.5 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_runs_keep_perm_serializable(useed in 0u64..5000, rseed in 0u64..5000) {
        let u = Arc::new(random_universe(useed, &config()));
        let to = LevelTo::new(u.clone());
        let run = random_run(&to, rseed, 50);
        let states = replay(&to, run).expect("generated run is valid");
        for s in &states {
            prop_assert!(s.aat.perm().is_data_serializable(&u));
        }
    }

    #[test]
    fn data_orders_stay_timestamp_sorted(useed in 0u64..5000, rseed in 0u64..5000) {
        let u = Arc::new(random_universe(useed, &config()));
        let to = LevelTo::new(u.clone());
        let run = random_run(&to, rseed, 50);
        let states: Vec<TsState> = replay(&to, run).expect("valid");
        let last = states.last().expect("nonempty");
        for x in last.aat.data_objects() {
            let order = last.aat.data_order(x);
            for w in order.windows(2) {
                prop_assert_eq!(
                    last.ts_precedes(&w[0], &w[1]),
                    Some(true),
                    "data order not pseudo-time sorted"
                );
            }
        }
    }

    #[test]
    fn in_order_level2_runs_are_accepted(useed in 0u64..3000) {
        // A serial, creation-ordered execution is valid under both
        // schedulers; generate it at level 2 with a first-enabled policy
        // (which performs accesses in creation order) and replay under TO.
        let u = Arc::new(random_universe(useed, &config()));
        let l2 = Level2::new(u.clone());
        let run = rnt_sim::gen::random_run_biased(&l2, useed, 60, 1.0);
        let states = replay(&l2, run.clone());
        prop_assert!(states.is_ok());
        // The same event sequence, replayed under timestamp ordering,
        // stays valid: first-enabled order never performs late.
        prop_assert!(
            replay(&LevelTo::new(u), run).is_ok(),
            "creation-ordered run rejected by TO"
        );
    }

    #[test]
    fn enabled_matches_apply_to(useed in 0u64..2000, rseed in 0u64..2000) {
        let u = Arc::new(random_universe(useed, &config()));
        let to = LevelTo::new(u);
        let run = random_run(&to, rseed, 30);
        let states = replay(&to, run).expect("valid");
        for s in states.iter().step_by(4) {
            for e in to.enabled(s) {
                prop_assert!(to.apply(s, &e).is_some());
            }
        }
    }
}

/// Deterministic demonstration of the scheduler trade-off: locking admits
/// either serialization order (first-come wins); timestamp ordering admits
/// only pseudo-time order.
#[test]
fn locking_admits_reversed_order_timestamp_does_not() {
    use rnt_model::{act, TxEvent, UniverseBuilder, UpdateFn};
    let u = Arc::new(
        UniverseBuilder::new()
            .object(0, 1)
            .action(act![0])
            .access(act![0, 0], 0, UpdateFn::Add(1))
            .action(act![1])
            .access(act![1, 0], 0, UpdateFn::Mul(2))
            .build()
            .unwrap(),
    );
    // act1 (created second) performs FIRST.
    let reversed = vec![
        TxEvent::Create(act![0]),
        TxEvent::Create(act![1]),
        TxEvent::Create(act![1, 0]),
        TxEvent::Perform(act![1, 0], 1),
        TxEvent::Commit(act![1]),
        TxEvent::Create(act![0, 0]),
        TxEvent::Perform(act![0, 0], 2),
        TxEvent::Commit(act![0]),
    ];
    let l2 = Level2::new(u.clone());
    assert!(rnt_algebra::is_valid(&l2, reversed.clone()), "locking serializes first-come");
    let to = LevelTo::new(u);
    assert!(!rnt_algebra::is_valid(&to, reversed), "TO enforces pseudo-time order");
}
