//! Randomized checking of the level-1/2 results on generated universes:
//! Theorem 14, Lemma 10, and the Lemma 15 simulation, along random valid
//! runs rather than exhaustive exploration (which the unit tests cover for
//! one fixed universe).

use proptest::prelude::*;
use rnt_algebra::{check_possibilities_on_run, replay, Algebra};
use rnt_model::Aat;
use rnt_sim::gen::{random_run, random_universe, UniverseConfig};
use rnt_spec::{lemma10_invariants, HSpec, Level1, Level2};
use std::sync::Arc;

fn config() -> UniverseConfig {
    UniverseConfig { objects: 2, top_actions: 2, max_fanout: 2, max_depth: 3, inner_prob: 0.5 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn theorem14_on_random_runs(useed in 0u64..5000, rseed in 0u64..5000) {
        let u = Arc::new(random_universe(useed, &config()));
        let alg = Level2::new(u.clone());
        let run = random_run(&alg, rseed, 50);
        let states = replay(&alg, run).expect("generated run is valid");
        for aat in &states {
            prop_assert!(
                aat.perm().is_data_serializable(&u),
                "Theorem 14 violated at state {:?}", aat
            );
        }
    }

    #[test]
    fn lemma10_on_random_runs(useed in 0u64..5000, rseed in 0u64..5000) {
        let u = Arc::new(random_universe(useed, &config()));
        let alg = Level2::new(u.clone());
        let run = random_run(&alg, rseed, 50);
        let states = replay(&alg, run).expect("generated run is valid");
        for aat in &states {
            prop_assert!(lemma10_invariants(aat, &u).is_ok());
        }
    }

    #[test]
    fn lemma11_monotonicity_on_random_runs(useed in 0u64..5000, rseed in 0u64..5000) {
        // Along any run, vertices/committed/aborted/data only grow, labels
        // never change, and visibility only grows (Lemma 11 a–d).
        let u = Arc::new(random_universe(useed, &config()));
        let alg = Level2::new(u.clone());
        let run = random_run(&alg, rseed, 40);
        let states: Vec<Aat> = replay(&alg, run).expect("valid");
        for w in states.windows(2) {
            let (before, after) = (&w[0], &w[1]);
            for a in before.tree.vertices() {
                prop_assert!(after.tree.contains(a), "vertex vanished");
                if before.tree.is_committed(a) {
                    prop_assert!(after.tree.is_committed(a), "commit regressed");
                }
                if before.tree.is_aborted(a) {
                    prop_assert!(after.tree.is_aborted(a), "abort regressed");
                }
                if let Some(l) = before.tree.label(a) {
                    prop_assert_eq!(after.tree.label(a), Some(l), "label changed");
                }
            }
            for x in before.data_objects() {
                let b = before.data_order(x);
                let a = after.data_order(x);
                prop_assert!(a.len() >= b.len() && &a[..b.len()] == b, "data order not extended");
            }
            // Lemma 11d: visibility monotone.
            let vs: Vec<_> = before.tree.vertices().cloned().collect();
            for p in &vs {
                for q in &vs {
                    if before.tree.is_visible_to(p, q) {
                        prop_assert!(after.tree.is_visible_to(p, q), "visibility regressed");
                    }
                }
            }
        }
    }

    #[test]
    fn lemma15_simulation_on_random_runs(useed in 0u64..2000, rseed in 0u64..2000) {
        let u = Arc::new(random_universe(useed, &config()));
        let low = Level2::new(u.clone());
        let high = Level1::new(u.clone());
        let run = random_run(&low, rseed, 30);
        check_possibilities_on_run(&low, &high, &HSpec, &run)
            .unwrap_or_else(|e| panic!("Lemma 15 failed: {e}"));
    }

    #[test]
    fn level2_enabled_events_all_apply(useed in 0u64..2000, rseed in 0u64..2000) {
        let u = Arc::new(random_universe(useed, &config()));
        let alg = Level2::new(u);
        let run = random_run(&alg, rseed, 25);
        let states = replay(&alg, run).expect("valid");
        for s in &states {
            for e in alg.enabled(s) {
                prop_assert!(alg.apply(s, &e).is_some(), "enabled {e} rejected");
            }
        }
    }
}
