//! The simulation mapping `h : A' → A` (paper Section 6.4, Lemma 15):
//! events map to the events of the same name, and `h(T) = {S}` — the AAT's
//! underlying action tree is the single possibility.

use crate::level1::Level1;
use crate::level2::Level2;
use rnt_algebra::{Interpretation, PossibilitiesMapping};
use rnt_model::{Aat, ActionTree, TxEvent};

/// The mapping `h` of Lemma 15.
pub struct HSpec;

impl Interpretation<Level2, Level1> for HSpec {
    fn map_event(&self, event: &TxEvent) -> Option<TxEvent> {
        // Same-name mapping; lock events are not level-2 events at all, but
        // mapping them to Λ keeps the interpretation total.
        (!event.is_lock_event()).then(|| event.clone())
    }
}

impl PossibilitiesMapping<Level2, Level1> for HSpec {
    fn is_possibility(&self, low: &Aat, high: &ActionTree) -> bool {
        &low.tree == high
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnt_algebra::{check_possibilities_on_run, check_simulation_on_run};
    use rnt_model::{act, ObjectId, Universe, UniverseBuilder, UpdateFn};
    use std::sync::Arc;

    fn universe() -> Arc<Universe> {
        Arc::new(
            UniverseBuilder::new()
                .object(0, 1)
                .action(act![0])
                .access(act![0, 0], 0, UpdateFn::Add(1))
                .action(act![1])
                .access(act![1, 0], 0, UpdateFn::Mul(2))
                .build()
                .unwrap(),
        )
    }

    fn nontrivial_run() -> Vec<TxEvent> {
        vec![
            TxEvent::Create(act![0]),
            TxEvent::Create(act![1]),
            TxEvent::Create(act![0, 0]),
            TxEvent::Perform(act![0, 0], 1),
            TxEvent::Create(act![1, 0]),
            TxEvent::Commit(act![0]),
            TxEvent::Perform(act![1, 0], 2),
            TxEvent::Commit(act![1]),
        ]
    }

    #[test]
    fn lemma15_simulation_on_run() {
        let low = Level2::new(universe());
        let high = Level1::new(universe());
        let rep = check_simulation_on_run(&low, &high, &HSpec, &nontrivial_run()).unwrap();
        assert_eq!(rep.low_steps, rep.high_steps, "no Λ events at this level");
    }

    #[test]
    fn lemma15_possibilities_on_run() {
        let low = Level2::new(universe());
        let high = Level1::new(universe());
        check_possibilities_on_run(&low, &high, &HSpec, &nontrivial_run()).unwrap();
    }

    #[test]
    fn abort_run_simulates_too() {
        let low = Level2::new(universe());
        let high = Level1::new(universe());
        let run = vec![
            TxEvent::Create(act![0]),
            TxEvent::Create(act![0, 0]),
            TxEvent::Perform(act![0, 0], 1),
            TxEvent::Abort(act![0]),
            TxEvent::Create(act![1]),
            TxEvent::Create(act![1, 0]),
            // After the abort, 1.0 sees init again.
            TxEvent::Perform(act![1, 0], 1),
            TxEvent::Commit(act![1]),
        ];
        check_possibilities_on_run(&low, &high, &HSpec, &run).unwrap();
    }

    #[test]
    fn event_mapping_is_identity_on_tx_events() {
        let e = TxEvent::Perform(act![0, 0], 3);
        assert_eq!(Interpretation::<Level2, Level1>::map_event(&HSpec, &e), Some(e.clone()));
        let l = TxEvent::ReleaseLock(act![0], ObjectId(0));
        assert_eq!(Interpretation::<Level2, Level1>::map_event(&HSpec, &l), None);
    }
}
